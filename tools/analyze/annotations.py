"""guarded-by: thread-safety annotation coverage of lock-owning classes.

Scope: classes and structs in the concurrent modules (src/sched/,
src/runtime/, src/service/) that *own a lock member* (sched::Spinlock,
util::Mutex, std::mutex, std::atomic_flag). Owning a lock declares the
intent "this type is accessed from several threads and the lock is the
protocol" — so every mutable field of such a class must either:

  - be std::atomic (its own protocol),
  - be the lock itself / another capability,
  - carry SBS_GUARDED_BY(...) / SBS_PT_GUARDED_BY(...) so clang's
    -Wthread-safety proves the discipline,
  - carry SBS_INIT_ONLY or SBS_CONFINED(who) (documentation-only macros
    in util/thread_safety.h) naming a non-lock protocol the clang
    analysis cannot express, or
  - carry a `// lint:allow(guarded-by)` waiver naming why it is safe
    unguarded (e.g. an internally synchronized member object).

Classes without lock members are skipped: padded per-worker state
(alignas(64) PerThread blocks and friends) is confined by construction
and annotating it would be noise, exactly the "non-padded" carve-out
in the rule statement.
"""

from . import cxx
from .findings import Finding

SCOPE_MODULES = ("sched", "runtime", "service")

LOCK_TYPES = {"Spinlock", "Mutex", "mutex", "recursive_mutex",
              "shared_mutex", "atomic_flag"}
ANNOTATIONS = {"SBS_GUARDED_BY", "SBS_PT_GUARDED_BY",
               "SBS_INIT_ONLY", "SBS_CONFINED"}
SKIP_KEYWORDS = {"using", "typedef", "friend", "static", "constexpr",
                 "enum", "public", "private", "protected", "template",
                 "operator", "explicit", "virtual", "return"}


def run(repo):
    findings = []
    for rel in sorted(repo.files):
        sf = repo.files[rel]
        if sf.module not in SCOPE_MODULES:
            continue
        toks = cxx.tokens(sf.lexed.code)
        for cls in _classes(toks):
            findings.extend(_check_class(rel, cls))
    return findings


class _Class:
    def __init__(self, name, line):
        self.name = name
        self.line = line
        self.fields = []  # (name, line, type_tokens, annotated)


def _classes(toks):
    """Yield _Class for every class/struct body, outer and nested."""
    out = []
    i = 0
    while i < len(toks):
        if toks[i].kind == "ident" and toks[i].value in ("class", "struct"):
            cls, nxt = _parse_class(toks, i, out)
            if cls is None:
                i += 1
                continue
            i = nxt
            continue
        i += 1
    return out


def _parse_class(toks, i, out):
    """toks[i] is class/struct. Parse `class [attrs] Name [: bases] { ... }`;
    returns (class or None, next index). Nested classes recurse via the
    shared `out` list."""
    j = i + 1
    name = None
    line = toks[i].line
    # Skip attribute macros (SBS_CAPABILITY("x"), alignas(64), ...) and
    # remember the last plain identifier before `{`, `:` or `;`.
    while j < len(toks):
        t = toks[j]
        if t.kind == "ident":
            name = t.value
            if j + 1 < len(toks) and toks[j + 1].value == "(":
                _, j = _skip_parens(toks, j + 1)
                continue
        elif t.value == "{":
            break
        elif t.value in (";", ":", "<"):
            # forward declaration; or base clause / template starts —
            # scan forward to the body or the terminating semicolon.
            if t.value == ";":
                return None, j + 1
            j = _scan_to_body(toks, j)
            break
        j += 1
    if j >= len(toks) or toks[j].value != "{":
        return None, i + 1
    if name is None:
        return None, i + 1
    cls = _Class(name, line)
    j = _parse_body(toks, j + 1, cls, out)
    out.append(cls)
    return cls, j


def _skip_parens(toks, j):
    """toks[j] == '('; return (None, index past the matching ')')."""
    depth = 0
    while j < len(toks):
        if toks[j].value == "(":
            depth += 1
        elif toks[j].value == ")":
            depth -= 1
            if depth == 0:
                return None, j + 1
        j += 1
    return None, j


def _scan_to_body(toks, j):
    depth = 0
    while j < len(toks):
        v = toks[j].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth = max(0, depth - 1)
        elif v == "{" and depth == 0:
            return j
        elif v == ";" and depth == 0:
            return j
        j += 1
    return j


def _parse_body(toks, j, cls, out):
    """Parse class body statements until the closing brace; returns index
    past it. Field statements are recorded; method bodies and nested
    braces are skipped; nested classes recurse."""
    stmt = []
    while j < len(toks):
        t = toks[j]
        if t.value == "}":
            return j + 1
        if t.kind == "ident" and t.value in ("class", "struct") and not stmt:
            nested, j = _parse_class(toks, j, out)
            if nested is None:
                j += 1
            continue
        if t.value == "{":
            # Method body or brace initializer. A method body follows `)`
            # or ident like `const`/`override`/`noexcept`; an initializer
            # follows the field name or `=`. Either way: skip balanced,
            # then a method statement ends (no `;` required).
            depth = 0
            start = j
            while j < len(toks):
                if toks[j].value == "{":
                    depth += 1
                elif toks[j].value == "}":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
            if _is_method_body(stmt):
                stmt = []
            else:
                stmt.append(toks[start])  # keep a `{` marker for the field
            continue
        if t.value == ";":
            # Method/constructor *declarations* end in `;` too — a
            # top-level parameter list marks them as non-fields.
            if stmt and not _is_method_body(stmt):
                cls.fields.append(_classify(stmt))
            stmt = []
            j += 1
            continue
        stmt.append(t)
        j += 1
    return j


def _is_method_body(stmt):
    """The brace block closes a method when the statement has a top-level
    parameter list: `type name(args) [qualifiers] { ... }`."""
    depth = 0
    for idx, t in enumerate(stmt):
        if t.value == "(":
            prev = stmt[idx - 1] if idx else None
            if depth == 0 and prev is not None and prev.kind == "ident" \
                    and prev.value not in ("alignas",) \
                    and not prev.value.isupper():
                return True
            depth += 1
        elif t.value == ")":
            depth -= 1
    return False


def _classify(stmt):
    """Turn a field statement's tokens into (name, line, type_words,
    annotated)."""
    words = [t.value for t in stmt]
    annotated = any(w in ANNOTATIONS for w in words)
    # Field name: last identifier before `=`, a `{` marker, or end —
    # skipping the contents of annotation macros and alignas(...).
    name = None
    depth = 0
    for t in stmt:
        if t.value == "(":
            depth += 1
        elif t.value == ")":
            depth -= 1
        elif depth == 0:
            if t.value in ("=", "{"):
                break
            if t.kind == "ident" and t.value not in ANNOTATIONS:
                name = t.value
    return (name, stmt[0].line, words, annotated)


def _check_class(rel, cls):
    lock_names = [
        name for (name, _, words, _) in cls.fields
        if name and _mentions(words, LOCK_TYPES) and "atomic" not in words]
    if not lock_names:
        return []
    findings = []
    for name, line, words, annotated in cls.fields:
        if name is None or annotated:
            continue
        if name in lock_names:
            continue
        if _skippable(words, name):
            continue
        findings.append(Finding(
            rel, line, "guarded-by",
            f"mutable field `{cls.name}::{name}` in a lock-owning class "
            f"has no SBS_GUARDED_BY({'/'.join(lock_names)}) annotation — "
            "annotate it, make it atomic, or waive with the confinement "
            "reason"))
    return findings


def _mentions(words, names):
    return any(w in names for w in words)


def _skippable(words, name):
    if words[0] in SKIP_KEYWORDS or name in SKIP_KEYWORDS:
        return True
    if "const" in words or "constexpr" in words or "static" in words:
        return True
    if "atomic" in words or any(w.startswith("atomic") for w in words):
        return True
    if _mentions(words, LOCK_TYPES):
        return True
    if "condition_variable" in words or "condition_variable_any" in words:
        return True  # CVs are their own synchronization primitive
    # Function pointers / std::function callbacks: invoked, not mutated.
    if "function" in words:
        return True
    return False
