#!/usr/bin/env python3
"""Unit tests for tools/analyze/ (stdlib unittest, registered in ctest).

Covers the tokenizer's nasty corners (raw strings, line continuations,
comment nesting rules, digit separators), one positive + one negative
case per analyzer, and the waiver/stale-waiver machinery. The mutation
fixtures under fixtures/ are exercised end-to-end by
`run.py --self-test`; these tests pin the component behaviors those
fixtures rely on.
"""

import os
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analyze import annotations, atomics, cxx, layering, lock_order, repo
from analyze.findings import WaiverSet, apply_waivers, stale_waiver_findings
from analyze.findings import Finding


class LexTest(unittest.TestCase):
    def test_line_comment_blanked(self):
        lx = cxx.lex("int a; // trailing note\nint b;\n")
        self.assertIn("int a;", lx.code)
        self.assertNotIn("trailing", lx.code)
        self.assertTrue(any("trailing" in c.text for c in lx.comments))

    def test_block_comment_does_not_nest(self):
        # /* /* */ closes at the first */ — `int x;` after it is code.
        lx = cxx.lex("/* outer /* inner */ int x;\n")
        self.assertIn("int x;", lx.code)
        self.assertNotIn("outer", lx.code)

    def test_block_comment_preserves_line_numbers(self):
        lx = cxx.lex("/* one\ntwo\nthree */ int y;\n")
        self.assertEqual(lx.code.count("\n"), 3)
        self.assertIn("int y;", lx.code.splitlines()[2])

    def test_string_contents_blanked_but_quotes_kept(self):
        lx = cxx.lex('auto s = "a // not a comment"; int z;\n')
        self.assertNotIn("not a comment", lx.code)
        self.assertIn("int z;", lx.code)
        self.assertEqual(lx.code.count('"'), 2)

    def test_raw_string_with_tricky_delimiter(self):
        src = 'auto r = R"x(quote " and )" inside)x"; int w;\n'
        lx = cxx.lex(src)
        self.assertNotIn("inside", lx.code)
        self.assertIn("int w;", lx.code)

    def test_raw_string_prefixes(self):
        for prefix in ("u8R", "uR", "UR", "LR"):
            src = f'auto r = {prefix}"(body // text)"; int k;\n'
            lx = cxx.lex(src)
            self.assertNotIn("body", lx.code, prefix)
            self.assertIn("int k;", lx.code, prefix)

    def test_line_continuation_extends_comment(self):
        src = "// comment continues \\\nstill comment\nint real;\n"
        lx = cxx.lex(src)
        self.assertNotIn("still comment", lx.code)
        self.assertIn("int real;", lx.code)

    def test_digit_separator_is_not_char_literal(self):
        lx = cxx.lex("int big = 1'000'000; int after;\n")
        self.assertIn("int after;", lx.code)

    def test_char_literal_with_escape(self):
        lx = cxx.lex("char c = '\\''; int tail;\n")
        self.assertIn("int tail;", lx.code)

    def test_comment_lines(self):
        lx = cxx.lex("int a;\n// note\nint b; /* note */\n")
        self.assertEqual(lx.comment_lines(), {2, 3})


class TokenTest(unittest.TestCase):
    def test_scope_resolution_is_one_token(self):
        toks = cxx.tokens("std::mutex m;")
        self.assertIn("::", [t.value for t in toks if t.kind == "punct"])

    def test_token_lines(self):
        toks = cxx.tokens("int a;\nint b;\n")
        self.assertEqual([t.line for t in toks if t.value in ("a", "b")],
                         [1, 2])


def _mkrepo(tree):
    """Materialize {relpath: content} into a temp repo and scan it."""
    tmp = tempfile.mkdtemp(prefix="analyze_test_")
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(content))
    return repo.Repo(tmp)


class LayeringTest(unittest.TestCase):
    def test_upward_include_flagged(self):
        r = _mkrepo({
            "src/util/base.h": "#pragma once\n",
            "src/sched/queue.h": '#pragma once\n#include "util/base.h"\n',
            "src/runtime/pool.h": '#pragma once\n#include "sched/queue.h"\n',
        })
        rules = [f for f in layering.run(r) if "include" in f.message]
        self.assertTrue(any(f.path == "src/runtime/pool.h" for f in rules))

    def test_declared_edge_clean(self):
        r = _mkrepo({
            "src/util/base.h": "#pragma once\n",
            "src/sched/queue.h": '#pragma once\n#include "util/base.h"\n',
        })
        self.assertEqual([f for f in layering.run(r)
                          if f.rule == "layering"
                          and "stale" not in f.message], [])

    def test_commented_out_include_ignored(self):
        r = _mkrepo({
            "src/sched/queue.h": "#pragma once\n",
            "src/runtime/pool.h":
                '#pragma once\n// #include "sched/queue.h"\n',
        })
        rules = [f for f in layering.run(r) if "include" in f.message]
        self.assertEqual(rules, [])

    def test_header_cycle_flagged(self):
        r = _mkrepo({
            "src/util/a.h": '#pragma once\n#include "util/b.h"\n',
            "src/util/b.h": '#pragma once\n#include "util/a.h"\n',
        })
        cyc = [f for f in layering.run(r) if "cycle" in f.message]
        self.assertTrue(cyc)


class LockOrderTest(unittest.TestCase):
    INVERTED = {
        "src/sched/ab.cpp": """
            void fa() {
              SpinGuard ga(a_lock);
              SpinGuard gb(b_lock);
            }
            void fb() {
              SpinGuard gb(b_lock);
              SpinGuard ga(a_lock);
            }
        """,
    }

    def test_inversion_flagged(self):
        findings = lock_order.run(_mkrepo(self.INVERTED))
        self.assertTrue(any(f.rule == "lock-order" and "cycle" in f.message
                            for f in findings))

    def test_consistent_order_clean(self):
        r = _mkrepo({
            "src/sched/ab.cpp": """
                void fa() {
                  SpinGuard ga(a_lock);
                  SpinGuard gb(b_lock);
                }
                void fb() {
                  SpinGuard ga(a_lock);
                  SpinGuard gb(b_lock);
                }
            """,
        })
        self.assertEqual([f for f in lock_order.run(r)
                          if "cycle" in f.message], [])

    def test_self_reacquisition_flagged(self):
        r = _mkrepo({
            "src/sched/self.cpp": """
                void f() {
                  SpinGuard g1(lock_);
                  SpinGuard g2(lock_);
                }
            """,
        })
        self.assertTrue(any("re-acquis" in f.message
                            for f in lock_order.run(r)))


class AtomicsTest(unittest.TestCase):
    def test_uncommented_order_flagged(self):
        r = _mkrepo({
            "src/sched/flag.h": """
                #pragma once
                #include <atomic>
                struct F {
                  std::atomic<bool> ready{false};
                  void set() {
                    ready.store(true, std::memory_order_release);
                  }
                };
            """,
        })
        self.assertTrue(any(f.rule == "atomic-order"
                            for f in atomics.run(r)))

    def test_commented_order_clean(self):
        r = _mkrepo({
            "src/sched/flag.h": """
                #pragma once
                #include <atomic>
                struct F {
                  std::atomic<bool> ready{false};
                  std::atomic<bool> seen{false};
                  void set() {
                    // Release: publishes init to the acquire load below.
                    ready.store(true, std::memory_order_release);
                  }
                  bool get() {
                    // Acquire: pairs with the release store in set().
                    return ready.load(std::memory_order_acquire);
                  }
                };
            """,
        })
        findings = atomics.run(r)
        self.assertEqual([f for f in findings if f.rule == "atomic-order"],
                         [])

    def test_defaulted_seqcst_in_hot_module_flagged(self):
        r = _mkrepo({
            "src/sched/ctr.h": """
                #pragma once
                #include <atomic>
                struct C {
                  std::atomic<int> n{0};
                  int read() { return n.load(); }
                };
            """,
        })
        self.assertTrue(any(f.rule == "atomic-seqcst"
                            for f in atomics.run(r)))

    def test_release_without_acquire_flagged(self):
        r = _mkrepo({
            "src/sched/pair.h": """
                #pragma once
                #include <atomic>
                struct P {
                  std::atomic<int> v{0};
                  void w() {
                    // Release: publish (nothing acquires — bug).
                    v.store(1, std::memory_order_release);
                  }
                  int r() {
                    // Relaxed read.
                    return v.load(std::memory_order_relaxed);
                  }
                };
            """,
        })
        self.assertTrue(any(f.rule == "atomic-pairing"
                            for f in atomics.run(r)))


class AnnotationsTest(unittest.TestCase):
    def test_unannotated_field_flagged(self):
        r = _mkrepo({
            "src/sched/state.h": """
                #pragma once
                struct Q {
                  Spinlock lock;
                  long generation = 0;
                };
            """,
        })
        self.assertTrue(any(f.rule == "guarded-by"
                            for f in annotations.run(r)))

    def test_annotated_and_confined_clean(self):
        r = _mkrepo({
            "src/sched/state.h": """
                #pragma once
                struct Q {
                  Spinlock lock;
                  long generation SBS_GUARDED_BY(lock) = 0;
                  int epoch SBS_INIT_ONLY = 0;
                  int scratch SBS_CONFINED(owner worker) = 0;
                };
            """,
        })
        self.assertEqual(annotations.run(r), [])

    def test_lockless_class_skipped(self):
        r = _mkrepo({
            "src/sched/plain.h": """
                #pragma once
                struct Plain {
                  long counter = 0;
                };
            """,
        })
        self.assertEqual(annotations.run(r), [])


class WaiverTest(unittest.TestCase):
    def test_waiver_consumption_and_staleness(self):
        ws = WaiverSet([
            "x; // lint:allow(layering)",
            "y; // lint:allow(atomic-order)",
        ])
        findings = [Finding("f.h", 1, "layering", "m")]
        kept = apply_waivers(findings, {"f.h": ws})
        self.assertEqual(kept, [])
        stale = stale_waiver_findings({"f.h": ws})
        self.assertEqual([(f.line, "atomic-order" in f.message)
                          for f in stale], [(2, True)])

    def test_foreign_rules_ignored(self):
        ws = WaiverSet(["z; // lint:allow(raw-simd)"])  # lint.py's rule
        self.assertEqual(stale_waiver_findings({"f.h": ws}), [])


if __name__ == "__main__":
    unittest.main()
