"""Repo model: lexed files, waivers, and the include graph.

Loads every C++ file under src/ (the layered library — tests, benches,
examples and tools are top-level consumers outside the module DAG),
lexes it once (tools/analyze/cxx.py), and extracts `#include "..."`
edges from the *blanked* text so commented-out includes and includes
quoted inside string literals do not enter the graph.
"""

import os
import re
from collections import namedtuple

from . import cxx
from .findings import WaiverSet

CXX_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)

SourceFile = namedtuple("SourceFile", "rel module lexed raw_lines includes")
Include = namedtuple("Include", "target line")


def module_of(rel):
    """src/sched/sb.h -> sched; None outside src/."""
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


class Repo:
    def __init__(self, root, scan_dirs=("src",)):
        self.root = root
        self.files = {}  # rel -> SourceFile
        self.waivers = {}  # rel -> WaiverSet
        for scan_dir in scan_dirs:
            top = os.path.join(root, scan_dir)
            if not os.path.isdir(top):
                continue
            for dirpath, _, filenames in os.walk(top):
                for name in sorted(filenames):
                    if not name.endswith(CXX_EXTENSIONS):
                        continue
                    path = os.path.join(dirpath, name)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    self._load(path, rel)

    def _load(self, path, rel):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        lexed = cxx.lex(text)
        raw_lines = text.split("\n")
        includes = []
        # Include paths are themselves string literals, so they are
        # blanked in the lexed text — match against the raw text, then
        # accept only matches whose `#include` directive survived
        # blanking (a commented-out include is blanked away entirely).
        for m in INCLUDE_RE.finditer(text):
            if "#" not in lexed.code[m.start():m.end()]:
                continue
            line = text.count("\n", 0, m.start()) + 1
            includes.append(Include(m.group(1), line))
        self.files[rel] = SourceFile(rel, module_of(rel), lexed, raw_lines,
                                     includes)
        self.waivers[rel] = WaiverSet(raw_lines)

    def include_edges(self):
        """(from_rel, Include, to_rel) for includes that resolve to a repo
        file; include paths are rooted at src/ (see CMakeLists.txt
        include_directories)."""
        out = []
        for rel, sf in sorted(self.files.items()):
            for inc in sf.includes:
                target = "src/" + inc.target
                if target in self.files:
                    out.append((rel, inc, target))
        return out
