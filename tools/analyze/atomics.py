"""Atomics audit: ordering justifications, hot-path seq_cst, pairings.

Three checks over every file under src/:

atomic-order   Every *explicit* memory_order_* use must sit next to a
               comment that justifies it. Consecutive uses form one
               group (a protocol is commented once, not per line): a
               group is justified when a comment appears on any of its
               lines or within JUSTIFY_WINDOW lines above its first
               use. The tokenizer strips comments before matching, so
               a memory_order mentioned *in* a comment is not a use.

atomic-seqcst  In the hot modules (src/sched/, src/sim/) an atomic op
               with a *defaulted* memory order is flagged: implicit
               seq_cst in a fork/steal or simulated-access path is
               either an unintentional fence (fix: state the weaker
               order and why) or intentional (fix: write seq_cst out
               loud so the audit and the reader both see it).

atomic-pairing Per atomic field (keyed by member name, repo-wide —
               declarations live in headers, uses in .cpp files), the
               explicit orders must form a coherent protocol:
               an acquire-side load wants a release-side write of the
               same field somewhere, and a release store wants some
               acquire-side reader. A field whose uses are all relaxed
               or all seq_cst is coherent by construction.
"""

import re

from .findings import Finding

HOT_MODULES = ("sched", "sim")
JUSTIFY_WINDOW = 3

ORDER_RE = re.compile(r"\bmemory_order(?:_|::\s*)"
                      r"(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")
ATOMIC_OP_RE = re.compile(
    r"(?:(?P<obj>[A-Za-z_][\w\]\[]*(?:\s*(?:\.|->)\s*[A-Za-z_][\w\]\[]*)*)"
    r"\s*(?:\.|->)\s*)"
    r"(?P<op>load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set|clear|wait|notify_one|notify_all)\s*\(")
ATOMIC_FIELD_RE = re.compile(
    r"\bstd::atomic(?:<|_flag|_bool|_int)[^;{}()]*?"
    r"\b(?P<name>[A-Za-z_]\w*)\s*(?:\{[^;]*\})?\s*(?:;|,|=)")

LOADISH = {"load", "wait"}
STOREISH = {"store", "notify_one", "notify_all", "clear"}
RMWISH = {"exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
          "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
          "test_and_set"}

ACQ_SIDE = {"acquire", "acq_rel", "seq_cst", "consume"}
REL_SIDE = {"release", "acq_rel", "seq_cst"}


def run(repo):
    findings = []
    fields = {}  # member name -> {"acq_load","rel_write","load","write",site}
    declared = _declared_atomics(repo)
    for rel in sorted(repo.files):
        sf = repo.files[rel]
        findings.extend(_order_comments(rel, sf))
        findings.extend(_ops(rel, sf, fields, declared))
    findings.extend(_pairings(fields))
    return findings


def _declared_atomics(repo):
    """Member names declared std::atomic anywhere under src/ (declarations
    live in headers, uses in .cpp files — so the set is repo-wide)."""
    out = set()
    for sf in repo.files.values():
        for m in ATOMIC_FIELD_RE.finditer(sf.lexed.code):
            out.add(m.group("name"))
    return out


def _order_comments(rel, sf):
    """atomic-order: explicit orders need a nearby justifying comment."""
    use_lines = sorted({
        sf.lexed.code.count("\n", 0, m.start()) + 1
        for m in ORDER_RE.finditer(sf.lexed.code)})
    if not use_lines:
        return []
    comments = sf.lexed.comment_lines()
    findings = []
    group = [use_lines[0]]
    for line in use_lines[1:]:
        if line - group[-1] <= 2:  # same protocol block
            group.append(line)
        else:
            findings.extend(_group_check(rel, group, comments))
            group = [line]
    findings.extend(_group_check(rel, group, comments))
    return findings


def _group_check(rel, group, comments):
    lo, hi = group[0], group[-1]
    for line in range(lo - JUSTIFY_WINDOW, hi + 1):
        if line in comments:
            return []
    return [Finding(
        rel, lo, "atomic-order",
        "explicit memory_order use without a justifying comment within "
        f"{JUSTIFY_WINDOW} lines — state the protocol (what it "
        "synchronizes with), or waive")]


def _ops(rel, sf, fields, declared):
    """Defaulted-order detection + per-field order collection."""
    code = sf.lexed.code
    module = sf.module
    hot = module in HOT_MODULES
    findings = []
    for m in ATOMIC_OP_RE.finditer(code):
        args, _ = _balanced(code, m.end() - 1)
        op = m.group("op")
        field = _member_name(m.group("obj"))
        orders = [o.group(1) for o in ORDER_RE.finditer(args)]
        line = code.count("\n", 0, m.start()) + 1
        if not orders:
            if hot and _looks_atomic(field, op, declared):
                findings.append(Finding(
                    rel, line, "atomic-seqcst",
                    f"`.{op}()` with defaulted seq_cst ordering in hot "
                    f"module src/{module}/ — spell the order out "
                    "(seq_cst if the fence is wanted, a weaker order "
                    "with a comment if not)"))
            continue
        rec = fields.setdefault(field, {
            "acq_load": False, "rel_write": False,
            "load": None, "write": None})
        if op in LOADISH:
            rec["load"] = rec["load"] or (rel, line)
            if orders[0] in ACQ_SIDE:
                rec["acq_load"] = True
        elif op in STOREISH or op in RMWISH:
            rec["write"] = rec["write"] or (rel, line)
            # CAS failure order is the trailing one; success order (and
            # any RMW/store order) is the first.
            if orders[0] in REL_SIDE:
                rec["rel_write"] = True
            if op in RMWISH and orders[0] in ACQ_SIDE:
                rec["acq_load"] = True
    return findings


def _pairings(fields):
    findings = []
    for name, rec in sorted(fields.items()):
        if rec["acq_load"] and rec["write"] and not rec["rel_write"]:
            rel, line = rec["write"]
            findings.append(Finding(
                rel, line, "atomic-pairing",
                f"atomic field `{name}` is acquire-loaded somewhere but "
                "every write is relaxed — the acquire synchronizes with "
                "nothing; make a write release/seq_cst or relax the load"))
        if rec["rel_write"] and rec["load"] and not rec["acq_load"]:
            rel, line = rec["load"]
            findings.append(Finding(
                rel, line, "atomic-pairing",
                f"atomic field `{name}` is release-stored somewhere but "
                "every load is relaxed — no reader can synchronize with "
                "the release; acquire-load it (or relax the store)"))
    return findings


def _member_name(obj):
    obj = re.split(r"\.|->", obj)[-1]
    return obj.split("[")[0].strip()


def _looks_atomic(field, op, declared):
    """Defaulted-order calls only count when the receiver is plausibly an
    atomic: the member is declared std::atomic somewhere in this repo's
    headers, or the op name is atomic-only (fetch_*/CAS/test_and_set)."""
    if op in RMWISH and op != "exchange":
        return True
    return field in declared


def _balanced(code, open_paren):
    """Return (argument text, index past close) for code[open_paren]=='('."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:i], i + 1
    return code[open_paren + 1:], len(code)
