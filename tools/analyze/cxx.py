"""A small C++ lexer: comments, strings (incl. raw strings), tokens.

Everything downstream (include extraction, lock-scope parsing, atomics
audits) works on *code text* with comments and literal contents blanked
out, so a `// TODO: take lock` comment or an error-message string can
never fake a lock acquisition or an include. Positions are preserved:
blanking replaces characters with spaces (newlines survive), so line
numbers in findings always match the original file.

Handled C++ lexical features the old regex lint could not see:
  - `//` line comments, including ones extended by a `\\` line
    continuation onto the next physical line;
  - `/* ... */` block comments (C++ block comments do not nest — a
    second `/*` inside one is plain text and must not extend it);
  - string and char literals with escape sequences;
  - raw string literals `R"delim( ... )delim"` with all encoding
    prefixes (R, u8R, uR, UR, LR) — `)delim"` is the only terminator,
    escapes and newlines inside are literal;
  - line continuations gluing physical lines inside any literal.
"""

import re
from collections import namedtuple

# A comment span: text is the comment body (markers stripped),
# line is the 1-based line of the comment's first character.
Comment = namedtuple("Comment", "line text")

Token = namedtuple("Token", "kind value line")

_RAW_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R$')
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\.?\d(?:[\w.']|[eEpP][+-])*")


class Lexed:
    """Result of lexing one file.

    code      the source with comments and literal *contents* blanked
              (string literals become `""`, chars `''`), same length
              and line structure as the input;
    comments  every comment, with its starting line;
    lines     code split into lines (convenience for line-based rules).
    """

    def __init__(self, code, comments):
        self.code = code
        self.comments = comments
        self.lines = code.split("\n")

    def comment_lines(self):
        """Set of 1-based line numbers that carry (part of) a comment."""
        out = set()
        for c in self.comments:
            for i in range(c.text.count("\n") + 1):
                out.add(c.line + i)
        return out


def lex(text):
    """Blank comments and literal contents out of `text`; keep structure."""
    out = list(text)
    comments = []
    i, n = 0, len(text)
    line = 1

    def blank(start, end, keep=()):
        for j in range(start, end):
            if text[j] == "\n" or j in keep:
                continue
            out[j] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                start, start_line = i, line
                i += 2
                # A trailing backslash continues the comment onto the
                # next physical line (phase-2 splicing happens before
                # comment recognition in a real compiler).
                while i < n:
                    if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                        line += 1
                        i += 2
                        continue
                    if text[i] == "\n":
                        break
                    i += 1
                comments.append(Comment(start_line, text[start + 2:i]))
                blank(start, i)
                continue
            if nxt == "*":
                start, start_line = i, line
                i += 2
                while i < n and not (text[i] == "*" and i + 1 < n
                                     and text[i + 1] == "/"):
                    if text[i] == "\n":
                        line += 1
                    i += 1
                end = min(i + 2, n)
                comments.append(Comment(start_line, text[start + 2:i]))
                blank(start, end)
                i = end
                continue
        if c == '"':
            # Raw string? Look back at the contiguous identifier ending
            # here: it must end in R with an optional encoding prefix.
            j = i
            while j > 0 and (text[j - 1].isalnum() or text[j - 1] == "_"):
                j -= 1
            if _RAW_PREFIX_RE.search(text[j:i]):
                d_end = i + 1
                while d_end < n and text[d_end] != "(":
                    d_end += 1
                delim = ")" + text[i + 1:d_end] + '"'
                close = text.find(delim, d_end)
                close = (close + len(delim)) if close != -1 else n
                line += text.count("\n", i, close)
                blank(i + 1, close - 1)
                i = close
                continue
            end, line = _skip_quoted(text, i, '"', line)
            blank(i + 1, end - 1)
            i = end
            continue
        if c == "'":
            # Only a real char literal: 1'000'000 digit separators must
            # not open a "literal" that swallows the rest of the line.
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev == "_":
                i += 1
                continue
            end, line = _skip_quoted(text, i, "'", line)
            blank(i + 1, end - 1)
            i = end
            continue
        i += 1
    return Lexed("".join(out), comments)


def _skip_quoted(text, i, quote, line):
    """Return (index past closing quote, updated line)."""
    n = len(text)
    i += 1
    while i < n:
        c = text[i]
        if c == "\\" and i + 1 < n:
            if text[i + 1] == "\n":
                line += 1
            i += 2
            continue
        if c == "\n":  # unterminated on this line: bail at the newline
            return i, line
        if c == quote:
            return i + 1, line
        i += 1
    return n, line


def tokens(code):
    """Tokenize blanked code into identifier/number/punct tokens."""
    out = []
    i, n = 0, len(code)
    line = 1
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c.isspace():
            i += 1
            continue
        if c.isalpha() or c == "_":
            m = _IDENT_RE.match(code, i)
            out.append(Token("ident", m.group(), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and code[i + 1].isdigit()):
            m = _NUMBER_RE.match(code, i)
            out.append(Token("number", m.group(), line))
            i = m.end()
            continue
        # Multi-char operators the parsers care about: `::` for
        # qualified names; everything else single-char is fine.
        if c == ":" and i + 1 < n and code[i + 1] == ":":
            out.append(Token("punct", "::", line))
            i += 2
            continue
        out.append(Token("punct", c, line))
        i += 1
    return out
