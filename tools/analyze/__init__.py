"""Semantic static-analysis suite for the space-bounded scheduler repo.

Where tools/lint.py is a per-line regex pass, this package builds real
models of the code — a comment/string-aware token stream, an include
graph over the declared module DAG, per-function lock-acquisition
scopes, and per-field atomic-ordering profiles — and checks repo-wide
structural properties that no single line can show:

  layering     the module DAG (docs/ANALYSIS.md) has no upward or
               undeclared include edges and no cycles;
  lock-order   the union of nested lock acquisitions across all
               functions is acyclic (no potential ABBA deadlock);
  atomics      every explicit memory_order_* carries a justifying
               comment, hot-path defaulted seq_cst is flagged, and
               acquire/release pairings per atomic field are coherent;
  guarded-by   mutable fields of lock-owning classes in the concurrent
               modules carry SBS_GUARDED_BY annotations.

Entry point: tools/analyze/run.py (exit 0 = clean, 1 = findings,
2 = usage/self-test harness error). Waivers share tools/lint.py's
`// lint:allow(<rule>)` syntax, and waivers that suppress nothing are
themselves findings (stale-waiver) so dead waivers cannot accumulate.
"""
