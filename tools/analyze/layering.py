"""Layering: enforce the declared module DAG over the include graph.

The declared DAG (docs/ANALYSIS.md §layering) follows the dependency
spine util → runtime → {sched, trace, perf} → {sim, verify} → service
→ harness, with machine and kernels as leaf modules (machine above
util only; kernels above the runtime fork/join API only). ALLOWED maps
each module to the full set of modules it may include from; an edge
not in the map is a finding, whether it points upward (a lower layer
reaching into a higher one) or sideways into a module never declared
as a dependency.

Deliberate exceptions live in EXCEPTIONS as (file, target-module)
pairs with a stated reason — the allowlist the rule text requires —
and are reported as stale when the edge they bless disappears.

Two cycle checks back the DAG:
  - module-level cycles in the *extracted* graph (these would make any
    layer assignment impossible), and
  - file-level include cycles among headers (a header cycle breaks
    whichever include order a TU happens to use, even when each edge
    is individually legal).
"""

from .findings import Finding

# module -> modules it may include from (besides itself).
ALLOWED = {
    "util": set(),
    "perf": set(),                 # standalone PMU wrapper
    "machine": {"util"},           # leaf: topology/config parsing
    "trace": {"util"},             # event substrate under the engines
    "runtime": {"util", "machine"},
    "sched": {"util", "machine", "trace", "runtime"},
    "kernels": {"util", "runtime"},  # leaf workloads: fork/join API only
    "sim": {"util", "machine", "trace", "runtime", "sched"},
    "verify": {"util", "machine", "trace", "runtime", "sched"},
    "service": {"util", "machine", "runtime", "sched", "kernels", "verify"},
    "harness": {"util", "machine", "trace", "runtime", "sched", "kernels",
                "perf", "sim", "verify", "service"},
}

# (file, target module) -> reason. Edges here are deliberate and
# documented; an entry whose edge no longer exists is itself flagged so
# the allowlist cannot rot.
EXCEPTIONS = {
    ("src/runtime/thread_pool.h", "trace"):
        "per-worker ring recorders are embedded in the pool (PR 1-2); "
        "inverting the edge needs a hook layer nothing else wants yet",
}


def run(repo):
    findings = []
    edges = repo.include_edges()
    used_exceptions = set()
    module_edges = {}  # (from_mod, to_mod) -> first (rel, line)

    for rel, inc, target in edges:
        src_mod = repo.files[rel].module
        dst_mod = repo.files[target].module
        if src_mod is None or dst_mod is None or src_mod == dst_mod:
            continue
        module_edges.setdefault((src_mod, dst_mod), (rel, inc.line))
        if dst_mod in ALLOWED.get(src_mod, set()):
            continue
        if (rel, dst_mod) in EXCEPTIONS:
            used_exceptions.add((rel, dst_mod))
            continue
        direction = ("upward" if _rank(dst_mod) >= _rank(src_mod)
                     else "undeclared")
        findings.append(Finding(
            rel, inc.line, "layering",
            f"{direction} include: module `{src_mod}` may not depend on "
            f"`{dst_mod}` (declared DAG in tools/analyze/layering.py; "
            f"include of \"{inc.target}\")"))

    for (rel, dst_mod), reason in sorted(EXCEPTIONS.items()):
        if (rel, dst_mod) not in used_exceptions and rel in repo.files:
            findings.append(Finding(
                rel, 1, "layering",
                f"stale layering exception: {rel} no longer includes from "
                f"`{dst_mod}` — drop the EXCEPTIONS entry ({reason})"))

    findings.extend(_module_cycles(module_edges))
    findings.extend(_header_cycles(repo))
    return findings


def _rank(mod):
    """Topological depth of a module in the declared DAG (for wording
    findings as upward vs undeclared only)."""
    seen = set()

    def depth(m):
        if m in seen:
            return 0  # defensive: ALLOWED is acyclic by construction
        seen.add(m)
        deps = ALLOWED.get(m, set())
        return 1 + max((depth(d) for d in deps), default=-1)

    return depth(mod)


def _module_cycles(module_edges):
    """Cycles in the extracted module graph (reported once per cycle)."""
    graph = {}
    for (a, b), _ in module_edges.items():
        graph.setdefault(a, set()).add(b)
    findings = []
    for cycle in _find_cycles(graph):
        a, b = cycle[0], cycle[1]
        rel, line = module_edges[(a, b)]
        findings.append(Finding(
            rel, line, "layering",
            "module cycle in the extracted include graph: "
            + " -> ".join(cycle + (cycle[0],))))
    return findings


def _header_cycles(repo):
    graph = {}
    for rel, _, target in repo.include_edges():
        if rel.endswith((".h", ".hpp")):
            graph.setdefault(rel, set()).add(target)
    findings = []
    for cycle in _find_cycles(graph):
        findings.append(Finding(
            cycle[0], 1, "layering",
            "header include cycle: " + " -> ".join(cycle + (cycle[0],))))
    return findings


def _find_cycles(graph):
    """Distinct elementary cycles, each reported from its least node."""
    cycles = set()
    state = {}  # node -> 1 (on stack) / 2 (done)
    stack = []

    def visit(node):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 1:
                cyc = stack[stack.index(nxt):]
                lo = cyc.index(min(cyc))
                cycles.add(tuple(cyc[lo:] + cyc[:lo]))
            elif nxt not in state:
                visit(nxt)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if node not in state:
            visit(node)
    return sorted(cycles)
