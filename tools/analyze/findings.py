"""Findings, waivers, and stale-waiver accounting.

Waivers share tools/lint.py's syntax: `// lint:allow(<rule>[, <rule>])`
on the offending line or the line directly above it. A waiver for a
rule this tool owns that suppresses nothing is itself a finding
(stale-waiver), so dead waivers cannot accumulate; waivers for rules
owned by other tools (tools/lint.py's regex rules) are ignored here and
vice versa.
"""

import json
import re
from collections import namedtuple

Finding = namedtuple("Finding", "path line rule message")

WAIVER_RE = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Rules owned by tools/analyze/ (stale-waiver accounting is per-owner).
ANALYZE_RULES = frozenset({
    "layering",
    "lock-order",
    "atomic-order",
    "atomic-seqcst",
    "atomic-pairing",
    "guarded-by",
})


class WaiverSet:
    """Waivers of one file, with consumption tracking."""

    def __init__(self, raw_lines):
        # line (1-based) -> list of rule names waived there
        self.at = {}
        self.consumed = set()  # (line, rule)
        for idx, text in enumerate(raw_lines):
            m = WAIVER_RE.search(text)
            if m:
                self.at[idx + 1] = [r.strip() for r in m.group(1).split(",")]

    def waived(self, line, rule):
        """True when `line` or the line above carries a waiver for `rule`;
        marks the waiver consumed for stale-waiver accounting."""
        for j in (line, line - 1):
            if rule in self.at.get(j, ()):
                self.consumed.add((j, rule))
                return True
        return False

    def stale(self, owned_rules=ANALYZE_RULES):
        """(line, rule) waivers for rules we own that nothing consumed."""
        out = []
        for line, rules in sorted(self.at.items()):
            for rule in rules:
                if rule in owned_rules and (line, rule) not in self.consumed:
                    out.append((line, rule))
        return out


def apply_waivers(findings, waiver_sets):
    """Drop waived findings; waiver_sets maps path -> WaiverSet."""
    kept = []
    for f in findings:
        ws = waiver_sets.get(f.path)
        if ws and ws.waived(f.line, f.rule):
            continue
        kept.append(f)
    return kept


def stale_waiver_findings(waiver_sets, owned_rules=ANALYZE_RULES):
    out = []
    for path in sorted(waiver_sets):
        for line, rule in waiver_sets[path].stale(owned_rules):
            out.append(Finding(
                path, line, "stale-waiver",
                f"waiver `lint:allow({rule})` suppresses nothing — remove "
                "it (or reword the comment if it only *mentions* the "
                "syntax)"))
    return out


def print_findings(findings, scanned, as_json, label="analyze"):
    """Emit findings in the shared `path:line: [rule] message` format (the
    GitHub problem matcher in .github/problem-matcher.json keys on it),
    or as a JSON document with --json."""
    if as_json:
        print(json.dumps({
            "tool": label,
            "files_scanned": scanned,
            "findings": [f._asdict() for f in findings],
        }, indent=2))
        return
    for f in sorted(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"{label}: {len(findings)} finding(s) in {scanned} files")
    else:
        print(f"{label}: OK ({scanned} files)")
