"""Lock-order: nested guard scopes -> repo-wide order graph -> cycles.

Per file, the token stream is scanned for RAII guard acquisitions —
sched::SpinGuard, util::MutexLock, std::lock_guard, std::unique_lock,
std::scoped_lock — with the brace depth tracked so a guard is "held"
until its enclosing scope closes. Every acquisition made while another
guard is live contributes a directed edge held-lock -> new-lock to the
repo-wide lock-order graph; a cycle in that graph is a potential ABBA
deadlock (two threads taking the same pair of locks in opposite
orders), which no single function — and no dynamic tool that never
executes both paths in one run — can show.

Lock identity is the trailing member name of the guarded expression
(`node.lock` and `parent->lock` are both instances of `lock`): the
graph deliberately merges all instances of a member, because distinct
objects of one class are exactly what two threads grab in opposite
orders. Same-*expression* re-acquisition inside one scope is flagged
separately (immediate self-deadlock on these non-recursive locks).

Waiving: a cycle is reported at each constituent edge's acquisition
site; `// lint:allow(lock-order)` on every edge of the cycle (e.g. a
tree walk that locks parent->child with a structural guarantee no
other order exists) suppresses it.
"""

from collections import namedtuple

from . import cxx
from .findings import Finding

# Recognized guard spellings: final type identifier -> needs template args.
GUARD_TYPES = {
    "SpinGuard": False,
    "MutexLock": False,
    "lock_guard": True,
    "unique_lock": True,
    "scoped_lock": True,
}

Acquisition = namedtuple("Acquisition", "key expr line depth")
Edge = namedtuple("Edge", "src dst rel line held_expr")


def run(repo):
    findings = []
    edges = []
    for rel in sorted(repo.files):
        f_edges, f_findings = _scan_file(repo, rel)
        edges.extend(f_edges)
        findings.extend(f_findings)
    findings.extend(_cycle_findings(repo, edges))
    return findings


def _scan_file(repo, rel):
    toks = cxx.tokens(repo.files[rel].lexed.code)
    edges = []
    findings = []
    held = []  # stack of live Acquisitions in source order
    depth = 0
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "punct":
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                while held and held[-1].depth > depth:
                    held.pop()
            i += 1
            continue
        if t.kind == "ident" and t.value in GUARD_TYPES:
            locks, nxt = _parse_guard(toks, i)
            if locks is None:
                i += 1
                continue
            for expr, line in locks:
                key = _lock_key(expr)
                for h in held:
                    if h.expr == expr:
                        findings.append(Finding(
                            rel, line, "lock-order",
                            f"re-acquisition of `{expr}` while already "
                            f"held (line {h.line}) — self-deadlock on a "
                            "non-recursive lock"))
                    elif h.key != key:
                        edges.append(Edge(h.key, key, rel, line, h.expr))
                held.append(Acquisition(key, expr, line, depth))
            i = nxt
            continue
        i += 1
    return edges, findings


def _parse_guard(toks, i):
    """At toks[i] == a guard type name: return ([(lock_expr, line)], next_i)
    or (None, i) when this is not an acquisition (e.g. the guard class's
    own definition, a using-declaration, a function parameter)."""
    j = i + 1
    if GUARD_TYPES[toks[i].value]:  # std:: guards may carry <...>
        if j < len(toks) and toks[j] == ("punct", "<", toks[j].line):
            depth = 0
            while j < len(toks):
                if toks[j].value == "<":
                    depth += 1
                elif toks[j].value == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
    # Variable name, then a parenthesized lock expression.
    if j >= len(toks) or toks[j].kind != "ident":
        return None, i
    j += 1
    if j >= len(toks) or toks[j].value != "(":
        return None, i
    line = toks[j].line
    depth = 0
    args = [[]]
    while j < len(toks):
        v = toks[j].value
        if v == "(":
            depth += 1
            if depth > 1:
                args[-1].append(toks[j])
        elif v == ")":
            depth -= 1
            if depth == 0:
                j += 1
                break
            args[-1].append(toks[j])
        elif v == "," and depth == 1:
            args.append([])
        else:
            args[-1].append(toks[j])
        j += 1
    locks = []
    for arg in args:
        expr = "".join(t.value for t in arg)
        if expr:
            locks.append((expr, line))
    return (locks or None), j


def _lock_key(expr):
    """Trailing member name: `node.lock` / `parent->lock` / `lock` -> lock."""
    for sep in (".", "->", "::"):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip("&*")


def _cycle_findings(repo, edges):
    graph = {}
    sites = {}  # (src, dst) -> [(rel, line)]
    for e in edges:
        graph.setdefault(e.src, set()).add(e.dst)
        sites.setdefault((e.src, e.dst), []).append((e.rel, e.line))

    findings = []
    seen = set()
    state = {}
    stack = []

    def visit(node):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 1:
                cyc = stack[stack.index(nxt):]
                lo = cyc.index(min(cyc))
                cyc = tuple(cyc[lo:] + cyc[:lo])
                if cyc not in seen:
                    seen.add(cyc)
                    _report(cyc)
            elif nxt not in state:
                visit(nxt)
        stack.pop()
        state[node] = 2

    def _report(cyc):
        order = " -> ".join(cyc + (cyc[0],))
        pairs = list(zip(cyc, cyc[1:] + (cyc[0],)))
        # Waived only when every edge of the cycle is waived at (one of)
        # its acquisition sites.
        edge_findings = []
        all_waived = True
        for src, dst in pairs:
            rel0, line0 = sites[(src, dst)][0]
            waived = any(
                repo.waivers[rel].waived(line, "lock-order")
                for rel, line in sites[(src, dst)])
            all_waived = all_waived and waived
            edge_findings.append(Finding(
                rel0, line0, "lock-order",
                f"lock-order cycle {order}: `{dst}` acquired while "
                f"`{src}` is held (potential ABBA deadlock; "
                f"{len(sites[(src, dst)])} site(s) for this edge)"))
        if not all_waived:
            findings.extend(edge_findings)

    for node in sorted(graph):
        if node not in state:
            visit(node)
    return findings
