#!/usr/bin/env python3
"""Driver for the semantic static-analysis suite (tools/analyze/).

Runs the four analyzers — layering, lock-order, atomics, guarded-by —
over src/, applies `lint:allow` waivers, reports stale waivers, and
prints findings as `path:line: [rule] message` (or a JSON document with
--json; .github/problem-matcher.json turns either tool's text output
into PR line annotations).

--self-test runs every seeded mutation fixture under
tools/analyze/fixtures/ and asserts that the expected rule fires and
the exit status is failing — the analyzers are themselves tested code,
same prove-the-checker-catches-it discipline as the verify layer's
mutation tests (tests/test_verify.cpp).

Exit codes: 0 clean, 1 findings, 2 harness error.

Usage: tools/analyze/run.py [--root DIR] [--json] [--self-test]
"""

import argparse
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from analyze import annotations, atomics, layering, lock_order
    from analyze.findings import (ANALYZE_RULES, apply_waivers,
                                  print_findings, stale_waiver_findings)
    from analyze.repo import Repo
else:
    from . import annotations, atomics, layering, lock_order
    from .findings import (ANALYZE_RULES, apply_waivers, print_findings,
                           stale_waiver_findings)
    from .repo import Repo

ANALYZERS = (layering, lock_order, atomics, annotations)

# fixture directory -> rule its seeded mutation must trigger.
FIXTURES = {
    "lock_inversion": "lock-order",
    "upward_include": "layering",
    "stripped_annotation": "guarded-by",
    "unjustified_atomic": "atomic-order",
}


def analyze(root):
    """Returns (findings, files_scanned)."""
    repo = Repo(root)
    findings = []
    for analyzer in ANALYZERS:
        findings.extend(analyzer.run(repo))
    findings = apply_waivers(findings, repo.waivers)
    findings.extend(stale_waiver_findings(repo.waivers))
    return sorted(findings), len(repo.files)


def self_test(fixtures_dir):
    """Every fixture must fail with its expected rule; exit 0 iff so."""
    failures = []
    for name, rule in sorted(FIXTURES.items()):
        root = os.path.join(fixtures_dir, name)
        if not os.path.isdir(root):
            failures.append(f"{name}: fixture directory missing")
            continue
        findings, _ = analyze(root)
        fired = sorted({f.rule for f in findings})
        if not findings:
            failures.append(f"{name}: analyzer found nothing "
                            f"(expected [{rule}])")
        elif rule not in fired:
            failures.append(f"{name}: expected [{rule}], fired {fired}")
        else:
            print(f"self-test {name}: OK — [{rule}] fired "
                  f"({len(findings)} finding(s))")
    for msg in failures:
        print(f"self-test FAILED: {msg}", file=sys.stderr)
    return 2 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="semantic static analysis over src/")
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded mutation fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test(os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "fixtures"))

    findings, scanned = analyze(args.root)
    print_findings(findings, scanned, args.json)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
