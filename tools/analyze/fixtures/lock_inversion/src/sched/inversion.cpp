// Seeded lock-order mutation: transfer_ab() takes a_.lock then b_.lock,
// refund_ba() takes b_.lock then a_.lock. The repo-wide lock-order graph
// gets the cycle a_lock -> b_lock -> a_lock, which the lock-order
// analyzer must flag as a potential ABBA deadlock even though neither
// function alone deadlocks and a test run may never interleave them.

namespace fixture {

struct Spinlock {
  void lock() {}
  void unlock() {}
};

struct SpinGuard {
  explicit SpinGuard(Spinlock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  Spinlock& lock_;
};

struct Account {
  Spinlock a_lock;
  Spinlock b_lock;
  long a = 0;
  long b = 0;

  void transfer_ab(long amount) {
    SpinGuard ga(a_lock);
    SpinGuard gb(b_lock);
    a -= amount;
    b += amount;
  }

  void refund_ba(long amount) {
    SpinGuard gb(b_lock);
    SpinGuard ga(a_lock);
    b -= amount;
    a += amount;
  }
};

}  // namespace fixture
