// Seeded guarded-by mutation: a lock-owning queue whose `jobs` container
// is annotated but whose `generation` counter had its SBS_GUARDED_BY
// stripped. The coverage analyzer must flag the bare mutable field.
#pragma once

#define SBS_GUARDED_BY(x)

namespace fixture {

struct Spinlock {
  void lock() {}
  void unlock() {}
};

struct Queue {
  Spinlock lock;
  int jobs[8] SBS_GUARDED_BY(lock);
  long generation = 0;  // mutation: annotation stripped
};

}  // namespace fixture
