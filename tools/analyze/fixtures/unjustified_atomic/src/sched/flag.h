// Seeded atomic-order mutation: an explicit release store with no
// justifying comment anywhere near it. The atomics audit must demand a
// stated protocol (what the release publishes, which acquire observes
// it) or a waiver.
#pragma once

#include <atomic>

namespace fixture {

struct Flag {
  std::atomic<bool> ready{false};

  void publish() {


    ready.store(true, std::memory_order_release);
  }
};

}  // namespace fixture
