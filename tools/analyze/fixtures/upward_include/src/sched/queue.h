#pragma once

#include "util/base.h"

namespace fixture::sched {
struct Queue {
  int depth = 0;
};
}  // namespace fixture::sched
