#pragma once

namespace fixture::util {
using Id = int;
}  // namespace fixture::util
