// Seeded layering mutation: the runtime layer reaching up into sched.
// The declared DAG (tools/analyze/layering.py) has sched above runtime,
// so this include must be flagged as an upward edge.
#pragma once

#include "sched/queue.h"
#include "util/base.h"

namespace fixture {
struct Pool {
  sched::Queue queue;
};
}  // namespace fixture
