#!/usr/bin/env python3
"""Repo-specific lint pass (runs in CI next to format/tidy).

Rules:
  raw-new     Job/Task/JoinCounter objects must come from the arena-backed
              allocation path in src/runtime/ (the ArenaBacked mixin and the
              fork bookkeeping in strand_ops.h). A raw `new Task(...)`,
              `new JoinCounter(...)` or `new SomethingJob(...)` anywhere
              else bypasses the per-worker JobArena and puts fork/join
              churn back on the global heap.
  std-mutex   Scheduler hot paths (src/sched/) must not take a std::mutex:
              add/get/done are called on every fork/steal and a futex-backed
              mutex there serializes workers. Use sched::Spinlock, or
              util::Mutex off the hot path with a waiver.
  std-deque   std::deque in src/sched/ is allowed only behind a lock as a
              cold container, never as the hot-path interface; every use
              must carry an explicit waiver explaining itself.
  assert-se   SBS_ASSERT compiles out under NDEBUG, so its argument must
              not have side effects (++/--/assignment/mutating calls) —
              otherwise release builds change behavior.
  blocking-call
              The service layer (src/service/) promises a non-blocking
              submit path: Runtime::submit and the admission controller
              must never sleep, join, or wait on a condition variable
              (client threads call them at arrival rate). Every blocking
              primitive in src/service/ therefore needs a waiver naming
              why it is off the submit path (idle backoff, waiters,
              teardown). A blocking call that sneaks into submit/admission
              code has no such justification and fails review by rule.
  wallclock-seed
              All randomness flows through sbs::Rng with explicit seeds
              (determinism contract, see service/arrivals.h). Seeding from
              std::random_device, srand(), or time() makes runs
              irreproducible and is banned repo-wide.
  sim-unordered-map
              std::unordered_map in src/sim/ is banned: the simulator's
              per-access structures (directory, holder sets) are the
              hottest data in the repo, and node-per-entry hashing there
              cost ~10x vs the open-addressing sim::FlatMap that replaced
              it (see src/sim/flat_map.h). Cold, setup-only maps may carry
              a waiver.
  raw-simd    Raw x86 intrinsics (_mm*/__m128i/immintrin.h includes) are
              confined to src/sim/simd.h, which pairs every vector path
              with a portable scalar fallback and the runtime dispatch
              that keeps non-x86 and forced-scalar builds working. An
              intrinsic anywhere else forks that portability story; waive
              only with a reason the wrapper cannot express.

Waivers: append `// lint:allow(<rule>)` on the offending line or the line
directly above it. A waiver for a rule this tool owns that suppresses
nothing is itself a finding (stale-waiver) so dead waivers cannot
accumulate; waivers for rules owned by tools/analyze/ (layering,
atomic-order, guarded-by, ...) are left to that tool and vice versa.

The full rule catalogue (this tool's regex rules and tools/analyze's
semantic rules) lives in docs/ANALYSIS.md.

Usage: tools/lint.py [--root DIR] [--json]
       (exit 0 = clean, 1 = findings)
"""

import argparse
import json
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")

# src/runtime owns the arena allocation path; `new` of runtime objects is
# legitimate there (ArenaBacked routes it through the JobArena).
RAW_NEW_EXEMPT = ("src/runtime/",)

RAW_NEW_RE = re.compile(r"\bnew\s+(?:[A-Za-z_][\w:]*::)?"
                        r"(Task|JoinCounter|[A-Za-z_]\w*Job)\s*[({]")
STD_MUTEX_RE = re.compile(r"\bstd::(mutex|recursive_mutex|shared_mutex|"
                          r"timed_mutex|condition_variable)\b")
STD_DEQUE_RE = re.compile(r"\bstd::deque\b")
BLOCKING_CALL_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|yield)\s*\("
    r"|\.\s*(?:wait|wait_for|wait_until|join)\s*\(")
SIM_UNORDERED_MAP_RE = re.compile(r"\bstd::unordered_map\b")
# x86 vector intrinsics, vector register types, and the intrinsic headers.
RAW_SIMD_RE = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:64|128|256|512)[a-z]*\b"
    r"|#\s*include\s*<(?:immintrin|emmintrin|xmmintrin|pmmintrin|tmmintrin|"
    r"smmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin)\.h>")
# The one file allowed to speak raw SIMD (see the raw-simd rule).
RAW_SIMD_HOME = "src/sim/simd.h"
WALLCLOCK_SEED_RE = re.compile(
    r"\bstd::random_device\b|\bsrand\s*\("
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)")
SBS_ASSERT_RE = re.compile(r"\bSBS_ASSERT\s*\(")
WAIVER_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Rules this tool owns. Stale-waiver accounting is per-owner: a waiver
# naming one of these that suppressed nothing is flagged here, while
# waivers for tools/analyze's semantic rules are that tool's business.
LINT_RULES = frozenset({
    "raw-new", "std-mutex", "std-deque", "assert-se", "blocking-call",
    "wallclock-seed", "sim-unordered-map", "raw-simd",
})

# Side effects inside an SBS_ASSERT argument. `==`, `!=`, `<=`, `>=` must
# not count as assignment.
MUTATION_RES = (
    re.compile(r"\+\+|--"),
    re.compile(r"(?<![=!<>+\-*/%&|^])=(?![=])"),
    re.compile(r"\b(push_back|push_front|pop_back|pop_front|emplace|"
               r"emplace_back|erase|insert|clear|store|exchange|fetch_add|"
               r"fetch_sub|compare_exchange_weak|compare_exchange_strong|"
               r"reset|release)\s*\("),
)


def waived(lines, idx, rule, consumed=None):
    """True when line idx (0-based) or the line above carries a waiver.
    Consumed waivers are recorded (as 0-based line, rule) for the
    stale-waiver pass."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = WAIVER_RE.search(lines[j])
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            if consumed is not None:
                consumed.add((j, rule))
            return True
    return False


def stale_waivers(rel, raw_lines, consumed, findings):
    """Flag waivers for rules we own that suppressed nothing."""
    for idx, text in enumerate(raw_lines):
        m = WAIVER_RE.search(text)
        if not m:
            continue
        for rule in (r.strip() for r in m.group(1).split(",")):
            if rule in LINT_RULES and (idx, rule) not in consumed:
                findings.append(
                    (rel, idx + 1, "stale-waiver",
                     f"waiver `lint:allow({rule})` suppresses nothing — "
                     "remove it (or reword the comment if it only "
                     "*mentions* the syntax)"))


def strip_strings_and_comments(line):
    """Remove string/char literals and // comments (keeps the waiver scan
    separate — this feeds the pattern matching only)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote + quote)
        else:
            out.append(c)
        i += 1
    return "".join(out)


def extract_macro_arg(text, start):
    """Return the balanced-paren argument of a macro call starting at the
    opening paren, possibly spanning lines (text is the joined remainder)."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return text[start + 1:]


def lint_file(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()
    code_lines = [strip_strings_and_comments(l) for l in raw_lines]
    consumed = set()  # (0-based line, rule) waivers that earned their keep
    in_sched = rel.startswith("src/sched/")
    in_service = rel.startswith("src/service/")
    in_sim = rel.startswith("src/sim/")
    new_exempt = any(rel.startswith(p) for p in RAW_NEW_EXEMPT)

    for idx, code in enumerate(code_lines):
        lineno = idx + 1

        if not new_exempt:
            m = RAW_NEW_RE.search(code)
            if m and not waived(raw_lines, idx, "raw-new", consumed):
                findings.append(
                    (rel, lineno, "raw-new",
                     f"raw `new {m.group(1)}` outside src/runtime/ bypasses "
                     "the JobArena"))

        if in_sched:
            if STD_MUTEX_RE.search(code) and not waived(raw_lines, idx,
                                                        "std-mutex", consumed):
                findings.append(
                    (rel, lineno, "std-mutex",
                     "std::mutex family in a scheduler hot path — use "
                     "sched::Spinlock or move it off the hot path"))
            if STD_DEQUE_RE.search(code) and not waived(raw_lines, idx,
                                                        "std-deque", consumed):
                findings.append(
                    (rel, lineno, "std-deque",
                     "std::deque in src/sched/ needs an explicit "
                     "`// lint:allow(std-deque)` waiver"))

        if rel != RAW_SIMD_HOME and RAW_SIMD_RE.search(code) and not waived(
                raw_lines, idx, "raw-simd", consumed):
            findings.append(
                (rel, lineno, "raw-simd",
                 "raw x86 intrinsic outside src/sim/simd.h — add the "
                 "operation to the wrapper (with its scalar fallback) "
                 "instead"))

        if in_sim and SIM_UNORDERED_MAP_RE.search(code) and not waived(
                raw_lines, idx, "sim-unordered-map", consumed):
            findings.append(
                (rel, lineno, "sim-unordered-map",
                 "std::unordered_map in src/sim/ — use sim::FlatMap on any "
                 "per-access path; waive only for cold setup-time maps"))

        if in_service and BLOCKING_CALL_RE.search(code) and not waived(
                raw_lines, idx, "blocking-call", consumed):
            findings.append(
                (rel, lineno, "blocking-call",
                 "blocking primitive in src/service/ — the submit path is "
                 "non-blocking by contract; waive with a justification if "
                 "this is an idle/waiter/teardown path"))

        if WALLCLOCK_SEED_RE.search(code) and not waived(
                raw_lines, idx, "wallclock-seed", consumed):
            findings.append(
                (rel, lineno, "wallclock-seed",
                 "wall-clock / random_device seeding breaks the explicit-"
                 "seed determinism contract — plumb an sbs::Rng seed"))

        m = SBS_ASSERT_RE.search(code)
        if m:
            remainder = "\n".join(code_lines[idx:])
            offset = sum(len(l) + 1 for l in code_lines[:0])  # 0; kept clear
            arg = extract_macro_arg(remainder,
                                    m.end() - 1 + offset)
            if any(r.search(arg) for r in MUTATION_RES) and not waived(
                    raw_lines, idx, "assert-se", consumed):
                findings.append(
                    (rel, lineno, "assert-se",
                     "SBS_ASSERT argument has side effects; it compiles "
                     "out under NDEBUG"))

    stale_waivers(rel, raw_lines, consumed, findings)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document")
    args = parser.parse_args()

    findings = []
    scanned = 0
    for scan_dir in SCAN_DIRS:
        top = os.path.join(args.root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, args.root)
                lint_file(path, rel, findings)
                scanned += 1

    if args.json:
        print(json.dumps({
            "tool": "lint",
            "files_scanned": scanned,
            "findings": [
                {"path": rel, "line": lineno, "rule": rule,
                 "message": message}
                for rel, lineno, rule, message in sorted(findings)],
        }, indent=2))
        return 1 if findings else 0
    # `path:line: [rule] message` — the GitHub problem matcher in
    # .github/problem-matcher.json keys on this shape.
    for rel, lineno, rule, message in sorted(findings):
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s) in {scanned} files")
        return 1
    print(f"lint: OK ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
