// trace_check — offline re-verification of exported JSONL traces.
//
//   ./run_any --kernel=quicksort --sched=SB --trace-jsonl=run.trace.jsonl
//   ./trace_check run.trace.jsonl [more.trace.jsonl ...]
//
// Parses each trace (schema 1 or 2), rebuilds the machine from the embedded
// config, and replays the scheduler-level invariants (see
// src/verify/trace_check.h for the exact property list). Exit status 0 iff
// every trace passes.
#include <cstdio>

#include "util/cli.h"
#include "verify/trace_check.h"

int main(int argc, char** argv) {
  bool quiet = false;
  sbs::Cli cli("trace_check",
               "re-verify scheduler invariants from JSONL trace files");
  cli.add_flag("quiet", &quiet, "print only failing traces");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: trace_check [--quiet] <trace.jsonl>...\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& path : cli.positional()) {
    const sbs::verify::TraceCheckResult result =
        sbs::verify::CheckTraceFile(path);
    if (!result.ok()) ++failures;
    if (!result.ok() || !quiet) {
      std::printf("%s: %s\n", path.c_str(), result.report().c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
