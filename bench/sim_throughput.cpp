// Simulator throughput: simulated accesses per host-second on the paper's
// xeon7560_fig4 machine (samplesort, WS), serial and with parallel window
// execution, plus a huge-machine configuration that exercises the sharded
// path at scale.
//
// Writes BENCH_sim_throughput.json. Every simulated run here is
// deterministic: for a given (machine, kernel, n, skew_quantum), the
// makespan and counters are bit-identical for every --host-threads value
// and for adaptive vs fixed-quantum windows (see src/sim/engine.h); the
// bench asserts both before reporting, the latter across all four
// schedulers.
//
//   ./sim_throughput             # full matrix (n=1M, huge64 scaling)
//   ./sim_throughput --smoke     # CI: small n, still asserts equivalences
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernel.h"
#include "machine/config.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "util/assert.h"
#include "util/json.h"

namespace {

using namespace sbs;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  double best_wall_s = 1e300;
  std::uint64_t accesses = 0;
  std::uint64_t makespan = 0;
  double acc_per_sec = 0;
  sim::Counters counters;
};

/// Run `kernel_name` under `sched_name` on `cfg` with the given engine
/// knobs `reps` times; keep the best wall time. The SimResult is identical
/// across reps (the engine guarantees it), so counters come from the last
/// run.
Measurement measure(const machine::MachineConfig& cfg,
                    const std::string& kernel_name, std::size_t n,
                    std::uint64_t quantum, int host_threads, int reps,
                    bool adaptive = true, const std::string& sched_name = "WS") {
  machine::Topology topo(cfg);
  sim::SimParams sp;
  sp.skew_quantum = quantum;
  sp.host_threads = host_threads;
  sp.adaptive_window = adaptive;
  sim::SimEngine eng(topo, sp);

  kernels::KernelParams kp;
  kp.n = n;
  Measurement m;
  for (int rep = 0; rep < reps; ++rep) {
    auto kernel = kernels::MakeKernel(kernel_name, kp);
    kernel->prepare(1);
    sched::SchedulerSpec spec;
    spec.name = sched_name;
    auto sched = sched::MakeScheduler(spec);
    const double t0 = now_s();
    const sim::SimResult r = eng.run(*sched, kernel->make_root());
    const double dt = now_s() - t0;
    SBS_CHECK_MSG(kernel->verify(), "bench kernel verify failed");
    SBS_CHECK_MSG(m.makespan == 0 || m.makespan == r.makespan_cycles,
                  "simulator nondeterministic across repetitions");
    m.makespan = r.makespan_cycles;
    m.accesses = r.counters.accesses;
    m.counters = r.counters;
    m.best_wall_s = std::min(m.best_wall_s, dt);
  }
  m.acc_per_sec = static_cast<double>(m.accesses) / m.best_wall_s;
  return m;
}

/// Adaptive windows only elide merge barriers; everything else — timing,
/// traffic, even the fiber-switch count — must match the fixed-quantum run
/// exactly. (window_merges is the one counter allowed to differ: dropping
/// merges is the optimization.)
void check_adaptive_identical(const Measurement& fixed, const Measurement& ad,
                              const char* what) {
  const sim::Counters& f = fixed.counters;
  const sim::Counters& a = ad.counters;
  SBS_CHECK_MSG(fixed.makespan == ad.makespan && f.accesses == a.accesses &&
                    f.writes == a.writes && f.dram_reads == a.dram_reads &&
                    f.dram_writebacks == a.dram_writebacks &&
                    f.remote_dram_accesses == a.remote_dram_accesses &&
                    f.queue_wait_cycles == a.queue_wait_cycles &&
                    f.fiber_switches == a.fiber_switches &&
                    f.filter_skips == a.filter_skips &&
                    f.windows_executed == a.windows_executed &&
                    f.pump_passes == a.pump_passes &&
                    f.inline_strands == a.inline_strands,
                what);
  SBS_CHECK_MSG(a.window_merges <= f.window_merges,
                "adaptive windows increased merge count");
}

/// `timing_meaningful` is false for multi-host-thread cells on a host with
/// a single CPU: the windows still execute (and the equivalence asserts
/// still bind), but the wall time measures oversubscription, not speedup —
/// consumers should not read accesses_per_sec from such a cell.
void emit(JsonWriter& w, const char* key, const Measurement& m,
          bool timing_meaningful = true) {
  w.key(key).begin_object();
  w.kv("accesses", m.accesses);
  w.kv("best_wall_s", m.best_wall_s);
  w.kv("accesses_per_sec", m.acc_per_sec);
  w.kv("makespan_cycles", m.makespan);
  w.kv("filter_skips", m.counters.filter_skips);
  w.kv("timing_meaningful", timing_meaningful);
  w.key("engine").begin_object();
  w.kv("windows_executed", m.counters.windows_executed);
  w.kv("window_merges", m.counters.window_merges);
  w.kv("pump_passes", m.counters.pump_passes);
  w.kv("fiber_switches", m.counters.fiber_switches);
  w.kv("inline_strands", m.counters.inline_strands);
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool xeon_only = false;
  std::size_t n_override = 0;
  int reps_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--n=", 4) == 0)
      n_override = static_cast<std::size_t>(std::atoll(argv[i] + 4));
    if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps_override = std::atoi(argv[i] + 7);
    if (std::strcmp(argv[i], "--xeon-only") == 0) xeon_only = true;
  }

  const std::size_t n = n_override != 0 ? n_override : (smoke ? 100000 : 1000000);
  const int reps = reps_override != 0 ? reps_override : (smoke ? 1 : 3);
  const std::uint64_t quantum = 10000;

  const machine::MachineConfig xeon =
      machine::LoadConfigFile("configs/xeon7560_fig4.cfg");

  // Serial and parallel on the paper's machine. host_threads is clamped to
  // the socket count (4 here).
  const Measurement serial =
      measure(xeon, "samplesort", n, quantum, /*host_threads=*/1, reps);
  const Measurement par4 =
      measure(xeon, "samplesort", n, quantum, /*host_threads=*/4, reps);
  SBS_CHECK_MSG(serial.makespan == par4.makespan &&
                    serial.accesses == par4.accesses,
                "parallel window execution diverged from serial");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const bool multi_thread_timing = host_cpus > 1;
  std::printf("xeon7560 samplesort n=%zu: serial %.1fM acc/s, ht=4 %.1fM "
              "acc/s (makespan %llu, identical)\n",
              n, serial.acc_per_sec / 1e6, par4.acc_per_sec / 1e6,
              static_cast<unsigned long long>(serial.makespan));
  if (!multi_thread_timing) {
    std::printf("  note: host has 1 CPU — multi-host-thread wall times "
                "measure oversubscription, not speedup (cells are marked "
                "timing_meaningful=false)\n");
  }

  // Fixed-quantum control cell: adaptive window coalescing must be a pure
  // host-side optimization.
  const Measurement fixed_q = measure(xeon, "samplesort", n, quantum,
                                      /*host_threads=*/1, reps,
                                      /*adaptive=*/false);
  check_adaptive_identical(fixed_q, serial,
                           "adaptive windows diverged from fixed quantum");
  std::printf("  fixed-quantum control: %.1fM acc/s, %llu merges vs %llu "
              "adaptive\n",
              fixed_q.acc_per_sec / 1e6,
              static_cast<unsigned long long>(fixed_q.counters.window_merges),
              static_cast<unsigned long long>(serial.counters.window_merges));

  // Fixed-vs-adaptive equivalence across every scheduler family (smaller n:
  // these cells are correctness gates, not throughput measurements).
  const std::size_t eq_n = std::min<std::size_t>(n, 100000);
  for (const char* sched : {"WS", "PWS", "SB", "SB-D"}) {
    const Measurement f = measure(xeon, "samplesort", eq_n, quantum, 1, 1,
                                  /*adaptive=*/false, sched);
    const Measurement a = measure(xeon, "samplesort", eq_n, quantum, 1, 1,
                                  /*adaptive=*/true, sched);
    check_adaptive_identical(f, a, "adaptive windows diverged from fixed");
    std::printf("  adaptive==fixed under %s (makespan %llu)\n", sched,
                static_cast<unsigned long long>(f.makespan));
  }

  if (xeon_only) return 0;

  // The huge sharded configuration (64 sockets, 4 cache levels, 512
  // threads): where parallel window execution pays.
  const machine::MachineConfig huge =
      machine::LoadConfigFile("configs/huge64_4level.cfg");
  const std::size_t huge_n = smoke ? 100000 : 1000000;
  const Measurement huge1 =
      measure(huge, "samplesort", huge_n, quantum, /*host_threads=*/1,
              reps);
  const Measurement huge8 =
      measure(huge, "samplesort", huge_n, quantum, /*host_threads=*/8,
              reps);
  SBS_CHECK_MSG(huge1.makespan == huge8.makespan &&
                    huge1.accesses == huge8.accesses,
                "parallel window execution diverged from serial (huge64)");
  std::printf("huge64 samplesort n=%zu: serial %.1fM acc/s, ht=8 %.1fM "
              "acc/s (makespan %llu, identical)\n",
              huge_n, huge1.acc_per_sec / 1e6, huge8.acc_per_sec / 1e6,
              static_cast<unsigned long long>(huge1.makespan));

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "sim_throughput");
  w.kv("schema_version", 3);
  w.kv("smoke", smoke);
  w.kv("kernel", "samplesort");
  w.kv("sched", "WS");
  w.kv("n", n);
  w.kv("skew_quantum", quantum);
  w.kv("adaptive_window", true);
  w.kv("inline_strands", true);
  w.kv("host_cpus", static_cast<std::uint64_t>(host_cpus));
  // Cache-representation defaults in effect (SimParams, engine.h).
  {
    const sim::SimParams defaults;
    w.key("cache_rep").begin_object();
    w.kv("simd_probes", defaults.simd_probes);
    w.kv("presence_filter", defaults.presence_filter);
    w.kv("packed_lru", defaults.packed_lru);
    w.end_object();
  }
  // Measured at the seed of this change series (commit 00f9302, same
  // machine/kernel/n/quantum): 9.2M simulated accesses per host-second.
  w.kv("baseline_accesses_per_sec_at_00f9302", 9200000);
  w.key("xeon7560_fig4").begin_object();
  emit(w, "host_threads_1", serial);
  emit(w, "host_threads_4", par4, multi_thread_timing);
  emit(w, "host_threads_1_fixed_quantum", fixed_q);
  w.kv("parallel_equals_serial", true);
  w.kv("adaptive_equals_fixed", true);
  w.kv("adaptive_equals_fixed_schedulers", "WS,PWS,SB,SB-D");
  w.end_object();
  w.key("huge64_4level").begin_object();
  w.kv("n", huge_n);
  emit(w, "host_threads_1", huge1);
  emit(w, "host_threads_8", huge8, multi_thread_timing);
  w.kv("parallel_equals_serial", true);
  w.end_object();
  w.end_object();

  const char* path = "BENCH_sim_throughput.json";
  if (!smoke) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(f, "%s\n", w.str().c_str());
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }
  return 0;
}
