// Raw scheduler-callback overhead on real threads (google-benchmark).
//
// Complements the simulated figures: measures the wall-clock cost per
// strand of each scheduler's add/get/done path by running a synthetic
// fork-join tree on the real thread-pool engine. This is the engineering
// quantity behind the paper's §3.3 overhead breakdown — work stealing's
// two-lock deque should be several times cheaper per strand than the
// space-bounded tree walk.
//
// After the google-benchmark suite, a set of JSON cells is written to
// BENCH_micro_overheads.json:
//   - recorder_overhead: cost of the tracing subsystem (traced vs untraced)
//   - deque_add_get / deque_steal: the seed's locked std::deque scheduler
//     queue (kept here as the baseline) vs the Chase-Lev deque that now
//     backs WS/PWS, same binary so the delta is directly comparable
//   - fork_alloc: heap operator new vs the per-worker JobArena for
//     Job-sized allocations
//   - cache_find_way / cache_presence_filter / cache_lru_touch: the
//     simulated-cache probe representations (sim/cache.h) — scalar vs SIMD
//     tag scans, the guaranteed-miss cost with and without the per-set
//     presence filter, and rotate vs packed recency maintenance under the
//     MRU-repeat (rotate's best case) and LRU-cycle (rotate's worst case)
//     probe patterns
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "machine/topology.h"
#include "runtime/job_arena.h"
#include "runtime/jobs.h"
#include "runtime/thread_pool.h"
#include "sched/chase_lev.h"
#include "sched/ops.h"
#include "sched/registry.h"
#include "sim/cache.h"
#include "sim/fiber.h"
#include "util/json.h"

namespace {

using namespace sbs;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// A binary fork tree of the given depth with trivial leaf work. The tree
/// has 2^depth leaves and ~2^(depth+1) strands in total.
Job* fork_tree(int depth) {
  const std::uint64_t bytes = 64ull << depth;  // nominal footprint
  if (depth == 0) {
    return make_job([](Strand&) { benchmark::DoNotOptimize(0); }, 64);
  }
  return make_job(
      [depth](Strand& strand) {
        strand.fork2(fork_tree(depth - 1), fork_tree(depth - 1), make_nop());
      },
      bytes, 64);
}

void BM_SchedulerStrandCost(benchmark::State& state,
                            const std::string& sched_name) {
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo);
  constexpr int kDepth = 10;  // 1K leaves, ~4K scheduler interactions
  std::uint64_t strands = 0;
  for (auto _ : state) {
    auto sched = sched::MakeScheduler(sched_name);
    const runtime::RunStats stats = pool.run(*sched, fork_tree(kDepth));
    strands += stats.total_strands();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(strands));
  state.counters["strands_per_run"] =
      static_cast<double>(strands) / static_cast<double>(state.iterations());
}

void BM_ForkJoinThroughput(benchmark::State& state) {
  // Single-thread baseline: pure framework cost (job alloc, join counters,
  // settle) without scheduler contention.
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo, 1);
  for (auto _ : state) {
    auto sched = sched::MakeScheduler("WS");
    pool.run(*sched, fork_tree(10));
  }
}

/// Best-of-reps wall time of a depth-11 fork tree under WS on `pool`.
double best_wall_s(runtime::ThreadPool& pool, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto sched = sched::MakeScheduler("WS");
    const runtime::RunStats stats = pool.run(*sched, fork_tree(11));
    best = std::min(best, stats.wall_s);
  }
  return best;
}

/// The scheduler queue WS/PWS shipped with before the Chase-Lev switch:
/// one spinlock in front of a std::deque. Retained verbatim as the bench
/// baseline so the two hot paths are always measured in the same binary.
struct LockedDeque {
  sched::Spinlock lock;
  std::deque<Job*> jobs;

  void add(Job* job) {
    sched::SpinGuard guard(lock);
    sched::count_op();
    jobs.push_back(job);
  }
  Job* get() {  // owner: LIFO
    sched::SpinGuard guard(lock);
    sched::count_op();
    if (jobs.empty()) return nullptr;
    Job* job = jobs.back();
    jobs.pop_back();
    return job;
  }
  Job* steal() {  // thief: FIFO
    sched::SpinGuard guard(lock);
    sched::count_op();
    if (jobs.empty()) return nullptr;
    Job* job = jobs.front();
    jobs.pop_front();
    return job;
  }
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fake job pointers: the queues never dereference their payload.
inline Job* fake_job(std::size_t i) {
  return reinterpret_cast<Job*>((i + 1) << 4);
}

constexpr std::size_t kQueueBatch = 128;
constexpr std::size_t kQueuePairs = std::size_t{1} << 20;
constexpr int kQueueReps = 5;

/// Owner-side add+get throughput (ops/sec; one push or one pop = one op)
/// of the locked baseline, single-threaded — the uncontended fast path the
/// scheduler pays on every strand.
double locked_add_get_ops_per_sec() {
  LockedDeque dq;
  double best = 1e300;
  for (int rep = 0; rep < kQueueReps; ++rep) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < kQueuePairs; i += kQueueBatch) {
      for (std::size_t k = 0; k < kQueueBatch; ++k) dq.add(fake_job(i + k));
      for (std::size_t k = 0; k < kQueueBatch; ++k)
        benchmark::DoNotOptimize(dq.get());
    }
    best = std::min(best, now_s() - t0);
  }
  return 2.0 * static_cast<double>(kQueuePairs) / best;
}

double chase_lev_add_get_ops_per_sec() {
  sched::ChaseLevDeque<Job*> dq;
  double best = 1e300;
  for (int rep = 0; rep < kQueueReps; ++rep) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < kQueuePairs; i += kQueueBatch) {
      for (std::size_t k = 0; k < kQueueBatch; ++k)
        dq.push_bottom(fake_job(i + k));
      Job* out = nullptr;
      for (std::size_t k = 0; k < kQueueBatch; ++k) {
        benchmark::DoNotOptimize(dq.pop_bottom(&out));
      }
    }
    best = std::min(best, now_s() - t0);
  }
  return 2.0 * static_cast<double>(kQueuePairs) / best;
}

/// Thief-side throughput: victim pre-fills, a single thief drains FIFO.
/// (Uncontended: measures the per-steal instruction cost, not cache
/// ping-pong, which test_chase_lev stresses separately.)
double locked_steal_ops_per_sec() {
  LockedDeque dq;
  double best = 1e300;
  for (int rep = 0; rep < kQueueReps; ++rep) {
    for (std::size_t i = 0; i < kQueuePairs; ++i) dq.add(fake_job(i));
    const double t0 = now_s();
    for (std::size_t i = 0; i < kQueuePairs; ++i)
      benchmark::DoNotOptimize(dq.steal());
    best = std::min(best, now_s() - t0);
  }
  return static_cast<double>(kQueuePairs) / best;
}

double chase_lev_steal_ops_per_sec() {
  sched::ChaseLevDeque<Job*> dq;
  double best = 1e300;
  for (int rep = 0; rep < kQueueReps; ++rep) {
    for (std::size_t i = 0; i < kQueuePairs; ++i)
      dq.push_bottom(fake_job(i));
    const double t0 = now_s();
    Job* out = nullptr;
    for (std::size_t i = 0; i < kQueuePairs; ++i)
      benchmark::DoNotOptimize(dq.steal_top(&out));
    best = std::min(best, now_s() - t0);
  }
  return static_cast<double>(kQueuePairs) / best;
}

/// The batched steal path the WS scheduler actually takes
/// (ChaseLevDeque::steal_some, up to half the deque, capped at 8): one
/// fence+CAS amortized over the batch. Items per second, to compare
/// against the single-item cells above.
constexpr std::size_t kStealBatch = 8;

double chase_lev_steal_batch_ops_per_sec() {
  sched::ChaseLevDeque<Job*> dq;
  double best = 1e300;
  for (int rep = 0; rep < kQueueReps; ++rep) {
    for (std::size_t i = 0; i < kQueuePairs; ++i)
      dq.push_bottom(fake_job(i));
    const double t0 = now_s();
    Job* out[kStealBatch];
    std::size_t drained = 0;
    while (drained < kQueuePairs) {
      const std::size_t got = dq.steal_some(out, kStealBatch);
      benchmark::DoNotOptimize(out[0]);
      if (got == 0) break;
      drained += got;
    }
    best = std::min(best, now_s() - t0);
  }
  return static_cast<double>(kQueuePairs) / best;
}

/// Contended steal: the owner keeps pushing while `kThieves` thieves drain
/// concurrently — the cache-line ping-pong regime the uncontended cells
/// deliberately avoid. Returns items consumed per second across all
/// thieves; the owner stops once it has pushed its quota, thieves stop
/// when their quota is drained.
constexpr int kThieves = 3;
constexpr std::size_t kContendedItems = std::size_t{1} << 20;

template <class PushFn, class StealFn>
double contended_steal_items_per_sec(PushFn push, StealFn steal) {
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  const std::uint64_t quota = kContendedItems / 2;
  for (int th = 0; th < kThieves; ++th) {
    thieves.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      while (consumed.load(std::memory_order_relaxed) < quota) {
        const std::uint64_t got = steal();
        if (got != 0) consumed.fetch_add(got, std::memory_order_relaxed);
      }
    });
  }
  const double t0 = now_s();
  go.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < kContendedItems; ++i) push(fake_job(i));
  while (consumed.load(std::memory_order_relaxed) < quota) {
  }
  const double dt = now_s() - t0;
  for (auto& t : thieves) t.join();
  return static_cast<double>(consumed.load(std::memory_order_relaxed)) / dt;
}

double locked_contended_steal_items_per_sec() {
  LockedDeque dq;
  return contended_steal_items_per_sec(
      [&dq](Job* j) { dq.add(j); },
      [&dq]() -> std::uint64_t { return dq.steal() != nullptr ? 1 : 0; });
}

double chase_lev_contended_steal_items_per_sec() {
  sched::ChaseLevDeque<Job*> dq;
  return contended_steal_items_per_sec(
      [&dq](Job* j) { dq.push_bottom(j); }, [&dq]() -> std::uint64_t {
        Job* out[kStealBatch];
        return dq.steal_some(out, kStealBatch);
      });
}

constexpr std::size_t kFiberSwitches = std::size_t{1} << 22;
constexpr int kFiberReps = 5;

/// Raw fiber-switch round trips per second: one resume() into a fiber that
/// immediately yields back, repeated. This is the unit cost the simulator
/// pays to suspend/continue a strand at a window boundary — the quantity
/// the engine's strand batching and inline-strand execution exist to
/// avoid. One op = resume + yield (two context switches).
double fiber_switch_ops_per_sec() {
  double best = 1e300;
  for (int rep = 0; rep < kFiberReps; ++rep) {
    sim::Fiber fiber(
        [] {
          for (;;) sim::Fiber::yield();
        },
        1u << 16);
    const double t0 = now_s();
    for (std::size_t i = 0; i < kFiberSwitches; ++i) fiber.resume();
    best = std::min(best, now_s() - t0);
    benchmark::DoNotOptimize(fiber.resumes());
    fiber.abandon();
  }
  return static_cast<double>(kFiberSwitches) / best;
}

constexpr std::size_t kAllocBatch = 64;
constexpr std::size_t kAllocTotal = std::size_t{1} << 20;
constexpr int kAllocReps = 5;

/// Fork-allocation throughput (allocate + free of a LambdaJob = one op),
/// in batches of 64 live jobs — the lifetime shape of a fork's children.
/// With no arena scope installed, ArenaBacked falls through to the heap;
/// that fallback is exactly the "heap" cell.
double job_alloc_ops_per_sec(runtime::JobArena* arena) {
  runtime::JobArena::Scope scope(arena);
  Job* live[kAllocBatch];
  double best = 1e300;
  for (int rep = 0; rep < kAllocReps; ++rep) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < kAllocTotal; i += kAllocBatch) {
      for (std::size_t k = 0; k < kAllocBatch; ++k) {
        live[k] = make_job([](Strand&) {}, 64);
      }
      benchmark::DoNotOptimize(live[0]);
      for (std::size_t k = 0; k < kAllocBatch; ++k) delete live[k];
    }
    best = std::min(best, now_s() - t0);
  }
  return static_cast<double>(kAllocTotal) / best;
}

// --- simulated-cache probe cells (sim/cache.h representations) ---

constexpr int kProbeReps = 3;
constexpr std::size_t kProbeTarget = std::size_t{1} << 21;

/// ns per contains() over a mixed hit/miss probe stream on a 256-set cache
/// filled with 4x its capacity (so roughly 1 in 4 probes hits). Packed LRU
/// keeps slots fixed, making the scan depth independent of fill history;
/// the filter is off so every probe really scans the tags.
double find_way_ns(std::uint32_t assoc, bool simd) {
  const std::uint64_t sets = 256;
  sim::CacheOptions o;
  o.simd_probes = simd;
  o.presence_filter = false;
  o.packed_lru = true;
  sim::Cache c(sets * assoc * 64, 64, assoc, o);
  const std::uint64_t stream = sets * assoc * 4;
  for (std::uint64_t i = 0; i < stream; ++i) {
    sim::Cache::Evicted ev;
    c.fill_if_absent(i, false, &ev);
  }
  const std::size_t passes =
      std::max<std::size_t>(1, kProbeTarget / stream);
  double best = 1e300;
  for (int rep = 0; rep < kProbeReps; ++rep) {
    const double t0 = now_s();
    std::uint64_t found = 0;
    for (std::size_t p = 0; p < passes; ++p) {
      for (std::uint64_t i = 0; i < stream; ++i) {
        found += c.contains(i) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(found);
    best = std::min(best, now_s() - t0);
  }
  return best * 1e9 /
         (static_cast<double>(stream) * static_cast<double>(passes));
}

/// ns per guaranteed-miss probe_and_touch() — the outer-level coherence
/// sweep case the presence filter exists for. With the filter forced on
/// (filter_min_tag_bytes = 0) most probes end at a zero filter bucket; off,
/// every probe scans the full set.
double miss_probe_ns(std::uint32_t assoc, bool filter,
                     std::uint64_t* skips_out) {
  const std::uint64_t sets = 256;
  sim::CacheOptions o;
  o.presence_filter = filter;
  o.filter_min_tag_bytes = 0;
  o.packed_lru = true;
  sim::Cache c(sets * assoc * 64, 64, assoc, o);
  const std::uint64_t lines = sets * assoc;
  for (std::uint64_t i = 0; i < lines * 4; ++i) {
    sim::Cache::Evicted ev;
    c.fill_if_absent(i, false, &ev);
  }
  const std::uint64_t absent_base = lines * 16;  // never filled
  double best = 1e300;
  for (int rep = 0; rep < kProbeReps; ++rep) {
    const double t0 = now_s();
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < kProbeTarget; ++i) {
      hits += c.probe_and_touch(absent_base + i, false) ? 1 : 0;
    }
    SBS_CHECK_MSG(hits == 0, "absent probe stream hit the cache");
    best = std::min(best, now_s() - t0);
  }
  if (skips_out != nullptr) *skips_out = c.filter_skips();
  return best * 1e9 / static_cast<double>(kProbeTarget);
}

/// ns per probe_and_touch() on a single fully-associative set, under the
/// two extreme hit patterns: `cycle` round-robins the set's lines (every
/// probe hits the current LRU way — rotate's O(assoc) worst case), else
/// the same line repeats (the MRU fast path in every representation).
double touch_ns(std::uint32_t assoc, bool packed, bool cycle) {
  sim::CacheOptions o;
  o.presence_filter = false;
  o.packed_lru = packed;
  sim::Cache c(assoc * 64, 64, assoc, o);
  for (std::uint64_t l = 1; l <= assoc; ++l) c.fill(l, false);
  double best = 1e300;
  for (int rep = 0; rep < kProbeReps; ++rep) {
    const double t0 = now_s();
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < kProbeTarget; ++i) {
      const std::uint64_t line = cycle ? 1 + i % assoc : 1;
      hits += c.probe_and_touch(line, false) ? 1 : 0;
    }
    SBS_CHECK_MSG(hits == kProbeTarget, "resident probe stream missed");
    best = std::min(best, now_s() - t0);
  }
  return best * 1e9 / static_cast<double>(kProbeTarget);
}

/// Writes BENCH_micro_overheads.json: the recorder's traced-vs-untraced
/// cost (acceptance bar: <1% slowdown with tracing disabled), the locked
/// vs Chase-Lev queue cells, and the heap vs arena allocation cells.
void write_bench_cells() {
  const machine::Topology topo(machine::Preset("mini"));
  constexpr int kReps = 5;

  runtime::ThreadPool plain(topo);
  const double untraced_s = best_wall_s(plain, kReps);

  runtime::ThreadPool traced(topo);
  traced.enable_tracing(1u << 18);
  const double traced_s = best_wall_s(traced, kReps);
  const std::uint64_t events = traced.recorder()->total_recorded();
  const std::uint64_t dropped = traced.recorder()->total_dropped();

  const double slowdown_pct = 100.0 * (traced_s / untraced_s - 1.0);
  const double events_per_sec = static_cast<double>(events) / traced_s;

  // Queue and allocator hot-path cells (same binary, same flags, so the
  // locked-baseline vs lock-free delta is an apples-to-apples figure).
  const double locked_ag = locked_add_get_ops_per_sec();
  const double cl_ag = chase_lev_add_get_ops_per_sec();
  const double locked_st = locked_steal_ops_per_sec();
  const double cl_st = chase_lev_steal_ops_per_sec();
  const double cl_st_batch = chase_lev_steal_batch_ops_per_sec();
  const double locked_cont = locked_contended_steal_items_per_sec();
  const double cl_cont = chase_lev_contended_steal_items_per_sec();
  const double heap_alloc = job_alloc_ops_per_sec(nullptr);
  runtime::JobArena arena;
  const double arena_alloc = job_alloc_ops_per_sec(&arena);
  const double fiber_ops = fiber_switch_ops_per_sec();

  // Simulated-cache probe cells.
  const std::uint32_t kFindWayAssocs[] = {8, 24, 32};
  double scalar_ns[3], simd_ns[3];
  for (int i = 0; i < 3; ++i) {
    scalar_ns[i] = find_way_ns(kFindWayAssocs[i], /*simd=*/false);
    simd_ns[i] = find_way_ns(kFindWayAssocs[i], /*simd=*/true);
  }
  std::uint64_t filter_skips = 0;
  const double miss_scan_ns = miss_probe_ns(16, /*filter=*/false, nullptr);
  const double miss_filter_ns = miss_probe_ns(16, /*filter=*/true,
                                              &filter_skips);
  const std::uint32_t kTouchAssocs[] = {8, 24};  // order-word / stamp mode
  double rot_mru_ns[2], rot_cyc_ns[2], pak_mru_ns[2], pak_cyc_ns[2];
  for (int i = 0; i < 2; ++i) {
    rot_mru_ns[i] = touch_ns(kTouchAssocs[i], /*packed=*/false, false);
    rot_cyc_ns[i] = touch_ns(kTouchAssocs[i], /*packed=*/false, true);
    pak_mru_ns[i] = touch_ns(kTouchAssocs[i], /*packed=*/true, false);
    pak_cyc_ns[i] = touch_ns(kTouchAssocs[i], /*packed=*/true, true);
  }

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "micro_overheads");
  w.kv("schema_version", 4);
  w.key("recorder_overhead").begin_object();
  w.kv("machine", "mini");
  w.kv("workload", "fork_tree(11) under WS, best of 5");
  w.kv("untraced_s", untraced_s);
  w.kv("traced_s", traced_s);
  w.kv("slowdown_pct", slowdown_pct);
  w.kv("events", events);
  w.kv("dropped_events", dropped);
  w.kv("events_per_sec", events_per_sec);
  w.end_object();
  w.key("deque_add_get").begin_object();
  w.kv("workload", "owner push+pop, batches of 128, best of 5");
  w.kv("locked_deque_ops_per_sec", locked_ag);
  w.kv("chase_lev_ops_per_sec", cl_ag);
  w.kv("speedup", cl_ag / locked_ag);
  w.end_object();
  w.key("deque_steal").begin_object();
  w.kv("workload", "single thief drains prefilled deque, best of 5");
  w.kv("locked_deque_ops_per_sec", locked_st);
  w.kv("chase_lev_single_ops_per_sec", cl_st);
  w.kv("chase_lev_batch8_ops_per_sec", cl_st_batch);
  // Headline speedup is the batched path — the one WS::get() actually
  // takes on a steal; the single-item CAS is kept for reference (its
  // fence+CAS per item loses to an uncontended spinlock by design).
  w.kv("speedup", cl_st_batch / locked_st);
  w.kv("single_speedup", cl_st / locked_st);
  w.end_object();
  w.key("deque_steal_contended").begin_object();
  w.kv("workload", "owner pushes 1M while 3 thieves drain, items/s");
  w.kv("locked_deque_items_per_sec", locked_cont);
  w.kv("chase_lev_items_per_sec", cl_cont);
  w.kv("speedup", cl_cont / locked_cont);
  w.end_object();
  w.key("fork_alloc").begin_object();
  w.kv("workload", "LambdaJob new+delete, 64 live, best of 5");
  w.kv("heap_ops_per_sec", heap_alloc);
  w.kv("arena_ops_per_sec", arena_alloc);
  w.kv("speedup", arena_alloc / heap_alloc);
  w.end_object();
  w.key("fiber_switch").begin_object();
  w.kv("workload", "resume+yield round trip, 4M switches, best of 5");
  w.kv("impl", SBS_ASM_FIBERS ? "asm" : "ucontext");
  w.kv("round_trips_per_sec", fiber_ops);
  w.kv("ns_per_round_trip", 1e9 / fiber_ops);
  w.end_object();
  w.key("cache_find_way").begin_object();
  w.kv("workload", "contains() mixed hit/miss, 256 sets, best of 3");
  for (int i = 0; i < 3; ++i) {
    // Report the impl a cache of this associativity actually selects
    // (narrow sets demote AVX2 to inline SSE2 — cache.cpp).
    const sim::Cache probe_cache(256 * kFindWayAssocs[i] * 64, 64,
                                 kFindWayAssocs[i]);
    char cell[32];
    std::snprintf(cell, sizeof cell, "assoc_%u", kFindWayAssocs[i]);
    w.key(cell).begin_object();
    w.kv("simd_impl", sim::simd::probe_impl_name(probe_cache.probe_impl()));
    w.kv("scalar_ns_per_probe", scalar_ns[i]);
    w.kv("simd_ns_per_probe", simd_ns[i]);
    w.kv("speedup", scalar_ns[i] / simd_ns[i]);
    w.end_object();
  }
  w.end_object();
  w.key("cache_presence_filter").begin_object();
  w.kv("workload", "guaranteed-miss probe_and_touch, assoc 16, best of 3");
  w.kv("scan_ns_per_probe", miss_scan_ns);
  w.kv("filtered_ns_per_probe", miss_filter_ns);
  w.kv("filter_skips", filter_skips);
  w.kv("speedup", miss_scan_ns / miss_filter_ns);
  w.end_object();
  w.key("cache_lru_touch").begin_object();
  w.kv("workload",
       "probe_and_touch on one fully-assoc set, MRU-repeat vs LRU-cycle");
  for (int i = 0; i < 2; ++i) {
    char cell[32];
    std::snprintf(cell, sizeof cell, "assoc_%u", kTouchAssocs[i]);
    w.key(cell).begin_object();
    w.kv("rotate_mru_ns", rot_mru_ns[i]);
    w.kv("rotate_lru_cycle_ns", rot_cyc_ns[i]);
    w.kv("packed_mru_ns", pak_mru_ns[i]);
    w.kv("packed_lru_cycle_ns", pak_cyc_ns[i]);
    w.kv("lru_cycle_speedup", rot_cyc_ns[i] / pak_cyc_ns[i]);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  const char* path = "BENCH_micro_overheads.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
  std::printf(
      "recorder overhead: untraced %.4fs, traced %.4fs (%+.2f%%), "
      "%llu events (%.1fM events/s) -> %s\n",
      untraced_s, traced_s, slowdown_pct,
      static_cast<unsigned long long>(events), events_per_sec / 1e6, path);
  std::printf("deque add+get: locked %.1fM ops/s, chase-lev %.1fM ops/s (%.2fx)\n",
              locked_ag / 1e6, cl_ag / 1e6, cl_ag / locked_ag);
  std::printf(
      "deque steal:   locked %.1fM ops/s, chase-lev single %.1fM, "
      "batch8 %.1fM ops/s (%.2fx)\n",
      locked_st / 1e6, cl_st / 1e6, cl_st_batch / 1e6,
      cl_st_batch / locked_st);
  std::printf(
      "contended steal: locked %.1fM items/s, chase-lev %.1fM items/s "
      "(%.2fx)\n",
      locked_cont / 1e6, cl_cont / 1e6, cl_cont / locked_cont);
  std::printf("fork alloc:    heap %.1fM ops/s, arena %.1fM ops/s (%.2fx)\n",
              heap_alloc / 1e6, arena_alloc / 1e6, arena_alloc / heap_alloc);
  std::printf("fiber switch:  %.1fM round trips/s (%.1f ns each, %s)\n",
              fiber_ops / 1e6, 1e9 / fiber_ops,
              SBS_ASM_FIBERS ? "asm" : "ucontext");
  for (int i = 0; i < 3; ++i) {
    std::printf(
        "cache find_way assoc %-2u: scalar %.1f ns, simd %.1f ns (%.2fx)\n",
        kFindWayAssocs[i], scalar_ns[i], simd_ns[i],
        scalar_ns[i] / simd_ns[i]);
  }
  std::printf(
      "cache miss probe assoc 16: scan %.1f ns, filtered %.1f ns (%.2fx)\n",
      miss_scan_ns, miss_filter_ns, miss_scan_ns / miss_filter_ns);
  for (int i = 0; i < 2; ++i) {
    std::printf(
        "cache touch assoc %-2u: rotate mru/cycle %.1f/%.1f ns, packed "
        "%.1f/%.1f ns\n",
        kTouchAssocs[i], rot_mru_ns[i], rot_cyc_ns[i], pak_mru_ns[i],
        pak_cyc_ns[i]);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SchedulerStrandCost, WS, std::string("WS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, PWS, std::string("PWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, CilkWS, std::string("CilkWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB, std::string("SB"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB_D, std::string("SB-D"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForkJoinThroughput)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_cells();
  return 0;
}
