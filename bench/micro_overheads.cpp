// Raw scheduler-callback overhead on real threads (google-benchmark).
//
// Complements the simulated figures: measures the wall-clock cost per
// strand of each scheduler's add/get/done path by running a synthetic
// fork-join tree on the real thread-pool engine. This is the engineering
// quantity behind the paper's §3.3 overhead breakdown — work stealing's
// two-lock deque should be several times cheaper per strand than the
// space-bounded tree walk.
//
// After the google-benchmark suite, a recorder-overhead cell measures the
// cost of the tracing subsystem itself (traced vs untraced fork-join runs)
// and writes it to BENCH_micro_overheads.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "util/json.h"

namespace {

using namespace sbs;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// A binary fork tree of the given depth with trivial leaf work. The tree
/// has 2^depth leaves and ~2^(depth+1) strands in total.
Job* fork_tree(int depth) {
  const std::uint64_t bytes = 64ull << depth;  // nominal footprint
  if (depth == 0) {
    return make_job([](Strand&) { benchmark::DoNotOptimize(0); }, 64);
  }
  return make_job(
      [depth](Strand& strand) {
        strand.fork2(fork_tree(depth - 1), fork_tree(depth - 1), make_nop());
      },
      bytes, 64);
}

void BM_SchedulerStrandCost(benchmark::State& state,
                            const std::string& sched_name) {
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo);
  constexpr int kDepth = 10;  // 1K leaves, ~4K scheduler interactions
  std::uint64_t strands = 0;
  for (auto _ : state) {
    auto sched = sched::MakeScheduler(sched_name);
    const runtime::RunStats stats = pool.run(*sched, fork_tree(kDepth));
    strands += stats.total_strands();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(strands));
  state.counters["strands_per_run"] =
      static_cast<double>(strands) / static_cast<double>(state.iterations());
}

void BM_ForkJoinThroughput(benchmark::State& state) {
  // Single-thread baseline: pure framework cost (job alloc, join counters,
  // settle) without scheduler contention.
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo, 1);
  for (auto _ : state) {
    auto sched = sched::MakeScheduler("WS");
    pool.run(*sched, fork_tree(10));
  }
}

/// Best-of-reps wall time of a depth-11 fork tree under WS on `pool`.
double best_wall_s(runtime::ThreadPool& pool, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto sched = sched::MakeScheduler("WS");
    const runtime::RunStats stats = pool.run(*sched, fork_tree(11));
    best = std::min(best, stats.wall_s);
  }
  return best;
}

/// Traced-vs-untraced cost of the recorder hot path, written to
/// BENCH_micro_overheads.json. The acceptance bar is <1% slowdown with
/// tracing disabled; the traced figure quantifies the enabled cost too.
void recorder_overhead_cell() {
  const machine::Topology topo(machine::Preset("mini"));
  constexpr int kReps = 5;

  runtime::ThreadPool plain(topo);
  const double untraced_s = best_wall_s(plain, kReps);

  runtime::ThreadPool traced(topo);
  traced.enable_tracing(1u << 18);
  const double traced_s = best_wall_s(traced, kReps);
  const std::uint64_t events = traced.recorder()->total_recorded();
  const std::uint64_t dropped = traced.recorder()->total_dropped();

  const double slowdown_pct = 100.0 * (traced_s / untraced_s - 1.0);
  const double events_per_sec = static_cast<double>(events) / traced_s;

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "micro_overheads");
  w.kv("schema_version", 1);
  w.key("recorder_overhead").begin_object();
  w.kv("machine", "mini");
  w.kv("workload", "fork_tree(11) under WS, best of 5");
  w.kv("untraced_s", untraced_s);
  w.kv("traced_s", traced_s);
  w.kv("slowdown_pct", slowdown_pct);
  w.kv("events", events);
  w.kv("dropped_events", dropped);
  w.kv("events_per_sec", events_per_sec);
  w.end_object();
  w.end_object();

  const char* path = "BENCH_micro_overheads.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
  std::printf(
      "recorder overhead: untraced %.4fs, traced %.4fs (%+.2f%%), "
      "%llu events (%.1fM events/s) -> %s\n",
      untraced_s, traced_s, slowdown_pct,
      static_cast<unsigned long long>(events), events_per_sec / 1e6, path);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SchedulerStrandCost, WS, std::string("WS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, PWS, std::string("PWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, CilkWS, std::string("CilkWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB, std::string("SB"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB_D, std::string("SB-D"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForkJoinThroughput)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  recorder_overhead_cell();
  return 0;
}
