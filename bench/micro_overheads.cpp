// Raw scheduler-callback overhead on real threads (google-benchmark).
//
// Complements the simulated figures: measures the wall-clock cost per
// strand of each scheduler's add/get/done path by running a synthetic
// fork-join tree on the real thread-pool engine. This is the engineering
// quantity behind the paper's §3.3 overhead breakdown — work stealing's
// two-lock deque should be several times cheaper per strand than the
// space-bounded tree walk.
#include <benchmark/benchmark.h>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"

namespace {

using namespace sbs;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// A binary fork tree of the given depth with trivial leaf work. The tree
/// has 2^depth leaves and ~2^(depth+1) strands in total.
Job* fork_tree(int depth) {
  const std::uint64_t bytes = 64ull << depth;  // nominal footprint
  if (depth == 0) {
    return make_job([](Strand&) { benchmark::DoNotOptimize(0); }, 64);
  }
  return make_job(
      [depth](Strand& strand) {
        strand.fork2(fork_tree(depth - 1), fork_tree(depth - 1), make_nop());
      },
      bytes, 64);
}

void BM_SchedulerStrandCost(benchmark::State& state,
                            const std::string& sched_name) {
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo);
  constexpr int kDepth = 10;  // 1K leaves, ~4K scheduler interactions
  std::uint64_t strands = 0;
  for (auto _ : state) {
    auto sched = sched::MakeScheduler(sched_name);
    const runtime::RunStats stats = pool.run(*sched, fork_tree(kDepth));
    strands += stats.total_strands();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(strands));
  state.counters["strands_per_run"] =
      static_cast<double>(strands) / static_cast<double>(state.iterations());
}

void BM_ForkJoinThroughput(benchmark::State& state) {
  // Single-thread baseline: pure framework cost (job alloc, join counters,
  // settle) without scheduler contention.
  const machine::Topology topo(machine::Preset("mini"));
  runtime::ThreadPool pool(topo, 1);
  for (auto _ : state) {
    auto sched = sched::MakeScheduler("WS");
    pool.run(*sched, fork_tree(10));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SchedulerStrandCost, WS, std::string("WS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, PWS, std::string("PWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, CilkWS, std::string("CilkWS"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB, std::string("SB"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerStrandCost, SB_D, std::string("SB-D"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForkJoinThroughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
