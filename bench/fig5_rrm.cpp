// Fig. 5 (paper §5.3): RRM on 10M doubles under {CilkWS, WS, PWS, SB, SB-D}
// at 100/75/50/25% memory bandwidth — active time, scheduler overhead, and
// L3 cache misses.
//
// Paper-reported shape: space-bounded schedulers incur ~42-44% fewer L3
// misses than the work-stealing schedulers at every bandwidth; L3 misses
// are bandwidth-insensitive; active time tracks misses ever more closely
// as bandwidth shrinks (up to ~25% faster at 25% b/w). CilkWS validates
// that WS is representative of a production work stealer.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("fig5_rrm", "Reproduce paper Fig. 5: RRM vs schedulers vs bandwidth");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  harness::ExperimentSpec spec;
  spec.kernel = "rrm";
  spec.machine = opts.machine_for();
  spec.params.machine_scale = harness::BenchOptions::ScaleOfPreset(spec.machine);
  spec.params.n = opts.problem_n(10'000'000 /
                                     static_cast<std::size_t>(
                                         spec.params.machine_scale),
                                 10'000'000);
  spec.params.repeats = 3;
  spec.params.base = 2048 / static_cast<std::size_t>(spec.params.machine_scale);
  spec.schedulers = {"CilkWS", "WS", "PWS", "SB", "SB-D"};
  spec.bandwidth_sockets = {4, 3, 2, 1};
  spec.repetitions = opts.repetitions();
  spec.seed = static_cast<std::uint64_t>(opts.seed);
  spec.sb.sigma = opts.sigma;
  spec.sb.mu = opts.mu;
  spec.num_threads = static_cast<int>(opts.threads);
  spec.verify = !opts.no_verify;
  spec.verify_invariants = opts.verify;
  spec.trace_path = opts.trace;
  spec.metrics_path = opts.metrics_json;

  const auto results = harness::RunExperiment(spec);
  harness::BenchReport report("fig5_rrm");
  report.add(spec, results);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  Table table = harness::MakeFigureTable(
      "Fig. 5 — RRM (" + std::to_string(spec.params.n) +
          " doubles), schedulers x bandwidth",
      results);
  table.print(opts.csv);

  // Headline ratio, as the paper reports it: SB misses vs WS misses.
  double ws = 0, sb = 0;
  for (const auto& c : results) {
    if (c.bw_sockets == 4 && c.scheduler == "WS") ws = c.llc_misses;
    if (c.bw_sockets == 4 && c.scheduler == "SB") sb = c.llc_misses;
  }
  if (ws > 0) {
    std::printf("SB reduces L3 misses vs WS by %.1f%% at full bandwidth "
                "(paper: ~42-44%%)\n",
                100.0 * (1.0 - sb / ws));
  }
  return 0;
}
