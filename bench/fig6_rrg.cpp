// Fig. 6 (paper §5.3): RRG on 10M doubles under {CilkWS, WS, PWS, SB, SB-D}
// at 100/75/50/25% memory bandwidth.
//
// Paper-reported shape: same as RRM (Fig. 5) but even more bandwidth-bound
// — the gathers are random, so active time degrades faster as bandwidth
// shrinks; SB/SB-D cut L3 misses by ~42-44% at all bandwidths.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("fig6_rrg", "Reproduce paper Fig. 6: RRG vs schedulers vs bandwidth");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  harness::ExperimentSpec spec;
  spec.kernel = "rrg";
  spec.machine = opts.machine_for();
  spec.params.machine_scale = harness::BenchOptions::ScaleOfPreset(spec.machine);
  // Per-element instrumented gathers make RRG the slowest benchmark to
  // simulate; the quick default is 600K elements (still ~4x the scaled L3).
  spec.params.n = opts.problem_n(600'000, 10'000'000);
  spec.params.repeats = 3;
  spec.params.base = 2048 / static_cast<std::size_t>(spec.params.machine_scale);
  spec.schedulers = {"CilkWS", "WS", "PWS", "SB", "SB-D"};
  spec.bandwidth_sockets = {4, 3, 2, 1};
  spec.repetitions = opts.repetitions();
  spec.seed = static_cast<std::uint64_t>(opts.seed);
  spec.sb.sigma = opts.sigma;
  spec.sb.mu = opts.mu;
  spec.num_threads = static_cast<int>(opts.threads);
  spec.verify = !opts.no_verify;
  spec.verify_invariants = opts.verify;
  spec.trace_path = opts.trace;
  spec.metrics_path = opts.metrics_json;

  const auto results = harness::RunExperiment(spec);
  harness::BenchReport report("fig6_rrg");
  report.add(spec, results);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  Table table = harness::MakeFigureTable(
      "Fig. 6 — RRG (" + std::to_string(spec.params.n) +
          " doubles), schedulers x bandwidth",
      results);
  table.print(opts.csv);

  double ws = 0, sb = 0, ws25 = 0, ws100 = 0;
  for (const auto& c : results) {
    if (c.bw_sockets == 4 && c.scheduler == "WS") {
      ws = c.llc_misses;
      ws100 = c.active_s + c.overhead_s;
    }
    if (c.bw_sockets == 4 && c.scheduler == "SB") sb = c.llc_misses;
    if (c.bw_sockets == 1 && c.scheduler == "WS")
      ws25 = c.active_s + c.overhead_s;
  }
  if (ws > 0) {
    std::printf("SB reduces L3 misses vs WS by %.1f%% at full bandwidth "
                "(paper: ~42-44%%)\n",
                100.0 * (1.0 - sb / ws));
    std::printf("WS slows down %.2fx from 100%% to 25%% bandwidth "
                "(bandwidth-bound, paper Fig. 6 shape)\n",
                ws25 / ws100);
  }
  return 0;
}
