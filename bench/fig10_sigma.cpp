// Fig. 10 (paper §5.3): empty-queue (load-imbalance) time of the quad-tree
// benchmark under SB and SB-D as the dilation parameter σ varies over
// {0.5, 0.7, 0.9, 1.0}.
//
// Paper-reported shape: empty-queue time grows sharply as σ→1 — with σ=1 a
// single befitting task can fill a cache, leaving no room to anchor more
// work under it, so cores idle; σ≈0.5 admits several tasks per cache and
// load-balances well.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("fig10_sigma",
          "Reproduce paper Fig. 10: quad-tree empty-queue time vs sigma");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  const double sigmas[] = {0.5, 0.7, 0.9, 1.0};
  const std::string machine = opts.machine_for();
  Table table("Fig. 10 — Quad-tree empty-queue time vs dilation σ (" +
              machine + ")");
  table.set_header({"sigma", "scheduler", "empty(ms)", "overhead(ms)",
                    "total(s)", "L3 misses"});
  harness::BenchReport report("fig10_sigma");

  for (double sigma : sigmas) {
    harness::ExperimentSpec spec;
    spec.kernel = "quadtree";
    spec.machine = machine;
    spec.params.machine_scale =
        harness::BenchOptions::ScaleOfPreset(machine);
    spec.params.n = opts.problem_n(1'000'000, 100'000'000);
    spec.schedulers = {"SB", "SB-D"};
    spec.repetitions = opts.repetitions();
    spec.seed = static_cast<std::uint64_t>(opts.seed);
    spec.sb.sigma = sigma;
    spec.sb.mu = opts.mu;
    spec.num_threads = static_cast<int>(opts.threads);
    spec.verify = !opts.no_verify;
    spec.verify_invariants = opts.verify;
    const std::string group = "sigma" + fmt_double(sigma, 1);
    if (!opts.trace.empty())
      spec.trace_path = harness::WithPathSuffix(opts.trace, group);
    spec.metrics_path = opts.metrics_json;
    spec.metrics_truncate = sigma == sigmas[0];
    spec.label_prefix = group;

    const auto results = harness::RunExperiment(spec);
    report.add(spec, results, group);
    for (const auto& c : results) {
      table.add_row({"σ=" + fmt_double(sigma, 1), c.scheduler,
                     fmt_double(c.empty_s * 1e3, 2),
                     fmt_double(c.overhead_s * 1e3, 2),
                     fmt_double(c.active_s + c.overhead_s, 4),
                     fmt_millions(c.llc_misses, 2)});
    }
  }
  table.print(opts.csv);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  std::printf(
      "Expected shape (paper): empty-queue time rises steeply as σ→1.\n");
  return 0;
}
