// Ablation A (paper §4.1): the µ-capped strand occupancy rule.
//
// The paper modifies the boundedness property so a live strand charges only
// min(µM, S(l)) at each cache below its task's anchor (µ=0.2): "several
// large strands [can then be] explored simultaneously without their space
// measure taking too much of the space bound", revealing parallelism early.
// Strands are *large* exactly when they are not separately annotated and
// default to their enclosing task's size — which is also why the paper
// calls per-strand sizes an important optional optimization (footnote 1).
//
// This ablation therefore crosses both knobs on SB:
//   (1) per-strand sizes on, µ cap on     — the paper's full configuration;
//   (2) strand sizes OFF, µ cap on        — µ rescues task-size accounting;
//   (3) strand sizes OFF, µ cap OFF       — the un-generalized definition:
//       every live strand charges its whole task's footprint.
//
// Expected: (3) shows clearly more empty-queue (load-imbalance) time than
// (2), which in turn is at or above (1).
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("ablation_mu",
          "Ablation: SB's mu strand-occupancy cap x per-strand sizes");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  const std::string machine = opts.machine_for();
  const int scale = harness::BenchOptions::ScaleOfPreset(machine);
  Table table("Ablation — µ strand cap × strand sizes (SB, " + machine + ")");
  table.set_header({"kernel", "configuration", "active(s)", "empty(ms)",
                    "total(s)", "L3 misses"});

  struct Arm {
    const char* label;
    bool strand_sizes;
    bool mu_cap;
  };
  const Arm arms[] = {
      {"strand sizes + µ (paper)", true, true},
      {"task-size strands, µ cap", false, true},
      {"task-size strands, no cap", false, false},
  };

  harness::BenchReport report("ablation_mu");
  bool first_cell = true;
  for (const char* kernel : {"rrm", "quadtree"}) {
    for (const Arm& arm : arms) {
      harness::ExperimentSpec spec;
      spec.kernel = kernel;
      spec.machine = machine;
      spec.params.machine_scale = scale;
      spec.params.n = opts.problem_n(1'000'000, 10'000'000);
      spec.params.base = 2048 / static_cast<std::size_t>(scale);
      spec.schedulers = {"SB"};
      spec.repetitions = opts.repetitions();
      spec.seed = static_cast<std::uint64_t>(opts.seed);
      spec.sb.sigma = opts.sigma;
      spec.sb.mu = opts.mu;
      spec.sb.mu_cap = arm.mu_cap;
      spec.sb.use_strand_sizes = arm.strand_sizes;
      spec.num_threads = static_cast<int>(opts.threads);
      spec.verify = !opts.no_verify;
      spec.verify_invariants = opts.verify;
      const std::string group =
          std::string(kernel) + (arm.strand_sizes ? "_ssz" : "_tsz") +
          (arm.mu_cap ? "_mu" : "_nomu");
      if (!opts.trace.empty())
        spec.trace_path = harness::WithPathSuffix(opts.trace, group);
      spec.metrics_path = opts.metrics_json;
      spec.metrics_truncate = first_cell;
      spec.label_prefix = group;
      first_cell = false;
      const auto results = harness::RunExperiment(spec);
      report.add(spec, results, group);
      const auto& c = results[0];
      table.add_row({kernel, arm.label, fmt_double(c.active_s, 4),
                     fmt_double(c.empty_s * 1e3, 2),
                     fmt_double(c.active_s + c.overhead_s, 4),
                     fmt_millions(c.llc_misses, 2)});
    }
  }
  table.print(opts.csv);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  return 0;
}
