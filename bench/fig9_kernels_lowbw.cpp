// Fig. 9 (paper §5.3): the five algorithmic kernels at 25% memory
// bandwidth (pages homed on one of the four sockets).
//
// Paper-reported shape: the miss reductions of Fig. 8 now translate into
// larger running-time gains — up to ~40% for the memory-intensive kernels,
// and ~50% for matmul, which becomes bandwidth-bound at a quarter of the
// machine's bandwidth.
//
// Implementation: delegates to the Fig. 8 binary's engine with the 25%%
// bandwidth setting (same kernels, same metrics).
#include <cstdio>
#include <cstring>
#include <vector>

// Reuse fig8's main with --low-bw prepended.
int fig8_like_main(int argc, char** argv);
#define main fig8_like_main
#include "fig8_kernels.cpp"  // NOLINT(bugprone-suspicious-include)
#undef main

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  static char flag[] = "--low-bw";
  args.push_back(flag);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  return fig8_like_main(static_cast<int>(args.size()), args.data());
}
