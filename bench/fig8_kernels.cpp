// Fig. 8 (paper §5.3): the five algorithmic kernels at full bandwidth —
// active time, scheduler overhead, and L3 misses under {WS, PWS, SB, SB-D}.
//
// Paper-reported shape: SB/SB-D cut L3 misses significantly on 4 of the 5
// kernels (up to ~65% on matmul); the cache-oblivious samplesort shows no
// miss difference and runs ~7% slower under SB (pure overhead); the
// memory-intensive kernels (quicksort, aware samplesort, quad-tree) gain
// up to ~25% in running time; matmul gains nothing at full bandwidth
// because it is compute-bound.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

namespace {

struct KernelCase {
  const char* kernel;
  std::size_t quick_n;
  std::size_t full_n;
  const char* label;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  bool low_bw = false;
  Cli cli("fig8_kernels",
          "Reproduce paper Fig. 8: algorithmic kernels at full bandwidth");
  cli.add_flag("low-bw", &low_bw,
               "run at 25% bandwidth instead (reproduces Fig. 9)");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  const KernelCase cases[] = {
      {"quicksort", 1'000'000, 100'000'000, "Quicksort"},
      {"samplesort", 1'000'000, 100'000'000, "Samplesort"},
      {"aware-samplesort", 1'000'000, 100'000'000, "AwareSamplesort"},
      {"quadtree", 1'000'000, 100'000'000, "Quad-Tree"},
      {"matmul", 512, 5120, "MatMul"},
  };

  const std::string machine = opts.machine_for();
  const int scale = harness::BenchOptions::ScaleOfPreset(machine);
  const char* fig = low_bw ? "Fig. 9" : "Fig. 8";
  Table table(std::string(fig) + " — kernels at " +
              (low_bw ? "25%" : "100%") + " bandwidth on " + machine);
  table.set_header({"kernel", "scheduler", "active(s)", "overhead(s)",
                    "empty(s)", "total(s)", "L3 misses"});
  harness::BenchReport report(low_bw ? "fig9_kernels_lowbw" : "fig8_kernels");

  bool first_kernel = true;
  for (const KernelCase& kc : cases) {
    harness::ExperimentSpec spec;
    spec.kernel = kc.kernel;
    spec.machine = machine;
    spec.params.machine_scale = scale;
    spec.params.n = opts.problem_n(kc.quick_n, kc.full_n);
    spec.schedulers = {"WS", "PWS", "SB", "SB-D"};
    spec.bandwidth_sockets = {low_bw ? 1 : 4};
    spec.repetitions = opts.repetitions();
    spec.seed = static_cast<std::uint64_t>(opts.seed);
    spec.sb.sigma = opts.sigma;
    spec.sb.mu = opts.mu;
    spec.num_threads = static_cast<int>(opts.threads);
    spec.verify = !opts.no_verify;
    spec.verify_invariants = opts.verify;
    if (!opts.trace.empty())
      spec.trace_path = harness::WithPathSuffix(opts.trace, kc.kernel);
    spec.metrics_path = opts.metrics_json;
    spec.metrics_truncate = first_kernel;
    first_kernel = false;

    const auto results = harness::RunExperiment(spec);
    report.add(spec, results, kc.kernel);
    for (const auto& c : results) {
      table.add_row({kc.label, c.scheduler, fmt_double(c.active_s, 4),
                     fmt_double(c.overhead_s, 4), fmt_double(c.empty_s, 4),
                     fmt_double(c.active_s + c.overhead_s, 4),
                     fmt_millions(c.llc_misses, 2)});
    }
    const double ws = results[0].llc_misses;
    const double sb = results[2].llc_misses;
    const double ws_t = results[0].active_s + results[0].overhead_s;
    const double sb_t = results[2].active_s + results[2].overhead_s;
    std::fprintf(stderr, "  %s: SB misses %+0.1f%%, SB time %+0.1f%% vs WS\n",
                 kc.label, 100.0 * (sb / ws - 1.0),
                 100.0 * (sb_t / ws_t - 1.0));
  }
  table.print(opts.csv);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  return 0;
}
