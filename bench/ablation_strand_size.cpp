// Ablation B (paper §4.1): per-strand size annotations.
//
// The paper generalizes space-bounded schedulers to let each strand carry
// its own size, noting: "While results in [6] show that it is not necessary
// ... we found that the flexibility it enables is an important running time
// optimization." Without per-strand sizes, every strand is accounted at its
// enclosing task's full size, inflating the occupancy bound that anchoring
// competes against.
//
// Expected: with strand sizes off, SB shows more admission failures / idle
// time and a slower run on fork-heavy kernels.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("ablation_strand_size",
          "Ablation: SB with and without per-strand size annotations");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  const std::string machine = opts.machine_for();
  const int scale = harness::BenchOptions::ScaleOfPreset(machine);
  Table table("Ablation — per-strand sizes (SB, " + machine + ")");
  table.set_header({"kernel", "strand sizes", "active(s)", "empty(ms)",
                    "total(s)", "L3 misses"});

  harness::BenchReport report("ablation_strand_size");
  bool first_cell = true;
  for (const char* kernel : {"quicksort", "rrm"}) {
    for (bool use : {true, false}) {
      harness::ExperimentSpec spec;
      spec.kernel = kernel;
      spec.machine = machine;
      spec.params.machine_scale = scale;
      spec.params.n = opts.problem_n(1'000'000, 10'000'000);
      spec.params.base = 2048 / static_cast<std::size_t>(scale);
      spec.schedulers = {"SB"};
      spec.repetitions = opts.repetitions();
      spec.seed = static_cast<std::uint64_t>(opts.seed);
      spec.sb.sigma = opts.sigma;
      spec.sb.mu = opts.mu;
      spec.sb.use_strand_sizes = use;
      spec.num_threads = static_cast<int>(opts.threads);
      spec.verify = !opts.no_verify;
      spec.verify_invariants = opts.verify;
      const std::string group =
          std::string(kernel) + (use ? "_ssz" : "_tsz");
      if (!opts.trace.empty())
        spec.trace_path = harness::WithPathSuffix(opts.trace, group);
      spec.metrics_path = opts.metrics_json;
      spec.metrics_truncate = first_cell;
      spec.label_prefix = group;
      first_cell = false;
      const auto results = harness::RunExperiment(spec);
      report.add(spec, results, group);
      const auto& c = results[0];
      table.add_row({kernel, use ? "per-strand (paper)" : "task size",
                     fmt_double(c.active_s, 4),
                     fmt_double(c.empty_s * 1e3, 2),
                     fmt_double(c.active_s + c.overhead_s, 4),
                     fmt_millions(c.llc_misses, 2)});
    }
  }
  table.print(opts.csv);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  return 0;
}
