// Fig. 7 (paper §5.3): L3 cache misses for RRM and RRG as the number of
// active cores per socket grows (4×1, 4×2, 4×4, 4×8, 4×8×2 HT), under
// {WS, PWS, SB, SB-D}.
//
// Paper-reported shape: SB/SB-D miss counts are flat — cores share each L3
// constructively regardless of how many there are — while WS/PWS misses
// grow steadily with cores per socket (the cache is effectively split
// among them), roughly doubling from 4×1 to 4×8×2.
#include <cstdio>

#include "harness/bench_cli.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace sbs;
  harness::BenchOptions opts;
  Cli cli("fig7_cores",
          "Reproduce paper Fig. 7: L3 misses vs active cores per socket");
  if (!harness::ParseBenchOptions(argc, argv, cli, &opts)) return 0;

  const char* suffixes[] = {"_4x1", "_4x2", "_4x4", "", "_ht"};
  const char* labels[] = {"4x1", "4x2", "4x4", "4x8", "4x8x2(HT)"};
  const std::vector<std::string> schedulers = {"WS", "PWS", "SB", "SB-D"};

  Table table("Fig. 7 — L3 misses (millions) vs cores per socket");
  table.set_header(
      {"cores", "scheduler", "RRM misses", "RRG misses"});
  harness::BenchReport report("fig7_cores");

  for (int m = 0; m < 5; ++m) {
    std::vector<harness::CellResult> rrm, rrg;
    for (const char* kernel : {"rrm", "rrg"}) {
      harness::ExperimentSpec spec;
      spec.kernel = kernel;
      spec.machine = opts.machine_for(suffixes[m]);
      spec.params.machine_scale =
          harness::BenchOptions::ScaleOfPreset(spec.machine);
      const std::size_t dflt =
          kernel == std::string("rrm") ? 1'250'000 : 600'000;
      spec.params.n = opts.problem_n(dflt, 10'000'000);
      spec.params.base =
          2048 / static_cast<std::size_t>(spec.params.machine_scale);
      spec.schedulers = schedulers;
      spec.repetitions = std::max(1, opts.repetitions() - 1);
      spec.seed = static_cast<std::uint64_t>(opts.seed);
      spec.sb.sigma = opts.sigma;
      spec.sb.mu = opts.mu;
      spec.verify = !opts.no_verify;
      spec.verify_invariants = opts.verify;
      const std::string group = std::string(kernel) + "_" + labels[m];
      if (!opts.trace.empty())
        spec.trace_path = harness::WithPathSuffix(opts.trace, group);
      spec.metrics_path = opts.metrics_json;
      spec.metrics_truncate = m == 0 && kernel == std::string("rrm");
      auto results = harness::RunExperiment(spec);
      report.add(spec, results, group);
      (kernel == std::string("rrm") ? rrm : rrg) = std::move(results);
    }
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      table.add_row({labels[m], schedulers[s],
                     fmt_millions(rrm[s].llc_misses, 2),
                     fmt_millions(rrg[s].llc_misses, 2)});
    }
  }
  table.print(opts.csv);
  if (!report.write()) std::fprintf(stderr, "failed to write %s\n",
                                    report.default_path().c_str());
  std::printf(
      "Expected shape (paper): WS/PWS misses grow with cores per socket; "
      "SB/SB-D stay flat.\n");
  return 0;
}
