// service_bench — latency under sustained multi-tenant load, per scheduler.
//
// Drives the scheduler-as-a-service runtime (src/service/) with an
// open-loop arrival stream (Poisson / MMPP / diurnal; arrivals keep coming
// whether or not the service keeps up — the honest way to measure tail
// latency) or a closed loop of submit-wait clients, over a mix of
// quicksort / samplesort / matmul jobs from multiple tenants. Reports
// per-scheduler sojourn p50/p99/p99.9, queueing delay, throughput and
// rejection rate; writes the JSONL metrics file and a BENCH_*.json summary.
//
//   ./service_bench --machine=mini --min-n=256 --max-n=1024 --rate=400
//                   --duration=1 --sched=WS,PWS,SB,SB-D --verify
//   ./service_bench --machine-file=configs/xeon7560_fig4.cfg --rate=300
//                   --duration=2 --policy=queue
//   ./service_bench --smoke ...   # sanity-check the results, exit nonzero
//                                 # on failure (CI service-smoke job)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "machine/topology.h"
#include "service/arrivals.h"
#include "service/metrics.h"
#include "service/runtime.h"
#include "service/workload.h"
#include "util/cli.h"
#include "util/json.h"

using namespace sbs;

namespace {

struct StreamOptions {
  std::string arrivals = "poisson";
  double rate_per_s = 300;
  double duration_s = 1.0;
  std::int64_t jobs = 0;  ///< fixed job count; 0 = rate × duration
  std::int64_t closed_clients = 0;
  std::uint64_t seed = 12345;
  bool check_outputs = true;
  service::WorkloadOptions workload;
};

struct SchedResult {
  std::string scheduler;
  double span_s = 0;
  service::TenantCounters agg;
  std::uint64_t client_drops = 0;
  std::uint64_t output_failures = 0;
  std::uint64_t verify_violations = 0;
  bool verify_ran = false;

  double throughput() const {
    return span_s <= 0 ? 0
                       : static_cast<double>(agg.completed) / span_s;
  }
};

struct Pending {
  service::JobHandle handle;
  kernels::Kernel* instance;
};

/// Retire terminal submissions: verify output, return instance to the pool.
void reap(std::vector<Pending>& pending, service::Workload& workload,
          bool check_outputs, std::uint64_t& output_failures) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    if (!p.handle.terminal()) {
      pending[keep++] = std::move(p);
      continue;
    }
    if (p.handle.state() == service::JobState::kDone && check_outputs &&
        !p.instance->verify()) {
      ++output_failures;
    }
    workload.release(p.instance);
  }
  pending.resize(keep);
}

SchedResult RunStream(const machine::Topology& topo,
                      const service::RuntimeOptions& runtime_options,
                      const StreamOptions& stream,
                      const std::string& metrics_path, bool first_sched) {
  using Clock = std::chrono::steady_clock;
  SchedResult result;
  service::Runtime runtime(topo, runtime_options);
  result.scheduler = runtime.scheduler().name();

  const auto t0 = Clock::now();
  if (stream.closed_clients > 0) {
    // Closed loop: each client submits, waits, verifies, repeats. Load is
    // self-limiting — measures service time without queueing pressure.
    const std::uint64_t per_client =
        stream.jobs > 0
            ? static_cast<std::uint64_t>(stream.jobs)
            : static_cast<std::uint64_t>(stream.rate_per_s *
                                         stream.duration_s) /
                  static_cast<std::uint64_t>(stream.closed_clients);
    std::vector<std::uint64_t> failures(
        static_cast<std::size_t>(stream.closed_clients), 0);
    std::vector<std::thread> clients;
    for (std::int64_t c = 0; c < stream.closed_clients; ++c) {
      clients.emplace_back([&, c] {
        service::Workload workload(stream.workload,
                                   stream.seed + 1000 * (c + 1));
        for (std::uint64_t i = 0; i < per_client; ++i) {
          service::Request req = workload.next();
          if (req.dropped) continue;
          service::JobHandle handle =
              runtime.submit(req.root, req.declared_bytes, req.tenant);
          if (runtime.wait(handle) == service::JobState::kDone &&
              stream.check_outputs && !req.instance->verify()) {
            ++failures[static_cast<std::size_t>(c)];
          }
          workload.release(req.instance);
        }
      });
    }
    for (auto& t : clients) t.join();
    for (std::uint64_t f : failures) result.output_failures += f;
  } else {
    // Open loop: submissions fire at the arrival process's instants
    // regardless of completions.
    service::Workload workload(stream.workload, stream.seed);
    auto arrivals =
        service::MakeArrivals(stream.arrivals, stream.rate_per_s,
                              stream.seed ^ 0x9e3779b97f4a7c15ull);
    const std::uint64_t total =
        stream.jobs > 0 ? static_cast<std::uint64_t>(stream.jobs)
                        : static_cast<std::uint64_t>(stream.rate_per_s *
                                                     stream.duration_s);
    std::vector<Pending> pending;
    for (std::uint64_t i = 0; i < total; ++i) {
      const double t = arrivals->next();  // absolute instant since stream start
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(t)));
      service::Request req = workload.next();
      if (req.dropped) {
        ++result.client_drops;
      } else {
        pending.push_back({runtime.submit(req.root, req.declared_bytes,
                                          req.tenant),
                           req.instance});
      }
      if ((i & 0x3f) == 0)
        reap(pending, workload, stream.check_outputs,
             result.output_failures);
    }
    runtime.drain();
    reap(pending, workload, stream.check_outputs, result.output_failures);
  }
  runtime.drain();
  result.span_s = std::chrono::duration<double>(Clock::now() - t0).count();

  if (!metrics_path.empty()) {
    const std::string label =
        result.scheduler + "/" + stream.arrivals +
        (stream.closed_clients > 0 ? "-closed" : "-open");
    if (!service::WriteServiceMetricsJsonl(runtime.metrics(), result.span_s,
                                           metrics_path, label,
                                           /*truncate=*/first_sched)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
    }
  }

  result.agg = runtime.metrics().aggregate();
  std::printf("  %-16s %s\n", result.scheduler.c_str(),
              runtime.metrics().summary(result.span_s).c_str());
  std::printf("  %-16s admission: %s\n", "",
              runtime.admission().stats_string().c_str());
  runtime.shutdown();
  if (const verify::VerifyingScheduler* checker = runtime.verifier()) {
    result.verify_ran = true;
    result.verify_violations = checker->total_violations();
    if (!checker->ok())
      std::fprintf(stderr, "  %s\n", checker->report().c_str());
  }
  return result;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void WriteQuantiles(JsonWriter& json, const char* name,
                    const service::LatencyQuantiles& q) {
  json.key(name).begin_object();
  json.kv("p50_s", q.p50.value());
  json.kv("p99_s", q.p99.value());
  json.kv("p999_s", q.p999.value());
  json.kv("mean_s", q.mean());
  json.kv("max_s", q.max);
  json.end_object();
}

bool WriteBenchJson(const std::string& path, const machine::Topology& topo,
                    const StreamOptions& stream,
                    const service::RuntimeOptions& rt,
                    const std::vector<SchedResult>& results) {
  JsonWriter json;
  json.begin_object();
  json.kv("bench", "service_latency");
  json.kv("machine", topo.config().name);
  json.kv("arrivals", stream.arrivals);
  json.kv("rate_per_s", stream.rate_per_s);
  json.kv("duration_s", stream.duration_s);
  json.kv("closed_clients", stream.closed_clients);
  json.kv("tenants", stream.workload.tenants);
  json.kv("min_n", static_cast<std::uint64_t>(stream.workload.min_n));
  json.kv("max_n", static_cast<std::uint64_t>(stream.workload.max_n));
  json.kv("overdeclare", stream.workload.overdeclare);
  json.kv("policy", service::PolicyName(rt.admission.policy));
  json.kv("sigma", rt.admission.sigma);
  json.kv("threads", rt.num_threads);
  json.kv("seed", stream.seed);
  json.key("schedulers").begin_array();
  for (const SchedResult& r : results) {
    json.begin_object();
    json.kv("scheduler", r.scheduler);
    json.kv("span_s", r.span_s);
    json.kv("throughput_per_s", r.throughput());
    json.kv("submitted", r.agg.submitted);
    json.kv("completed", r.agg.completed);
    json.kv("queued", r.agg.queued);
    json.kv("degraded", r.agg.degraded);
    json.kv("rejected", r.agg.rejected);
    json.kv("timed_out", r.agg.timed_out);
    json.kv("rejection_rate", r.agg.rejection_rate());
    json.kv("client_drops", r.client_drops);
    json.kv("output_failures", r.output_failures);
    json.kv("verify_violations", r.verify_violations);
    WriteQuantiles(json, "sojourn", r.agg.sojourn_s);
    WriteQuantiles(json, "queueing", r.agg.queueing_s);
    WriteQuantiles(json, "service", r.agg.service_s);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs(json.str().c_str(), f) >= 0 &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

/// --smoke: cheap invariants a short CI stream must satisfy.
bool SmokeCheck(const StreamOptions& stream,
                const service::RuntimeOptions& rt,
                const std::vector<SchedResult>& results) {
  bool ok = true;
  const auto fail = [&](const std::string& sched, const char* what) {
    std::fprintf(stderr, "SMOKE FAIL [%s]: %s\n", sched.c_str(), what);
    ok = false;
  };
  for (const SchedResult& r : results) {
    if (r.agg.submitted == 0) fail(r.scheduler, "no submissions");
    if (stream.workload.overdeclare <= 1.0 && r.agg.completed == 0)
      fail(r.scheduler, "nothing completed");
    if (r.output_failures != 0) fail(r.scheduler, "kernel output wrong");
    if (r.verify_ran && r.verify_violations != 0)
      fail(r.scheduler, "invariant violations");
    if (r.agg.completed > 0) {
      const double p99 = r.agg.sojourn_s.p99.value();
      if (!(p99 > 0) || !std::isfinite(p99))
        fail(r.scheduler, "sojourn p99 not positive/finite");
      if (r.agg.sojourn_s.p50.value() > p99 * 1.0001)
        fail(r.scheduler, "p50 exceeds p99");
    }
    // An over-declared stream must be provably pushed back, not absorbed:
    // with every declaration inflated beyond σM budgets, admission has to
    // reject (or time out) a nonzero share.
    if (stream.workload.overdeclare >= 8.0 &&
        rt.admission.policy != service::AdmissionPolicy::kDegrade &&
        r.agg.rejection_rate() <= 0)
      fail(r.scheduler, "over-declared stream was never rejected");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine_name = "xeon7560_s8";
  std::string machine_file;
  std::string sched_list = "WS,PWS,SB,SB-D";
  std::string policy_name = "reject";
  std::string metrics_path = "service_metrics.jsonl";
  std::string bench_path = "BENCH_service_latency.json";
  StreamOptions stream;
  std::int64_t jobs = 0, closed = 0, tenants = 8, threads = -1;
  std::int64_t min_n = 16 << 10, max_n = 64 << 10;
  std::int64_t seed = 12345;
  double sigma = 0.5, mu = 0.2, timeout_s = 0.5, overdeclare = 1.0;
  bool verify = false, smoke = false, no_outputs = false;

  Cli cli("service_bench",
          "multi-tenant job-stream latency across schedulers");
  cli.add_string("machine", &machine_name, "machine preset name");
  cli.add_string("machine-file", &machine_file,
                 "Fig.4-syntax config file (overrides --machine)");
  cli.add_string("sched", &sched_list, "comma list of schedulers to compare");
  cli.add_string("arrivals", &stream.arrivals, "poisson|mmpp|diurnal");
  cli.add_double("rate", &stream.rate_per_s, "mean arrival rate (jobs/s)");
  cli.add_double("duration", &stream.duration_s,
                 "open-loop stream length in seconds (rate × duration jobs)");
  cli.add_int("jobs", &jobs, "fixed job count (overrides rate × duration)");
  cli.add_int("closed-loop", &closed,
              "run this many closed-loop submit-wait clients instead");
  cli.add_string("policy", &policy_name,
                 "admission policy: reject|queue|degrade");
  cli.add_double("timeout", &timeout_s, "queue-policy admission deadline (s)");
  cli.add_int("tenants", &tenants, "number of tenants in the mix");
  cli.add_int("min-n", &min_n, "smallest problem size (elements)");
  cli.add_int("max-n", &max_n, "largest problem size (elements)");
  cli.add_double("overdeclare", &overdeclare,
                 "declared-footprint multiplier (>1 lies to admission)");
  cli.add_double("sigma", &sigma, "space-bounded dilation / budget fraction");
  cli.add_double("mu", &mu, "space-bounded strand cap");
  cli.add_int("threads", &threads, "service worker count (-1 = all)");
  cli.add_int("seed", &seed, "stream seed (workload + arrivals)");
  cli.add_flag("verify", &verify,
               "wrap every scheduler in the online invariant checker");
  cli.add_flag("no-check-outputs", &no_outputs,
               "skip kernel output verification on completion");
  cli.add_flag("smoke", &smoke, "sanity-check results; exit nonzero on fail");
  cli.add_string("metrics-json", &metrics_path,
                 "JSONL metrics path (one line per scheduler); '' disables");
  cli.add_string("bench-json", &bench_path,
                 "BENCH summary path; '' disables");
  if (!cli.parse(argc, argv)) return 0;

  const machine::MachineConfig cfg =
      machine_file.empty() ? machine::Preset(machine_name)
                           : machine::LoadConfigFile(machine_file);
  const machine::Topology topo(cfg);

  stream.jobs = jobs;
  stream.closed_clients = closed;
  stream.seed = static_cast<std::uint64_t>(seed);
  stream.check_outputs = !no_outputs;
  stream.workload.tenants = static_cast<int>(tenants);
  stream.workload.min_n = static_cast<std::size_t>(min_n);
  stream.workload.max_n = static_cast<std::size_t>(max_n);
  stream.workload.overdeclare = overdeclare;

  service::RuntimeOptions rt;
  rt.admission.sigma = sigma;
  rt.admission.policy = service::ParsePolicy(policy_name);
  rt.admission.queue_timeout_s = timeout_s;
  rt.num_threads = static_cast<int>(threads);
  rt.num_tenants = static_cast<int>(tenants);
  rt.verify = verify;
  rt.scheduler.seed = static_cast<std::uint64_t>(seed);
  rt.scheduler.sb.sigma = sigma;
  rt.scheduler.sb.mu = mu;

  std::printf("service_bench: %s, %s arrivals @ %.0f/s, policy=%s%s\n",
              cfg.name.c_str(), stream.arrivals.c_str(), stream.rate_per_s,
              policy_name.c_str(), verify ? ", --verify" : "");

  std::vector<SchedResult> results;
  bool first = true;
  for (const std::string& sched_name : SplitList(sched_list)) {
    rt.scheduler.name = sched_name;
    results.push_back(RunStream(topo, rt, stream, metrics_path, first));
    first = false;
  }

  if (!bench_path.empty()) {
    if (WriteBenchJson(bench_path, topo, stream, rt, results))
      std::printf("bench json: %s\n", bench_path.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", bench_path.c_str());
  }
  if (smoke) {
    const bool ok = SmokeCheck(stream, rt, results);
    std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
  }
  return 0;
}
