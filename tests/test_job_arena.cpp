// JobArena unit tests: alignment, block recycling, heap fallback, remote
// (cross-thread) frees, and reset semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "runtime/job_arena.h"
#include "runtime/jobs.h"

namespace sbs::runtime {
namespace {

TEST(JobArena, AllocationsAreAlignedAndDisjoint) {
  JobArena arena;
  JobArena::Scope scope(&arena);
  std::vector<void*> ptrs;
  std::set<std::uintptr_t> starts;
  for (std::size_t bytes : {1u, 8u, 48u, 64u, 100u, 256u, 496u}) {
    void* p = JobArena::allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t),
              0u)
        << bytes;
    std::memset(p, 0xAB, bytes);  // must be writable, no overlap
    EXPECT_TRUE(starts.insert(reinterpret_cast<std::uintptr_t>(p)).second);
    ptrs.push_back(p);
  }
  EXPECT_EQ(arena.blocks_live(), ptrs.size());
  for (void* p : ptrs) JobArena::deallocate(p);
  EXPECT_EQ(arena.blocks_live(), 0u);
}

TEST(JobArena, FreedBlocksAreRecycledSameSizeClass) {
  JobArena arena;
  JobArena::Scope scope(&arena);
  void* a = JobArena::allocate(100);
  JobArena::deallocate(a);
  // Same size class (64-byte granularity): must reuse the freed block.
  void* b = JobArena::allocate(80);
  EXPECT_EQ(a, b);
  JobArena::deallocate(b);
  const std::uint64_t slabs = arena.slab_count();
  // Churning through one block must not grow the arena.
  for (int i = 0; i < 100000; ++i) {
    JobArena::deallocate(JobArena::allocate(100));
  }
  EXPECT_EQ(arena.slab_count(), slabs);
  EXPECT_EQ(arena.blocks_live(), 0u);
}

TEST(JobArena, OversizedAndOutOfScopeFallBackToHeap) {
  // No scope: plain heap, still freeable.
  void* p = JobArena::allocate(128);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 128);
  JobArena::deallocate(p);

  // Oversized payload inside a scope: heap fallback, arena stays empty.
  JobArena arena;
  JobArena::Scope scope(&arena);
  void* big = JobArena::allocate(JobArena::kMaxBlockBytes + 1);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xEF, JobArena::kMaxBlockBytes + 1);
  EXPECT_EQ(arena.blocks_live(), 0u);
  JobArena::deallocate(big);
}

TEST(JobArena, RemoteFreeReturnsBlocksToOwner) {
  JobArena arena;
  std::vector<void*> ptrs;
  {
    JobArena::Scope scope(&arena);
    for (int i = 0; i < 64; ++i) ptrs.push_back(JobArena::allocate(48));
  }
  // Free every block from a different thread (the "stolen continuation
  // settles on the thief" path).
  std::thread other([&] {
    for (void* p : ptrs) JobArena::deallocate(p);
  });
  other.join();
  EXPECT_EQ(arena.blocks_live(), 0u);

  // The owner's next allocations drain the remote list and reuse the
  // parked blocks instead of carving fresh slab space.
  const std::uint64_t slabs = arena.slab_count();
  JobArena::Scope scope(&arena);
  std::set<void*> recycled(ptrs.begin(), ptrs.end());
  for (int i = 0; i < 64; ++i) {
    void* p = JobArena::allocate(48);
    EXPECT_TRUE(recycled.count(p)) << "allocation " << i
                                   << " did not reuse a remote-freed block";
    JobArena::deallocate(p);
  }
  EXPECT_EQ(arena.slab_count(), slabs);
}

TEST(JobArena, ResetReclaimsSlabMemory) {
  JobArena arena;
  JobArena::Scope scope(&arena);
  std::vector<void*> ptrs;
  for (int i = 0; i < 3000; ++i) ptrs.push_back(JobArena::allocate(256));
  const std::uint64_t grown = arena.slab_count();
  EXPECT_GT(grown, 1u);
  for (void* p : ptrs) JobArena::deallocate(p);

  arena.reset();
  EXPECT_EQ(arena.blocks_live(), 0u);
  // Slabs are retained but re-carved from the start: the same footprint
  // serves the same workload again without growing.
  std::vector<void*> again;
  for (int i = 0; i < 3000; ++i) again.push_back(JobArena::allocate(256));
  EXPECT_EQ(arena.slab_count(), grown);
  for (void* p : again) JobArena::deallocate(p);
}

TEST(JobArena, JobsRouteThroughCurrentArena) {
  JobArena arena;
  JobArena::Scope scope(&arena);
  Job* job = make_job([](Strand&) {}, 64);
  EXPECT_GT(arena.blocks_live(), 0u);
  delete job;
  EXPECT_EQ(arena.blocks_live(), 0u);
}

}  // namespace
}  // namespace sbs::runtime
