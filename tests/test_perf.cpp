// Tests for the hardware-counter abstraction. Real perf events are often
// unavailable in containers; those tests skip rather than fail.
#include <gtest/gtest.h>

#include "perf/counters.h"

namespace sbs::perf {
namespace {

TEST(Perf, EventNamesAreStable) {
  EXPECT_STREQ(EventName(Event::kCycles), "cycles");
  EXPECT_STREQ(EventName(Event::kInstructions), "instructions");
  EXPECT_STREQ(EventName(Event::kLlcMisses), "LLC-misses");
}

TEST(Perf, UnavailableEnvironmentReturnsNullWithReason) {
  if (PerfEventsAvailable()) GTEST_SKIP() << "perf events work here";
  std::string error;
  auto group = MakePerfEventGroup({Event::kCycles}, &error);
  // Hardware events may still fail even when software events work; either
  // way a null group must carry a reason.
  if (group == nullptr) {
    EXPECT_FALSE(error.empty());
  }
}

TEST(Perf, CountsSomethingWhenAvailable) {
  if (!PerfEventsAvailable()) GTEST_SKIP() << "perf_event_open unavailable";
  auto group =
      MakePerfEventGroup({Event::kCycles, Event::kInstructions}, nullptr);
  if (group == nullptr) GTEST_SKIP() << "no hardware events in this env";
  group->start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
  group->stop();
  bool any_nonzero = false;
  for (Event e : group->active_events()) {
    any_nonzero = any_nonzero || group->value(e) > 0;
  }
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace sbs::perf
