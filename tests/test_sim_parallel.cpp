// Parallel window execution must be invisible: for every scheduler and
// kernel, running the simulator with host_threads > 1 yields bit-identical
// results to the serial pump — same makespan, same aggregate counters, and
// the same per-cache-level hit/miss/eviction/invalidation totals (see
// src/sim/engine.h for the determinism argument).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"

namespace sbs::sim {
namespace {

SimResult run_once(const machine::Topology& topo,
                   const std::string& sched_name,
                   const std::string& kernel_name, std::size_t n,
                   int host_threads) {
  kernels::KernelParams kp;
  kp.n = n;
  auto kernel = kernels::MakeKernel(kernel_name, kp);
  kernel->prepare(1);
  auto sched = sched::MakeScheduler(sched_name);
  SimParams sp;
  sp.host_threads = host_threads;
  SimEngine engine(topo, sp);
  const SimResult r = engine.run(*sched, kernel->make_root());
  EXPECT_TRUE(kernel->verify()) << sched_name << "/" << kernel_name;
  return r;
}

void expect_identical(const SimResult& serial, const SimResult& par,
                      const std::string& label) {
  EXPECT_EQ(serial.makespan_cycles, par.makespan_cycles) << label;
  const Counters& a = serial.counters;
  const Counters& b = par.counters;
  EXPECT_EQ(a.accesses, b.accesses) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.dram_reads, b.dram_reads) << label;
  EXPECT_EQ(a.dram_writebacks, b.dram_writebacks) << label;
  EXPECT_EQ(a.remote_dram_accesses, b.remote_dram_accesses) << label;
  EXPECT_EQ(a.queue_wait_cycles, b.queue_wait_cycles) << label;
  ASSERT_EQ(a.level.size(), b.level.size()) << label;
  for (std::size_t lvl = 1; lvl < a.level.size(); ++lvl) {
    EXPECT_EQ(a.level[lvl].hits, b.level[lvl].hits) << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].misses, b.level[lvl].misses)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].evictions, b.level[lvl].evictions)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].back_invalidations, b.level[lvl].back_invalidations)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].coherence_invalidations,
              b.level[lvl].coherence_invalidations)
        << label << " L" << lvl;
  }
}

class SimParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

INSTANTIATE_TEST_SUITE_P(
    SchedulerByKernel, SimParallelEquivalence,
    ::testing::Combine(::testing::Values("WS", "PWS", "SB", "SB-D"),
                       ::testing::Values("quicksort", "samplesort")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';  // "SB-D" → valid gtest name
      }
      return name;
    });

TEST_P(SimParallelEquivalence, HostThreadsDoNotChangeResults) {
  const auto& [sched_name, kernel_name] = GetParam();
  // Small n keeps the test fast; the scaled-down preset still has 4
  // sockets, so host_threads ∈ {2, 4} exercise partial and full sharding.
  const machine::Topology topo(machine::Preset("xeon7560_s8"));
  const std::size_t n = 20000;

  const SimResult serial = run_once(topo, sched_name, kernel_name, n, 1);
  for (int host_threads : {2, 4}) {
    const SimResult par =
        run_once(topo, sched_name, kernel_name, n, host_threads);
    expect_identical(serial, par,
                     sched_name + "/" + kernel_name + " ht=" +
                         std::to_string(host_threads));
  }
}

}  // namespace
}  // namespace sbs::sim
