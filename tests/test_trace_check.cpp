// Tests for the JSONL trace format (schema 2 + schema 1 compat) and the
// offline replay checker (verify::CheckTrace / tools/trace_check).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "machine/config.h"
#include "machine/topology.h"
#include "runtime/jobs.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "trace/jsonl_trace.h"
#include "verify/trace_check.h"

namespace sbs::verify {
namespace {

using machine::Preset;
using machine::Topology;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;
using trace::EventKind;
using trace::JsonlTrace;

Job* tree(std::uint64_t bytes, int depth) {
  if (depth == 0) return make_job([](Strand&) {}, bytes);
  return make_job(
      [bytes, depth](Strand& strand) {
        strand.fork2(tree(bytes / 2, depth - 1), tree(bytes / 2, depth - 1),
                     make_nop());
      },
      bytes, 64);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Run `tree` under `sched_name` on mini with tracing and export the JSONL
/// trace; returns the file path.
std::string export_run(const std::string& sched_name) {
  const machine::MachineConfig cfg = Preset("mini");
  const Topology topo(cfg);
  sched::SchedulerSpec spec;
  spec.name = sched_name;
  auto sched = sched::MakeScheduler(spec);
  sim::SimEngine engine(topo);
  engine.enable_tracing();
  engine.run(*sched, tree(1u << 17, 8));

  trace::TraceInfo info;
  info.engine = "sim";
  info.scheduler = sched_name;
  info.machine = cfg.name;
  trace::JsonlTraceParams params;
  params.config_text = machine::ToConfigText(cfg);
  if (sched_name == "SB" || sched_name == "SB-D") {
    params.sigma = 0.5;
    params.mu = 0.2;
  }
  const std::string path = temp_path("trace_" + sched_name + ".jsonl");
  EXPECT_TRUE(trace::WriteJsonlTrace(*engine.recorder(), path, info, params));
  return path;
}

TEST(TraceCheck, RealTracesFromAllSchedulersPass) {
  for (const char* name : {"WS", "PWS", "SB", "SB-D"}) {
    const TraceCheckResult result = CheckTraceFile(export_run(name));
    EXPECT_TRUE(result.ok()) << name << ": " << result.report();
    EXPECT_GT(result.events, 0u) << name;
  }
}

TEST(TraceCheck, SbTraceReplaysOccupancyAndBalances) {
  const TraceCheckResult result = CheckTraceFile(export_run("SB"));
  ASSERT_TRUE(result.ok()) << result.report();
  EXPECT_GT(result.anchors, 0u);
  EXPECT_EQ(result.anchors, result.releases);
  EXPECT_EQ(result.forks, result.joins);
  EXPECT_TRUE(result.replayed_occupancy);  // sim = virtual time
}

TEST(TraceCheck, RoundTripPreservesHeaderAndEvents) {
  const std::string path = export_run("SB");
  JsonlTrace parsed;
  std::string error;
  ASSERT_TRUE(trace::ReadJsonlTrace(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed.schema, trace::kJsonlTraceSchema);
  EXPECT_EQ(parsed.scheduler, "SB");
  EXPECT_EQ(parsed.engine, "sim");
  EXPECT_TRUE(parsed.virtual_time);
  EXPECT_DOUBLE_EQ(parsed.params.sigma, 0.5);
  EXPECT_FALSE(parsed.params.config_text.empty());
  EXPECT_FALSE(parsed.records.empty());
}

// --- hand-built traces: targeted violations the checker must flag ---

struct TraceBuilder {
  machine::MachineConfig cfg = Preset("mini");
  Topology topo{cfg};
  JsonlTrace tr;

  TraceBuilder() {
    tr.schema = trace::kJsonlTraceSchema;
    tr.engine = "sim";
    tr.scheduler = "SB";
    tr.virtual_time = true;
    tr.workers = topo.num_threads();
    tr.params.sigma = 0.5;
    tr.params.mu = 0.2;
    tr.params.config_text = machine::ToConfigText(cfg);
  }

  void event(int worker, EventKind kind, std::uint64_t ts, std::uint64_t dur,
             std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
    JsonlTrace::Record record;
    record.worker = worker;
    record.event.kind = kind;
    record.event.ts = ts;
    record.event.dur = dur;
    record.event.a = a;
    record.event.b = b;
    record.event.c = c;
    tr.records.push_back(record);
  }
  void anchor(int worker, std::uint64_t ts, std::uint64_t bytes, int node,
              int ceiling = 0) {
    event(worker, EventKind::kAnchor, ts, bytes,
          static_cast<std::uint64_t>(topo.node(node).depth),
          static_cast<std::uint64_t>(node),
          static_cast<std::uint64_t>(ceiling));
  }
  void release(int worker, std::uint64_t ts, std::uint64_t bytes, int node,
               int ceiling = 0) {
    event(worker, EventKind::kRelease, ts, bytes,
          static_cast<std::uint64_t>(topo.node(node).depth),
          static_cast<std::uint64_t>(node),
          static_cast<std::uint64_t>(ceiling));
  }
};

TEST(TraceCheck, HandBuiltCleanTracePasses) {
  TraceBuilder b;
  // mini: L2 = 64 KB at depth 1, σ = 0.5 → befitting sizes (2048, 32768].
  const int l2 = b.topo.cache_of_thread(0, 1);
  b.anchor(0, 10, 20000, l2);
  b.release(0, 20, 20000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  EXPECT_TRUE(result.ok()) << result.report();
  EXPECT_TRUE(result.replayed_occupancy);
}

TEST(TraceCheck, FlagsAnchorOutsideWorkersSubtree) {
  TraceBuilder b;
  const int l2 = b.topo.cache_of_thread(0, 1);
  // Find a worker outside that L2's cluster (the other socket).
  int foreign = -1;
  for (int t = 0; t < b.topo.num_threads(); ++t) {
    if (!b.topo.thread_in_cluster(t, l2)) foreign = t;
  }
  ASSERT_GE(foreign, 0);
  b.anchor(foreign, 10, 20000, l2);
  b.release(foreign, 20, 20000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("outside its cache subtree"),
            std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsOversizedAnchor) {
  TraceBuilder b;
  const int l2 = b.topo.cache_of_thread(0, 1);
  b.anchor(0, 10, 40000, l2);  // 40000 > σM = 32768
  b.release(0, 20, 40000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("exceeds sigma*M"), std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsMisAnchoredTask) {
  TraceBuilder b;
  const int l2 = b.topo.cache_of_thread(0, 1);
  // 1000 bytes fits σM of the L1 below (2048) — anchoring it at L2 means it
  // sits above its befitting cache.
  b.anchor(0, 10, 1000, l2);
  b.release(0, 20, 1000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("above its befitting cache"),
            std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsDepthPayloadMismatch) {
  TraceBuilder b;
  const int l2 = b.topo.cache_of_thread(0, 1);
  b.event(0, EventKind::kAnchor, 10, 20000, /*depth=*/2,
          static_cast<std::uint64_t>(l2), 0);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("does not match node"), std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsUnreleasedAnchor) {
  TraceBuilder b;
  const int l2 = b.topo.cache_of_thread(0, 1);
  b.anchor(0, 10, 20000, l2);  // never released
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("unbalanced"), std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsSelfSteal) {
  TraceBuilder b;
  b.event(1, EventKind::kStealSuccess, 10, 0, /*victim=*/1, 0);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("stole from itself"), std::string::npos)
      << result.report();
}

TEST(TraceCheck, FlagsOverAdmissionInReplay) {
  TraceBuilder b;
  b.tr.params.sigma = 1.0;  // a single task may fill the whole cache
  const int l2 = b.topo.cache_of_thread(0, 1);
  int partner = -1;
  for (int t = 1; t < b.topo.num_threads(); ++t) {
    if (b.topo.thread_in_cluster(t, l2)) partner = t;
  }
  ASSERT_GE(partner, 0);
  // Two 40000-byte tasks live on one 65536-byte L2 at once: each is
  // individually befitting under σ=1.0 but together they break the bound.
  b.anchor(0, 10, 40000, l2);
  b.anchor(partner, 20, 40000, l2);
  b.release(0, 30, 40000, l2);
  b.release(partner, 40, 40000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("bounded property violated in replay"),
            std::string::npos)
      << result.report();
}

TEST(TraceCheck, SerializedAdmissionPassesReplay) {
  // Control for the previous test: the same two tasks one after the other.
  TraceBuilder b;
  b.tr.params.sigma = 1.0;
  const int l2 = b.topo.cache_of_thread(0, 1);
  b.anchor(0, 10, 40000, l2);
  b.release(0, 20, 40000, l2);
  b.anchor(0, 30, 40000, l2);
  b.release(0, 40, 40000, l2);
  const TraceCheckResult result = CheckTrace(b.tr);
  EXPECT_TRUE(result.ok()) << result.report();
}

// --- schema 1 backward compatibility ---

TEST(TraceCheck, Schema1TraceStillParses) {
  const std::string path = temp_path("schema1.jsonl");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f,
               "{\"schema\":1,\"engine\":\"sim\",\"scheduler\":\"WS\","
               "\"machine\":\"mini\",\"virtual_time\":true,\"workers\":4,"
               "\"dropped_events\":0}\n");
  std::fprintf(f, "{\"type\":\"event\",\"w\":0,\"k\":\"fork\",\"ts\":5,"
                  "\"dur\":0,\"a\":2,\"b\":0}\n");
  std::fprintf(f, "{\"type\":\"event\",\"w\":1,\"k\":\"join\",\"ts\":9,"
                  "\"dur\":0,\"a\":0,\"b\":0}\n");
  std::fclose(f);

  JsonlTrace parsed;
  std::string error;
  ASSERT_TRUE(trace::ReadJsonlTrace(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed.schema, 1);
  EXPECT_TRUE(parsed.params.config_text.empty());
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].event.c, 0u);  // missing "c" defaults

  // The replay checker refuses schedule-level checks without a config, but
  // says so as a violation instead of crashing.
  const TraceCheckResult result = CheckTrace(parsed);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("no machine config"), std::string::npos)
      << result.report();
}

TEST(TraceCheck, MalformedFileIsAParseViolation) {
  const std::string path = temp_path("garbage.jsonl");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "this is not json\n");
  std::fclose(f);
  const TraceCheckResult result = CheckTraceFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.report().find("does not parse"), std::string::npos);
}

}  // namespace
}  // namespace sbs::verify
