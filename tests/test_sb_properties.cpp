// Property tests for the space-bounded schedulers (paper §4.1): the
// anchored and bounded properties, the σ and µ parameters, and drain-clean
// termination — swept across machine shapes and parameter values.
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sched/sb.h"
#include "sim/engine.h"

namespace sbs::sched {
namespace {

using machine::Preset;
using machine::Topology;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// A fork-join tree of annotated tasks with known footprints.
Job* tree(std::uint64_t bytes, int depth) {
  if (depth == 0) return make_job([](Strand&) {}, bytes);
  return make_job(
      [bytes, depth](Strand& strand) {
        strand.fork2(tree(bytes / 2, depth - 1), tree(bytes / 2, depth - 1),
                     make_nop());
      },
      bytes, 64);
}

class SigmaMu
    : public ::testing::TestWithParam<std::tuple<double, double, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SigmaMu,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.9, 1.0),  // sigma
                       ::testing::Values(0.1, 0.2, 1.0),       // mu
                       ::testing::Bool()));                    // distributed

TEST_P(SigmaMu, BoundedPropertyHoldsThroughoutRun) {
  const auto& [sigma, mu, distributed] = GetParam();
  const Topology topo(Preset("mini_deep"));

  SpaceBounded::Options options;
  options.sigma = sigma;
  options.mu = mu;
  options.distributed_top = distributed;
  SpaceBounded sched(options, /*seed=*/5);

  sim::SimEngine engine(topo);
  // Root footprint spans several cache levels of mini_deep (L3 256 KB).
  engine.run(sched, tree(1u << 20, 10));

  // The bounded property (§4.1): anchored-task bytes plus µ-capped strand
  // bytes never exceeded any cache's capacity. Occupancy is tracked
  // exactly by the scheduler; check its high-water mark per cache node.
  // Strand charges are bounded by one per hardware thread below the node.
  for (int id = 0; id < topo.num_nodes(); ++id) {
    const auto& node = topo.node(id);
    if (node.depth < 1 || node.depth >= topo.leaf_depth()) continue;
    const std::uint64_t capacity = topo.level_of(id).size;
    const std::uint64_t strand_allowance =
        static_cast<std::uint64_t>(
            mu * static_cast<double>(capacity)) *
        static_cast<std::uint64_t>(node.num_leaves);
    EXPECT_LE(sched.max_occupied(id), capacity + strand_allowance)
        << "node " << id << " depth " << node.depth;
    // And after the run everything must have been released.
    EXPECT_EQ(sched.occupied(id), 0u) << "node " << id;
  }
}

TEST_P(SigmaMu, KernelRunsVerifyAcrossParameters) {
  const auto& [sigma, mu, distributed] = GetParam();
  kernels::KernelParams params;
  params.n = 60000;
  params.base = 512;
  auto kernel = kernels::MakeKernel("rrm", params);
  kernel->prepare(11);

  SpaceBounded::Options options;
  options.sigma = sigma;
  options.mu = mu;
  options.distributed_top = distributed;
  SpaceBounded sched(options);

  const Topology topo(Preset("mini"));
  sim::SimEngine engine(topo);
  engine.run(sched, kernel->make_root());
  EXPECT_TRUE(kernel->verify());
}

TEST(SpaceBounded, TasksAnchorAtBefittingLevels) {
  // A task of ~half-L2 footprint on mini (L2 64 KB shared, σ=0.5) must
  // anchor at the L2 level, and its small subtasks must not re-anchor.
  const Topology topo(Preset("mini"));
  SpaceBounded sched(SpaceBounded::Options{});
  sim::SimEngine engine(topo);
  engine.run(sched, tree(/*bytes=*/48 * 1024, /*depth=*/6));
  const std::string stats = sched.stats_string();
  // Root (96K... wait: tree(48K) root task = 48K bytes > σ64K/2=32K →
  // anchors at root; children 24K ≤ 32K → anchor at L2 (depth 1).
  EXPECT_NE(stats.find("anchors="), std::string::npos);
  EXPECT_GT(sched.max_occupied(1), 0u);  // some depth-1 cache was charged
}

TEST(SpaceBounded, RejectsInvalidParameters) {
  SpaceBounded::Options bad;
  bad.sigma = 0.0;
  EXPECT_DEATH({ SpaceBounded s(bad); }, "sigma");
  bad.sigma = 1.5;
  EXPECT_DEATH({ SpaceBounded s(bad); }, "sigma");
  SpaceBounded::Options bad_mu;
  bad_mu.mu = 0.0;
  EXPECT_DEATH({ SpaceBounded s(bad_mu); }, "mu");
}

TEST(SpaceBounded, HigherSigmaAnchorsFewerTasksConcurrently) {
  // σ=1.0 lets a single befitting task consume a whole cache, so admission
  // failures should be at least as common as with σ=0.5 (Fig. 10's cause).
  const Topology topo(Preset("mini"));

  auto run_with_sigma = [&](double sigma) {
    SpaceBounded::Options options;
    options.sigma = sigma;
    SpaceBounded sched(options, 3);
    sim::SimEngine engine(topo);
    kernels::KernelParams params;
    params.n = 120000;
    params.base = 512;
    auto kernel = kernels::MakeKernel("rrm", params);
    kernel->prepare(17);
    const auto result = engine.run(sched, kernel->make_root());
    return result.stats.avg_empty_s();
  };
  // Not strictly monotone in general, but σ=1.0 should not load-balance
  // better than σ=0.5 on this memory-bound recursion.
  EXPECT_GE(run_with_sigma(1.0) * 1.05, run_with_sigma(0.5));
}

TEST(SpaceBounded, WorksOnRealThreadsToo) {
  const Topology topo(Preset("mini_deep"));
  SpaceBounded sched{SpaceBounded::Options{}};
  runtime::ThreadPool pool(topo);
  pool.run(sched, tree(1u << 18, 8));
  for (int id = 0; id < topo.num_nodes(); ++id) {
    EXPECT_EQ(sched.occupied(id), 0u);
  }
}

}  // namespace
}  // namespace sbs::sched
