// Tests for the scheduler-as-a-service subsystem (src/service/): σM-budget
// admission edge cases, runtime lifecycle across all four schedulers,
// arrival/workload determinism, and policy mechanics.
//
// Machine: the "mini" preset — 2 sockets × 2 cores, L2 64KB and L1 4KB per
// line of descent. With σ = 0.5 the admission budgets are 32KB per L2 node
// and 2KB per L1 node, so a 20KB declaration befits an L2 and two of them
// exhaust one socket's budget exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "util/cpu_relax.h"
#include "service/admission.h"
#include "service/arrivals.h"
#include "service/runtime.h"
#include "service/workload.h"

namespace sbs {
namespace {

machine::Topology MiniTopo() { return machine::Topology(machine::Preset("mini")); }

service::RuntimeOptions BaseOptions(const std::string& sched,
                                    service::AdmissionPolicy policy) {
  service::RuntimeOptions options;
  options.scheduler.name = sched;
  options.admission.policy = policy;
  options.num_threads = 4;
  options.num_tenants = 4;
  return options;
}

service::WorkloadOptions SmallMix() {
  service::WorkloadOptions mix;
  mix.tenants = 4;
  mix.kernels = {"quicksort", "samplesort"};
  mix.min_n = 256;
  mix.max_n = 1024;  // ≤ 16KB declared, fits the 32KB L2 budget
  return mix;
}

/// Holds its strand (and therefore its σM reservation) until opened.
/// Deterministic way to pin admission budget in tests.
class GateJob final : public runtime::SBJob {
 public:
  GateJob(std::uint64_t bytes, std::atomic<bool>* open)
      : SBJob(bytes), open_(open) {}
  void execute(runtime::Strand&) override {
    while (!open_->load(std::memory_order_acquire)) util::cpu_relax();
  }

 private:
  std::atomic<bool>* open_;
};

// --- AdmissionController unit tests -----------------------------------

TEST(Admission, BefitDepthFollowsBudgets) {
  const auto topo = MiniTopo();
  service::AdmissionOptions opts;  // sigma 0.5
  service::AdmissionController ctl(topo, opts);
  EXPECT_EQ(ctl.befit_depth(1 << 10), 2);   // 1KB ≤ 2KB → L1
  EXPECT_EQ(ctl.befit_depth(16 << 10), 1);  // 16KB ≤ 32KB → L2
  EXPECT_EQ(ctl.befit_depth(64 << 10), 0);  // 64KB fits nothing but memory
  EXPECT_TRUE(ctl.fits_any_cache(32 << 10));
  EXPECT_FALSE(ctl.fits_any_cache((32 << 10) + 1));
}

TEST(Admission, TooLargeIsTerminalNoBudgetIsNot) {
  const auto topo = MiniTopo();
  service::AdmissionController ctl(topo, service::AdmissionOptions{});
  const auto too_large = ctl.try_admit(1 << 20);
  EXPECT_EQ(too_large.kind, service::AdmissionDecision::Kind::kTooLarge);

  // Two 20KB reservations exhaust both L2 budgets (32KB each).
  const auto a = ctl.try_admit(20 << 10);
  const auto b = ctl.try_admit(20 << 10);
  ASSERT_EQ(a.kind, service::AdmissionDecision::Kind::kAdmitted);
  ASSERT_EQ(b.kind, service::AdmissionDecision::Kind::kAdmitted);
  EXPECT_NE(a.node, b.node);  // least-loaded placement spreads sockets
  const auto c = ctl.try_admit(20 << 10);
  EXPECT_EQ(c.kind, service::AdmissionDecision::Kind::kNoBudget);

  ctl.release(a.node, 20 << 10);
  const auto d = ctl.try_admit(20 << 10);
  EXPECT_EQ(d.kind, service::AdmissionDecision::Kind::kAdmitted);
  EXPECT_EQ(d.node, a.node);
  ctl.release(b.node, 20 << 10);
  ctl.release(d.node, 20 << 10);
  EXPECT_EQ(ctl.reserved(a.node), 0u);
}

TEST(Admission, ExactBudgetAdmitsAndExhausts) {
  const auto topo = MiniTopo();
  service::AdmissionController ctl(topo, service::AdmissionOptions{});
  // Exactly σM = 32KB: must be admitted (bound is ≤, like the scheduler's
  // own occupancy check), and must exhaust that node completely.
  const auto a = ctl.try_admit(32 << 10);
  ASSERT_EQ(a.kind, service::AdmissionDecision::Kind::kAdmitted);
  const auto b = ctl.try_admit(32 << 10);
  ASSERT_EQ(b.kind, service::AdmissionDecision::Kind::kAdmitted);
  // Even 1KB (L1-befitting) cannot charge its path now: every L2 is full.
  const auto c = ctl.try_admit(1 << 10);
  EXPECT_EQ(c.kind, service::AdmissionDecision::Kind::kNoBudget);
  ctl.release(a.node, 32 << 10);
  ctl.release(b.node, 32 << 10);
}

TEST(Admission, L1ChargesPropagateToL2) {
  const auto topo = MiniTopo();
  service::AdmissionController ctl(topo, service::AdmissionOptions{});
  // Four 2KB L1 reservations (one per core) charge 4KB to each L2.
  std::vector<service::AdmissionDecision> taken;
  for (int i = 0; i < 4; ++i) {
    const auto d = ctl.try_admit(2 << 10);
    ASSERT_EQ(d.kind, service::AdmissionDecision::Kind::kAdmitted);
    taken.push_back(d);
  }
  // A fifth L1-sized job finds every L1 full.
  EXPECT_EQ(ctl.try_admit(2 << 10).kind,
            service::AdmissionDecision::Kind::kNoBudget);
  // And each L2 already carries 4KB, so only 28KB of L2 budget remains.
  EXPECT_EQ(ctl.try_admit(30 << 10).kind,
            service::AdmissionDecision::Kind::kNoBudget);
  EXPECT_EQ(ctl.try_admit(28 << 10).kind,
            service::AdmissionDecision::Kind::kAdmitted);
  for (const auto& d : taken) ctl.release(d.node, 2 << 10);
}

// --- Runtime lifecycle across schedulers ------------------------------

TEST(ServiceRuntime, CompletesStreamOnEveryScheduler) {
  const auto topo = MiniTopo();
  for (const char* sched : {"WS", "PWS", "SB", "SB-D"}) {
    // Queue policy: the 24-job burst overcommits the mini machine's 64KB
    // of σM budget, so the surplus parks and drains as completions free it.
    auto options = BaseOptions(sched, service::AdmissionPolicy::kQueue);
    options.admission.queue_timeout_s = 30.0;
    service::Runtime runtime(topo, options);
    service::Workload workload(SmallMix(), /*seed=*/21);
    std::vector<std::pair<service::JobHandle, kernels::Kernel*>> jobs;
    for (int i = 0; i < 24; ++i) {
      service::Request req = workload.next();
      ASSERT_FALSE(req.dropped);
      jobs.emplace_back(
          runtime.submit(req.root, req.declared_bytes, req.tenant),
          req.instance);
    }
    runtime.drain();
    for (auto& [handle, instance] : jobs) {
      EXPECT_EQ(runtime.wait(handle), service::JobState::kDone) << sched;
      EXPECT_TRUE(instance->verify()) << sched;
      EXPECT_GT(handle.sojourn_s(), 0.0);
      EXPECT_GE(handle.sojourn_s(), handle.queueing_s());
      workload.release(instance);
    }
    const auto agg = runtime.metrics().aggregate();
    EXPECT_EQ(agg.submitted, 24u) << sched;
    EXPECT_EQ(agg.completed, 24u) << sched;
    EXPECT_EQ(agg.rejected, 0u) << sched;
    runtime.shutdown();
  }
}

TEST(ServiceRuntime, ConcurrentClientsUnderVerify) {
  const auto topo = MiniTopo();
  auto options = BaseOptions("SB", service::AdmissionPolicy::kReject);
  options.verify = true;
  service::Runtime runtime(topo, options);
  std::atomic<int> done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      service::Workload workload(SmallMix(), 100 + static_cast<unsigned>(c));
      for (int i = 0; i < 12; ++i) {
        service::Request req = workload.next();
        if (req.dropped) continue;
        auto handle = runtime.submit(req.root, req.declared_bytes, req.tenant);
        if (runtime.wait(handle) == service::JobState::kDone &&
            req.instance->verify()) {
          done.fetch_add(1);
        }
        workload.release(req.instance);
      }
    });
  }
  for (auto& t : clients) t.join();
  runtime.shutdown();
  EXPECT_EQ(done.load(), 24);
  ASSERT_NE(runtime.verifier(), nullptr);
  EXPECT_TRUE(runtime.verifier()->ok()) << runtime.verifier()->report();
}

// --- Admission edge cases through the runtime -------------------------

TEST(ServiceRuntime, TooLargeRejectsImmediatelyNeverWedges) {
  const auto topo = MiniTopo();
  // Queue policy: an over-large job must NOT be parked (it could never be
  // admitted — it would pin the FIFO head until timeout), it must fail now.
  auto options = BaseOptions("SB", service::AdmissionPolicy::kQueue);
  options.admission.queue_timeout_s = 30.0;  // a wedge would hang the test
  service::Runtime runtime(topo, options);

  kernels::KernelParams params;
  params.n = 512;
  auto kernel = kernels::MakeKernel("quicksort", params);
  kernel->prepare(3);
  auto handle =
      runtime.submit(kernel->make_root(), /*declared=*/1 << 26, /*tenant=*/0);
  EXPECT_EQ(runtime.wait(handle), service::JobState::kRejected);

  // The service keeps serving honest submissions afterwards.
  auto ok = runtime.submit(kernel->make_root(), 8 << 10, 1);
  EXPECT_EQ(runtime.wait(ok), service::JobState::kDone);
  EXPECT_TRUE(kernel->verify());
  const auto agg = runtime.metrics().aggregate();
  EXPECT_EQ(agg.rejected, 1u);
  EXPECT_EQ(agg.completed, 1u);
  runtime.shutdown();
}

TEST(ServiceRuntime, QueuedJobTimesOutWhileBudgetHeld) {
  const auto topo = MiniTopo();
  auto options = BaseOptions("SB", service::AdmissionPolicy::kQueue);
  options.admission.queue_timeout_s = 0.2;
  service::Runtime runtime(topo, options);

  std::atomic<bool> open{false};
  // Two gates pin the full 32KB budget of each L2 node.
  auto g1 = runtime.submit(new GateJob(32 << 10, &open),  // lint:allow(raw-new)
                           32 << 10, 0);
  auto g2 = runtime.submit(new GateJob(32 << 10, &open),  // lint:allow(raw-new)
                           32 << 10, 0);

  kernels::KernelParams params;
  params.n = 512;
  auto kernel = kernels::MakeKernel("quicksort", params);
  kernel->prepare(5);
  auto parked = runtime.submit(kernel->make_root(), 8 << 10, 1);
  // Budget is provably held, so the submission can only end by deadline.
  EXPECT_EQ(runtime.wait(parked), service::JobState::kTimedOut);
  EXPECT_EQ(runtime.metrics().aggregate().timed_out, 1u);

  open.store(true, std::memory_order_release);
  EXPECT_EQ(runtime.wait(g1), service::JobState::kDone);
  EXPECT_EQ(runtime.wait(g2), service::JobState::kDone);
  runtime.shutdown();
}

TEST(ServiceRuntime, QueuedJobAdmittedWhenBudgetFrees) {
  const auto topo = MiniTopo();
  auto options = BaseOptions("SB", service::AdmissionPolicy::kQueue);
  options.admission.queue_timeout_s = 30.0;
  service::Runtime runtime(topo, options);

  std::atomic<bool> open{false};
  auto g1 = runtime.submit(new GateJob(32 << 10, &open),  // lint:allow(raw-new)
                           32 << 10, 0);
  auto g2 = runtime.submit(new GateJob(32 << 10, &open),  // lint:allow(raw-new)
                           32 << 10, 0);

  kernels::KernelParams params;
  params.n = 512;
  auto kernel = kernels::MakeKernel("quicksort", params);
  kernel->prepare(7);
  auto parked = runtime.submit(kernel->make_root(), 8 << 10, 1);
  EXPECT_EQ(parked.state(), service::JobState::kQueued);

  open.store(true, std::memory_order_release);  // completions free budget
  EXPECT_EQ(runtime.wait(parked), service::JobState::kDone);
  EXPECT_TRUE(kernel->verify());
  EXPECT_EQ(runtime.wait(g1), service::JobState::kDone);
  EXPECT_EQ(runtime.wait(g2), service::JobState::kDone);
  EXPECT_GT(runtime.metrics().aggregate().queued, 0u);
  runtime.shutdown();
}

TEST(ServiceRuntime, DegradePolicyRunsOverBudgetWorkUnderVerify) {
  const auto topo = MiniTopo();
  auto options = BaseOptions("SB", service::AdmissionPolicy::kDegrade);
  options.verify = true;
  service::Runtime runtime(topo, options);
  EXPECT_NE(runtime.scheduler().name().find("wsfallback"), std::string::npos);

  auto mix = SmallMix();
  mix.overdeclare = 1000.0;  // every declaration exceeds every cache
  service::Workload workload(mix, 31);
  std::vector<std::pair<service::JobHandle, kernels::Kernel*>> jobs;
  for (int i = 0; i < 16; ++i) {
    service::Request req = workload.next();
    ASSERT_FALSE(req.dropped);
    jobs.emplace_back(
        runtime.submit(req.root, req.declared_bytes, req.tenant),
        req.instance);
  }
  for (auto& [handle, instance] : jobs) {
    EXPECT_EQ(runtime.wait(handle), service::JobState::kDone);
    EXPECT_TRUE(instance->verify());
    workload.release(instance);
  }
  const auto agg = runtime.metrics().aggregate();
  EXPECT_EQ(agg.degraded, 16u);
  EXPECT_EQ(agg.completed, 16u);
  EXPECT_EQ(agg.rejected, 0u);
  runtime.shutdown();
  ASSERT_NE(runtime.verifier(), nullptr);
  EXPECT_TRUE(runtime.verifier()->ok()) << runtime.verifier()->report();
}

TEST(ServiceRuntime, OverdeclaredStreamIsRejectedNotAbsorbed) {
  const auto topo = MiniTopo();
  auto options = BaseOptions("SB", service::AdmissionPolicy::kReject);
  service::Runtime runtime(topo, options);
  auto mix = SmallMix();
  mix.overdeclare = 1000.0;
  service::Workload workload(mix, 77);
  for (int i = 0; i < 8; ++i) {
    service::Request req = workload.next();
    ASSERT_FALSE(req.dropped);
    auto handle = runtime.submit(req.root, req.declared_bytes, req.tenant);
    EXPECT_EQ(runtime.wait(handle), service::JobState::kRejected);
    workload.release(req.instance);
  }
  const auto agg = runtime.metrics().aggregate();
  EXPECT_EQ(agg.rejected, 8u);
  EXPECT_DOUBLE_EQ(agg.rejection_rate(), 1.0);
  // Nothing was charged: the full budget is still there for honest work.
  kernels::KernelParams params;
  params.n = 512;
  auto kernel = kernels::MakeKernel("quicksort", params);
  kernel->prepare(9);
  auto handle = runtime.submit(kernel->make_root(), 32 << 10, 0);
  EXPECT_EQ(runtime.wait(handle), service::JobState::kDone);
  runtime.shutdown();
}

// --- Determinism ------------------------------------------------------

TEST(ServiceWorkload, DeterministicInSeed) {
  const auto mix = SmallMix();
  service::Workload a(mix, 42), b(mix, 42), c(mix, 43);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    service::Request ra = a.next(), rb = b.next(), rc = c.next();
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.kernel, rb.kernel);
    EXPECT_EQ(ra.n, rb.n);
    EXPECT_EQ(ra.declared_bytes, rb.declared_bytes);
    any_diff |= ra.tenant != rc.tenant || ra.n != rc.n;
    a.release(ra.instance);
    b.release(rb.instance);
    c.release(rc.instance);
  }
  EXPECT_TRUE(any_diff);  // different seed, different mix
}

TEST(ServiceArrivals, DeterministicInSeedAndMonotone) {
  for (const char* kind : {"poisson", "mmpp", "diurnal"}) {
    auto a = service::MakeArrivals(kind, 1000.0, 7);
    auto b = service::MakeArrivals(kind, 1000.0, 7);
    auto c = service::MakeArrivals(kind, 1000.0, 8);
    double prev = 0;
    bool any_diff = false;
    for (int i = 0; i < 200; ++i) {
      const double ta = a->next();
      EXPECT_DOUBLE_EQ(ta, b->next()) << kind;
      any_diff |= ta != c->next();
      EXPECT_GE(ta, prev) << kind;
      prev = ta;
    }
    EXPECT_TRUE(any_diff) << kind;
  }
}

TEST(ServiceArrivals, PoissonMeanRateIsRight) {
  auto p = service::MakeArrivals("poisson", 500.0, 99);
  double last = 0;
  for (int i = 0; i < 5000; ++i) last = p->next();
  // 5000 arrivals at 500/s ≈ 10s of stream, within a few percent.
  EXPECT_NEAR(last, 10.0, 0.8);
}

}  // namespace
}  // namespace sbs
