// Unit tests: machine configs, the Fig. 4 parser, and tree-of-caches topology.
#include <gtest/gtest.h>

#include <set>

#include "machine/config.h"
#include "machine/topology.h"

namespace sbs::machine {
namespace {

TEST(Config, Xeon7560PresetMatchesPaper) {
  const MachineConfig cfg = Preset("xeon7560");
  EXPECT_EQ(cfg.num_threads(), 32);
  EXPECT_EQ(cfg.num_cache_levels(), 3);
  ASSERT_EQ(cfg.levels.size(), 4u);
  EXPECT_EQ(cfg.levels[0].size, 0u);          // memory
  EXPECT_EQ(cfg.levels[1].size, 24ull << 20);  // 24 MB L3 (§5.2)
  EXPECT_EQ(cfg.levels[2].size, 1ull << 18);   // 256 KB L2
  EXPECT_EQ(cfg.levels[3].size, 1ull << 15);   // 32 KB L1
  EXPECT_EQ(cfg.levels[1].fanout, 8u);         // 8 cores per socket
  EXPECT_EQ(cfg.levels[0].fanout, 4u);         // 4 sockets
  for (const auto& lvl : cfg.levels) EXPECT_EQ(lvl.line, 64u);
}

TEST(Config, HyperthreadedPresetDoublesThreads) {
  const MachineConfig cfg = Preset("xeon7560_ht");
  EXPECT_EQ(cfg.num_threads(), 64);
  // Sibling hyperthreads sit on adjacent leaves under the same L1.
  EXPECT_EQ(cfg.leaf_position(0) + 1, cfg.leaf_position(32));
}

TEST(Config, PartialSocketPresets) {
  for (int cps : {1, 2, 4}) {
    const MachineConfig cfg = Preset("xeon7560_4x" + std::to_string(cps));
    EXPECT_EQ(cfg.num_threads(), 4 * cps);
  }
}

TEST(Config, PresetNamesAllConstruct) {
  for (const auto& name : PresetNames()) {
    EXPECT_NO_FATAL_FAILURE({ Preset(name).validate(); }) << name;
  }
}

TEST(Config, ParsesPaperFig4Verbatim) {
  // The literal specification entry from the paper's Fig. 4.
  const char* fig4 = R"(
    int num_procs=32;
    int num_levels = 4;
    int fan_outs[4] = {4,8,1,1};
    long long int sizes[4] = {0, 3*(1<<22), 1<<18, 1<<15};
    int block_sizes[4] = {64,64,64,64};
    int map[32] = {0,4,8,12,16,20,24,28,
                   2,6,10,14,18,22,26,30,
                   1,5,9,13,17,21,25,29,
                   3,7,11,15,19,23,27,31};
  )";
  const MachineConfig cfg = ParseConfig(fig4);
  EXPECT_EQ(cfg.num_threads(), 32);
  EXPECT_EQ(cfg.levels[1].size, 3ull * (1ull << 22));
  EXPECT_EQ(cfg.levels[2].size, 1ull << 18);
  EXPECT_EQ(cfg.core_map.size(), 32u);
  EXPECT_EQ(cfg.leaf_position(1), 4);
}

TEST(Config, ParserHandlesExtendedKeysAndComments) {
  const char* text = R"(
    // a toy two-level machine
    int num_levels = 2;
    int fan_outs[2] = {2, 2};
    long long int sizes[2] = {0, 1<<14};
    int block_sizes[2] = {64, 64};
    double ghz = 3.0;           /* block comment */
    int dram_latency = 77;
    double socket_bytes_per_cycle = 4.5;
  )";
  const MachineConfig cfg = ParseConfig(text);
  EXPECT_EQ(cfg.num_threads(), 4);
  EXPECT_DOUBLE_EQ(cfg.ghz, 3.0);
  EXPECT_EQ(cfg.dram_latency_cycles, 77u);
  EXPECT_DOUBLE_EQ(cfg.socket_bytes_per_cycle, 4.5);
}

TEST(Config, ToConfigTextRoundTrips) {
  for (const auto& name : {"xeon7560", "mini", "mini_deep"}) {
    const MachineConfig original = Preset(name);
    const MachineConfig reparsed = ParseConfig(ToConfigText(original));
    EXPECT_EQ(reparsed.num_threads(), original.num_threads());
    ASSERT_EQ(reparsed.levels.size(), original.levels.size());
    for (std::size_t i = 0; i < original.levels.size(); ++i) {
      EXPECT_EQ(reparsed.levels[i].size, original.levels[i].size) << name;
      EXPECT_EQ(reparsed.levels[i].fanout, original.levels[i].fanout) << name;
      EXPECT_EQ(reparsed.levels[i].line, original.levels[i].line) << name;
    }
    EXPECT_EQ(reparsed.core_map, original.core_map) << name;
  }
}

TEST(ConfigDeath, RejectsMismatchedNumProcs) {
  const char* bad = R"(
    int num_procs=8;
    int num_levels = 2;
    int fan_outs[2] = {2, 2};
    long long int sizes[2] = {0, 1<<14};
    int block_sizes[2] = {64, 64};
  )";
  EXPECT_DEATH({ ParseConfig(bad); }, "num_procs");
}

TEST(ConfigDeath, RejectsGrowingCaches) {
  MachineConfig cfg = Preset("mini");
  cfg.levels[2].size = cfg.levels[1].size * 2;  // L1 bigger than L2
  EXPECT_DEATH({ cfg.validate(); }, "decrease");
}

TEST(Topology, XeonShape) {
  const Topology topo(Preset("xeon7560"));
  EXPECT_EQ(topo.num_threads(), 32);
  EXPECT_EQ(topo.leaf_depth(), 4);
  EXPECT_EQ(topo.num_cache_levels(), 3);
  // 1 memory + 4 L3 + 32 L2 + 32 L1 + 32 leaves = 101 nodes.
  EXPECT_EQ(topo.num_nodes(), 101);
  EXPECT_EQ(topo.nodes_at_depth(1).size(), 4u);
  EXPECT_EQ(topo.nodes_at_depth(2).size(), 32u);
}

TEST(Topology, ClustersPartitionThreads) {
  const Topology topo(Preset("xeon7560"));
  std::set<int> seen;
  for (int socket : topo.nodes_at_depth(1)) {
    const auto threads = topo.threads_under(socket);
    EXPECT_EQ(threads.size(), 8u);
    for (int t : threads) {
      EXPECT_TRUE(seen.insert(t).second) << "thread in two socket clusters";
      EXPECT_TRUE(topo.thread_in_cluster(t, socket));
      EXPECT_EQ(topo.socket_of_thread(t), socket);
    }
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Topology, Fig4MapSpreadsLogicalCoresAcrossSockets) {
  const Topology topo(Preset("xeon7560"));
  // With the Fig. 4 numbering, logical cores 0..7 occupy positions
  // 0,4,8,...,28 — two per socket.
  std::set<int> sockets;
  for (int t = 0; t < 8; ++t) sockets.insert(topo.socket_of_thread(t));
  EXPECT_EQ(sockets.size(), 4u);
}

TEST(Topology, AncestorChainIsMonotonic) {
  const Topology topo(Preset("mini_deep"));
  for (int t = 0; t < topo.num_threads(); ++t) {
    const int leaf = topo.leaf_of_thread(t);
    EXPECT_EQ(topo.thread_of_leaf(leaf), t);
    int prev = leaf;
    for (int d = topo.leaf_depth() - 1; d >= 0; --d) {
      const int anc = topo.ancestor_at_depth(leaf, d);
      EXPECT_EQ(topo.node(anc).depth, d);
      EXPECT_EQ(topo.node(prev).parent, anc);
      prev = anc;
    }
    EXPECT_EQ(prev, topo.root());
  }
}

TEST(Topology, LeafCountsConsistent) {
  for (const auto& name : PresetNames()) {
    const Topology topo(Preset(name));
    EXPECT_EQ(topo.node(topo.root()).num_leaves, topo.num_threads()) << name;
    for (int id = 0; id < topo.num_nodes(); ++id) {
      const Node& n = topo.node(id);
      if (n.num_children == 0) continue;
      int child_leaves = 0;
      for (int c = n.first_child; c < n.first_child + n.num_children; ++c)
        child_leaves += topo.node(c).num_leaves;
      EXPECT_EQ(child_leaves, n.num_leaves) << name << " node " << id;
    }
  }
}

TEST(Topology, DescribeMentionsEveryLevel) {
  const Topology topo(Preset("xeon7560"));
  const std::string desc = topo.describe();
  for (const char* label : {"mem", "L3", "L2", "L1", "32 hardware"}) {
    EXPECT_NE(desc.find(label), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace sbs::machine
