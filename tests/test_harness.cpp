// Tests for the experiment harness: matrix shape, verification wiring,
// bandwidth sweeps, and figure-table rendering.
#include <gtest/gtest.h>

#include "harness/bench_cli.h"
#include "harness/experiment.h"

namespace sbs::harness {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.kernel = "rrm";
  spec.machine = "mini";
  spec.params.n = 30000;
  spec.params.base = 512;
  spec.schedulers = {"WS", "SB"};
  spec.repetitions = 2;
  return spec;
}

TEST(Harness, MatrixShapeAndOrdering) {
  ExperimentSpec spec = small_spec();
  spec.bandwidth_sockets = {2, 1};
  const auto results = RunExperiment(spec, /*progress=*/false);
  ASSERT_EQ(results.size(), 4u);  // 2 bandwidths x 2 schedulers
  EXPECT_EQ(results[0].bw_sockets, 2);
  EXPECT_EQ(results[0].scheduler, "WS");
  EXPECT_EQ(results[1].scheduler, "SB");
  EXPECT_EQ(results[2].bw_sockets, 1);
  for (const auto& c : results) {
    EXPECT_TRUE(c.verified);
    EXPECT_GT(c.active_s, 0.0);
    EXPECT_GT(c.llc_misses, 0.0);
    EXPECT_EQ(c.total_sockets, 2);
  }
  EXPECT_DOUBLE_EQ(results[0].bw_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(results[2].bw_fraction(), 0.5);
}

TEST(Harness, DefaultSweepIsFullBandwidth) {
  const auto results = RunExperiment(small_spec(), false);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].bw_sockets, 2);  // all of mini's sockets
}

TEST(Harness, LessBandwidthNeverSpeedsUpMemoryBoundRuns) {
  ExperimentSpec spec = small_spec();
  spec.params.n = 60000;
  spec.schedulers = {"WS"};
  spec.bandwidth_sockets = {2, 1};
  const auto results = RunExperiment(spec, false);
  const double full = results[0].active_s;
  const double half = results[1].active_s;
  EXPECT_GE(half, full * 0.99);
}

TEST(Harness, FigureTableHasRowPerCell) {
  const auto results = RunExperiment(small_spec(), false);
  const Table table = MakeFigureTable("test", results);
  EXPECT_EQ(table.num_rows(), results.size());
  const std::string text = table.to_string();
  EXPECT_NE(text.find("WS"), std::string::npos);
  EXPECT_NE(text.find("SB"), std::string::npos);
  EXPECT_NE(text.find("100% b/w"), std::string::npos);
}

TEST(BenchCli, ScaleOfPreset) {
  EXPECT_EQ(BenchOptions::ScaleOfPreset("xeon7560"), 1);
  EXPECT_EQ(BenchOptions::ScaleOfPreset("xeon7560_s8"), 8);
  EXPECT_EQ(BenchOptions::ScaleOfPreset("xeon7560_s8_ht"), 8);
  EXPECT_EQ(BenchOptions::ScaleOfPreset("xeon7560_s16_4x2"), 16);
  EXPECT_EQ(BenchOptions::ScaleOfPreset("mini"), 1);
}

TEST(BenchCli, DefaultsAndOverrides) {
  BenchOptions opts;
  EXPECT_EQ(opts.repetitions(), 2);
  EXPECT_EQ(opts.machine_for(), "xeon7560_s8");
  EXPECT_EQ(opts.machine_for("_ht"), "xeon7560_s8_ht");
  EXPECT_EQ(opts.problem_n(100, 1000), 100u);
  opts.full = true;
  EXPECT_EQ(opts.repetitions(), 10);
  EXPECT_EQ(opts.machine_for(), "xeon7560");
  EXPECT_EQ(opts.problem_n(100, 1000), 1000u);
  opts.n = 7;
  opts.reps = 4;
  opts.machine = "mini";
  EXPECT_EQ(opts.problem_n(100, 1000), 7u);
  EXPECT_EQ(opts.repetitions(), 4);
  EXPECT_EQ(opts.machine_for(), "mini");
}

}  // namespace
}  // namespace sbs::harness
