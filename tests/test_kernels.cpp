// Correctness tests for the seven benchmark kernels (paper §5.1): every
// kernel must produce verifiably correct output under every scheduler, on
// both the real thread-pool engine and the PMH simulator.
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/kernel.h"
#include "kernels/matmul.h"
#include "kernels/quadtree.h"
#include "kernels/quicksort.h"
#include "machine/topology.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sim/engine.h"

namespace sbs::kernels {
namespace {

using machine::Preset;
using machine::Topology;
using sched::MakeScheduler;

KernelParams small_params(const std::string& kernel) {
  KernelParams p;
  if (kernel == "matmul") {
    p.n = 256;  // order: recursion depth 1 above the 128 base
  } else if (kernel == "quicksort" || kernel == "samplesort" ||
             kernel == "aware-samplesort") {
    p.n = 200000;  // crosses the 16K serial and 128K partition thresholds
    p.target_bucket_bytes = 64 * 1024;  // several buckets even at this size
  } else if (kernel == "quadtree") {
    p.n = 120000;  // crosses the 16K sequential threshold
  } else {
    p.n = 100000;  // rrm / rrg
    p.base = 1024;
  }
  return p;
}

class KernelSched
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

INSTANTIATE_TEST_SUITE_P(
    All, KernelSched,
    ::testing::Combine(::testing::Values("rrm", "rrg", "quicksort",
                                         "samplesort", "aware-samplesort",
                                         "quadtree", "matmul"),
                       ::testing::Values("WS", "PWS", "CilkWS", "SB", "SB-D")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(KernelSched, CorrectOnRealThreads) {
  const auto& [kernel_name, sched_name] = GetParam();
  auto kernel = MakeKernel(kernel_name, small_params(kernel_name));
  kernel->prepare(/*seed=*/12345);

  const Topology topo(Preset("mini"));
  auto sched = MakeScheduler(sched_name);
  runtime::ThreadPool pool(topo);
  const runtime::RunStats stats = pool.run(*sched, kernel->make_root());
  EXPECT_TRUE(kernel->verify()) << kernel_name << " under " << sched_name;
  EXPECT_GT(stats.total_strands(), 10u);
}

TEST_P(KernelSched, CorrectOnSimulator) {
  const auto& [kernel_name, sched_name] = GetParam();
  KernelParams params = small_params(kernel_name);
  // Keep simulated runs quick: shrink the non-matmul problems.
  if (kernel_name != "matmul") params.n = params.n / 2;
  auto kernel = MakeKernel(kernel_name, params);
  kernel->prepare(/*seed=*/777);

  const Topology topo(Preset("mini_deep"));
  auto sched = MakeScheduler(sched_name);
  sim::SimEngine engine(topo);
  const sim::SimResult result = engine.run(*sched, kernel->make_root());
  EXPECT_TRUE(kernel->verify()) << kernel_name << " under " << sched_name;
  EXPECT_GT(result.counters.accesses, 0u);
  EXPECT_GT(result.makespan_cycles, 0u);
}

TEST(Kernels, RepeatedRunsAreRepeatable) {
  // make_root() must reset outputs so a kernel can be re-run (the harness
  // runs ≥10 repetitions per configuration).
  for (const auto& name : KernelNames()) {
    auto kernel = MakeKernel(name, small_params(name));
    kernel->prepare(1);
    const Topology topo(Preset("mini"));
    auto sched = MakeScheduler("WS");
    runtime::ThreadPool pool(topo, 2);
    for (int round = 0; round < 2; ++round) {
      pool.run(*sched, kernel->make_root());
      EXPECT_TRUE(kernel->verify()) << name << " round " << round;
    }
  }
}

TEST(Kernels, PrepareIsDeterministicInSeed) {
  // Two kernels with the same seed and the same allocation sequence (the
  // arena recycles the first kernel's chunks at identical addresses) must
  // simulate cycle-identically.
  const Topology topo(Preset("mini"));
  auto simulate = [&topo] {
    auto kernel = MakeKernel("quicksort", small_params("quicksort"));
    kernel->prepare(42);
    auto sched = MakeScheduler("WS");
    sim::SimEngine engine(topo);
    return engine.run(*sched, kernel->make_root());
  };
  const auto r1 = simulate();
  const auto r2 = simulate();
  EXPECT_EQ(r1.makespan_cycles, r2.makespan_cycles);
  EXPECT_EQ(r1.counters.llc_misses(), r2.counters.llc_misses());
}

TEST(Kernels, QuadTreeShapeIsSane) {
  KernelParams params = small_params("quadtree");
  QuadTree qt(params);
  qt.prepare(3);
  const Topology topo(Preset("mini"));
  auto sched = MakeScheduler("WS");
  runtime::ThreadPool pool(topo);
  pool.run(*sched, qt.make_root());
  ASSERT_TRUE(qt.verify());
  const QuadNode* root = qt.root_node();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, params.n);
  EXPECT_FALSE(root->leaf);  // 120K points certainly split
  // With uniform points, all four quadrants are non-trivial.
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(root->child[q]->count, params.n / 10);
  }
}

TEST(Kernels, MatMulAgainstNaiveExhaustively) {
  KernelParams params;
  params.n = 64;  // below the base-case size: exercises base dgemm alone
  MatMul mm(params);
  mm.prepare(5);
  const Topology topo(Preset("mini"));
  auto sched = MakeScheduler("WS");
  runtime::ThreadPool pool(topo, 1);
  pool.run(*sched, mm.make_root());
  EXPECT_TRUE(mm.verify());
}

TEST(Kernels, SortsHandleAdversarialInputs) {
  // Already-sorted, reverse-sorted, and all-equal inputs stress pivot
  // selection and the empty-left-partition guard.
  struct Case {
    const char* label;
    std::function<double(std::size_t, std::size_t)> gen;
  };
  const Case cases[] = {
      {"sorted", [](std::size_t i, std::size_t) { return double(i); }},
      {"reverse", [](std::size_t i, std::size_t n) { return double(n - i); }},
      {"equal", [](std::size_t, std::size_t) { return 1.0; }},
      {"two-values", [](std::size_t i, std::size_t) { return double(i % 2); }},
  };
  const Topology topo(Preset("mini"));
  for (const auto& c : cases) {
    constexpr std::size_t kN = 150000;
    mem::Array<double> data(kN), aux(kN);
    for (std::size_t i = 0; i < kN; ++i) data[i] = c.gen(i, kN);
    auto sched = MakeScheduler("WS");
    runtime::ThreadPool pool(topo);
    pool.run(*sched, MakeQuicksortTask(data.data(), aux.data(), 0, kN));
    EXPECT_TRUE(std::is_sorted(data.data(), data.data() + kN)) << c.label;
  }
}

TEST(Kernels, ProblemBytesReportsFootprint) {
  for (const auto& name : KernelNames()) {
    auto kernel = MakeKernel(name, small_params(name));
    EXPECT_GT(kernel->problem_bytes(), 0u) << name;
  }
}

}  // namespace
}  // namespace sbs::kernels
