// Engine fast-path knobs must be invisible to the simulation:
//
//  - Adaptive windows (SimParams::adaptive_window) only coalesce merge
//    barriers across quiet windows; for every scheduler, kernel, and
//    host_threads value the results must be bit-identical to the
//    fixed-quantum baseline — makespan, every traffic counter, and every
//    engine counter including fiber_switches. The one counter allowed to
//    move is window_merges, and it may only drop.
//
//  - Inline strand execution (SimParams::inline_strands) runs pure
//    scheduler-interaction strands (empty join continuations) on the pump
//    without a fiber switch; everything except fiber_switches and the
//    inline_strands counter must match the all-fibers baseline.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"

namespace sbs::sim {
namespace {

SimResult run_once(const machine::Topology& topo,
                   const std::string& sched_name,
                   const std::string& kernel_name, std::size_t n,
                   int host_threads, bool adaptive, bool inline_strands) {
  kernels::KernelParams kp;
  kp.n = n;
  auto kernel = kernels::MakeKernel(kernel_name, kp);
  kernel->prepare(1);
  auto sched = sched::MakeScheduler(sched_name);
  SimParams sp;
  sp.host_threads = host_threads;
  sp.adaptive_window = adaptive;
  sp.inline_strands = inline_strands;
  SimEngine engine(topo, sp);
  const SimResult r = engine.run(*sched, kernel->make_root());
  EXPECT_TRUE(kernel->verify()) << sched_name << "/" << kernel_name;
  return r;
}

/// Everything the simulation observes: makespan, traffic, per-level stats.
void expect_simulation_identical(const SimResult& a_r, const SimResult& b_r,
                                 const std::string& label) {
  EXPECT_EQ(a_r.makespan_cycles, b_r.makespan_cycles) << label;
  const Counters& a = a_r.counters;
  const Counters& b = b_r.counters;
  EXPECT_EQ(a.accesses, b.accesses) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.dram_reads, b.dram_reads) << label;
  EXPECT_EQ(a.dram_writebacks, b.dram_writebacks) << label;
  EXPECT_EQ(a.remote_dram_accesses, b.remote_dram_accesses) << label;
  EXPECT_EQ(a.queue_wait_cycles, b.queue_wait_cycles) << label;
  ASSERT_EQ(a.level.size(), b.level.size()) << label;
  for (std::size_t lvl = 1; lvl < a.level.size(); ++lvl) {
    EXPECT_EQ(a.level[lvl].hits, b.level[lvl].hits) << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].misses, b.level[lvl].misses)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].evictions, b.level[lvl].evictions)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].back_invalidations, b.level[lvl].back_invalidations)
        << label << " L" << lvl;
    EXPECT_EQ(a.level[lvl].coherence_invalidations,
              b.level[lvl].coherence_invalidations)
        << label << " L" << lvl;
  }
}

class SimAdaptiveEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

INSTANTIATE_TEST_SUITE_P(
    SchedulerByKernel, SimAdaptiveEquivalence,
    ::testing::Combine(::testing::Values("WS", "PWS", "SB", "SB-D"),
                       ::testing::Values("quicksort", "samplesort")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';  // "SB-D" → valid gtest name
      }
      return name;
    });

TEST_P(SimAdaptiveEquivalence, AdaptiveWindowsDoNotChangeResults) {
  const auto& [sched_name, kernel_name] = GetParam();
  const machine::Topology topo(machine::Preset("xeon7560_s8"));
  const std::size_t n = 20000;

  const SimResult fixed = run_once(topo, sched_name, kernel_name, n,
                                   /*host_threads=*/1, /*adaptive=*/false,
                                   /*inline_strands=*/true);
  for (int host_threads : {1, 2, 4}) {
    const std::string label = sched_name + "/" + kernel_name +
                              " adaptive ht=" + std::to_string(host_threads);
    const SimResult ad = run_once(topo, sched_name, kernel_name, n,
                                  host_threads, /*adaptive=*/true,
                                  /*inline_strands=*/true);
    expect_simulation_identical(fixed, ad, label);
    // The engine's own work must also be unchanged — coalescing skips
    // merges, it does not re-chunk execution.
    EXPECT_EQ(fixed.counters.windows_executed, ad.counters.windows_executed)
        << label;
    EXPECT_EQ(fixed.counters.pump_passes, ad.counters.pump_passes) << label;
    EXPECT_EQ(fixed.counters.fiber_switches, ad.counters.fiber_switches)
        << label;
    EXPECT_EQ(fixed.counters.inline_strands, ad.counters.inline_strands)
        << label;
    // The point of the knob: strictly fewer merge barriers. Every run has
    // at least one quiet stretch (startup), so "≤" would hide a no-op.
    EXPECT_LT(ad.counters.window_merges, fixed.counters.window_merges)
        << label;
  }
}

TEST(SimInlineStrands, InliningDropsFiberSwitchesOnly) {
  const machine::Topology topo(machine::Preset("xeon7560_s8"));
  const std::size_t n = 20000;
  for (const char* sched : {"WS", "SB"}) {
    const SimResult fibers = run_once(topo, sched, "samplesort", n,
                                      /*host_threads=*/1, /*adaptive=*/true,
                                      /*inline_strands=*/false);
    const SimResult inlined = run_once(topo, sched, "samplesort", n,
                                       /*host_threads=*/1, /*adaptive=*/true,
                                       /*inline_strands=*/true);
    const std::string label = std::string(sched) + "/samplesort inline";
    expect_simulation_identical(fibers, inlined, label);
    // Windows whose only work was an inlined strand are skipped outright,
    // so the engine-work counters may only drop, never grow.
    EXPECT_LE(inlined.counters.windows_executed,
              fibers.counters.windows_executed)
        << label;
    EXPECT_LE(inlined.counters.window_merges, fibers.counters.window_merges)
        << label;
    EXPECT_EQ(fibers.counters.inline_strands, 0u) << label;
    // Samplesort's fork tree is full of empty join continuations, so the
    // inline path must actually fire and shed their fiber switches.
    EXPECT_GT(inlined.counters.inline_strands, 0u) << label;
    EXPECT_LT(inlined.counters.fiber_switches, fibers.counters.fiber_switches)
        << label;
  }
}

}  // namespace
}  // namespace sbs::sim
