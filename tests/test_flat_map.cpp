// Unit tests for the open-addressing directory map (src/sim/flat_map.h):
// growth past the load-factor threshold, backward-shift deletion, and
// reinsertion after erase — the churn pattern the coherence directory
// produces on every eviction.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.h"

namespace sbs::sim {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<int> map(16);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);
  map[42] = 7;
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(map.size(), 1u);
  map.erase(42);
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_EQ(map.size(), 0u);
  map.erase(42);  // erasing an absent key is a no-op
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, GrowsPastInitialCapacityKeepingAllEntries) {
  FlatMap<std::uint64_t> map(16);
  const std::size_t initial_cap = map.capacity();
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t k = 1; k <= kKeys; ++k) map[k] = k * 3;
  EXPECT_GT(map.capacity(), initial_cap);
  EXPECT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    auto* v = map.find(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, k * 3);
  }
}

TEST(FlatMap, EraseKeepsProbeChainsIntact) {
  // Keys that collide into long probe chains, then erase from the middle:
  // backward-shift deletion must keep every survivor findable.
  FlatMap<int> map(16);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 64; ++k) keys.push_back(k);
  for (auto k : keys) map[k] = static_cast<int>(k);
  for (std::size_t i = 0; i < keys.size(); i += 2) map.erase(keys[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto* v = map.find(keys[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr) << "key " << keys[i];
    } else {
      ASSERT_NE(v, nullptr) << "key " << keys[i];
      EXPECT_EQ(*v, static_cast<int>(keys[i]));
    }
  }
}

TEST(FlatMap, ReinsertAfterErase) {
  FlatMap<int> map(16);
  for (std::uint64_t k = 1; k <= 100; ++k) map[k] = 1;
  for (std::uint64_t k = 1; k <= 100; ++k) map.erase(k);
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t k = 1; k <= 100; ++k) map[k] = 2;
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    auto* v = map.find(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, 2);
  }
}

TEST(FlatMap, ChurnMatchesUnorderedMap) {
  // Randomized insert/erase/lookup churn cross-checked against the std
  // container it replaced. Deterministic LCG so failures reproduce.
  FlatMap<int> map(16);
  std::unordered_map<std::uint64_t, int> ref;
  std::uint64_t rng = 0x243f6a8885a308d3ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = next() % 512 + 1;  // small space → collisions
    switch (next() % 3) {
      case 0: {
        const int value = static_cast<int>(next() & 0xffff);
        map[key] = value;
        ref[key] = value;
        break;
      }
      case 1:
        map.erase(key);
        ref.erase(key);
        break;
      default: {
        auto* v = map.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr) << "step " << step << " key " << key;
        } else {
          ASSERT_NE(v, nullptr) << "step " << step << " key " << key;
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
  }
  for (const auto& [key, value] : ref) {
    auto* v = map.find(key);
    ASSERT_NE(v, nullptr) << "key " << key;
    EXPECT_EQ(*v, value);
  }
}

TEST(FlatMap, ClearResetsEverything) {
  FlatMap<int> map(16);
  for (std::uint64_t k = 1; k <= 1000; ++k) map[k] = 1;
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t k = 1; k <= 1000; ++k) EXPECT_EQ(map.find(k), nullptr);
  map[5] = 9;
  ASSERT_NE(map.find(5), nullptr);
  EXPECT_EQ(*map.find(5), 9);
}

}  // namespace
}  // namespace sbs::sim
