// Stress tests for the Chase–Lev deque under real concurrency: every
// pushed item is popped or stolen exactly once, across growth and
// owner/thief races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sched/chase_lev.h"

namespace sbs::sched {
namespace {

TEST(ChaseLev, LifoForOwner) {
  ChaseLevDeque<int> deque;
  deque.push_bottom(1);
  deque.push_bottom(2);
  deque.push_bottom(3);
  int v = 0;
  ASSERT_TRUE(deque.pop_bottom(&v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(deque.pop_bottom(&v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(deque.pop_bottom(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(deque.pop_bottom(&v));
}

TEST(ChaseLev, FifoForThief) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 3; ++i) deque.push_bottom(i);
  int v = 0;
  ASSERT_TRUE(deque.steal_top(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(deque.steal_top(&v));
  EXPECT_EQ(v, 2);
}

TEST(ChaseLev, StealSomeTakesFifoPrefix) {
  ChaseLevDeque<int> deque;
  for (int i = 1; i <= 6; ++i) deque.push_bottom(i);
  int out[4] = {0, 0, 0, 0};
  ASSERT_EQ(deque.steal_some(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i + 1);
  // Owner still sees its LIFO bottom.
  int v = 0;
  ASSERT_TRUE(deque.pop_bottom(&v));
  EXPECT_EQ(v, 6);
  ASSERT_TRUE(deque.pop_bottom(&v));
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(deque.pop_bottom(&v));
}

TEST(ChaseLev, StealSomeCapsAtAvailableAndEmptyReturnsZero) {
  ChaseLevDeque<int> deque;
  int out[8] = {};
  EXPECT_EQ(deque.steal_some(out, 8), 0u);
  deque.push_bottom(10);
  deque.push_bottom(11);
  ASSERT_EQ(deque.steal_some(out, 8), 2u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  EXPECT_EQ(deque.steal_some(out, 8), 0u);
}

TEST(ChaseLev, StealSomeEveryItemConsumedExactlyOnceUnderContention) {
  // The batched steal path WS::get actually takes: thieves grab up to 8
  // items per CAS while the owner keeps pushing and popping.
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  constexpr std::size_t kBatch = 8;
  ChaseLevDeque<int> deque(8);
  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  auto consume = [&](int v) {
    seen[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int batch[kBatch];
      while (!done.load(std::memory_order_acquire) ||
             consumed.load(std::memory_order_relaxed) < kItems) {
        const std::size_t got = deque.steal_some(batch, kBatch);
        for (std::size_t i = 0; i < got; ++i) consume(batch[i]);
      }
    });
  }

  int v;
  for (int i = 0; i < kItems; ++i) {
    deque.push_bottom(i);
    if ((i & 7) == 0 && deque.pop_bottom(&v)) consume(v);
  }
  while (deque.pop_bottom(&v)) consume(v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> deque(/*initial_capacity=*/4);
  for (int i = 0; i < 1000; ++i) deque.push_bottom(i);
  for (int i = 999; i >= 0; --i) {
    int v = -1;
    ASSERT_TRUE(deque.pop_bottom(&v));
    ASSERT_EQ(v, i);
  }
}

TEST(ChaseLev, EveryItemConsumedExactlyOnceUnderContention) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque(8);
  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  auto consume = [&](int v) {
    seen[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v;
      while (!done.load(std::memory_order_acquire) ||
             consumed.load(std::memory_order_relaxed) < kItems) {
        if (deque.steal_top(&v)) consume(v);
      }
    });
  }

  // Owner interleaves pushes and pops.
  int v;
  for (int i = 0; i < kItems; ++i) {
    deque.push_bottom(i);
    if ((i & 7) == 0 && deque.pop_bottom(&v)) consume(v);
  }
  while (deque.pop_bottom(&v)) consume(v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ChaseLev, ManyDequesCrossStealLikeWorkStealing) {
  // The shape WS actually runs: every worker owns a deque, pushes and pops
  // its own bottom, and steals from the others' tops when empty. Checks
  // that no item is lost or duplicated across the full owner/thief matrix.
  constexpr int kWorkers = 4;
  constexpr int kItemsPerWorker = 50000;
  constexpr int kTotal = kWorkers * kItemsPerWorker;
  std::vector<std::unique_ptr<ChaseLevDeque<int>>> deques;
  for (int w = 0; w < kWorkers; ++w)
    deques.push_back(std::make_unique<ChaseLevDeque<int>>(8));
  std::vector<std::atomic<int>> seen(kTotal);
  std::atomic<int> consumed{0};

  auto consume = [&](int v) {
    seen[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      ChaseLevDeque<int>& own = *deques[static_cast<std::size_t>(w)];
      int v;
      // Produce own items, popping some along the way.
      for (int i = 0; i < kItemsPerWorker; ++i) {
        own.push_bottom(w * kItemsPerWorker + i);
        if ((i & 3) == 0 && own.pop_bottom(&v)) consume(v);
      }
      // Drain: own bottom first, then steal round-robin until all done.
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        if (own.pop_bottom(&v)) {
          consume(v);
          continue;
        }
        for (int k = 1; k < kWorkers; ++k) {
          if (deques[static_cast<std::size_t>((w + k) % kWorkers)]
                  ->steal_top(&v)) {
            consume(v);
            break;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(consumed.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ChaseLev, OwnerDrainRacesThieves) {
  // Owner pushes a block then immediately drains its own deque while
  // thieves hammer the top: exercises the pop_bottom/steal_top CAS race on
  // the last element, where double-consumption bugs live.
  constexpr int kRounds = 2000;
  constexpr int kBlock = 8;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque(8);
  std::vector<std::atomic<int>> seen(kRounds * kBlock);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  auto consume = [&](int v) {
    seen[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal_top(&v)) consume(v);
      }
    });
  }

  int v;
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kBlock; ++i) deque.push_bottom(r * kBlock + i);
    while (deque.pop_bottom(&v)) consume(v);
  }
  while (consumed.load(std::memory_order_relaxed) < kRounds * kBlock) {
    if (deque.pop_bottom(&v)) consume(v);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kRounds * kBlock);
  for (int i = 0; i < kRounds * kBlock; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace sbs::sched
