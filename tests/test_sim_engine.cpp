// Integration tests for the PMH simulation engine: correctness of executed
// programs, determinism, overhead accounting, and the paper's headline
// qualitative effect — space-bounded scheduling reduces shared-cache misses
// relative to work stealing on a memory-intensive recursive workload.
#include <gtest/gtest.h>

#include <cstring>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/mem.h"
#include "sched/registry.h"
#include "sim/engine.h"

namespace sbs::sim {
namespace {

using machine::Preset;
using machine::Topology;
using runtime::Job;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;
using sched::MakeScheduler;

/// A miniature RRM (paper §5.1): repeat a map A->B r times over [lo,hi),
/// then recurse on the two halves, down to `base` elements.
struct MiniRrm {
  mem::Array<double>* a;
  mem::Array<double>* b;
  int repeats;
  std::size_t base;

  Job* make(std::size_t lo, std::size_t hi) const {
    const std::uint64_t bytes = 2 * (hi - lo) * sizeof(double);
    MiniRrm self = *this;
    return make_job(
        [self, lo, hi](Strand& strand) {
          for (int r = 0; r < self.repeats; ++r) {
            self.a->touch_range(lo, hi, false);
            for (std::size_t i = lo; i < hi; ++i)
              (*self.b)[i] = (*self.a)[i] + 1.0;
            self.b->touch_range(lo, hi, true);
            mem::work(2 * (hi - lo));
          }
          if (hi - lo > self.base) {
            const std::size_t mid = lo + (hi - lo) / 2;
            strand.fork2(self.make(lo, mid), self.make(mid, hi), make_nop());
          }
        },
        bytes, bytes);
  }
};

SimResult run_rrm(const Topology& topo, const std::string& sched_name,
                  std::size_t n, SimParams params = SimParams()) {
  mem::Array<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<double>(i);
  std::memset(b.data(), 0, n * sizeof(double));

  MiniRrm rrm{&a, &b, /*repeats=*/3, /*base=*/64};
  auto sched = MakeScheduler(sched_name);
  SimEngine engine(topo, params);
  SimResult result = engine.run(*sched, rrm.make(0, n));

  // The program really ran: B = A + 1 everywhere.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b[i], static_cast<double>(i) + 1.0) << i;
    if (b[i] != static_cast<double>(i) + 1.0) break;
  }
  return result;
}

class SimEverySched : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Schedulers, SimEverySched,
                         ::testing::Values("WS", "PWS", "CilkWS", "SB",
                                           "SB-D"));

TEST_P(SimEverySched, ExecutesCorrectlyAndCounts) {
  const Topology topo(Preset("mini"));
  const SimResult result = run_rrm(topo, GetParam(), 1 << 14);
  EXPECT_GT(result.makespan_cycles, 0u);
  EXPECT_GT(result.counters.accesses, 0u);
  EXPECT_GT(result.counters.llc_misses(), 0u);
  EXPECT_EQ(result.stats.per_thread.size(), 4u);
  EXPECT_GT(result.stats.avg_active_s(), 0.0);
  // Every strand was executed by some core.
  EXPECT_GT(result.stats.total_strands(), 100u);
}

TEST_P(SimEverySched, DeterministicAcrossRuns) {
  const Topology topo(Preset("mini"));
  const SimResult r1 = run_rrm(topo, GetParam(), 1 << 13);
  const SimResult r2 = run_rrm(topo, GetParam(), 1 << 13);
  EXPECT_EQ(r1.makespan_cycles, r2.makespan_cycles);
  EXPECT_EQ(r1.counters.llc_misses(), r2.counters.llc_misses());
  EXPECT_EQ(r1.counters.accesses, r2.counters.accesses);
  EXPECT_EQ(r1.stats.total_strands(), r2.stats.total_strands());
}

TEST(SimEngine, SpaceBoundedReducesSharedCacheMisses) {
  // The paper's central observation (Figs. 5-7): on a memory-intensive
  // divide-and-conquer workload whose working set exceeds the shared cache,
  // the space-bounded scheduler incurs substantially fewer shared-cache
  // misses than work stealing, because it anchors befitting subtrees
  // instead of letting many unrelated subtrees thrash the cache. The effect
  // scales with cores-per-shared-cache (Fig. 7), so use the paper's 8.
  machine::MachineConfig cfg = machine::ParseConfig(R"(
    int num_levels = 3;
    int fan_outs[3]  = {2, 8, 1};
    long long int sizes[3] = {0, 1<<18, 1<<12};  // 256 KB shared, 4 KB L1
    int block_sizes[3] = {64, 64, 64};
    int assoc[3] = {0, 16, 4};
    int dram_latency = 100;
    int page_bytes = 1<<12;
  )");
  const Topology topo(cfg);
  const std::size_t n = 1 << 17;  // 1 MB per array vs 256 KB shared caches
  const SimResult ws = run_rrm(topo, "WS", n);
  const SimResult sb = run_rrm(topo, "SB", n);
  EXPECT_LT(static_cast<double>(sb.counters.llc_misses()),
            0.85 * static_cast<double>(ws.counters.llc_misses()))
      << "WS misses=" << ws.counters.llc_misses()
      << " SB misses=" << sb.counters.llc_misses();
}

TEST(SimEngine, ThrottledBandwidthSlowsMemoryBoundRun) {
  // Slow the links (0.5 B/cycle vs the preset's 8) so the streaming map is
  // genuinely bandwidth-bound. With fast links the run is latency-bound and
  // restricting pages to socket 0 mostly creates a locality asymmetry: an
  // efficient work stealer shifts strands toward the cores local to the one
  // home socket and can finish *sooner* than the all-sockets run.
  machine::MachineConfig cfg = Preset("mini");
  cfg.socket_bytes_per_cycle = 0.5;
  const Topology topo(cfg);
  SimParams full;
  SimParams quarter;
  quarter.memory.allowed_sockets = {0};  // half the links on mini
  const SimResult fast = run_rrm(topo, "WS", 1 << 15, full);
  const SimResult slow = run_rrm(topo, "WS", 1 << 15, quarter);
  EXPECT_GT(slow.makespan_cycles, fast.makespan_cycles);
  EXPECT_GT(slow.counters.queue_wait_cycles,
            fast.counters.queue_wait_cycles);
  // Miss counts should be (nearly) bandwidth-independent (paper §5.3).
  const double ratio = static_cast<double>(slow.counters.llc_misses()) /
                       static_cast<double>(fast.counters.llc_misses());
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(SimEngine, SingleCoreMachineStillCompletes) {
  machine::MachineConfig cfg = Preset("mini");
  cfg.levels[0].fanout = 1;  // one socket
  cfg.levels[1].fanout = 1;  // one core
  const Topology topo(cfg);
  const SimResult result = run_rrm(topo, "WS", 1 << 12);
  EXPECT_EQ(result.stats.per_thread.size(), 1u);
  EXPECT_GT(result.makespan_cycles, 0u);
}

TEST(SimEngine, ReusableAcrossRuns) {
  const Topology topo(Preset("mini"));
  SimEngine engine(topo);
  auto sched = MakeScheduler("WS");
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 1 << 12;
    mem::Array<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) a[i] = 1.0;
    MiniRrm rrm{&a, &b, 2, 256};
    const SimResult result = engine.run(*sched, rrm.make(0, n));
    EXPECT_GT(result.makespan_cycles, 0u);
  }
}

TEST(SimEngine, OverheadBreakdownAccountsCallbacks) {
  const Topology topo(Preset("mini"));
  const SimResult result = run_rrm(topo, "WS", 1 << 14);
  double add = 0, done = 0, get = 0;
  for (const auto& t : result.stats.per_thread) {
    add += t.add_s;
    done += t.done_s;
    get += t.get_s;
  }
  EXPECT_GT(add, 0.0);  // every fork charged
  EXPECT_GT(get, 0.0);  // every strand delivery charged
  // WS::done is a no-op: zero instrumented operations.
  EXPECT_EQ(done, 0.0);
}

TEST(SimEngine, SchedulerOverheadEmergesFromOps) {
  // SB walks a lock-protected tree; WS touches one deque. The simulator
  // charges overhead from instrumented op counts, so SB's scheduling
  // overhead must come out strictly higher for the same program.
  const Topology topo(Preset("mini"));
  const SimResult ws = run_rrm(topo, "WS", 1 << 14);
  const SimResult sb = run_rrm(topo, "SB", 1 << 14);
  const double ws_sched =
      ws.stats.avg(&runtime::ThreadBreakdown::add_s) +
      ws.stats.avg(&runtime::ThreadBreakdown::get_s) +
      ws.stats.avg(&runtime::ThreadBreakdown::done_s);
  const double sb_sched =
      sb.stats.avg(&runtime::ThreadBreakdown::add_s) +
      sb.stats.avg(&runtime::ThreadBreakdown::get_s) +
      sb.stats.avg(&runtime::ThreadBreakdown::done_s);
  EXPECT_GT(sb_sched, ws_sched);
}

}  // namespace
}  // namespace sbs::sim
