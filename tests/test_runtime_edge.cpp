// Edge cases of the fork-join runtime: strand/fork contracts, parallel_for
// boundary ranges, SBJob size rounding, config file loading.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>

#include "machine/config.h"
#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"

namespace sbs::runtime {
namespace {

using machine::Preset;
using machine::Topology;

TEST(StrandContract, DoubleForkAborts) {
  Strand strand(0, 1);
  strand.fork({make_nop()}, make_nop());
  EXPECT_DEATH({ strand.fork({make_nop()}, make_nop()); }, "at most once");
}

TEST(StrandContract, EmptyChildrenAborts) {
  Strand strand(0, 1);
  EXPECT_DEATH({ strand.fork({}, make_nop()); }, "at least one child");
}

TEST(StrandContract, NullContinuationAborts) {
  Strand strand(0, 1);
  EXPECT_DEATH({ strand.fork({make_nop()}, nullptr); }, "continuation");
}

TEST(SBJobSizes, RoundToLines) {
  EXPECT_EQ(SBJob::round_to_lines(0, 64), 0u);
  EXPECT_EQ(SBJob::round_to_lines(1, 64), 64u);
  EXPECT_EQ(SBJob::round_to_lines(64, 64), 64u);
  EXPECT_EQ(SBJob::round_to_lines(65, 64), 128u);
  EXPECT_EQ(SBJob::round_to_lines(kNoSize, 64), kNoSize);
}

TEST(SBJobSizes, StrandDefaultsToTaskSize) {
  class Annotated final : public SBJob {
   public:
    using SBJob::SBJob;
    void execute(Strand&) override {}
  };
  Annotated job(1000);
  EXPECT_EQ(job.size(64), 1024u);
  EXPECT_EQ(job.strand_size(64), 1024u);  // paper footnote 1 default
}

class PforRange : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

INSTANTIATE_TEST_SUITE_P(
    Ranges, PforRange,
    ::testing::Values(std::make_tuple(0, 1, 1),      // single element
                      std::make_tuple(0, 1, 100),    // grain > range
                      std::make_tuple(5, 6, 1),      // offset single
                      std::make_tuple(0, 97, 10),    // uneven split
                      std::make_tuple(100, 228, 1),  // grain 1
                      std::make_tuple(0, 1024, 1024)));  // exactly one leaf

TEST_P(PforRange, EveryIndexOnce) {
  const auto& [lo, hi, grain] = GetParam();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(hi));
  const Topology topo(Preset("mini"));
  auto sched = sched::MakeScheduler("WS");
  ThreadPool pool(topo);
  Job* root = make_job(
      [&, lo = lo, hi = hi, grain = grain](Strand& strand) {
        strand.fork({ParallelFor::make_flat(
                        static_cast<std::size_t>(lo),
                        static_cast<std::size_t>(hi),
                        static_cast<std::size_t>(grain), 8,
                        [&hits](std::size_t i0, std::size_t i1) {
                          for (std::size_t i = i0; i < i1; ++i)
                            hits[i].fetch_add(1);
                        })},
                    make_nop());
      },
      1 << 20, 64);
  pool.run(*sched, root);
  for (int i = 0; i < hi; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), i >= lo ? 1 : 0) << i;
  }
}

TEST(ConfigFile, LoadsFig4Artifact) {
  // Locate the artifact relative to this source file (cwd-independent).
  std::string path = __FILE__;
  path = path.substr(0, path.find_last_of('/'));
  path += "/../configs/xeon7560_fig4.cfg";
  const machine::MachineConfig cfg = machine::LoadConfigFile(path);
  EXPECT_EQ(cfg.num_threads(), 32);
  EXPECT_EQ(cfg.levels[1].size, 3ull * (1ull << 22));
  const Topology topo(cfg);
  EXPECT_EQ(topo.nodes_at_depth(1).size(), 4u);
}

TEST(ConfigFile, MissingFileAborts) {
  EXPECT_DEATH({ machine::LoadConfigFile("/nonexistent/x.cfg"); },
               "cannot open");
}

TEST(ThreadPool, SingleWorkerExecutesEverything) {
  const Topology topo(Preset("mini"));
  auto sched = sched::MakeScheduler("CilkWS");
  ThreadPool pool(topo, 1);
  std::atomic<int> count{0};
  Job* root = make_job(
      [&count](Strand& strand) {
        std::vector<Job*> children;
        for (int i = 0; i < 50; ++i)
          children.push_back(
              make_job([&count](Strand&) { count.fetch_add(1); }, 64));
        strand.fork(std::move(children), make_nop());
      },
      1 << 12, 64);
  const RunStats stats = pool.run(*sched, root);
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(stats.per_thread.size(), 1u);
}

}  // namespace
}  // namespace sbs::runtime
