// Integration tests: fork/join semantics, parallel_for, and the real
// thread-pool engine, under every scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"

namespace sbs::runtime {
namespace {

using machine::Preset;
using machine::Topology;
using sched::MakeScheduler;

/// Recursive fork-join sum over [lo, hi): returns the job; writes the result
/// into out[slot]. Every task is annotated with its range footprint.
Job* make_sum_job(const std::vector<std::int64_t>& data, std::size_t lo,
                  std::size_t hi, std::int64_t* out) {
  const std::uint64_t bytes = (hi - lo) * sizeof(std::int64_t);
  if (hi - lo <= 64) {
    return make_job(
        [&data, lo, hi, out](Strand&) {
          *out = std::accumulate(data.begin() + static_cast<std::ptrdiff_t>(lo),
                                 data.begin() + static_cast<std::ptrdiff_t>(hi),
                                 std::int64_t{0});
        },
        bytes);
  }
  return make_job(
      [&data, lo, hi, out](Strand& strand) {
        const std::size_t mid = lo + (hi - lo) / 2;
        auto* partial = new std::int64_t[2]();
        strand.fork2(make_sum_job(data, lo, mid, &partial[0]),
                     make_sum_job(data, mid, hi, &partial[1]),
                     make_job(
                         [partial, out](Strand&) {
                           *out = partial[0] + partial[1];
                           delete[] partial;
                         },
                         kNoSize, /*strand_bytes=*/64));
      },
      bytes, /*strand_bytes=*/64);
}

class EverySched : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Schedulers, EverySched,
                         ::testing::Values("WS", "PWS", "CilkWS", "SB",
                                           "SB-D"));

TEST_P(EverySched, ForkJoinSumIsCorrect) {
  const Topology topo(Preset("mini"));
  std::vector<std::int64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  const std::int64_t expect = 10000LL * 10001 / 2;

  auto sched = MakeScheduler(GetParam());
  ThreadPool pool(topo);
  std::int64_t result = 0;
  RunStats stats = pool.run(*sched, make_sum_job(data, 0, data.size(), &result));
  EXPECT_EQ(result, expect);
  EXPECT_GT(stats.total_strands(), 100u);  // the tree actually unfolded
}

TEST_P(EverySched, ParallelForCoversEveryIndexOnce) {
  const Topology topo(Preset("mini_deep"));
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);

  auto sched = MakeScheduler(GetParam());
  ThreadPool pool(topo);
  Job* root = make_job(
      [&hits](Strand& strand) {
        strand.fork({ParallelFor::make_flat(
                        0, kN, /*grain=*/128, sizeof(int),
                        [&hits](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                        })},
                    make_nop());
      },
      kN * sizeof(int), 64);
  pool.run(*sched, root);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(EverySched, DeepSerialChainOfForks) {
  // A degenerate chain: each level forks a single child; exercises join
  // counters of width 1 and continuation ordering.
  const Topology topo(Preset("mini"));
  std::vector<int> order;

  std::function<Job*(int)> chain = [&](int depth) -> Job* {
    if (depth == 0) {
      return make_job([&order](Strand&) { order.push_back(0); }, 64);
    }
    return make_job(
        [&order, depth, &chain](Strand& strand) {
          strand.fork({chain(depth - 1)},
                      make_job([&order, depth](Strand&) {
                        order.push_back(depth);
                      }, kNoSize, 64));
        },
        64, 64);
  };
  auto sched = MakeScheduler(GetParam());
  ThreadPool pool(topo, 1);  // single worker => deterministic order
  pool.run(*sched, chain(50));
  ASSERT_EQ(order.size(), 51u);
  for (int d = 0; d <= 50; ++d) EXPECT_EQ(order[static_cast<std::size_t>(d)], d);
}

TEST_P(EverySched, WideFork) {
  const Topology topo(Preset("mini"));
  constexpr int kWidth = 200;
  std::atomic<int> ran{0};
  Job* root = make_job(
      [&ran](Strand& strand) {
        std::vector<Job*> children;
        children.reserve(kWidth);
        for (int i = 0; i < kWidth; ++i) {
          children.push_back(make_job(
              [&ran](Strand&) { ran.fetch_add(1); }, 64));
        }
        strand.fork(std::move(children), make_nop());
      },
      64 * kWidth, 64);
  auto sched = MakeScheduler(GetParam());
  ThreadPool pool(topo);
  pool.run(*sched, root);
  EXPECT_EQ(ran.load(), kWidth);
}

TEST_P(EverySched, TimerBreakdownIsPopulated) {
  const Topology topo(Preset("mini"));
  std::vector<std::int64_t> data(5000, 1);
  std::int64_t result = 0;
  auto sched = MakeScheduler(GetParam());
  ThreadPool pool(topo);
  RunStats stats = pool.run(*sched, make_sum_job(data, 0, data.size(), &result));
  EXPECT_EQ(stats.per_thread.size(), 4u);
  EXPECT_GT(stats.wall_s, 0.0);
  double active = 0;
  for (const auto& t : stats.per_thread) active += t.active_s;
  EXPECT_GT(active, 0.0);
  EXPECT_FALSE(stats.summary().empty());
}

TEST(Runtime, NestedParallelForsCompose) {
  const Topology topo(Preset("mini"));
  constexpr std::size_t kRows = 40, kCols = 500;
  std::vector<std::atomic<int>> cells(kRows * kCols);
  auto sched = MakeScheduler("WS");
  ThreadPool pool(topo);
  Job* root = make_job(
      [&cells](Strand& strand) {
        strand.fork(
            {ParallelFor::make_flat(
                0, kRows, 1, kCols * sizeof(int),
                [&cells](std::size_t rlo, std::size_t rhi) {
                  // Leaf of the outer loop touches its whole row range.
                  for (std::size_t r = rlo; r < rhi; ++r)
                    for (std::size_t c = 0; c < kCols; ++c)
                      cells[r * kCols + c].fetch_add(1);
                })},
            make_nop());
      },
      kRows * kCols * sizeof(int), 64);
  pool.run(*sched, root);
  for (auto& cell : cells) ASSERT_EQ(cell.load(), 1);
}

TEST(Runtime, RunStatsAveragesAreConsistent) {
  RunStats stats;
  stats.per_thread.resize(2);
  stats.per_thread[0] = {1.0, 0.1, 0.1, 0.1, 0.1, 10};
  stats.per_thread[1] = {3.0, 0.3, 0.1, 0.1, 0.1, 30};
  EXPECT_DOUBLE_EQ(stats.avg_active_s(), 2.0);
  EXPECT_NEAR(stats.avg_overhead_s(), 0.5, 1e-12);
  EXPECT_EQ(stats.total_strands(), 40u);
}

TEST(Runtime, RunStatsAveragesIncludeIdleWorkers) {
  // The documented convention (§3.3): idle workers contribute 0 to the
  // numerator but still count in the denominator.
  RunStats stats;
  stats.per_thread.resize(4);
  stats.per_thread[0] = {4.0, 0.4, 0, 0, 0, 8};
  stats.per_thread[1] = {2.0, 0, 0, 0, 0, 4};
  // Threads 2 and 3 never ran a strand.
  EXPECT_DOUBLE_EQ(stats.avg_active_s(), 1.5);  // 6.0 / 4, not 6.0 / 2
  EXPECT_NEAR(stats.avg_overhead_s(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(stats.max_active_s(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(&ThreadBreakdown::add_s), 0.4);
  EXPECT_NEAR(stats.imbalance(), 4.0 / 1.5, 1e-12);
}

TEST(Runtime, RunStatsEmptyAndAllIdleEdgeCases) {
  RunStats stats;
  EXPECT_DOUBLE_EQ(stats.avg_active_s(), 0.0);
  EXPECT_DOUBLE_EQ(stats.imbalance(), 0.0);
  stats.per_thread.resize(3);  // all idle
  EXPECT_DOUBLE_EQ(stats.avg_active_s(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max_active_s(), 0.0);
  EXPECT_DOUBLE_EQ(stats.imbalance(), 0.0);  // no division by zero
}

TEST(Runtime, SBRefusesUnannotatedRoot) {
  const Topology topo(Preset("mini"));
  auto sched = MakeScheduler("SB");
  ThreadPool pool(topo, 1);
  Job* unannotated = make_job([](Strand&) {});
  EXPECT_DEATH({ pool.run(*sched, unannotated); }, "size");
}

}  // namespace
}  // namespace sbs::runtime
