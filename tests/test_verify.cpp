// Tests for the online invariant checker (src/verify/): SB admission edge
// cases run clean under --verify semantics, and the two seeded scheduler
// mutations (over-admission, mis-anchoring) are flagged.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/mem.h"
#include "sched/registry.h"
#include "sched/sb.h"
#include "sim/engine.h"
#include "verify/invariants.h"

namespace sbs::verify {
namespace {

using machine::Preset;
using machine::Topology;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// Fork-join tree of annotated tasks, halving the footprint per level.
Job* tree(std::uint64_t bytes, int depth) {
  if (depth == 0) return make_job([](Strand&) {}, bytes);
  return make_job(
      [bytes, depth](Strand& strand) {
        strand.fork2(tree(bytes / 2, depth - 1), tree(bytes / 2, depth - 1),
                     make_nop());
      },
      bytes, 64);
}

/// Like tree() but every strand burns simulated cycles, so sibling tasks
/// overlap in virtual time and anchor concurrently.
Job* busy_tree(std::uint64_t bytes, int depth, std::uint64_t cycles) {
  if (depth == 0)
    return make_job([cycles](Strand&) { mem::work(cycles); }, bytes);
  return make_job(
      [bytes, depth, cycles](Strand& strand) {
        mem::work(cycles);
        strand.fork2(busy_tree(bytes / 2, depth - 1, cycles),
                     busy_tree(bytes / 2, depth - 1, cycles), make_nop());
      },
      bytes, 64);
}

/// Tree with fanout-64 footprint drop: children befit two-plus cache levels
/// below their parent's anchor (skip-level tasks).
Job* skip_tree(std::uint64_t bytes, int depth) {
  if (depth == 0) return make_job([](Strand&) {}, bytes);
  return make_job(
      [bytes, depth](Strand& strand) {
        strand.fork2(skip_tree(bytes / 64, depth - 1),
                     skip_tree(bytes / 64, depth - 1), make_nop());
      },
      bytes, 64);
}

/// Run `root` on `preset` under a verified SB scheduler; return the checker
/// report (empty prefix "verify: OK" when clean).
std::string run_verified(const std::string& preset, Job* root,
                         sched::SpaceBounded::Options options,
                         bool* ok = nullptr) {
  const Topology topo(Preset(preset));
  auto checker = Wrap(std::make_unique<sched::SpaceBounded>(options, 7));
  sim::SimEngine engine(topo);
  engine.run(*checker, root);
  if (ok != nullptr) *ok = checker->ok();
  return checker->report();
}

TEST(Verify, SkipLevelTasksPassOnDeepHierarchy) {
  // mini_deep: L3 256K / L2 32K / L1 4K, σ=0.5. A 1 MB root forks 16 KB
  // children (befit L2, depth 2) directly under a root-anchored parent —
  // the charge path spans the skipped L3 as well.
  bool ok = false;
  const std::string report =
      run_verified("mini_deep", skip_tree(1u << 20, 2),
                   sched::SpaceBounded::Options{}, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, ExactlyAtSigmaMBoundaryAdmits) {
  // mini: L2 64K, L1 4K, σ=0.5. The halving tree hits 32768 = σ·M_L2 and
  // 2048 = σ·M_L1 exactly — the boundary is inclusive (S ≤ σM).
  bool ok = false;
  const std::string report = run_verified(
      "mini", tree(1u << 16, 6), sched::SpaceBounded::Options{}, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, MuCapSaturationByStrandCharges) {
  // Strands carrying footprints far above µM: every live strand charges the
  // capped amount on each cache below its anchor. The shadow accounting
  // must mirror the scheduler's µ-capped charges exactly.
  sched::SpaceBounded::Options options;
  options.mu = 0.1;
  bool ok = false;
  const std::string report =
      run_verified("mini", busy_tree(1u << 18, 8, 2000), options, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, MuCapDisabledStillMirrors) {
  // Ablation A (mu_cap=false): strands charge their full size; the shadow
  // accounting must follow the ablation flag.
  sched::SpaceBounded::Options options;
  options.mu_cap = false;
  bool ok = false;
  const std::string report =
      run_verified("mini", busy_tree(1u << 17, 6, 1000), options, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, RootTaskLargerThanEveryCache) {
  // A 4 MB root on mini (L2 64K) befits no finite cache; it anchors at the
  // root (unbounded memory level) and only its descendants charge caches.
  bool ok = false;
  const std::string report = run_verified(
      "mini", tree(1u << 22, 8), sched::SpaceBounded::Options{}, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, DistributedTopPassesToo) {
  sched::SpaceBounded::Options options;
  options.distributed_top = true;
  bool ok = false;
  const std::string report =
      run_verified("mini_deep", busy_tree(1u << 19, 8, 500), options, &ok);
  EXPECT_TRUE(ok) << report;
}

TEST(Verify, WrapsWorkStealingLifecycleOnly) {
  // WS has no anchors; the checker still proves the fork/join lifecycle.
  const Topology topo(Preset("mini"));
  sched::SchedulerSpec spec;
  spec.name = "WS";
  auto checker = Wrap(sched::MakeScheduler(spec));
  sim::SimEngine engine(topo);
  engine.run(*checker, tree(1u << 16, 8));
  EXPECT_TRUE(checker->ok()) << checker->report();
  EXPECT_GT(checker->checks(), 0u);
}

TEST(Verify, ReportCountsChecks) {
  const Topology topo(Preset("mini"));
  auto checker =
      Wrap(std::make_unique<sched::SpaceBounded>(
          sched::SpaceBounded::Options{}, 7));
  sim::SimEngine engine(topo);
  engine.run(*checker, tree(1u << 16, 4));
  EXPECT_TRUE(checker->ok());
  EXPECT_NE(checker->report().find("verify: OK"), std::string::npos);
  EXPECT_GT(checker->checks(), 100u);
  EXPECT_EQ(checker->total_violations(), 0u);
}

// --- mutation tests: seeded scheduler bugs the checker must flag ---

TEST(VerifyMutation, OverAdmissionCaught) {
  // force_admission skips the bounded-occupancy check in try_charge_path.
  // With σ=1.0 a single anchored task fills its whole cache, so any two
  // concurrently anchored siblings on one L2 break the bounded property.
  sched::SpaceBounded::Options options;
  options.sigma = 1.0;
  options.test_faults.force_admission = true;
  bool ok = true;
  const std::string report =
      run_verified("mini", busy_tree(1u << 20, 6, 200000), options, &ok);
  EXPECT_FALSE(ok) << "checker missed the over-admission mutation";
  EXPECT_NE(report.find("bounded property violated"), std::string::npos)
      << report;
}

TEST(VerifyMutation, MisAnchorCaught) {
  // anchor_depth_bias=1 anchors maximal tasks one level above their
  // befitting cache — the anchoring property (anchor depth == befit depth)
  // must be flagged on the first admission.
  sched::SpaceBounded::Options options;
  options.test_faults.anchor_depth_bias = 1;
  bool ok = true;
  const std::string report =
      run_verified("mini", tree(1u << 16, 6), options, &ok);
  EXPECT_FALSE(ok) << "checker missed the mis-anchor mutation";
  EXPECT_NE(report.find("befitting depth"), std::string::npos) << report;
}

TEST(VerifyMutation, CleanRunStaysClean) {
  // Control: identical workloads without the fault flags stay violation-free
  // (guards against the mutation tests passing for the wrong reason).
  sched::SpaceBounded::Options options;
  options.sigma = 1.0;
  bool ok = false;
  run_verified("mini", busy_tree(1u << 20, 6, 200000), options, &ok);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sbs::verify
