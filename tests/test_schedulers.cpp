// Unit tests for scheduler implementations through the add/get/done
// interface (no engine): queueing disciplines, steal behavior, victim
// distributions, and the registry.
#include <gtest/gtest.h>

#include <map>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/strand_ops.h"
#include "sched/pws.h"
#include "sched/registry.h"
#include "sched/ws.h"

namespace sbs::sched {
namespace {

using machine::Preset;
using machine::Topology;
using runtime::Job;
using runtime::StrandOps;
using runtime::make_job;

/// A trivial annotated job whose task plumbing is initialized (schedulers
/// may dereference job->task()).
struct JobFixture {
  Job* make(std::uint64_t bytes = 64) {
    Job* job = make_job([](runtime::Strand&) {}, bytes);
    roots.push_back(StrandOps::make_root(job));
    return job;
  }
  ~JobFixture() {
    for (auto& r : roots) {
      delete r.task;
      delete r.sentinel;
    }
  }
  std::vector<StrandOps::Root> roots;
};

TEST(WS, LocalLifoRemoteFifo) {
  const Topology topo(Preset("mini"));
  WorkStealing ws(1);
  ws.start(topo, 4);
  JobFixture fx;
  Job* a = fx.make();
  Job* b = fx.make();
  Job* c = fx.make();
  ws.add(a, 0);
  ws.add(b, 0);
  ws.add(c, 0);
  // Owner pops LIFO.
  EXPECT_EQ(ws.get(0), c);
  // A thief (any other thread) must see the OLDEST job first. Victim
  // selection is random; retry gets until thread 1 steals from thread 0.
  Job* stolen = nullptr;
  for (int attempt = 0; attempt < 1000 && stolen == nullptr; ++attempt)
    stolen = ws.get(1);
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(stolen, a);  // FIFO end
  // Drain for finish()'s invariant.
  while (ws.get(0) == nullptr) {
  }
  ws.done(a, 1, true);
  ws.finish();
}

TEST(WS, GetReturnsNullWhenEverythingEmpty) {
  const Topology topo(Preset("mini"));
  WorkStealing ws(7);
  ws.start(topo, 4);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(ws.get(t), nullptr);
  EXPECT_NE(ws.stats_string().find("failed_steals"), std::string::npos);
}

TEST(PWS, VictimChoiceFavorsOwnSocket) {
  // mini: threads {0,1} on socket 0, {2,3} on socket 1. Give every other
  // thread one job; count where thread 0's steals land over many trials.
  const Topology topo(Preset("mini"));
  std::map<int, int> hits;  // victim thread -> count
  for (int trial = 0; trial < 3000; ++trial) {
    PriorityWorkStealing pws(static_cast<std::uint64_t>(trial));
    pws.start(topo, 4);
    JobFixture fx;
    Job* j1 = fx.make();
    Job* j2 = fx.make();
    Job* j3 = fx.make();
    pws.add(j1, 1);
    pws.add(j2, 2);
    pws.add(j3, 3);
    Job* got = pws.get(0);
    if (got == j1) ++hits[1];
    if (got == j2) ++hits[2];
    if (got == j3) ++hits[3];
    // Drain the rest so finish() sees empty deques.
    for (int t = 0; t < 4; ++t) {
      while (pws.get(t) != nullptr) {
      }
    }
    pws.finish();
  }
  // Intra-socket victim (thread 1) weight 10 vs 1 for each remote thread;
  // successful steals should come from thread 1 the vast majority of the
  // time (self-steals fail and return null, reducing the total).
  const int local = hits[1];
  const int remote = hits[2] + hits[3];
  EXPECT_GT(local, remote * 2) << "local=" << local << " remote=" << remote;
}

TEST(Registry, BuildsEverySchedulerWithCorrectName) {
  for (const auto& name : SchedulerNames()) {
    auto sched = MakeScheduler(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
    EXPECT_EQ(sched->needs_size_annotations(),
              name == "SB" || name == "SB-D");
  }
}

TEST(Registry, UnknownNameAborts) {
  EXPECT_DEATH({ MakeScheduler("nonsense"); }, "unknown scheduler");
}

TEST(Registry, SbOptionsPropagate) {
  SchedulerSpec spec;
  spec.name = "SB-D";
  spec.sb.sigma = 0.7;
  spec.sb.mu = 0.3;
  auto sched = MakeScheduler(spec);
  auto* sb = dynamic_cast<SpaceBounded*>(sched.get());
  ASSERT_NE(sb, nullptr);
  EXPECT_DOUBLE_EQ(sb->options().sigma, 0.7);
  EXPECT_DOUBLE_EQ(sb->options().mu, 0.3);
  EXPECT_TRUE(sb->options().distributed_top);
}

TEST(Ops, SpinlockCountsOperations) {
  const std::uint64_t before = ops_snapshot();
  Spinlock lock;
  {
    SpinGuard guard(lock);
  }
  count_op(3);
  EXPECT_EQ(ops_snapshot() - before, 4u);  // 1 lock + 3 explicit
}

}  // namespace
}  // namespace sbs::sched
