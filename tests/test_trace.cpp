// Tests for the execution-tracing subsystem: ring-buffer semantics, the
// virtual-clock contract with the simulator, exporter validity (the Chrome
// trace must parse as JSON), and a golden comparison of the trace's anchor
// histogram against the space-bounded scheduler's own counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sched/sb.h"
#include "sim/engine.h"
#include "trace/analysis.h"
#include "trace/chrome_trace.h"
#include "trace/recorder.h"
#include "util/json.h"

namespace sbs::trace {
namespace {

using machine::Preset;
using machine::Topology;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Recorder, RingWraparoundKeepsNewestInOrder) {
  Recorder rec(1, 8);
  rec.begin_run(/*virtual_time=*/true, 1e9);
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.record(0, EventKind::kStrand, /*ts=*/i);

  EXPECT_EQ(rec.recorded(0), 20u);
  EXPECT_EQ(rec.dropped(0), 12u);
  const std::vector<Event> events = rec.events(0);
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].ts, 12 + i);  // the 8 newest, oldest first
}

TEST(Recorder, CapacityRoundsUpToPowerOfTwo) {
  Recorder rec(1, 6);  // rounds to 8
  rec.begin_run(true, 1e9);
  for (std::uint64_t i = 0; i < 8; ++i)
    rec.record(0, EventKind::kStrand, i);
  EXPECT_EQ(rec.dropped(0), 0u);
  rec.record(0, EventKind::kStrand, 8);
  EXPECT_EQ(rec.dropped(0), 1u);
}

TEST(Recorder, BeginRunResetsRings) {
  Recorder rec(2, 8);
  rec.begin_run(true, 1e9);
  rec.record(0, EventKind::kStrand, 1);
  rec.record(1, EventKind::kStrand, 2);
  rec.begin_run(true, 1e9);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.events(0).empty());
}

TEST(Recorder, EmitWithoutActiveRecorderIsSafe) {
  ASSERT_EQ(active(), nullptr);
  emit(0, EventKind::kStealAttempt, 1);  // must not crash
  Recorder rec(1, 8);
  rec.begin_run(true, 1e9);
  {
    Scope scope(&rec);
    ASSERT_EQ(active(), &rec);
    emit(0, EventKind::kStealAttempt, /*a=*/3);
  }
  EXPECT_EQ(active(), nullptr);
  const auto events = rec.events(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kStealAttempt);
  EXPECT_EQ(events[0].a, 3u);
}

TEST(Recorder, DisabledEnginesRecordNothing) {
  const Topology topo(Preset("mini"));
  runtime::ThreadPool pool(topo);
  EXPECT_EQ(pool.recorder(), nullptr);  // tracing is strictly opt-in

  kernels::KernelParams params;
  params.n = 20000;
  params.base = 512;
  auto kernel = kernels::MakeKernel("rrm", params);
  kernel->prepare(1);
  sim::SimEngine engine(topo);
  EXPECT_EQ(engine.recorder(), nullptr);
  auto sched = sched::MakeScheduler("WS");
  engine.run(*sched, kernel->make_root());
  EXPECT_EQ(engine.recorder(), nullptr);
}

/// Run a kernel on the simulator with tracing enabled; returns the engine
/// so the caller can inspect the recorder.
struct TracedSimRun {
  std::unique_ptr<sim::SimEngine> engine;
  std::unique_ptr<runtime::Scheduler> sched;
};

// The SB runs use the ÷8-scaled paper machine: "mini"'s two-level tree is
// too shallow for small quicksort tasks to ever befit a non-root cache.
TracedSimRun traced_sim_run(const std::string& kernel_name,
                            const std::string& sched_name, std::size_t n,
                            const std::string& machine = "mini") {
  const Topology topo(Preset(machine));
  kernels::KernelParams params;
  params.n = n;
  params.base = 512;
  auto kernel = kernels::MakeKernel(kernel_name, params);
  kernel->prepare(1);
  TracedSimRun run;
  run.engine = std::make_unique<sim::SimEngine>(topo);
  run.engine->enable_tracing();
  sched::SchedulerSpec spec;
  spec.name = sched_name;
  run.sched = sched::MakeScheduler(spec);
  run.engine->run(*run.sched, kernel->make_root());
  return run;
}

TEST(SimTracing, PerCoreVirtualTimestampsAreMonotone) {
  const TracedSimRun run = traced_sim_run("quicksort", "WS", 20000);
  const Recorder& rec = *run.engine->recorder();
  EXPECT_TRUE(rec.virtual_time());
  EXPECT_GT(rec.total_recorded(), 0u);
  for (int w = 0; w < rec.num_workers(); ++w) {
    const auto events = rec.events(w);
    EXPECT_FALSE(events.empty()) << "worker " << w << " recorded nothing";
    std::uint64_t prev = 0;
    for (const Event& e : events) {
      EXPECT_GE(e.ts, prev) << "worker " << w << " went backwards";
      prev = e.ts;
    }
  }
}

TEST(SimTracing, EveryWorkerShowsUpInTheChromeTrace) {
  const TracedSimRun run =
      traced_sim_run("quicksort", "SB", 20000, "xeon7560_s8");
  const std::string path = temp_path("trace_sb.json");
  TraceInfo info;
  info.engine = "sim";
  info.scheduler = "SB";
  info.machine = "xeon7560_s8";
  ASSERT_TRUE(WriteChromeTrace(*run.engine->recorder(), path, info));

  const std::string text = slurp(path);
  std::string error;
  EXPECT_TRUE(JsonValidate(text, &error)) << error;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"anchor\""), std::string::npos);
  EXPECT_NE(text.find("\"level\""), std::string::npos);
  for (int w = 0; w < run.engine->recorder()->num_workers(); ++w) {
    const std::string tid = "\"tid\":" + std::to_string(w) + ",";
    EXPECT_NE(text.find(tid), std::string::npos) << "worker " << w;
  }
  std::remove(path.c_str());
}

TEST(SimTracing, GoldenAnchorHistogramMatchesScheduler) {
  const TracedSimRun run =
      traced_sim_run("quicksort", "SB", 20000, "xeon7560_s8");
  const auto* sb = dynamic_cast<const sched::SpaceBounded*>(run.sched.get());
  ASSERT_NE(sb, nullptr);
  ASSERT_GT(sb->total_anchors(), 0u);

  const TraceAnalysis analysis = Analyze(*run.engine->recorder());
  EXPECT_EQ(analysis.totals().anchors, sb->total_anchors());
  std::uint64_t histogram_total = 0;
  int occupied_levels = 0;
  for (std::size_t d = 0; d < analysis.anchors_by_level.size(); ++d) {
    EXPECT_EQ(analysis.anchors_by_level[d],
              sb->anchors_at_depth(static_cast<int>(d)))
        << "depth " << d;
    histogram_total += analysis.anchors_by_level[d];
    if (sb->anchors_at_depth(static_cast<int>(d)) > 0) {
      ++occupied_levels;
      // The acceptance bar: at least one level-tagged anchor event per
      // cache level the scheduler actually anchored to.
      EXPECT_GE(analysis.anchors_by_level[d], 1u);
    }
  }
  EXPECT_EQ(histogram_total, sb->total_anchors());
  EXPECT_GE(occupied_levels, 1);
}

TEST(SimTracing, MetricsJsonlLinesEachValidate) {
  const TracedSimRun run =
      traced_sim_run("quicksort", "SB", 20000, "xeon7560_s8");
  const TraceAnalysis analysis = Analyze(*run.engine->recorder());
  EXPECT_GT(analysis.totals().strands, 0u);
  EXPECT_GT(analysis.load_imbalance(), 0.0);

  const std::string path = temp_path("metrics.jsonl");
  ASSERT_TRUE(WriteMetricsJsonl(analysis, path, "first", /*truncate=*/true));
  ASSERT_TRUE(WriteMetricsJsonl(analysis, path, "second"));

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    std::string error;
    EXPECT_TRUE(JsonValidate(line, &error)) << "line " << lines << ": " << error;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(ThreadTracing, RealEngineProducesAValidTrace) {
  const Topology topo(Preset("mini"));
  runtime::ThreadPool pool(topo);
  pool.enable_tracing();
  kernels::KernelParams params;
  params.n = 20000;
  params.base = 512;
  auto kernel = kernels::MakeKernel("rrm", params);
  kernel->prepare(1);
  auto sched = sched::MakeScheduler("WS");
  pool.run(*sched, kernel->make_root());

  ASSERT_NE(pool.recorder(), nullptr);
  EXPECT_FALSE(pool.recorder()->virtual_time());
  EXPECT_GT(pool.recorder()->total_recorded(), 0u);

  const std::string path = temp_path("trace_threads.json");
  ASSERT_TRUE(WriteChromeTrace(*pool.recorder(), path));
  std::string error;
  EXPECT_TRUE(JsonValidate(slurp(path), &error)) << error;
  std::remove(path.c_str());

  const TraceAnalysis analysis = Analyze(*pool.recorder());
  EXPECT_FALSE(analysis.virtual_time);
  EXPECT_GT(analysis.totals().strands, 0u);
  EXPECT_GT(analysis.totals().active_ticks, 0u);
}

TEST(Json, WriterAndValidatorRoundTrip) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", std::string("a\"b\\c\n"));
  w.kv("pi", 3.25);
  w.kv("neg", std::int64_t{-7});
  w.kv("big", std::uint64_t{18446744073709551615ull});
  w.kv("flag", true);
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().kv("x", 0.5).end_object();
  w.end_object();

  std::string error;
  EXPECT_TRUE(JsonValidate(w.str(), &error)) << error << "\n" << w.str();
  EXPECT_FALSE(JsonValidate("{\"unterminated\": ", &error));
  EXPECT_FALSE(JsonValidate("{} trailing", &error));
  EXPECT_TRUE(JsonValidate("[1, 2.5e-3, \"\\u00e9\", null, false]"));
}

}  // namespace
}  // namespace sbs::trace
