// Unit tests for the stackful fiber layer used by the PMH simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.h"

namespace sbs::sim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYields) {
  int x = 0;
  Fiber f([&x] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber f([&trace] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentIsSetInsideAndClearedOutside) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* inside = nullptr;
  Fiber f([&inside] { inside = Fiber::current(); });
  f.resume();
  EXPECT_EQ(inside, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManyInterleavedFibers) {
  constexpr int kFibers = 16, kSteps = 100;
  std::vector<int> counters(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int s = 0; s < kSteps; ++s) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::yield();
      }
    }));
  }
  // Round-robin resume until all finish.
  bool any = true;
  while (any) {
    any = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any = any || !f->finished();
      }
    }
  }
  for (int c : counters) EXPECT_EQ(c, kSteps);
}

TEST(Fiber, DeepStackUsage) {
  // Recursion deep enough to catch stack setup errors but well within the
  // 512 KB default stack.
  std::function<std::uint64_t(int)> fib_sum = [&](int n) -> std::uint64_t {
    volatile char pad[128] = {};  // force frame growth
    (void)pad;
    return n == 0 ? 0 : static_cast<std::uint64_t>(n) + fib_sum(n - 1);
  };
  std::uint64_t result = 0;
  Fiber f([&] { result = fib_sum(1000); }, /*stack_bytes=*/4 * 1024 * 1024);
  f.resume();
  EXPECT_EQ(result, 1000ull * 1001 / 2);
}

TEST(Fiber, PreservesCalleeSavedStateAcrossYields) {
  // Values held in registers across a yield must survive the context switch.
  std::uint64_t out = 0;
  Fiber f([&out] {
    std::uint64_t a = 0x1111, b = 0x2222, c = 0x3333, d = 0x4444;
    Fiber::yield();
    a += 1;
    Fiber::yield();
    out = a + b + c + d;
  });
  f.resume();
  f.resume();
  f.resume();
  EXPECT_EQ(out, 0x1111ull + 1 + 0x2222 + 0x3333 + 0x4444);
}

TEST(FiberDeath, ResumingFinishedFiberAborts) {
  Fiber f([] {});
  f.resume();
  EXPECT_DEATH({ f.resume(); }, "finished");
}

TEST(FiberDeath, YieldOutsideFiberAborts) {
  EXPECT_DEATH({ Fiber::yield(); }, "outside");
}

}  // namespace
}  // namespace sbs::sim
