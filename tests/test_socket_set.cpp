// Unit tests for the sharing-directory socket set (src/sim/socket_set.h),
// concentrating on the 64-socket inline/spill boundary: machines up to 64
// sockets must stay allocation-free, and sets that cross the boundary must
// behave identically to the inline representation (ascending iteration
// order, any_other/clear_others semantics, value-type copies in FlatMap).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/flat_map.h"
#include "sim/socket_set.h"

namespace sbs::sim {
namespace {

std::vector<int> collect(const SocketSet& s, int skip) {
  std::vector<int> out;
  s.for_each_other(skip, [&](int socket) { out.push_back(socket); });
  return out;
}

TEST(SocketSet, InlineSetResetTest) {
  SocketSet s;
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  s.set(0);
  s.set(17);
  s.set(63);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(17));
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(1));
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 3);
  EXPECT_FALSE(s.spilled());  // sockets 0..63 never allocate
  s.reset(17);
  EXPECT_FALSE(s.test(17));
  EXPECT_EQ(s.count(), 2);
  s.reset(0);
  s.reset(63);
  EXPECT_TRUE(s.none());
}

TEST(SocketSet, SpillBoundary) {
  SocketSet s;
  s.set(63);
  EXPECT_FALSE(s.spilled());
  s.set(64);  // first socket past the inline word
  EXPECT_TRUE(s.spilled());
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_FALSE(s.test(65));
  s.set(127);
  s.set(128);
  s.set(1023);  // top of the supported range
  EXPECT_EQ(s.count(), 5);
  EXPECT_EQ(collect(s, -1), (std::vector<int>{63, 64, 127, 128, 1023}));
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 4);
}

TEST(SocketSet, AnyOtherAcrossBoundary) {
  SocketSet s;
  s.set(70);
  EXPECT_TRUE(s.any_other(5));
  EXPECT_FALSE(s.any_other(70));
  s.set(5);
  EXPECT_TRUE(s.any_other(70));
  s.reset(5);
  EXPECT_FALSE(s.any_other(70));
}

TEST(SocketSet, ForEachOtherSkipsAndAscends) {
  SocketSet s;
  for (int socket : {3, 0, 200, 64, 63, 199}) s.set(socket);
  EXPECT_EQ(collect(s, -1), (std::vector<int>{0, 3, 63, 64, 199, 200}));
  EXPECT_EQ(collect(s, 64), (std::vector<int>{0, 3, 63, 199, 200}));
  EXPECT_EQ(collect(s, 3), (std::vector<int>{0, 63, 64, 199, 200}));
  EXPECT_EQ(collect(s, 7), (std::vector<int>{0, 3, 63, 64, 199, 200}));
}

TEST(SocketSet, ClearOthers) {
  SocketSet s;
  for (int socket : {1, 63, 64, 500}) s.set(socket);
  s.clear_others(64);
  EXPECT_TRUE(s.test(64));
  EXPECT_EQ(s.count(), 1);

  SocketSet t;
  for (int socket : {1, 63, 64, 500}) t.set(socket);
  t.clear_others(1);
  EXPECT_TRUE(t.test(1));
  EXPECT_EQ(t.count(), 1);
}

TEST(SocketSet, CopyAndMoveSemantics) {
  SocketSet s;
  s.set(2);
  s.set(90);

  SocketSet copy(s);  // deep copy: mutating the copy leaves s intact
  copy.reset(90);
  copy.set(91);
  EXPECT_TRUE(s.test(90));
  EXPECT_FALSE(s.test(91));
  EXPECT_TRUE(copy.test(91));
  EXPECT_FALSE(copy.test(90));

  SocketSet assigned;
  assigned.set(500);
  assigned = s;
  EXPECT_EQ(assigned, s);
  EXPECT_FALSE(assigned.test(500));

  SocketSet moved(std::move(copy));
  EXPECT_TRUE(moved.test(2));
  EXPECT_TRUE(moved.test(91));
  EXPECT_TRUE(copy.none());  // moved-from is empty, still usable
  copy.set(64);
  EXPECT_TRUE(copy.test(64));
}

TEST(SocketSet, Equality) {
  SocketSet a;
  SocketSet b;
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
  a.set(100);
  EXPECT_NE(a, b);
  b.set(100);
  EXPECT_EQ(a, b);
  // A spilled-then-emptied high word still compares equal to a set that
  // never spilled.
  a.reset(100);
  b.reset(100);
  EXPECT_EQ(a, b);
  SocketSet never_spilled;
  never_spilled.set(10);
  EXPECT_EQ(a, never_spilled);
}

TEST(SocketSet, SurvivesFlatMapChurn) {
  // The directory stores SocketSet by value in open-addressed slots; grow
  // and backward-shift erase must preserve spilled payloads.
  FlatMap<SocketSet> dir(16);
  constexpr std::uint64_t kLines = 3000;
  for (std::uint64_t line = 1; line <= kLines; ++line) {
    SocketSet& s = dir[line];
    s.set(static_cast<int>(line % 64));
    s.set(static_cast<int>(64 + line % 192));  // every entry spills
  }
  for (std::uint64_t line = 1; line <= kLines; line += 3) dir.erase(line);
  for (std::uint64_t line = 1; line <= kLines; ++line) {
    SocketSet* s = dir.find(line);
    if (line % 3 == 1) {
      EXPECT_EQ(s, nullptr) << "line " << line;
      continue;
    }
    ASSERT_NE(s, nullptr) << "line " << line;
    EXPECT_TRUE(s->test(static_cast<int>(line % 64)));
    EXPECT_TRUE(s->test(static_cast<int>(64 + line % 192)));
    EXPECT_EQ(s->count(), 2);
  }
}

}  // namespace
}  // namespace sbs::sim
