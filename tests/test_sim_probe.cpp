// The cache-representation knobs (sim/cache.h CacheOptions: SIMD tag
// probes, presence filters, packed LRU) are pure host-side representation
// choices: every combination must produce bit-identical simulation results
// — same makespan, same coherence counters, same eviction victims. This
// suite asserts that at three levels: the raw simd.h scanners, a lockstep
// cache-churn model across option combinations, and full engine runs
// across schedulers × kernels × host threads. Plus the huge64 guarantee
// that presence filters actually engage (filter_skips > 0).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "kernels/kernel.h"
#include "machine/config.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/simd.h"
#include "util/rng.h"

namespace sbs::sim {
namespace {

// --- simd.h scanner agreement ---

TEST(SimdProbe, AllTiersAgreeOnEveryPositionAndMiss) {
  // Distinct nonzero keys (valid bit set, like cache tags); every count up
  // to 33 exercises the SSE2 pair loop's odd tail and the AVX2 quad
  // loop's 1–3-word tails.
  std::vector<std::uint64_t> words;
  for (std::uint32_t count = 1; count <= 33; ++count) {
    words.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      words.push_back(((i + 1) * 977ull) << 1 | 1);
    }
    for (std::uint32_t pos = 0; pos < count; ++pos) {
      const std::uint64_t key = words[pos];
      EXPECT_EQ(simd::find_u64_scalar(words.data(), count, key),
                static_cast<int>(pos));
      EXPECT_EQ(simd::find_u64_sse2(words.data(), count, key),
                static_cast<int>(pos));
      if (simd::have_avx2()) {
        EXPECT_EQ(simd::find_u64_avx2(words.data(), count, key),
                  static_cast<int>(pos));
      }
    }
    const std::uint64_t absent = (1234567ull << 1) | 1;
    EXPECT_EQ(simd::find_u64_scalar(words.data(), count, absent), -1);
    EXPECT_EQ(simd::find_u64_sse2(words.data(), count, absent), -1);
    if (simd::have_avx2()) {
      EXPECT_EQ(simd::find_u64_avx2(words.data(), count, absent), -1);
    }
  }
}

TEST(SimdProbe, ScalarRequestedMeansScalarSelected) {
  EXPECT_EQ(simd::select_probe_impl(false), simd::ProbeImpl::kScalar);
  const CacheOptions scalar{/*simd_probes=*/false, /*presence_filter=*/true,
                            /*packed_lru=*/false,
                            /*filter_min_tag_bytes=*/64 * 1024};
  EXPECT_EQ(Cache(4096, 64, 4, scalar).probe_impl(),
            simd::ProbeImpl::kScalar);
}

// --- lockstep churn across option combinations ---

struct Rep {
  const char* name;
  bool simd;
  bool filter;
  bool packed;
};

constexpr Rep kReps[] = {
    {"reference(scalar,rotate)", false, false, false},
    {"simd", true, false, false},
    {"filter", false, true, false},
    {"packed", false, false, true},
    {"all", true, true, true},
};

CacheOptions options_of(const Rep& rep) {
  CacheOptions o;
  o.simd_probes = rep.simd;
  o.presence_filter = rep.filter;
  o.packed_lru = rep.packed;
  o.filter_min_tag_bytes = 0;  // force filters onto the tiny test caches
  return o;
}

/// Drive every representation through the same random access/invalidate
/// churn and require identical observable behavior at every step: hit and
/// miss outcomes, eviction victims (line, dirty bit), invalidation
/// results, and residency. Geometries straddle the packed-LRU boundary
/// (assoc 8 = ordering word, 9 and 24 = age stamps) and include the
/// fully-associative single-set shape.
class CacheChurnEquivalence : public ::testing::TestWithParam<
                                  std::tuple<std::uint32_t, std::uint64_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheChurnEquivalence,
    ::testing::Values(std::make_tuple(4u, 64ull * 32),   // 4-way, 8 sets
                      std::make_tuple(8u, 64ull * 64),   // order-word mode
                      std::make_tuple(9u, 64ull * 144),  // stamp mode, min
                      std::make_tuple(24u, 64ull * 192),  // stamp mode, L2ish
                      std::make_tuple(0u, 64ull * 32)));  // fully assoc

TEST_P(CacheChurnEquivalence, IdenticalVictimsHitsAndResidency) {
  const auto& [assoc, size] = GetParam();
  std::vector<Cache> caches;
  caches.reserve(std::size(kReps));
  for (const Rep& rep : kReps) {
    caches.emplace_back(size, 64, assoc, options_of(rep));
  }
  Rng rng(2024);
  const std::uint64_t line_space = 3 * size / 64;  // ~3x overcommit
  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t line = rng.next_below(line_space);
    const int op = static_cast<int>(rng.next_below(8));
    if (op == 0) {  // invalidate
      bool ref_dirty = false;
      const bool ref_found = caches[0].invalidate(line, &ref_dirty);
      for (std::size_t i = 1; i < caches.size(); ++i) {
        bool dirty = false;
        ASSERT_EQ(caches[i].invalidate(line, &dirty), ref_found)
            << kReps[i].name << " step " << step;
        ASSERT_EQ(dirty, ref_dirty) << kReps[i].name << " step " << step;
      }
    } else if (op == 1) {  // combined probe+fill
      Cache::Evicted ref_ev;
      const bool ref_filled = caches[0].fill_if_absent(line, false, &ref_ev);
      for (std::size_t i = 1; i < caches.size(); ++i) {
        Cache::Evicted ev;
        ASSERT_EQ(caches[i].fill_if_absent(line, false, &ev), ref_filled)
            << kReps[i].name << " step " << step;
        ASSERT_EQ(ev.valid, ref_ev.valid) << kReps[i].name;
        ASSERT_EQ(ev.line, ref_ev.line) << kReps[i].name;
        ASSERT_EQ(ev.dirty, ref_ev.dirty) << kReps[i].name;
      }
    } else {  // probe; fill on miss (the walk's pattern)
      const bool write = rng.next_below(3) == 0;
      const bool ref_hit = caches[0].probe_and_touch(line, write);
      Cache::Evicted ref_ev;
      if (!ref_hit) ref_ev = caches[0].fill(line, write);
      for (std::size_t i = 1; i < caches.size(); ++i) {
        ASSERT_EQ(caches[i].probe_and_touch(line, write), ref_hit)
            << kReps[i].name << " step " << step << " line " << line;
        if (!ref_hit) {
          const Cache::Evicted ev = caches[i].fill(line, write);
          ASSERT_EQ(ev.valid, ref_ev.valid) << kReps[i].name;
          ASSERT_EQ(ev.line, ref_ev.line) << kReps[i].name;
          ASSERT_EQ(ev.dirty, ref_ev.dirty) << kReps[i].name;
        }
      }
    }
    for (std::size_t i = 1; i < caches.size(); ++i) {
      ASSERT_EQ(caches[i].resident_lines(), caches[0].resident_lines())
          << kReps[i].name << " step " << step;
    }
  }
  // The filtered caches must actually have exercised the fast path.
  EXPECT_GT(caches[2].filter_skips(), 0u);
  EXPECT_GT(caches[4].filter_skips(), 0u);
  EXPECT_EQ(caches[0].filter_skips(), 0u);
}

TEST(CacheRepresentation, IntrospectionMatchesOptions) {
  CacheOptions packed;
  packed.packed_lru = true;
  EXPECT_TRUE(Cache(4096, 64, 8, packed).packed_lru());
  EXPECT_FALSE(Cache(4096, 64, 8).packed_lru());  // default rotate
  CacheOptions filt;
  filt.filter_min_tag_bytes = 0;
  EXPECT_TRUE(Cache(4096, 64, 8, filt).filter_enabled());
  // Default threshold leaves a tiny tag array unfiltered.
  EXPECT_FALSE(Cache(4096, 64, 8).filter_enabled());
}

TEST(CacheRepresentation, ClearResetsFilterAndSkipCount) {
  CacheOptions o;
  o.filter_min_tag_bytes = 0;
  Cache cache(4096, 64, 4, o);
  for (std::uint64_t l = 0; l < 200; ++l) {
    Cache::Evicted ev;
    cache.fill_if_absent(l, false, &ev);
  }
  for (std::uint64_t l = 1000; l < 1200; ++l) {
    cache.probe_and_touch(l, false);
  }
  EXPECT_GT(cache.filter_skips(), 0u);
  cache.clear();
  EXPECT_EQ(cache.filter_skips(), 0u);
  EXPECT_EQ(cache.resident_lines(), 0u);
  // Post-clear churn still behaves (filter was zeroed with the tags).
  for (std::uint64_t l = 0; l < 200; ++l) {
    Cache::Evicted ev;
    cache.fill_if_absent(l, false, &ev);
    EXPECT_TRUE(cache.contains(l));
  }
}

// --- full engine equivalence ---

SimResult run_rep(const machine::Topology& topo, const std::string& sched,
                  const std::string& kernel_name, std::size_t n,
                  int host_threads, bool simd, bool filter, bool packed,
                  std::uint64_t filter_min_tag_bytes = 0) {
  kernels::KernelParams kp;
  kp.n = n;
  auto kernel = kernels::MakeKernel(kernel_name, kp);
  kernel->prepare(1);
  auto s = sched::MakeScheduler(sched);
  SimParams sp;
  sp.host_threads = host_threads;
  sp.simd_probes = simd;
  sp.presence_filter = filter;
  sp.packed_lru = packed;
  // Scaled-down preset caches are small, so the default threshold would
  // leave every level unfiltered; callers on real-size machines pass the
  // production threshold instead.
  sp.memory.cache.filter_min_tag_bytes = filter_min_tag_bytes;
  SimEngine engine(topo, sp);
  const SimResult r = engine.run(*s, kernel->make_root());
  EXPECT_TRUE(kernel->verify()) << sched << "/" << kernel_name;
  return r;
}

/// Everything except filter_skips must match bit for bit; filter_skips is
/// compared only when `same_filter` (a filterless run trivially has 0).
void expect_identical(const SimResult& a, const SimResult& b,
                      bool same_filter, const std::string& label) {
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles) << label;
  const Counters& x = a.counters;
  const Counters& y = b.counters;
  EXPECT_EQ(x.accesses, y.accesses) << label;
  EXPECT_EQ(x.writes, y.writes) << label;
  EXPECT_EQ(x.dram_reads, y.dram_reads) << label;
  EXPECT_EQ(x.dram_writebacks, y.dram_writebacks) << label;
  EXPECT_EQ(x.remote_dram_accesses, y.remote_dram_accesses) << label;
  EXPECT_EQ(x.queue_wait_cycles, y.queue_wait_cycles) << label;
  EXPECT_EQ(x.fiber_switches, y.fiber_switches) << label;
  EXPECT_EQ(x.windows_executed, y.windows_executed) << label;
  EXPECT_EQ(x.window_merges, y.window_merges) << label;
  EXPECT_EQ(x.pump_passes, y.pump_passes) << label;
  EXPECT_EQ(x.inline_strands, y.inline_strands) << label;
  if (same_filter) {
    EXPECT_EQ(x.filter_skips, y.filter_skips) << label;
  }
  ASSERT_EQ(x.level.size(), y.level.size()) << label;
  for (std::size_t lvl = 1; lvl < x.level.size(); ++lvl) {
    EXPECT_EQ(x.level[lvl].hits, y.level[lvl].hits) << label << " L" << lvl;
    EXPECT_EQ(x.level[lvl].misses, y.level[lvl].misses)
        << label << " L" << lvl;
    EXPECT_EQ(x.level[lvl].evictions, y.level[lvl].evictions)
        << label << " L" << lvl;
    EXPECT_EQ(x.level[lvl].back_invalidations,
              y.level[lvl].back_invalidations)
        << label << " L" << lvl;
    EXPECT_EQ(x.level[lvl].coherence_invalidations,
              y.level[lvl].coherence_invalidations)
        << label << " L" << lvl;
  }
}

class SimProbeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

INSTANTIATE_TEST_SUITE_P(
    SchedulerByKernel, SimProbeEquivalence,
    ::testing::Combine(::testing::Values("WS", "PWS", "SB", "SB-D"),
                       ::testing::Values("quicksort", "samplesort")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';  // "SB-D" → valid gtest name
      }
      return name;
    });

TEST_P(SimProbeEquivalence, RepresentationsAreBitIdentical) {
  const auto& [sched_name, kernel_name] = GetParam();
  const machine::Topology topo(machine::Preset("xeon7560_s8"));
  const std::size_t n = 20000;
  for (int ht : {1, 4}) {
    const std::string tag =
        sched_name + "/" + kernel_name + " ht=" + std::to_string(ht);
    const SimResult ref = run_rep(topo, sched_name, kernel_name, n, ht,
                                  false, false, false);
    const SimResult simd = run_rep(topo, sched_name, kernel_name, n, ht,
                                   true, false, false);
    expect_identical(ref, simd, /*same_filter=*/true, tag + " simd");
    const SimResult filt = run_rep(topo, sched_name, kernel_name, n, ht,
                                   false, true, false);
    expect_identical(ref, filt, /*same_filter=*/false, tag + " filter");
    EXPECT_EQ(ref.counters.filter_skips, 0u) << tag;
    EXPECT_GT(filt.counters.filter_skips, 0u) << tag;
    const SimResult packed = run_rep(topo, sched_name, kernel_name, n, ht,
                                     false, false, true);
    expect_identical(ref, packed, /*same_filter=*/true, tag + " packed");
    const SimResult all = run_rep(topo, sched_name, kernel_name, n, ht,
                                  true, true, true);
    expect_identical(filt, all, /*same_filter=*/true, tag + " all-on");
  }
}

// --- huge64: filters must engage on the big outer levels ---

// configs/huge64_4level.cfg, inlined because ctest runs from the build
// tree. Multi-MB L2/L3 tag arrays put every outer level past the default
// filter_min_tag_bytes threshold.
constexpr char kHuge64Config[] = R"(
int num_procs = 512;
int num_levels = 5;
int fan_outs[5] = {64, 2, 4, 1, 1};
long long int sizes[5] = {0, 32*(1<<20), 4*(1<<20), 1<<18, 1<<15};
int block_sizes[5] = {64, 64, 64, 64, 64};
int assoc[5] = {0, 16, 16, 8, 8};
)";

TEST(SimProbeHuge64, PresenceFiltersEngageAndPreserveResults) {
  const machine::Topology topo(machine::ParseConfig(kHuge64Config));
  const std::size_t n = 20000;
  // Production threshold: the strict filter_skips > 0 assert holds for the
  // defaults real runs use, not a test-forced configuration.
  const std::uint64_t threshold = CacheOptions{}.filter_min_tag_bytes;
  const SimResult off = run_rep(topo, "WS", "samplesort", n, 1,
                                /*simd=*/true, /*filter=*/false,
                                /*packed=*/false, threshold);
  const SimResult on = run_rep(topo, "WS", "samplesort", n, 1,
                               /*simd=*/true, /*filter=*/true,
                               /*packed=*/false, threshold);
  expect_identical(off, on, /*same_filter=*/false, "huge64 filter");
  EXPECT_GT(on.counters.filter_skips, 0u)
      << "presence filters never engaged on huge64";
  EXPECT_EQ(off.counters.filter_skips, 0u);
}

}  // namespace
}  // namespace sbs::sim
