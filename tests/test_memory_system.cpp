// Unit tests for the simulated memory hierarchy: hit/miss placement,
// inclusion, coherence invalidation, writebacks, bandwidth queueing, and the
// page→socket bandwidth throttle.
#include <gtest/gtest.h>

#include "machine/topology.h"
#include "sim/memory_system.h"

namespace sbs::sim {
namespace {

using machine::Preset;
using machine::Topology;

class MemSys : public ::testing::Test {
 protected:
  // mini: 2 sockets × 2 cores; L2 64 KB shared per socket, L1 4 KB private;
  // 4 KB pages; dram latency 100, 8 B/cycle per socket link.
  Topology topo{Preset("mini")};
  MemoryParams params;
};

TEST_F(MemSys, FirstTouchMissesThenHitsInL1) {
  MemorySystem mem(topo, params);
  const std::uint64_t c1 = mem.access(0, 0x100000, false, 0);
  EXPECT_EQ(mem.counters().dram_reads, 1u);
  const std::uint64_t c2 = mem.access(0, 0x100000, false, c1);
  EXPECT_EQ(mem.counters().dram_reads, 1u);
  EXPECT_EQ(c2, topo.config().levels[2].hit_cycles);  // L1 hit
  EXPECT_GT(c1, c2);
  EXPECT_EQ(mem.counters().level[2].hits, 1u);
  EXPECT_EQ(mem.counters().level[1].hits, 0u);
}

TEST_F(MemSys, SameSocketNeighborHitsInSharedL2) {
  MemorySystem mem(topo, params);
  mem.access(0, 0x200000, false, 0);
  // Thread 1 shares thread 0's socket-level L2 in the mini preset.
  const std::uint64_t cost = mem.access(1, 0x200000, false, 0);
  EXPECT_EQ(cost, topo.config().levels[1].hit_cycles);  // L2 hit
  EXPECT_EQ(mem.counters().dram_reads, 1u);
  // After the hit, the line was filled into thread 1's L1 too.
  EXPECT_EQ(mem.access(1, 0x200000, false, 0),
            topo.config().levels[2].hit_cycles);
}

TEST_F(MemSys, RemoteSocketMissesSeparately) {
  MemorySystem mem(topo, params);
  mem.access(0, 0x300000, false, 0);
  // Thread 2 is on the other socket: its L2 does not have the line.
  mem.access(2, 0x300000, false, 0);
  EXPECT_EQ(mem.counters().dram_reads, 2u);
}

TEST_F(MemSys, WriteInvalidatesRemoteCopies) {
  MemorySystem mem(topo, params);
  mem.access(0, 0x400000, false, 0);
  mem.access(2, 0x400000, false, 0);  // both sockets now share the line
  EXPECT_EQ(mem.counters().dram_reads, 2u);

  mem.access(0, 0x400000, true, 0);  // write by thread 0
  EXPECT_GT(mem.counters().level[1].coherence_invalidations +
                mem.counters().level[2].coherence_invalidations,
            0u);
  // Thread 2 must now re-fetch from memory (its copies were invalidated).
  mem.access(2, 0x400000, false, 0);
  EXPECT_EQ(mem.counters().dram_reads, 3u);
}

TEST_F(MemSys, DirtyEvictionWritesBack) {
  MemorySystem mem(topo, params);
  const std::uint64_t base = 0x10000000;
  mem.access(0, base, true, 0);  // dirty in L1
  // Stream enough distinct lines through to evict `base` from every level
  // of thread 0's path (L1 4 KB, L2 64 KB ⇒ 1024+ lines suffice).
  for (std::uint64_t i = 1; i <= 4096; ++i) {
    mem.access(0, base + i * 64, false, 0);
  }
  EXPECT_GE(mem.counters().dram_writebacks, 1u);
}

TEST_F(MemSys, InclusionBackInvalidatesHotL1Line) {
  MemorySystem mem(topo, params);
  const std::uint64_t hot = 0x20000000;
  mem.access(1, hot, false, 0);  // thread 1's private L1 + the shared L2
  // Thread 0 streams enough distinct lines through the shared L2 to evict
  // `hot` from it. Thread 1's private L1 is untouched by the stream, so its
  // copy is still resident when the L2 eviction lands — inclusion must
  // back-invalidate it.
  for (std::uint64_t i = 1; i <= 8192; ++i) {
    mem.access(0, hot + i * 64, false, 0);
  }
  EXPECT_GT(mem.counters().level[1].evictions, 0u);
  EXPECT_GT(mem.counters().level[2].back_invalidations, 0u);
  // The back-invalidation also dropped the line from thread 1's access
  // memo: its next touch must take the full miss path again (an absorbed
  // L1 hit here would mean the memo outlived the residency it proves).
  const std::uint64_t cost = mem.access(1, hot, false, 0);
  EXPECT_GT(cost, topo.config().levels[2].hit_cycles);
  EXPECT_EQ(mem.counters().dram_reads, 8194u);
}

TEST_F(MemSys, SequentialStreakSkipsLatency) {
  MemorySystem mem(topo, params);
  const std::uint64_t first = mem.access(0, 0x500000, false, 0);
  const std::uint64_t second = mem.access(0, 0x500040, false, 1000000);
  // Second access is the next line: prefetch streak, no latency component.
  EXPECT_LT(second, first);
}

TEST_F(MemSys, BandwidthQueueingDelaysBursts) {
  MemorySystem mem(topo, params);
  // Many threads hammering lines homed on one socket at the same virtual
  // time must see growing queue delays.
  params.allowed_sockets = {0};
  MemorySystem throttled(topo, params);
  for (int i = 0; i < 64; ++i) {
    throttled.access(i % 4, 0x30000000 + static_cast<std::uint64_t>(i) * 64,
                     false, /*now=*/0);
  }
  EXPECT_GT(throttled.counters().queue_wait_cycles, 0u);
}

TEST_F(MemSys, PageHomesRespectAllowedSockets) {
  params.allowed_sockets = {1};
  MemorySystem mem(topo, params);
  // All misses from socket 0 to socket-1-homed pages are remote.
  mem.access(0, 0x600000, false, 0);
  mem.access(0, 0x604000, false, 0);  // different 4 KB page
  EXPECT_EQ(mem.counters().remote_dram_accesses, 2u);
  // And from socket 1 they are local.
  mem.access(2, 0x7000000, false, 0);
  EXPECT_EQ(mem.counters().remote_dram_accesses, 2u);
}

TEST_F(MemSys, AccessRangeCountsEveryLine) {
  MemorySystem mem(topo, params);
  mem.access_range(0, 0x800000, 64 * 10, false, 0);
  EXPECT_EQ(mem.counters().accesses, 10u);
  // Unaligned range spanning a line boundary touches both lines.
  mem.access_range(0, 0x900020, 64, false, 0);
  EXPECT_EQ(mem.counters().accesses, 12u);
}

TEST_F(MemSys, ResetClearsState) {
  MemorySystem mem(topo, params);
  mem.access(0, 0xa00000, true, 0);
  mem.reset();
  EXPECT_EQ(mem.counters().accesses, 0u);
  mem.access(0, 0xa00000, false, 0);
  EXPECT_EQ(mem.counters().dram_reads, 1u);  // miss again after reset
}

TEST_F(MemSys, CapacityShapesL2Misses) {
  // Working set ≤ L2 ⇒ second sweep all L2-or-better hits.
  // Working set = 4× L2 ⇒ second sweep keeps missing at L2.
  MemorySystem mem(topo, params);
  const std::uint64_t l2 = topo.config().levels[1].size;

  auto sweep = [&](std::uint64_t base, std::uint64_t bytes) {
    for (std::uint64_t off = 0; off < bytes; off += 64)
      mem.access(0, base + off, false, 0);
  };
  sweep(0x40000000, l2 / 2);
  const std::uint64_t misses_before = mem.counters().level[1].misses;
  sweep(0x40000000, l2 / 2);
  EXPECT_EQ(mem.counters().level[1].misses, misses_before);

  mem.reset();
  sweep(0x50000000, l2 * 4);
  const std::uint64_t m1 = mem.counters().level[1].misses;
  sweep(0x50000000, l2 * 4);
  EXPECT_GT(mem.counters().level[1].misses, m1 + (l2 * 2) / 64);
}

}  // namespace
}  // namespace sbs::sim
