// Unit tests for the utility layer: RNG, stats, tables, CLI, FlatMap.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/flat_map.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace sbs {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // overwhelmingly likely
  }
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, TrimmedMeanDropsExtremes) {
  EXPECT_DOUBLE_EQ(trimmed_mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(trimmed_mean({1.0, 3.0}), 2.0);
  // min (0) and max (100) removed.
  EXPECT_DOUBLE_EQ(trimmed_mean({0.0, 2.0, 4.0, 100.0}), 3.0);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22,5"});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"22,5\""), std::string::npos);  // quoted comma
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_millions(54'900'000, 1), "54.9M");
  EXPECT_EQ(fmt_percent(0.421, 1), "42.1%");
  EXPECT_EQ(fmt_bytes(24ull << 20), "24 MB");
  EXPECT_EQ(fmt_bytes(1ull << 31), "2 GB");
  EXPECT_EQ(fmt_seconds(0.5), "500.000ms");
}

TEST(Cli, ParsesAllKinds) {
  Cli cli("prog", "test");
  bool flag = false;
  std::int64_t num = 0;
  double d = 0;
  std::string s;
  cli.add_flag("flag", &flag, "a flag");
  cli.add_int("num", &num, "an int");
  cli.add_double("ratio", &d, "a double");
  cli.add_string("name", &s, "a string");
  const char* argv[] = {"prog", "--flag", "--num=42", "--ratio", "0.5",
                        "--name=x", "positional"};
  EXPECT_TRUE(cli.parse(7, const_cast<char**>(argv)));
  EXPECT_TRUE(flag);
  EXPECT_EQ(num, 42);
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_EQ(s, "x");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(FlatMap, InsertFindErase) {
  sim::FlatMap<int> map(16);
  map[10] = 1;
  map[20] = 2;
  EXPECT_EQ(*map.find(10), 1);
  EXPECT_EQ(*map.find(20), 2);
  EXPECT_EQ(map.find(30), nullptr);
  map.erase(10);
  EXPECT_EQ(map.find(10), nullptr);
  EXPECT_EQ(*map.find(20), 2);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowsAndMatchesStdMap) {
  sim::FlatMap<std::uint64_t> map(16);
  std::map<std::uint64_t, std::uint64_t> ref;
  Rng rng(31);
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(2000);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        map[key] = v;
        ref[key] = v;
        break;
      }
      case 1: {
        auto* found = map.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << step;
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second) << step;
        }
        break;
      }
      case 2:
        map.erase(key);
        ref.erase(key);
        break;
    }
    ASSERT_EQ(map.size(), ref.size()) << step;
  }
  for (const auto& [k, v] : ref) {
    auto* found = map.find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
}

TEST(FlatMap, ClearEmpties) {
  sim::FlatMap<int> map;
  for (std::uint64_t k = 1; k <= 100; ++k) map[k] = 1;
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_EQ(map.find(k), nullptr);
}

TEST(Quantile, ExactInterpolates) {
  const std::vector<double> v = {4, 1, 3, 2};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(exact_quantile({7.0}, 0.99), 7.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile p50(0.5);
  EXPECT_DOUBLE_EQ(p50.value(), 0.0);  // no samples yet
  std::vector<double> seen;
  for (double x : {3.0, 1.0, 4.0, 2.0}) {
    p50.add(x);
    seen.push_back(x);
    EXPECT_DOUBLE_EQ(p50.value(), exact_quantile(seen, 0.5));
  }
  EXPECT_EQ(p50.count(), 4u);
}

TEST(P2Quantile, CountKeepsGrowingAfterWarmup) {
  P2Quantile q(0.9);
  for (int i = 0; i < 1000; ++i) q.add(i);
  EXPECT_EQ(q.count(), 1000u);
}

TEST(P2Quantile, TracksUniformWithinTolerance) {
  Rng rng(2024);
  P2Quantile p50(0.5), p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double();
    p50.add(x);
    p99.add(x);
    all.push_back(x);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(all, 0.5), 0.02);
  EXPECT_NEAR(p99.value(), exact_quantile(all, 0.99), 0.02);
}

TEST(P2Quantile, TracksSkewedTail) {
  // Heavy-tailed samples (exp of a uniform spread) — the regime sojourn
  // times live in. The p99.9 estimate must stay in the right decade.
  Rng rng(7);
  P2Quantile p999(0.999);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = std::exp(6.0 * rng.next_double());  // 1 .. e^6
    p999.add(x);
    all.push_back(x);
  }
  const double exact = exact_quantile(all, 0.999);
  EXPECT_GT(p999.value(), exact * 0.7);
  EXPECT_LT(p999.value(), exact * 1.3);
}

TEST(P2Quantile, MonotoneAcrossQuantiles) {
  Rng rng(11);
  P2Quantile p50(0.5), p99(0.99), p999(0.999);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double() * 100.0;
    p50.add(x);
    p99.add(x);
    p999.add(x);
  }
  EXPECT_LE(p50.value(), p99.value() * 1.0001);
  EXPECT_LE(p99.value(), p999.value() * 1.0001);
}

}  // namespace
}  // namespace sbs
