// Unit + property tests for the set-associative LRU cache.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "sim/cache.h"
#include "util/rng.h"

namespace sbs::sim {
namespace {

TEST(Cache, HitAfterFill) {
  Cache cache(/*size=*/1024, /*line=*/64, /*assoc=*/4);
  EXPECT_FALSE(cache.probe_and_touch(7, false));
  cache.fill(7, false);
  EXPECT_TRUE(cache.probe_and_touch(7, false));
  EXPECT_EQ(cache.resident_lines(), 1u);
}

TEST(Cache, FullyAssociativeWhenAssocZero) {
  Cache cache(/*size=*/512, /*line=*/64, /*assoc=*/0);
  EXPECT_EQ(cache.associativity(), 8u);
  EXPECT_EQ(cache.num_sets(), 1u);
}

TEST(Cache, LruEvictionOrderFullyAssociative) {
  Cache cache(/*size=*/256, /*line=*/64, /*assoc=*/0);  // 4 lines, 1 set
  for (std::uint64_t l = 0; l < 4; ++l) cache.fill(l, false);
  // Touch 0 to make it MRU; the next fill must evict 1 (now LRU).
  EXPECT_TRUE(cache.probe_and_touch(0, false));
  const Cache::Evicted victim = cache.fill(99, false);
  ASSERT_TRUE(victim.valid);
  EXPECT_EQ(victim.line, 1u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, DirtyBitTravelsWithEviction) {
  Cache cache(/*size=*/128, /*line=*/64, /*assoc=*/0);  // 2 lines
  cache.fill(1, false);
  EXPECT_TRUE(cache.probe_and_touch(1, /*mark_dirty=*/true));
  cache.fill(2, false);
  const Cache::Evicted victim = cache.fill(3, false);  // evicts 1 (LRU)
  ASSERT_TRUE(victim.valid);
  EXPECT_EQ(victim.line, 1u);
  EXPECT_TRUE(victim.dirty);
}

TEST(Cache, InvalidateReportsDirtyAndFreesSlot) {
  Cache cache(/*size=*/256, /*line=*/64, /*assoc=*/4);
  cache.fill(5, true);
  bool dirty = false;
  EXPECT_TRUE(cache.invalidate(5, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_FALSE(cache.invalidate(5, &dirty));
}

TEST(Cache, ClearEmptiesEverything) {
  Cache cache(/*size=*/1024, /*line=*/64, /*assoc=*/4);
  for (std::uint64_t l = 0; l < 10; ++l) cache.fill(l * 977, false);
  cache.clear();
  EXPECT_EQ(cache.resident_lines(), 0u);
  for (std::uint64_t l = 0; l < 10; ++l) EXPECT_FALSE(cache.contains(l * 977));
}

TEST(Cache, WorkingSetSmallerThanCacheNeverMisses) {
  // Classic property: with LRU and a working set ≤ capacity (fully
  // associative), every line faults exactly once.
  Cache cache(/*size=*/64 * 64, /*line=*/64, /*assoc=*/0);  // 64 lines
  int fills = 0;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t l = 0; l < 64; ++l) {
      const std::uint64_t line = 1000 + (round % 2 ? 63 - l : l);
      if (!cache.probe_and_touch(line, false)) {
        cache.fill(line, false);
        ++fills;
      }
    }
  }
  EXPECT_EQ(fills, 64);
}

/// Property test: the cache must agree exactly with a reference model
/// (per-set std::list LRU) over a long random trace.
class CacheModelTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelTest,
    ::testing::Values(std::make_tuple(1, 16),   // direct-mapped
                      std::make_tuple(4, 8),    // 4-way
                      std::make_tuple(8, 4),    // 8-way
                      std::make_tuple(0, 1)));  // fully associative

TEST_P(CacheModelTest, MatchesReferenceLru) {
  const int assoc_param = std::get<0>(GetParam());
  const std::uint64_t size = 64ull * 64;  // 64 lines total
  Cache cache(size, 64, static_cast<std::uint32_t>(assoc_param));

  const std::uint32_t assoc = cache.associativity();
  const std::uint64_t nsets = cache.num_sets();
  // Reference: per set, an LRU list of (line, dirty).
  std::vector<std::list<std::pair<std::uint64_t, bool>>> model(nsets);
  auto model_set = [&](std::uint64_t line) -> auto& {
    // Mirror the implementation's hash-based set index.
    const std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return model[(h >> 32) & (nsets - 1)];
  };

  Rng rng(123);
  int hits = 0, misses = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t line = rng.next_below(200);
    const bool write = rng.next_below(4) == 0;
    auto& set = model_set(line);
    auto it = set.begin();
    for (; it != set.end(); ++it) {
      if (it->first == line) break;
    }
    const bool model_hit = it != set.end();
    const bool cache_hit = cache.probe_and_touch(line, write);
    ASSERT_EQ(cache_hit, model_hit) << "step " << step << " line " << line;
    if (model_hit) {
      ++hits;
      auto entry = *it;
      entry.second = entry.second || write;
      set.erase(it);
      set.push_front(entry);
    } else {
      ++misses;
      const Cache::Evicted victim = cache.fill(line, write);
      if (set.size() == assoc) {
        ASSERT_TRUE(victim.valid);
        ASSERT_EQ(victim.line, set.back().first);
        ASSERT_EQ(victim.dirty, set.back().second);
        set.pop_back();
      } else {
        ASSERT_FALSE(victim.valid);
      }
      set.push_front({line, write});
    }
  }
  EXPECT_GT(hits, 0);
  EXPECT_GT(misses, 0);
}

}  // namespace
}  // namespace sbs::sim
