// Idle-backoff tests for the real thread pool: idle workers fall back
// through the spin -> yield -> sleep tiers without missing work or delaying
// run termination, and the engines surface the empty_wakeups statistic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/mem.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sim/engine.h"

namespace sbs::runtime {
namespace {

using machine::Preset;
using machine::Topology;

/// A root strand that spins for roughly `ms` milliseconds without forking,
/// so every other worker sits idle long enough to reach the deepest
/// (sleeping) backoff tier.
Job* busy_root(int ms) {
  return make_job([ms](Strand&) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < until) {
    }
  });
}

TEST(IdleBackoff, SleepingWorkersObserveFinishPromptly) {
  const Topology topo(Preset("mini"));  // 4 workers
  ThreadPool pool(topo);
  auto sched = sched::MakeScheduler("WS");

  // 10ms of single-threaded work: three workers idle through the spin and
  // yield tiers into the 50us-sleep tier thousands of times over.
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats stats = pool.run(*sched, busy_root(10));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Termination latency is bounded by one sleep quantum per worker, not by
  // how deep the backoff went. Allow very generous CI slack.
  EXPECT_LT(wall_s, 5.0);
  EXPECT_LT(stats.wall_s, 5.0);
  EXPECT_EQ(stats.total_strands(), 1u);
  // The three idle workers polled an empty scheduler at least once each.
  EXPECT_GT(stats.total_empty_wakeups(), 3u);
}

TEST(IdleBackoff, BackoffDoesNotLoseLateWork) {
  // Fork after a delay: workers that have already backed off to the sleep
  // tier must still pick up the late-released children.
  const Topology topo(Preset("mini"));
  ThreadPool pool(topo);
  auto sched = sched::MakeScheduler("WS");

  std::atomic<int> executed{0};
  Job* root = make_job([&executed](Strand& strand) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(5);
    while (std::chrono::steady_clock::now() < until) {
    }
    std::vector<Job*> children;
    for (int i = 0; i < 8; ++i) {
      children.push_back(
          make_job([&executed](Strand&) { ++executed; }));
    }
    strand.fork(std::move(children), make_nop());
  });
  const RunStats stats = pool.run(*sched, root);
  EXPECT_EQ(executed.load(), 8);
  EXPECT_EQ(stats.total_strands(), 10u);  // root + 8 children + nop
}

TEST(IdleBackoff, SimEngineCountsEmptyWakeups) {
  // The simulator reports the analogous statistic: polls of an empty
  // scheduler while another virtual core still runs.
  const Topology topo(Preset("mini"));
  auto sched = sched::MakeScheduler("WS");
  sim::SimEngine engine(topo);

  mem::Array<double> data(1 << 12);
  Job* root = make_job(
      [&data](Strand&) { data.touch_range(0, 1 << 12, true); },
      2 * (1 << 12) * sizeof(double));
  const sim::SimResult result = engine.run(*sched, root);
  EXPECT_EQ(result.stats.total_strands(), 1u);
  // Three of the four virtual cores only ever poll an empty scheduler.
  EXPECT_GT(result.stats.total_empty_wakeups(), 0u);
}

}  // namespace
}  // namespace sbs::runtime
