// Lightweight checked-assertion macros.
//
// SBS_CHECK is always on (invariants whose violation would corrupt results);
// SBS_ASSERT compiles out in NDEBUG builds (hot-path sanity checks).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sbs::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "SBS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace sbs::detail

#define SBS_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::sbs::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define SBS_CHECK_MSG(cond, msg)                                   \
  do {                                                             \
    if (!(cond))                                                   \
      ::sbs::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SBS_ASSERT(cond) ((void)0)
#else
#define SBS_ASSERT(cond) SBS_CHECK(cond)
#endif
