// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every source of randomness in the project — steal-victim selection, input
// data generation, property-test sweeps — goes through this generator with an
// explicit seed so that every experiment regenerates bit-identically.
#pragma once

#include <cstdint>

namespace sbs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
      word = s ^ (s >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // schedulers only need approximate uniformity for victim choice, and
    // data generators tolerate the negligible bias for 64-bit ranges.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace sbs
