// Plain test-and-test-and-set spinlock for code *outside* the scheduler
// layer (kernels' side tables, cold shared registries). Unlike
// sched::Spinlock it does not bump the scheduler op counter: a kernel
// taking a lock is application work, and counting it as scheduler
// overhead would inflate the simulator's virtual-cycle attribution for
// whichever scheduler happened to run that strand.
//
// Declared as a thread-safety capability like every lock in this repo
// (util/thread_safety.h): guard fields with SBS_GUARDED_BY(lock) and
// acquire through the RAII SpinGuard.
#pragma once

#include <atomic>

#include "util/cpu_relax.h"
#include "util/thread_safety.h"

namespace sbs::util {

class SBS_CAPABILITY("spinlock") Spinlock {
 public:
  void lock() SBS_ACQUIRE() {
    // Acquire on the winning exchange pairs with the release store in
    // unlock(): the critical section it opens sees everything the
    // previous holder wrote. The inner wait loop spins relaxed — only
    // the exchange that actually takes the lock needs ordering.
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }
  bool try_lock() SBS_TRY_ACQUIRE(true) {
    // Same acquire-on-success pairing as lock().
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() SBS_RELEASE() {
    // Release publishes the critical section to the next acquirer.
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard, visible to clang's thread-safety analysis as a scoped
/// capability.
class SBS_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) SBS_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinGuard() SBS_RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sbs::util
