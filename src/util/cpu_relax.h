// Portable spin-wait hint. On x86-64 this is the `pause` instruction
// (de-pipelines the spin loop, frees the sibling hyperthread, and avoids
// the memory-order mis-speculation flush on lock release); on AArch64 the
// `yield` hint; elsewhere a no-op. Spelled in inline asm rather than
// _mm_pause so no intrinsic header leaks outside src/sim/simd.h (the
// raw-simd lint rule) and the util layer stays dependency-free.
#pragma once

namespace sbs::util {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __asm__ __volatile__("pause");
#elif defined(__aarch64__) || defined(__arm__)
  __asm__ __volatile__("yield");
#endif
}

}  // namespace sbs::util
