// Small statistics helpers used by the experiment harness and the service
// layer's latency accounting.
//
// The paper (§5.3) reports "the average of at least 10 runs with the smallest
// and largest readings across runs removed"; trimmed_mean implements exactly
// that convention. P2Quantile adds streaming percentile estimation (Jain &
// Chlamtac's P² algorithm) for the service mode, where sojourn-time p99/p99.9
// must be tracked over an unbounded sample stream in O(1) space.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sbs {

/// Mean of the samples after dropping the single smallest and single largest
/// value (when there are at least three samples; otherwise the plain mean).
inline double trimmed_mean(std::vector<double> samples) {
  SBS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  std::size_t lo = 0, hi = samples.size();
  if (samples.size() >= 3) {
    ++lo;
    --hi;
  }
  double sum = 0;
  for (std::size_t i = lo; i < hi; ++i) sum += samples[i];
  return sum / static_cast<double>(hi - lo);
}

inline double mean(const std::vector<double>& samples) {
  SBS_CHECK(!samples.empty());
  double sum = 0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

inline double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0;
  const double m = mean(samples);
  double acc = 0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

/// Exact q-quantile (0 ≤ q ≤ 1) by sorting, with linear interpolation
/// between order statistics. Reference for tests and small sample sets.
inline double exact_quantile(std::vector<double> samples, double q) {
  SBS_CHECK(!samples.empty());
  SBS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Streaming q-quantile estimator: the P² algorithm (Jain & Chlamtac, CACM
/// 1985). Five markers track the min, the q/2, q, (1+q)/2 quantile
/// estimates, and the max; on every observation the inner markers move
/// toward their ideal positions by a piecewise-parabolic height adjustment.
/// O(1) space and time per sample, no buffering — exact until the fifth
/// sample, a few-percent estimate afterwards (tested against
/// exact_quantile in test_util.cpp).
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {
    SBS_CHECK(q > 0.0 && q < 1.0);
  }

  void add(double x) {
    ++n_;
    if (count_ < 5) {
      height_[count_++] = x;
      if (count_ == 5) {
        std::sort(height_, height_ + 5);
        for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
        ideal_[0] = 1;
        ideal_[1] = 1 + 2 * q_;
        ideal_[2] = 1 + 4 * q_;
        ideal_[3] = 3 + 2 * q_;
        ideal_[4] = 5;
        ideal_step_[0] = 0;
        ideal_step_[1] = q_ / 2;
        ideal_step_[2] = q_;
        ideal_step_[3] = (1 + q_) / 2;
        ideal_step_[4] = 1;
      }
      return;
    }

    // Locate the cell containing x; clamp the extremes.
    int k;
    if (x < height_[0]) {
      height_[0] = x;
      k = 0;
    } else if (x >= height_[4]) {
      height_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= height_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) ++pos_[i];
    for (int i = 0; i < 5; ++i) ideal_[i] += ideal_step_[i];

    // Nudge inner markers whose position drifted ≥ 1 from ideal.
    for (int i = 1; i <= 3; ++i) {
      const double d = ideal_[i] - static_cast<double>(pos_[i]);
      if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
          (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
        const int s = d >= 0 ? 1 : -1;
        const double candidate = parabolic(i, s);
        if (height_[i - 1] < candidate && candidate < height_[i + 1]) {
          height_[i] = candidate;
        } else {
          height_[i] = linear(i, s);
        }
        pos_[i] += s;
      }
    }
  }

  /// Current estimate of the q-quantile (exact for < 5 samples).
  double value() const {
    if (count_ == 0) return 0;
    if (count_ < 5) {
      std::vector<double> v(height_, height_ + count_);
      return exact_quantile(std::move(v), q_);
    }
    return height_[2];
  }

  double quantile() const { return q_; }
  std::uint64_t count() const { return n_; }

 private:
  double parabolic(int i, int s) const {
    const double ds = s;
    const double pm = static_cast<double>(pos_[i - 1]);
    const double pi = static_cast<double>(pos_[i]);
    const double pp = static_cast<double>(pos_[i + 1]);
    return height_[i] +
           ds / (pp - pm) *
               ((pi - pm + ds) * (height_[i + 1] - height_[i]) / (pp - pi) +
                (pp - pi - ds) * (height_[i] - height_[i - 1]) / (pi - pm));
  }
  double linear(int i, int s) const {
    return height_[i] + static_cast<double>(s) * (height_[i + s] - height_[i]) /
                            static_cast<double>(pos_[i + s] - pos_[i]);
  }

  double q_;
  double height_[5] = {};
  long long pos_[5] = {};
  double ideal_[5] = {};
  double ideal_step_[5] = {};
  std::uint64_t count_ = 0;  ///< warm-up fill level, frozen at 5
  std::uint64_t n_ = 0;      ///< total samples observed
};

}  // namespace sbs
