// Small statistics helpers used by the experiment harness.
//
// The paper (§5.3) reports "the average of at least 10 runs with the smallest
// and largest readings across runs removed"; trimmed_mean implements exactly
// that convention.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.h"

namespace sbs {

/// Mean of the samples after dropping the single smallest and single largest
/// value (when there are at least three samples; otherwise the plain mean).
inline double trimmed_mean(std::vector<double> samples) {
  SBS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  std::size_t lo = 0, hi = samples.size();
  if (samples.size() >= 3) {
    ++lo;
    --hi;
  }
  double sum = 0;
  for (std::size_t i = lo; i < hi; ++i) sum += samples[i];
  return sum / static_cast<double>(hi - lo);
}

inline double mean(const std::vector<double>& samples) {
  SBS_CHECK(!samples.empty());
  double sum = 0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

inline double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0;
  const double m = mean(samples);
  double acc = 0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace sbs
