// Minimal JSON support: a streaming writer for the machine-readable outputs
// (metrics JSONL, BENCH_*.json) and a validating parser used by tests to
// check that exported files are well-formed.
//
// Deliberately tiny — no DOM, no external dependency. The writer tracks
// nesting and comma placement; values are escaped per RFC 8259. Numbers are
// emitted with enough precision to round-trip doubles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    return key(name).value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  std::vector<bool> needs_comma_;  ///< one entry per open object/array
  bool after_key_ = false;
};

std::string JsonEscape(const std::string& text);

/// Validate that `text` is one complete JSON value (trailing whitespace ok).
/// On failure returns false and, if `error` is non-null, a brief message
/// with the byte offset.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

}  // namespace sbs
