// Minimal JSON support: a streaming writer for the machine-readable outputs
// (metrics JSONL, BENCH_*.json), a validating parser used by tests to check
// that exported files are well-formed, and a small read-only DOM
// (JsonValue/JsonParse) for consumers that must walk parsed documents —
// the offline trace checker reads JSONL trace lines through it.
//
// Deliberately tiny — no external dependency. The writer tracks nesting and
// comma placement; values are escaped per RFC 8259. Numbers are emitted
// with enough precision to round-trip doubles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sbs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    return key(name).value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  std::vector<bool> needs_comma_;  ///< one entry per open object/array
  bool after_key_ = false;
};

std::string JsonEscape(const std::string& text);

/// Validate that `text` is one complete JSON value (trailing whitespace ok).
/// On failure returns false and, if `error` is non-null, a brief message
/// with the byte offset.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

/// Parsed JSON value. Accessors are total: a type mismatch or missing key
/// returns the given default (or a shared null value), never throws — the
/// trace checker reports malformed input as a verification finding, not a
/// crash.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  std::int64_t as_i64(std::int64_t fallback = 0) const;
  const std::string& as_string() const;  ///< empty string on mismatch

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  std::size_t size() const {
    return is_array() ? items_.size() : members_.size();
  }

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Object lookup; a shared null value when absent — chainable:
  /// doc["config"]["levels"] never faults.
  const JsonValue& operator[](const std::string& key) const;
  /// Array index; a shared null value when out of range.
  const JsonValue& operator[](std::size_t index) const;

  // --- construction (used by JsonParse) ---
  static JsonValue null_value() { return JsonValue(); }
  static JsonValue of(bool b);
  static JsonValue of(double n);
  static JsonValue of(std::string s);
  static JsonValue array();
  static JsonValue object();
  void push_back(JsonValue v);                     ///< must be an array
  void insert(std::string key, JsonValue v);       ///< must be an object

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON value (trailing whitespace ok) into a DOM.
/// Returns false on malformed input, with a brief message and byte offset
/// in `error` if non-null; `out` is left null-typed.
bool JsonParse(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace sbs
