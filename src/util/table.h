// ASCII table and CSV reporters for experiment output.
//
// Every bench binary prints a paper-style table (rows = scheduler /
// configuration, columns = metrics) and can optionally mirror it to CSV for
// plotting. Cells are strings; numeric helpers format with sensible units.
#pragma once

#include <string>
#include <vector>

namespace sbs {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render as an aligned ASCII table.
  std::string to_string() const;
  /// Render as CSV (header + rows).
  std::string to_csv() const;

  /// Print to stdout; if csv_path is nonempty, also write the CSV file.
  void print(const std::string& csv_path = "") const;

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench binaries.
std::string fmt_double(double v, int precision = 3);
std::string fmt_millions(double v, int precision = 1);  // "54.9M"
std::string fmt_seconds(double seconds, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);  // 0.42 -> 42.0%
std::string fmt_bytes(std::uint64_t bytes);                   // "24 MB"

}  // namespace sbs
