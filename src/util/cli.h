// Minimal command-line flag parser shared by bench binaries and examples.
//
// Supports --flag (bool), --key=value and "--key value" forms, collects
// positional arguments, and prints a generated --help. Unknown flags are an
// error so that typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sbs {

class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void add_flag(const std::string& name, bool* target, const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);

  /// Parse argv. Returns false (after printing help) on --help; aborts with a
  /// message on malformed input.
  bool parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }
  std::string help() const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    void* target;
    std::string help;
  };

  void add(const std::string& name, Kind kind, void* target,
           const std::string& help);
  bool apply(const std::string& name, const std::string& value, bool has_value);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace sbs
