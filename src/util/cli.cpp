#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/assert.h"

namespace sbs {

void Cli::add(const std::string& name, Kind kind, void* target,
              const std::string& help) {
  SBS_CHECK_MSG(!options_.count(name), "duplicate CLI option");
  options_[name] = Option{kind, target, help};
}

void Cli::add_flag(const std::string& name, bool* target,
                   const std::string& help) {
  add(name, Kind::kBool, target, help);
}
void Cli::add_int(const std::string& name, std::int64_t* target,
                  const std::string& help) {
  add(name, Kind::kInt, target, help);
}
void Cli::add_double(const std::string& name, double* target,
                     const std::string& help) {
  add(name, Kind::kDouble, target, help);
}
void Cli::add_string(const std::string& name, std::string* target,
                     const std::string& help) {
  add(name, Kind::kString, target, help);
}

bool Cli::apply(const std::string& name, const std::string& value,
                bool has_value) {
  auto it = options_.find(name);
  if (it == options_.end()) {
    std::fprintf(stderr, "%s: unknown option --%s\n%s", program_.c_str(),
                 name.c_str(), help().c_str());
    std::exit(2);
  }
  Option& opt = it->second;
  switch (opt.kind) {
    case Kind::kBool:
      if (has_value) {
        *static_cast<bool*>(opt.target) =
            value == "1" || value == "true" || value == "yes";
      } else {
        *static_cast<bool*>(opt.target) = true;
      }
      return true;  // bool flags never consume the next argv token
    case Kind::kInt: {
      if (!has_value) return false;
      char* end = nullptr;
      *static_cast<std::int64_t*>(opt.target) =
          std::strtoll(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "%s: --%s expects an integer, got '%s'\n",
                     program_.c_str(), name.c_str(), value.c_str());
        std::exit(2);
      }
      return true;
    }
    case Kind::kDouble: {
      if (!has_value) return false;
      char* end = nullptr;
      *static_cast<double*>(opt.target) = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "%s: --%s expects a number, got '%s'\n",
                     program_.c_str(), name.c_str(), value.c_str());
        std::exit(2);
      }
      return true;
    }
    case Kind::kString:
      if (!has_value) return false;
      *static_cast<std::string*>(opt.target) = value;
      return true;
  }
  return false;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", help().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      apply(arg.substr(0, eq), arg.substr(eq + 1), /*has_value=*/true);
    } else if (!apply(arg, "", /*has_value=*/false)) {
      // Option wants a value from the next token.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s expects a value\n", program_.c_str(),
                     arg.c_str());
        std::exit(2);
      }
      apply(arg, argv[++i], /*has_value=*/true);
    }
  }
  return true;
}

std::string Cli::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    const char* kind = "";
    switch (opt.kind) {
      case Kind::kBool: kind = ""; break;
      case Kind::kInt: kind = "=<int>"; break;
      case Kind::kDouble: kind = "=<num>"; break;
      case Kind::kString: kind = "=<str>"; break;
    }
    out << "  --" << name << kind << "\n      " << opt.help << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace sbs
