#include "util/table.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/assert.h"

namespace sbs {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SBS_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  // Column widths: max over header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align metrics.
      if (c == 0) {
        out << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote cells containing commas or quotes.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print(const std::string& csv_path) const {
  std::cout << to_string() << std::endl;
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    SBS_CHECK_MSG(f.good(), "failed to open CSV output file");
    f << to_csv();
  }
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_millions(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fM", precision, v / 1e6);
  return buf;
}

std::string fmt_seconds(double seconds, int precision) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.*fus", precision, seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.*fms", precision, seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.*fs", precision, seconds);
  }
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) {
    std::snprintf(buf, sizeof buf, "%llu GB",
                  static_cast<unsigned long long>(bytes >> 30));
  } else if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%llu MB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    std::snprintf(buf, sizeof buf, "%llu KB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace sbs
