#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace sbs {

// --- writer ---

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SBS_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SBS_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  comma();
  out_ += '"';
  out_ += JsonEscape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- validating parser (recursive descent) ---

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    error = what + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos >= text.size() || text[pos] != *p) return fail("bad literal");
      ++pos;
    }
    return true;
  }

  bool string() {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return fail("bad \\u escape");
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    consume('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    return pos > start;
  }

  char peek() const { return pos < text.size() ? text[pos] : '\0'; }

  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool array() {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  Parser parser{text};
  bool ok = parser.value();
  if (ok) {
    parser.skip_ws();
    if (parser.pos != text.size()) {
      ok = parser.fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) *error = parser.error;
  return ok;
}

}  // namespace sbs
