#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/assert.h"

namespace sbs {

// --- writer ---

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SBS_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SBS_ASSERT(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  comma();
  out_ += '"';
  out_ += JsonEscape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- parser (recursive descent; validates, optionally builds a DOM) ---

namespace {

/// Every parsing method takes an optional JsonValue sink: null while
/// validating (JsonValidate), non-null while building (JsonParse). The
/// grammar walk is shared so the two cannot drift apart.
struct Parser {
  explicit Parser(const std::string& t) : text(t) {}

  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    error = what + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos >= text.size() || text[pos] != *p) return fail("bad literal");
      ++pos;
    }
    return true;
  }

  bool string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        if (e == 'u') {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return fail("bad \\u escape");
            const char h = text[pos++];
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          if (out != nullptr) {
            // UTF-8 encode the BMP code point (surrogate pairs are kept as
            // their raw halves; trace files never emit them).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
          }
        } else if (e == '"' || e == '\\' || e == '/') {
          if (out != nullptr) *out += e;
        } else if (e == 'b' || e == 'f' || e == 'n' || e == 'r' || e == 't') {
          if (out != nullptr) {
            *out += e == 'b'   ? '\b'
                    : e == 'f' ? '\f'
                    : e == 'n' ? '\n'
                    : e == 'r' ? '\r'
                               : '\t';
          }
        } else {
          return fail("bad escape");
        }
      } else if (out != nullptr) {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos;
    consume('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (pos <= start) return false;
    if (out != nullptr) {
      *out = JsonValue::of(std::strtod(text.substr(start, pos - start).c_str(),
                                       nullptr));
    }
    return true;
  }

  char peek() const { return pos < text.size() ? text[pos] : '\0'; }

  bool value(JsonValue* out) {
    skip_ws();
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string s;
        if (!string(out != nullptr ? &s : nullptr)) return false;
        if (out != nullptr) *out = JsonValue::of(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        if (out != nullptr) *out = JsonValue::of(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        if (out != nullptr) *out = JsonValue::of(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        if (out != nullptr) *out = JsonValue::null_value();
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    consume('{');
    if (out != nullptr) *out = JsonValue::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(out != nullptr ? &key : nullptr)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!value(out != nullptr ? &member : nullptr)) return false;
      if (out != nullptr) out->insert(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    consume('[');
    if (out != nullptr) *out = JsonValue::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!value(out != nullptr ? &item : nullptr)) return false;
      if (out != nullptr) out->push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }
};

bool run_parser(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text);
  bool ok = parser.value(out);
  if (ok) {
    parser.skip_ws();
    if (parser.pos != text.size()) {
      ok = parser.fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) *error = parser.error;
  return ok;
}

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  return run_parser(text, nullptr, error);
}

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  SBS_ASSERT(out != nullptr);
  if (run_parser(text, out, error)) return true;
  *out = JsonValue::null_value();
  return false;
}

// --- JsonValue accessors ---

namespace {
const JsonValue& shared_null() {
  static const JsonValue null;
  return null;
}
const std::string& shared_empty_string() {
  static const std::string empty;
  return empty;
}
}  // namespace

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (!is_number() || number_ < 0) return fallback;
  return static_cast<std::uint64_t>(number_);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (!is_number()) return fallback;
  return static_cast<std::int64_t>(number_);
}

const std::string& JsonValue::as_string() const {
  return is_string() ? string_ : shared_empty_string();
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, member] : members_) {
    if (name == key) return &member;
  }
  return nullptr;
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  const JsonValue* member = find(key);
  return member != nullptr ? *member : shared_null();
}

const JsonValue& JsonValue::operator[](std::size_t index) const {
  if (!is_array() || index >= items_.size()) return shared_null();
  return items_[index];
}

JsonValue JsonValue::of(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::of(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::of(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::push_back(JsonValue v) {
  SBS_ASSERT(is_array());
  items_.push_back(std::move(v));
}

void JsonValue::insert(std::string key, JsonValue v) {
  SBS_ASSERT(is_object());
  members_.emplace_back(std::move(key), std::move(v));
}

}  // namespace sbs
