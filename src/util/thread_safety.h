// Clang Thread Safety Analysis annotations (Hutchins et al., "C/C++ Thread
// Safety Analysis", CGO'14), wrapped so the code compiles unannotated on
// compilers without the attributes (gcc). The analysis is purely static:
// locks are declared as *capabilities*, data as *guarded by* a capability,
// and functions by the capabilities they acquire/release/require. Clang then
// proves, per translation unit, that every guarded access happens while the
// guarding capability is held — the scheduler's lock discipline becomes a
// compile-time contract instead of a TSan-schedule-dependent property.
//
// Conventions in this repo (see docs/VERIFICATION.md):
//   - every lock member is declared with a capability annotation
//     (sched::Spinlock and util Mutex below are annotated types);
//   - every field a lock protects carries SBS_GUARDED_BY(that_lock);
//   - RAII guards (SpinGuard, MutexLock) are SBS_SCOPED_CAPABILITY;
//   - single-threaded escape hatches (drain checks in Scheduler::finish)
//     still take the lock rather than using SBS_NO_THREAD_SAFETY_ANALYSIS,
//     so the analysis stays free of blind spots.
//
// -Wthread-safety is enabled for clang builds in the top-level
// CMakeLists.txt and promoted to an error in CI (SBS_WERROR=ON).
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SBS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SBS_THREAD_ANNOTATION(x)  // no-op on gcc and others
#endif

#define SBS_CAPABILITY(x) SBS_THREAD_ANNOTATION(capability(x))
#define SBS_SCOPED_CAPABILITY SBS_THREAD_ANNOTATION(scoped_lockable)
#define SBS_GUARDED_BY(x) SBS_THREAD_ANNOTATION(guarded_by(x))
#define SBS_PT_GUARDED_BY(x) SBS_THREAD_ANNOTATION(pt_guarded_by(x))
#define SBS_ACQUIRE(...) \
  SBS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SBS_RELEASE(...) \
  SBS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SBS_TRY_ACQUIRE(...) \
  SBS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SBS_REQUIRES(...) \
  SBS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SBS_EXCLUDES(...) SBS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SBS_ACQUIRED_BEFORE(...) \
  SBS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SBS_ACQUIRED_AFTER(...) \
  SBS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SBS_RETURN_CAPABILITY(x) SBS_THREAD_ANNOTATION(lock_returned(x))
#define SBS_NO_THREAD_SAFETY_ANALYSIS \
  SBS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Documentation-only annotations for fields whose safety protocol is not
// a lock. Clang's analysis cannot check these (it has no notion of
// "written before threads start" or "owned by one thread"), so they
// expand to nothing — but tools/analyze's guarded-by rule accepts them
// as coverage, and they force the author to name the protocol instead
// of leaving the field silently unannotated.
//
//   SBS_INIT_ONLY      written during construction/configuration, before
//                      any concurrent access; read-only afterwards.
//   SBS_CONFINED(who)  accessed only by `who` (a thread, or "slot i's
//                      worker"), never shared.
#define SBS_INIT_ONLY
#define SBS_CONFINED(who)

namespace sbs::util {

/// std::mutex with capability annotations (libstdc++'s own mutex carries
/// none, so guarded fields behind a bare std::mutex are invisible to the
/// analysis). Used off the scheduler hot path: the mem:: allocation arena,
/// the verify:: invariant checker.
class SBS_CAPABILITY("mutex") Mutex {
 public:
  void lock() SBS_ACQUIRE() { m_.lock(); }
  void unlock() SBS_RELEASE() { m_.unlock(); }
  bool try_lock() SBS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII guard for Mutex, visible to the analysis as a scoped capability.
class SBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SBS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SBS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace sbs::util
