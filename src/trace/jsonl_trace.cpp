#include "trace/jsonl_trace.h"

#include <cstdio>
#include <fstream>

#include "util/json.h"

namespace sbs::trace {

bool WriteJsonlTrace(const Recorder& recorder, const std::string& path,
                     const TraceInfo& info, const JsonlTraceParams& params) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  {
    JsonWriter header;
    header.begin_object()
        .kv("schema", kJsonlTraceSchema)
        .kv("type", "header")
        .kv("engine", info.engine)
        .kv("scheduler", info.scheduler)
        .kv("machine", info.machine)
        .kv("label", info.label)
        .kv("clock", recorder.virtual_time() ? "virtual" : "real")
        .kv("ticks_per_second", recorder.ticks_per_second())
        .kv("workers", recorder.num_workers())
        .kv("dropped_events", recorder.total_dropped())
        .kv("sigma", params.sigma)
        .kv("mu", params.mu)
        .kv("config_text", params.config_text)
        .end_object();
    std::fputs(header.str().c_str(), f);
    std::fputc('\n', f);
  }

  // Event lines stream through fprintf: all fields are numbers or fixed
  // names, and multi-megabyte traces never materialize in memory.
  for (int w = 0; w < recorder.num_workers(); ++w) {
    for (const Event& e : recorder.events(w)) {
      std::fprintf(f,
                   R"({"type":"event","w":%d,"k":"%s","ts":%llu,"dur":%llu,"a":%llu,"b":%llu,"c":%llu})"
                   "\n",
                   w, JsonlKindName(e.kind),
                   static_cast<unsigned long long>(e.ts),
                   static_cast<unsigned long long>(e.dur),
                   static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b),
                   static_cast<unsigned long long>(e.c));
    }
  }
  return std::fclose(f) == 0;
}

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool ReadJsonlTrace(const std::string& path, JsonlTrace* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) return fail(error, "cannot open " + path);

  *out = JsonlTrace();
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    JsonValue doc;
    std::string parse_error;
    if (!JsonParse(line, &doc, &parse_error)) {
      return fail(error, where + ": " + parse_error);
    }
    if (!doc.is_object()) return fail(error, where + ": not a JSON object");

    if (!have_header) {
      // First non-empty line must be the header. Schema 1 wrote it without
      // a "type" tag; accept any object that is not an event line.
      if (doc["type"].as_string() == "event") {
        return fail(error, where + ": missing trace header");
      }
      out->schema = static_cast<int>(doc["schema"].as_i64(1));
      if (out->schema < 1 || out->schema > kJsonlTraceSchema) {
        return fail(error, where + ": unsupported schema " +
                               std::to_string(out->schema));
      }
      out->engine = doc["engine"].as_string();
      out->scheduler = doc["scheduler"].as_string();
      out->machine = doc["machine"].as_string();
      out->label = doc["label"].as_string();
      out->virtual_time = doc["clock"].as_string() == "virtual";
      out->ticks_per_second = doc["ticks_per_second"].as_double(1e9);
      out->workers = static_cast<int>(doc["workers"].as_i64(0));
      out->dropped_events = doc["dropped_events"].as_u64(0);
      out->params.sigma = doc["sigma"].as_double(0.0);
      out->params.mu = doc["mu"].as_double(0.0);
      out->params.config_text = doc["config_text"].as_string();
      have_header = true;
      continue;
    }

    if (doc.has("type") && doc["type"].as_string() != "event") {
      return fail(error, where + ": unexpected line type '" +
                             doc["type"].as_string() + "'");
    }
    const std::string& kind_name = doc["k"].as_string();
    const EventKind kind = EventKindFromName(kind_name);
    if (kind == EventKind::kNumKinds) {
      return fail(error, where + ": unknown event kind '" + kind_name + "'");
    }
    JsonlTrace::Record record;
    record.worker = static_cast<int>(doc["w"].as_i64(0));
    if (record.worker < 0 ||
        (out->workers > 0 && record.worker >= out->workers)) {
      return fail(error, where + ": worker out of range");
    }
    record.event.kind = kind;
    record.event.ts = doc["ts"].as_u64(0);
    record.event.dur = doc["dur"].as_u64(0);
    record.event.a = doc["a"].as_u64(0);
    record.event.b = doc["b"].as_u64(0);
    record.event.c = doc["c"].as_u64(0);  // absent in schema 1 -> 0
    out->records.push_back(record);
  }
  if (!have_header) return fail(error, path + ": empty trace file");
  return true;
}

}  // namespace sbs::trace
