// Chrome Trace Event Format exporter.
//
// Writes a Recorder snapshot as the JSON object form of the Trace Event
// Format ({"traceEvents": [...], ...}), loadable in chrome://tracing and
// https://ui.perfetto.dev. One Chrome "thread" per worker; complete events
// ("X") for strands / callbacks / stalls, begin–end pairs ("B"/"E") for
// get(), and instant events ("i") with args for forks, joins, steals, and
// space-bounded anchor decisions. Timestamps are converted to microseconds
// using the recorder's ticks_per_second (virtual cycles become virtual µs).
#pragma once

#include <string>

#include "trace/recorder.h"

namespace sbs::trace {

/// Run metadata embedded in the trace (shown by Perfetto's info panel).
struct TraceInfo {
  std::string engine;     ///< "threads" or "sim"
  std::string scheduler;  ///< e.g. "SB-D"
  std::string machine;    ///< preset name
  std::string label;      ///< free-form (kernel, bandwidth, ...)
};

/// Write the recorder's surviving events to `path`. Returns false if the
/// file could not be written.
bool WriteChromeTrace(const Recorder& recorder, const std::string& path,
                      const TraceInfo& info = TraceInfo());

}  // namespace sbs::trace
