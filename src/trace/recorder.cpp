#include "trace/recorder.h"

namespace sbs::trace {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<Recorder*> g_active{nullptr};

}  // namespace

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStrand: return "strand";
    case EventKind::kAdd: return "add";
    case EventKind::kDone: return "done";
    case EventKind::kEmpty: return "empty";
    case EventKind::kGetBegin: return "get";
    case EventKind::kGetEnd: return "get";
    case EventKind::kFork: return "fork";
    case EventKind::kJoin: return "join";
    case EventKind::kStealAttempt: return "steal_attempt";
    case EventKind::kStealSuccess: return "steal_success";
    case EventKind::kAnchor: return "anchor";
    case EventKind::kAdmissionFail: return "admission_fail";
    case EventKind::kRelease: return "release";
    case EventKind::kNumKinds: break;
  }
  return "?";
}

const char* JsonlKindName(EventKind kind) {
  if (kind == EventKind::kGetBegin) return "get_begin";
  if (kind == EventKind::kGetEnd) return "get_end";
  return KindName(kind);
}

EventKind EventKindFromName(const std::string& name) {
  for (int k = 0; k < static_cast<int>(EventKind::kNumKinds); ++k) {
    const EventKind kind = static_cast<EventKind>(k);
    if (name == JsonlKindName(kind)) return kind;
  }
  return EventKind::kNumKinds;
}

Recorder::Recorder(int num_workers, std::size_t capacity_per_worker) {
  SBS_CHECK(num_workers >= 1);
  SBS_CHECK(capacity_per_worker >= 2);
  const std::size_t capacity = round_up_pow2(capacity_per_worker);
  rings_.resize(static_cast<std::size_t>(num_workers));
  for (Ring& ring : rings_) {
    ring.slots.resize(capacity);
    ring.mask = capacity - 1;
  }
}

void Recorder::begin_run(bool virtual_time, double ticks_per_second) {
  virtual_ = virtual_time;
  ticks_per_second_ = ticks_per_second;
  epoch_ = std::chrono::steady_clock::now();
  for (Ring& ring : rings_) {
    ring.head = 0;
    ring.virtual_now = 0;
  }
}

std::vector<Event> Recorder::events(int worker) const {
  const Ring& ring = rings_[static_cast<std::size_t>(worker)];
  const std::uint64_t capacity = ring.mask + 1;
  const std::uint64_t count = std::min(ring.head, capacity);
  std::vector<Event> out;
  out.reserve(count);
  for (std::uint64_t i = ring.head - count; i < ring.head; ++i)
    out.push_back(ring.slots[i & ring.mask]);
  return out;
}

std::uint64_t Recorder::recorded(int worker) const {
  return rings_[static_cast<std::size_t>(worker)].head;
}

std::uint64_t Recorder::dropped(int worker) const {
  const Ring& ring = rings_[static_cast<std::size_t>(worker)];
  const std::uint64_t capacity = ring.mask + 1;
  return ring.head > capacity ? ring.head - capacity : 0;
}

std::uint64_t Recorder::total_recorded() const {
  std::uint64_t n = 0;
  for (int w = 0; w < num_workers(); ++w) n += recorded(w);
  return n;
}

std::uint64_t Recorder::total_dropped() const {
  std::uint64_t n = 0;
  for (int w = 0; w < num_workers(); ++w) n += dropped(w);
  return n;
}

// Release/acquire pair on the active-recorder pointer: a thread that
// acquires a non-null Recorder* sees its fully constructed rings; the
// null store on scope exit is release so late readers see final counts.
Recorder* active() { return g_active.load(std::memory_order_acquire); }

Scope::Scope(Recorder* recorder) {
  // Release: publish the fully constructed recorder (see active()).
  g_active.store(recorder, std::memory_order_release);
}

// Release so late readers of the null see the final ring counts.
Scope::~Scope() { g_active.store(nullptr, std::memory_order_release); }

}  // namespace sbs::trace
