#include "trace/chrome_trace.h"

#include <cstdio>

#include "util/json.h"

namespace sbs::trace {

namespace {

/// Per-event JSON is emitted with fprintf (all fields are numbers or fixed
/// names), streamed straight to the file so multi-megabyte traces never
/// materialize in memory.
void write_event(std::FILE* f, int worker, const Event& e, double us_per_tick,
                 bool first) {
  const double ts = static_cast<double>(e.ts) * us_per_tick;
  const char* name = KindName(e.kind);
  if (!first) std::fputs(",\n", f);
  switch (e.kind) {
    case EventKind::kStrand:
    case EventKind::kAdd:
    case EventKind::kDone:
    case EventKind::kEmpty:
      std::fprintf(f,
                   R"({"name":"%s","ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f})",
                   name, worker, ts,
                   static_cast<double>(e.dur) * us_per_tick);
      break;
    case EventKind::kGetBegin:
      std::fprintf(f, R"({"name":"get","ph":"B","pid":0,"tid":%d,"ts":%.3f})",
                   worker, ts);
      break;
    case EventKind::kGetEnd:
      std::fprintf(f,
                   R"({"name":"get","ph":"E","pid":0,"tid":%d,"ts":%.3f,"args":{"found":%llu}})",
                   worker, ts, static_cast<unsigned long long>(e.a));
      break;
    case EventKind::kFork:
      std::fprintf(f,
                   R"({"name":"fork","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"children":%llu}})",
                   worker, ts, static_cast<unsigned long long>(e.a));
      break;
    case EventKind::kJoin:
      std::fprintf(f,
                   R"({"name":"join","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f})",
                   worker, ts);
      break;
    case EventKind::kStealAttempt:
    case EventKind::kStealSuccess:
      std::fprintf(f,
                   R"({"name":"%s","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"victim":%llu}})",
                   name, worker, ts, static_cast<unsigned long long>(e.a));
      break;
    case EventKind::kAnchor:
    case EventKind::kRelease:
      std::fprintf(f,
                   R"({"name":"%s","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"level":%llu,"cache":%llu,"bytes":%llu,"ceiling":%llu}})",
                   name, worker, ts, static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b),
                   static_cast<unsigned long long>(e.dur),
                   static_cast<unsigned long long>(e.c));
      break;
    case EventKind::kAdmissionFail:
      std::fprintf(f,
                   R"({"name":"admission_fail","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.3f,"args":{"level":%llu,"cache":%llu}})",
                   worker, ts, static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b));
      break;
    case EventKind::kNumKinds:
      break;
  }
}

}  // namespace

bool WriteChromeTrace(const Recorder& recorder, const std::string& path,
                      const TraceInfo& info) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  const double us_per_tick = 1e6 / recorder.ticks_per_second();
  std::fputs("{\"traceEvents\":[\n", f);

  bool first = true;
  // Process/thread naming metadata so Perfetto shows "worker N" tracks.
  std::fprintf(f,
               R"({"name":"process_name","ph":"M","pid":0,"args":{"name":"sbsched %s %s"}})",
               JsonEscape(info.engine).c_str(),
               JsonEscape(info.scheduler).c_str());
  first = false;
  for (int w = 0; w < recorder.num_workers(); ++w) {
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%d,\"args\":{\"name\":\"worker %d\"}}",
                 w, w);
  }

  for (int w = 0; w < recorder.num_workers(); ++w) {
    for (const Event& e : recorder.events(w)) {
      write_event(f, w, e, us_per_tick, first);
      first = false;
    }
  }

  std::fprintf(f,
               "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
               "\"engine\":\"%s\",\"scheduler\":\"%s\",\"machine\":\"%s\","
               "\"label\":\"%s\",\"clock\":\"%s\","
               "\"ticks_per_second\":%.17g,\"dropped_events\":%llu}}\n",
               JsonEscape(info.engine).c_str(),
               JsonEscape(info.scheduler).c_str(),
               JsonEscape(info.machine).c_str(),
               JsonEscape(info.label).c_str(),
               recorder.virtual_time() ? "virtual" : "real",
               recorder.ticks_per_second(),
               static_cast<unsigned long long>(recorder.total_dropped()));
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace sbs::trace
