#include "trace/analysis.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"

namespace sbs::trace {

WorkerProfile TraceAnalysis::totals() const {
  WorkerProfile t;
  for (const WorkerProfile& w : workers) {
    t.strands += w.strands;
    t.forks += w.forks;
    t.joins += w.joins;
    t.steal_attempts += w.steal_attempts;
    t.steal_successes += w.steal_successes;
    t.anchors += w.anchors;
    t.admission_failures += w.admission_failures;
    t.releases += w.releases;
    t.stalls += w.stalls;
    t.active_ticks += w.active_ticks;
    t.add_ticks += w.add_ticks;
    t.done_ticks += w.done_ticks;
    t.get_ticks += w.get_ticks;
    t.empty_ticks += w.empty_ticks;
    t.events += w.events;
    t.dropped += w.dropped;
  }
  return t;
}

double TraceAnalysis::load_imbalance() const {
  if (workers.empty()) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (const WorkerProfile& w : workers) {
    max = std::max(max, w.active_ticks);
    sum += w.active_ticks;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(workers.size());
  return static_cast<double>(max) / mean;
}

double TraceAnalysis::steal_success_rate() const {
  const WorkerProfile t = totals();
  return t.steal_attempts == 0
             ? 0.0
             : static_cast<double>(t.steal_successes) /
                   static_cast<double>(t.steal_attempts);
}

TraceAnalysis Analyze(const Recorder& recorder, int stall_bins) {
  TraceAnalysis out;
  out.ticks_per_second = recorder.ticks_per_second();
  out.virtual_time = recorder.virtual_time();
  out.workers.resize(static_cast<std::size_t>(recorder.num_workers()));

  // Pass 1: per-worker aggregates and the run's tick span.
  struct StallSpan {
    std::uint64_t begin, end;
  };
  std::vector<StallSpan> stalls;
  for (int w = 0; w < recorder.num_workers(); ++w) {
    WorkerProfile& profile = out.workers[static_cast<std::size_t>(w)];
    profile.dropped = recorder.dropped(w);
    std::uint64_t get_begin = 0;
    bool in_get = false;
    for (const Event& e : recorder.events(w)) {
      ++profile.events;
      out.span_ticks = std::max(out.span_ticks, e.ts + e.dur);
      switch (e.kind) {
        case EventKind::kStrand:
          ++profile.strands;
          profile.active_ticks += e.dur;
          break;
        case EventKind::kAdd:
          profile.add_ticks += e.dur;
          break;
        case EventKind::kDone:
          profile.done_ticks += e.dur;
          break;
        case EventKind::kEmpty:
          ++profile.stalls;
          profile.empty_ticks += e.dur;
          stalls.push_back({e.ts, e.ts + e.dur});
          break;
        case EventKind::kGetBegin:
          get_begin = e.ts;
          in_get = true;
          break;
        case EventKind::kGetEnd:
          // A ring that wrapped mid-callback can start with an unmatched
          // end; only paired begins are charged.
          if (in_get) profile.get_ticks += e.ts - get_begin;
          in_get = false;
          break;
        case EventKind::kFork: ++profile.forks; break;
        case EventKind::kJoin: ++profile.joins; break;
        case EventKind::kStealAttempt: ++profile.steal_attempts; break;
        case EventKind::kStealSuccess: ++profile.steal_successes; break;
        case EventKind::kAnchor: {
          ++profile.anchors;
          const std::size_t depth = static_cast<std::size_t>(e.a);
          if (out.anchors_by_level.size() <= depth)
            out.anchors_by_level.resize(depth + 1, 0);
          ++out.anchors_by_level[depth];
          break;
        }
        case EventKind::kAdmissionFail: ++profile.admission_failures; break;
        case EventKind::kRelease: ++profile.releases; break;
        case EventKind::kNumKinds: break;
      }
    }
  }

  // Pass 2: bin the stall spans over the run, splitting a span that crosses
  // bin boundaries proportionally.
  stall_bins = std::max(1, stall_bins);
  out.stall_series.assign(static_cast<std::size_t>(stall_bins), 0);
  out.bin_ticks = out.span_ticks / static_cast<std::uint64_t>(stall_bins) + 1;
  for (const StallSpan& s : stalls) {
    for (std::uint64_t t = s.begin; t < s.end;) {
      const std::uint64_t bin = t / out.bin_ticks;
      const std::uint64_t bin_end = (bin + 1) * out.bin_ticks;
      const std::uint64_t upto = std::min(s.end, bin_end);
      if (bin < out.stall_series.size())
        out.stall_series[static_cast<std::size_t>(bin)] += upto - t;
      t = upto;
    }
  }
  return out;
}

bool WriteMetricsJsonl(const TraceAnalysis& analysis, const std::string& path,
                       const std::string& label, bool truncate,
                       const EngineOverheads* engine) {
  const WorkerProfile t = analysis.totals();

  JsonWriter json;
  json.begin_object()
      .kv("label", label)
      .kv("clock", analysis.virtual_time ? "virtual" : "real")
      .kv("ticks_per_second", analysis.ticks_per_second)
      .kv("span_seconds", analysis.seconds(analysis.span_ticks))
      .kv("workers", static_cast<std::uint64_t>(analysis.workers.size()))
      .kv("events", t.events)
      .kv("dropped_events", t.dropped)
      .kv("strands", t.strands)
      .kv("forks", t.forks)
      .kv("joins", t.joins)
      .kv("steal_attempts", t.steal_attempts)
      .kv("steal_successes", t.steal_successes)
      .kv("steal_failures", t.steal_attempts - t.steal_successes)
      .kv("steal_success_rate", analysis.steal_success_rate())
      .kv("anchors", t.anchors)
      .kv("admission_failures", t.admission_failures)
      .kv("stalls", t.stalls)
      // Engine-level name for the same count: scheduler polls that returned
      // no job (the idle-backoff path on real threads).
      .kv("empty_wakeups", t.stalls)
      .kv("stall_seconds", analysis.seconds(t.empty_ticks))
      .kv("load_imbalance", analysis.load_imbalance())
      .kv("active_seconds", analysis.seconds(t.active_ticks))
      .kv("overhead_seconds",
          analysis.seconds(t.add_ticks + t.done_ticks + t.get_ticks +
                           t.empty_ticks));
  json.key("anchors_by_level").begin_array();
  for (const std::uint64_t n : analysis.anchors_by_level) json.value(n);
  json.end_array();
  json.key("stall_series").begin_array();
  for (std::size_t i = 0; i < analysis.stall_series.size(); ++i) {
    json.begin_object()
        .kv("t", analysis.seconds(static_cast<std::uint64_t>(i) *
                                  analysis.bin_ticks))
        .kv("stall", analysis.seconds(analysis.stall_series[i]))
        .end_object();
  }
  json.end_array();
  if (engine != nullptr && engine->any()) {
    json.key("engine")
        .begin_object()
        .kv("windows_executed", engine->windows_executed)
        .kv("window_merges", engine->window_merges)
        .kv("pump_passes", engine->pump_passes)
        .kv("fiber_switches", engine->fiber_switches)
        .kv("inline_strands", engine->inline_strands)
        .end_object();
  }
  json.key("per_worker").begin_array();
  for (const WorkerProfile& w : analysis.workers) {
    json.begin_object()
        .kv("strands", w.strands)
        .kv("steal_attempts", w.steal_attempts)
        .kv("steal_successes", w.steal_successes)
        .kv("steal_failures", w.steal_attempts - w.steal_successes)
        .kv("anchors", w.anchors)
        .kv("empty_wakeups", w.stalls)
        .kv("active_seconds", analysis.seconds(w.active_ticks))
        .kv("stall_seconds", analysis.seconds(w.empty_ticks))
        .end_object();
  }
  json.end_array().end_object();

  std::FILE* f = std::fopen(path.c_str(), truncate ? "w" : "a");
  if (f == nullptr) return false;
  std::fputs(json.str().c_str(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0;
}

}  // namespace sbs::trace
