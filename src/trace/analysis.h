// TraceAnalysis: derive the paper's load-imbalance and contention
// diagnostics from raw recorder events.
//
// This is the trace-level counterpart of RunStats (§3.3): where RunStats
// aggregates wall/virtual time per thread, the analysis pass also sees
// *when* and *why* — steal attempt/success rates (WS contention), anchor
// histograms per cache level (SB placement behaviour, Fig. 10's σ story),
// admission failures (the bounded-occupancy hotspot that motivated SB-D),
// and a binned stall-time series showing where in the run load imbalance
// concentrated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.h"

namespace sbs::trace {

struct WorkerProfile {
  std::uint64_t strands = 0;
  std::uint64_t forks = 0;
  std::uint64_t joins = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t anchors = 0;
  std::uint64_t admission_failures = 0;
  std::uint64_t releases = 0;  ///< anchored-task charge releases
  std::uint64_t stalls = 0;    ///< empty-queue get() results

  // Tick totals per §3.3 component, reconstructed from the events.
  std::uint64_t active_ticks = 0;
  std::uint64_t add_ticks = 0;
  std::uint64_t done_ticks = 0;
  std::uint64_t get_ticks = 0;
  std::uint64_t empty_ticks = 0;

  std::uint64_t events = 0;   ///< surviving events analyzed
  std::uint64_t dropped = 0;  ///< lost to ring wraparound
};

struct TraceAnalysis {
  std::vector<WorkerProfile> workers;
  /// anchors_by_level[d] = anchor events at cache tree depth d.
  std::vector<std::uint64_t> anchors_by_level;
  /// Empty-queue (stall) ticks binned over [0, span_ticks).
  std::vector<std::uint64_t> stall_series;
  std::uint64_t bin_ticks = 0;    ///< width of one stall_series bin
  std::uint64_t span_ticks = 0;   ///< largest event end timestamp
  double ticks_per_second = 1e9;
  bool virtual_time = false;

  WorkerProfile totals() const;
  /// Worst-thread load imbalance: max active ticks / mean active ticks
  /// (1.0 = perfectly even; only workers appear in the mean, idle included).
  double load_imbalance() const;
  double steal_success_rate() const;  ///< successes / attempts (0 if none)
  double seconds(std::uint64_t ticks) const {
    return static_cast<double>(ticks) / ticks_per_second;
  }
};

/// Scan every worker's surviving events once and aggregate.
TraceAnalysis Analyze(const Recorder& recorder, int stall_bins = 32);

/// Simulator-engine overheads for the run the trace came from (sim engine
/// only; see sim/counters.h). The trace recorder never sees these — the
/// engine counts them directly — so callers pass them alongside the
/// analysis when exporting metrics.
struct EngineOverheads {
  std::uint64_t windows_executed = 0;
  std::uint64_t window_merges = 0;
  std::uint64_t pump_passes = 0;
  std::uint64_t fiber_switches = 0;
  std::uint64_t inline_strands = 0;

  bool any() const {
    return windows_executed != 0 || pump_passes != 0 || fiber_switches != 0;
  }
};

/// Append one JSONL record (a single line of JSON) summarizing the analysis
/// to `path` — steal counts, per-level anchor histogram, stall-time series,
/// imbalance, per-worker profiles. `truncate` starts the file afresh. If
/// `engine` is non-null and carries any counts, an "engine" sub-object with
/// the simulator-overhead counters is included. Returns false if the file
/// could not be written.
bool WriteMetricsJsonl(const TraceAnalysis& analysis, const std::string& path,
                       const std::string& label, bool truncate = false,
                       const EngineOverheads* engine = nullptr);

}  // namespace sbs::trace
