// Low-overhead per-worker event recorder.
//
// One fixed-capacity ring buffer per worker; a worker only ever writes its
// own ring, so the hot path is a plain store + index increment — no locks,
// no atomics, no allocation. When a ring fills, the oldest events are
// overwritten (newest-wins) and a dropped counter keeps the books honest.
//
// Two clock domains, chosen per run by the owning engine:
//   real     ticks = nanoseconds of steady_clock since begin_run()
//   virtual  ticks = the simulator's per-core virtual cycle clocks, fed in
//            through set_now() before each scheduler callback
//
// Scheduler code (ws.cpp, sb.cpp, ...) emits through the process-global
// hook `trace::emit(...)`: engines install their recorder with a trace::Scope
// for the duration of a run. When no recorder is installed — the common,
// untraced case — emit() is one relaxed atomic load and a branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "trace/event.h"
#include "util/assert.h"

namespace sbs::trace {

class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;  ///< per worker

  /// `capacity_per_worker` is rounded up to a power of two.
  explicit Recorder(int num_workers,
                    std::size_t capacity_per_worker = kDefaultCapacity);

  /// Reset all rings and select the clock domain for the coming run.
  /// `ticks_per_second` converts timestamps for exporters (1e9 for the real
  /// engine's nanoseconds; cycles/s for the simulator).
  void begin_run(bool virtual_time, double ticks_per_second);

  int num_workers() const { return static_cast<int>(rings_.size()); }
  bool virtual_time() const { return virtual_; }
  double ticks_per_second() const { return ticks_per_second_; }

  // --- hot path (per-worker, single writer) ---

  void record(int worker, EventKind kind, std::uint64_t ts,
              std::uint64_t dur = 0, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0) {
    Ring& ring = rings_[static_cast<std::size_t>(worker)];
    ring.slots[ring.head & ring.mask] = Event{ts, dur, a, b, c, kind};
    ++ring.head;
  }

  /// Record with the current timestamp — the form scheduler code uses.
  void record_now(int worker, EventKind kind, std::uint64_t a = 0,
                  std::uint64_t b = 0, std::uint64_t dur = 0,
                  std::uint64_t c = 0) {
    record(worker, kind, now(worker), dur, a, b, c);
  }

  /// The simulator publishes each core's virtual clock here before invoking
  /// a scheduler callback, so events emitted inside carry virtual time.
  void set_now(int worker, std::uint64_t ticks) {
    rings_[static_cast<std::size_t>(worker)].virtual_now = ticks;
  }

  std::uint64_t now(int worker) const {
    if (virtual_) return rings_[static_cast<std::size_t>(worker)].virtual_now;
    return ticks_of(std::chrono::steady_clock::now());
  }

  /// Real-mode conversion of an already-taken timepoint (the thread pool
  /// reuses the timestamps it takes for RunStats — no extra clock reads).
  std::uint64_t ticks_of(std::chrono::steady_clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }

  // --- snapshot (after the run; not concurrent with recording) ---

  /// Surviving events of one worker, oldest first.
  std::vector<Event> events(int worker) const;
  /// Events ever recorded by one worker (including overwritten ones).
  std::uint64_t recorded(int worker) const;
  /// Events lost to ring wraparound.
  std::uint64_t dropped(int worker) const;
  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

 private:
  struct alignas(64) Ring {
    std::vector<Event> slots;
    std::uint64_t mask = 0;
    std::uint64_t head = 0;  ///< total events written (monotone)
    std::uint64_t virtual_now = 0;
  };

  std::vector<Ring> rings_;
  bool virtual_ = false;
  double ticks_per_second_ = 1e9;
  std::chrono::steady_clock::time_point epoch_;
};

/// The recorder scheduler-side emits go to (nullptr when tracing is off).
Recorder* active();

/// RAII installation of the process-global recorder for one engine run.
class Scope {
 public:
  explicit Scope(Recorder* recorder);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// Emission hook for scheduler code. One load + branch when tracing is off.
inline void emit(int worker, EventKind kind, std::uint64_t a = 0,
                 std::uint64_t b = 0, std::uint64_t dur = 0,
                 std::uint64_t c = 0) {
  if (Recorder* recorder = active()) {
    recorder->record_now(worker, kind, a, b, dur, c);
  }
}

}  // namespace sbs::trace
