// Trace event vocabulary for the execution-tracing subsystem.
//
// Events are fixed-size PODs recorded into per-worker ring buffers (see
// recorder.h). Timestamps are ticks since the start of the run: nanoseconds
// on the real thread-pool engine, virtual cycles on the PMH simulator — the
// Recorder knows which and exporters convert.
//
// Three shapes share one struct:
//   complete   [ts, ts+dur): kStrand, kAdd, kDone, kEmpty
//   paired     kGetBegin / kGetEnd — get() is split so that events emitted
//              *inside* the callback (steals, anchors) nest between the two
//              and every worker's ring stays timestamp-ordered
//   instant    a point with payload: forks, joins, steals, anchors, stalls
#pragma once

#include <cstdint>
#include <string>

namespace sbs::trace {

enum class EventKind : std::uint16_t {
  // --- complete events (ts + dur) ---
  kStrand = 0,  ///< one strand executed; dur = active time
  kAdd,         ///< Scheduler::add calls after one settle; dur = callback time
  kDone,        ///< Scheduler::done; dur = callback time
  kEmpty,       ///< get() returned nullptr; dur = stall until the next get
  // --- paired events ---
  kGetBegin,  ///< Scheduler::get entry
  kGetEnd,    ///< Scheduler::get exit; a = 1 if a job was returned
  // --- instant events ---
  kFork,          ///< strand ended in a fork; a = number of children
  kJoin,          ///< task completion released the enclosing continuation
  kStealAttempt,  ///< a = victim worker probed
  kStealSuccess,  ///< a = victim worker robbed
  kAnchor,  ///< SB anchored a maximal task; a = befitting cache tree depth,
            ///< b = cache node id, dur = task size S(t;B) in bytes,
            ///< c = ceiling depth (the parent task's anchor depth — the
            ///< skip-level charge stops there, exclusive)
  kAdmissionFail,  ///< SB bounded-occupancy admission failed; a = befitting
                   ///< depth, b = node whose bucket held the task
  kRelease,  ///< SB released an anchored task at completion; payload mirrors
             ///< kAnchor (a = depth, b = node, dur = bytes, c = ceiling) so
             ///< replay checkers can balance charges offline
  kNumKinds,
};

struct Event {
  std::uint64_t ts = 0;   ///< ticks since run start (ns real / cycles virtual)
  std::uint64_t dur = 0;  ///< complete events; kAnchor reuses it for bytes
  std::uint64_t a = 0;    ///< payload (see EventKind)
  std::uint64_t b = 0;
  std::uint64_t c = 0;    ///< second payload slot (kAnchor/kRelease: ceiling)
  EventKind kind = EventKind::kStrand;
};

/// Stable lower-case name ("strand", "steal_attempt", ...) used by both
/// exporters, so trace consumers can key on it.
const char* KindName(EventKind kind);

/// Inverse of KindName for the JSONL trace reader. "get" (the shared Chrome
/// name) is not accepted here — the JSONL exporter writes the unambiguous
/// "get_begin"/"get_end". Returns kNumKinds for unknown names.
EventKind EventKindFromName(const std::string& name);

/// JSONL trace name: KindName except for the get pair, which must stay
/// distinguishable without Chrome's B/E phase field.
const char* JsonlKindName(EventKind kind);

/// True for kFork..kAdmissionFail (exported as Chrome instant events).
inline bool IsInstant(EventKind kind) {
  return kind >= EventKind::kFork && kind < EventKind::kNumKinds;
}

}  // namespace sbs::trace
