// Trace event vocabulary for the execution-tracing subsystem.
//
// Events are fixed-size PODs recorded into per-worker ring buffers (see
// recorder.h). Timestamps are ticks since the start of the run: nanoseconds
// on the real thread-pool engine, virtual cycles on the PMH simulator — the
// Recorder knows which and exporters convert.
//
// Three shapes share one struct:
//   complete   [ts, ts+dur): kStrand, kAdd, kDone, kEmpty
//   paired     kGetBegin / kGetEnd — get() is split so that events emitted
//              *inside* the callback (steals, anchors) nest between the two
//              and every worker's ring stays timestamp-ordered
//   instant    a point with payload: forks, joins, steals, anchors, stalls
#pragma once

#include <cstdint>

namespace sbs::trace {

enum class EventKind : std::uint16_t {
  // --- complete events (ts + dur) ---
  kStrand = 0,  ///< one strand executed; dur = active time
  kAdd,         ///< Scheduler::add calls after one settle; dur = callback time
  kDone,        ///< Scheduler::done; dur = callback time
  kEmpty,       ///< get() returned nullptr; dur = stall until the next get
  // --- paired events ---
  kGetBegin,  ///< Scheduler::get entry
  kGetEnd,    ///< Scheduler::get exit; a = 1 if a job was returned
  // --- instant events ---
  kFork,          ///< strand ended in a fork; a = number of children
  kJoin,          ///< task completion released the enclosing continuation
  kStealAttempt,  ///< a = victim worker probed
  kStealSuccess,  ///< a = victim worker robbed
  kAnchor,  ///< SB anchored a maximal task; a = befitting cache tree depth,
            ///< b = cache node id, dur = task size S(t;B) in bytes
  kAdmissionFail,  ///< SB bounded-occupancy admission failed; a = befitting
                   ///< depth, b = node whose bucket held the task
  kNumKinds,
};

struct Event {
  std::uint64_t ts = 0;   ///< ticks since run start (ns real / cycles virtual)
  std::uint64_t dur = 0;  ///< complete events; kAnchor reuses it for bytes
  std::uint64_t a = 0;    ///< payload (see EventKind)
  std::uint64_t b = 0;
  EventKind kind = EventKind::kStrand;
};

/// Stable lower-case name ("strand", "steal_attempt", ...) used by both
/// exporters, so trace consumers can key on it.
const char* KindName(EventKind kind);

/// True for kFork..kAdmissionFail (exported as Chrome instant events).
inline bool IsInstant(EventKind kind) {
  return kind >= EventKind::kFork && kind < EventKind::kNumKinds;
}

}  // namespace sbs::trace
