// JSONL trace export + import: the replay-verification interchange format.
//
// One JSON object per line. The first line is a header carrying everything
// an offline checker needs to re-verify the run without the live process:
// the full machine config (Fig. 4 syntax, round-trips through ParseConfig),
// the scheduler's σ/µ parameters, and the clock domain. Every following
// line is one event, worker-tagged, in per-worker timestamp order.
//
//   {"schema":2,"type":"header","engine":"sim","scheduler":"SB", ...}
//   {"type":"event","w":0,"k":"anchor","ts":123,"dur":65536,"a":2,"b":5,"c":0}
//
// Schema history:
//   1  events carried ts/dur/a/b only
//   2  adds the "c" payload slot (anchor/release ceiling depth) and the
//      header's sigma/mu/config_text fields
// The reader accepts both: schema-1 events default c to 0 and the header
// extras to "unknown", so old traces still replay (with the schedule-level
// checks that need the config skipped by the caller).
#pragma once

#include <string>
#include <vector>

#include "trace/chrome_trace.h"  // TraceInfo
#include "trace/recorder.h"

namespace sbs::trace {

/// Current writer schema version.
inline constexpr int kJsonlTraceSchema = 2;

/// Scheduler parameters embedded in the header for offline re-verification.
/// Schedulers without space-bounded admission leave sigma/mu at 0.
struct JsonlTraceParams {
  double sigma = 0.0;
  double mu = 0.0;
  /// Machine config rendered with machine::ToConfigText; empty = unknown.
  std::string config_text;
};

/// Write the recorder's surviving events to `path` (schema 2). Returns
/// false if the file could not be written.
bool WriteJsonlTrace(const Recorder& recorder, const std::string& path,
                     const TraceInfo& info = TraceInfo(),
                     const JsonlTraceParams& params = JsonlTraceParams());

/// A parsed JSONL trace: header fields plus events in file order.
struct JsonlTrace {
  int schema = 0;
  std::string engine;
  std::string scheduler;
  std::string machine;
  std::string label;
  bool virtual_time = false;
  double ticks_per_second = 1e9;
  int workers = 0;
  std::uint64_t dropped_events = 0;
  JsonlTraceParams params;

  struct Record {
    int worker = 0;
    Event event;
  };
  std::vector<Record> records;
};

/// Parse a JSONL trace file (schema 1 or 2). Returns false with a brief
/// message in `error` (if non-null) on the first malformed line; a line
/// with an unknown event kind also fails — the checker must not silently
/// skip evidence.
bool ReadJsonlTrace(const std::string& path, JsonlTrace* out,
                    std::string* error = nullptr);

}  // namespace sbs::trace
