// Latency accounting for the service mode: per-tenant and aggregate sojourn
// time, queueing delay, admission outcomes, and sustained throughput.
//
// The paper reports batch wall time; a service is judged on its *latency
// distribution* under sustained load (Rito & Paulino argue schedulers
// should be compared on multi-job behaviour). Sojourn = completion −
// arrival; queueing delay = dispatch − arrival (time spent parked in the
// admission queue plus scheduler pickup); service time = completion −
// dispatch. Percentiles are streamed through util P2Quantile (p50/p99/
// p99.9 in O(1) space), so the accounting layer adds no per-sample
// allocation on the completion path.
//
// Export follows the repo's JSONL-metrics convention (trace/analysis.h):
// one JSON object per line, labeled, appendable across sweep cells so a
// whole scheduler comparison lands in one file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/thread_safety.h"

namespace sbs::service {

/// Streaming p50/p99/p99.9 bundle.
struct LatencyQuantiles {
  LatencyQuantiles() : p50(0.5), p99(0.99), p999(0.999) {}
  void add(double x) {
    p50.add(x);
    p99.add(x);
    p999.add(x);
    sum += x;
    if (x > max) max = x;
    ++n;
  }
  double mean() const { return n == 0 ? 0 : sum / static_cast<double>(n); }
  P2Quantile p50, p99, p999;
  double sum = 0;
  double max = 0;
  std::uint64_t n = 0;
};

struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;   ///< dispatched immediately
  std::uint64_t queued = 0;     ///< parked before (possibly) dispatching
  std::uint64_t degraded = 0;   ///< dispatched unreserved to the WS fallback
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t completed = 0;
  LatencyQuantiles sojourn_s;
  LatencyQuantiles queueing_s;
  LatencyQuantiles service_s;

  double rejection_rate() const {
    return submitted == 0 ? 0
                          : static_cast<double>(rejected + timed_out) /
                                static_cast<double>(submitted);
  }
};

/// Thread-safe sink: submit-side events come from client threads, the
/// completion events from workers. One mutex guards everything — the
/// per-event critical section is a few P² marker updates, far off any
/// per-strand hot path (events fire once per *job*, not per task).
class ServiceMetrics {
 public:
  explicit ServiceMetrics(int num_tenants);

  void on_submit(int tenant);
  void on_admit(int tenant);
  void on_queue(int tenant);
  void on_degrade(int tenant);
  void on_reject(int tenant);
  void on_timeout(int tenant);
  void on_complete(int tenant, double sojourn_s, double queueing_s,
                   double service_s);

  /// Consistent copy of one tenant's counters / the all-tenant aggregate.
  TenantCounters tenant(int tenant) const;
  TenantCounters aggregate() const;
  int num_tenants() const;

  /// Completed jobs per second over the given span.
  double throughput(double span_s) const;

  /// One-line human-readable summary of the aggregate.
  std::string summary(double span_s) const;

 private:
  mutable util::Mutex mutex_;
  std::vector<TenantCounters> tenants_ SBS_GUARDED_BY(mutex_);
  TenantCounters aggregate_ SBS_GUARDED_BY(mutex_);
};

/// Append one JSONL record (a single JSON line) with the aggregate and the
/// per-tenant breakdown to `path`. `truncate` starts the file afresh.
/// Returns false if the file could not be written.
bool WriteServiceMetricsJsonl(const ServiceMetrics& metrics, double span_s,
                              const std::string& path,
                              const std::string& label, bool truncate = false);

}  // namespace sbs::service
