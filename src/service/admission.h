// σM-budget admission control for the scheduler-as-a-service mode.
//
// The space-bounded schedulers (paper §4.1) bound, at every cache, the sum
// of anchored-task footprints by the dilated capacity σ·M_i. In one-shot
// batch runs that bound is enforced reactively — a maximal task whose
// charge would overflow stays queued. A long-running service can use the
// same accounting *proactively*: a submitted job stream declares its
// footprint up front, and the controller only admits it if the declaration
// still fits the remaining σM budget of some cache at the job's befitting
// level (charging the whole path up to the root, mirroring
// SpaceBounded::try_charge_path). Everything else is a policy decision:
// reject outright, queue with a deadline, or degrade to best-effort
// work stealing with no reservation.
//
// The controller is scheduler-agnostic bookkeeping over the Topology — it
// never blocks and never touches the scheduler; the service runtime owns
// the queueing/degradation mechanics.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/topology.h"

namespace sbs::service {

enum class AdmissionPolicy {
  kReject,   ///< over-budget submissions fail immediately
  kQueue,    ///< over-budget submissions wait (with a deadline) for releases
  kDegrade,  ///< over-budget submissions run unreserved under plain WS
};

struct AdmissionOptions {
  /// Dilation σ ∈ (0,1]; budgets are σ·M_d per cache. Should match the
  /// space-bounded scheduler's σ so reservations and anchors agree.
  double sigma = 0.5;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// kQueue: how long a submission may wait before it is failed.
  double queue_timeout_s = 5.0;
  /// kQueue: submissions beyond this backlog are rejected outright.
  std::size_t max_queue = 4096;
};

const char* PolicyName(AdmissionPolicy policy);
/// Parse "reject" | "queue" | "degrade"; SBS_CHECKs on anything else.
AdmissionPolicy ParsePolicy(const std::string& name);

/// Outcome of one admission attempt. kAdmitted carries the reserved cache
/// node; the service releases it when the job completes.
struct AdmissionDecision {
  enum class Kind {
    kAdmitted,   ///< budget reserved at `node`
    kNoBudget,   ///< fits some cache level, but budgets are exhausted now
    kTooLarge,   ///< exceeds σM of every cache — can never be admitted
  };
  Kind kind = Kind::kNoBudget;
  int node = -1;   ///< reserved cache node id (kAdmitted only)
  int depth = -1;  ///< befitting tree depth of the declaration
};

class AdmissionController {
 public:
  AdmissionController(const machine::Topology& topo,
                      const AdmissionOptions& options);

  const AdmissionOptions& options() const { return options_; }

  /// Non-blocking. Finds the befitting cache level for `declared_bytes`
  /// (deepest d with bytes ≤ σ·M_d) and reserves the declaration on the
  /// least-loaded depth-d cache whose whole path to the root still fits.
  /// Thread-safe; concurrent attempts race on per-node CAS like the
  /// scheduler's own occupancy admission.
  AdmissionDecision try_admit(std::uint64_t declared_bytes);

  /// Return a reservation made by try_admit (same node and byte count).
  void release(int node, std::uint64_t declared_bytes);

  /// True iff the declaration fits σM of at least one real cache — i.e. a
  /// queue-policy submission could *ever* be admitted. Over-large
  /// submissions must be failed immediately, not parked forever.
  bool fits_any_cache(std::uint64_t declared_bytes) const;

  /// Befitting tree depth (deepest cache level with bytes ≤ σ·M_d);
  /// 0 = nothing but memory fits.
  int befit_depth(std::uint64_t declared_bytes) const;

  std::uint64_t reserved(int node) const;
  /// σ·M budget of a node (by its depth); 0 at the root (= unlimited).
  std::uint64_t budget(int node) const;

  std::string stats_string() const;

 private:
  bool try_charge_path(int node, std::uint64_t bytes);
  void release_path(int node, std::uint64_t bytes);

  const machine::Topology& topo_;
  AdmissionOptions options_;
  /// σ·M_d per depth; 0 = unlimited (memory).
  std::vector<std::uint64_t> budget_by_depth_;
  struct alignas(64) NodeBudget {
    std::atomic<std::uint64_t> reserved{0};
  };
  std::vector<NodeBudget> reserved_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> no_budget_{0};
  std::atomic<std::uint64_t> too_large_{0};
};

}  // namespace sbs::service
