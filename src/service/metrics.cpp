#include "service/metrics.h"

#include <cstdio>
#include <sstream>

#include "util/assert.h"
#include "util/json.h"

namespace sbs::service {

ServiceMetrics::ServiceMetrics(int num_tenants) {
  SBS_CHECK(num_tenants >= 1);
  util::MutexLock lock(mutex_);
  tenants_.resize(static_cast<std::size_t>(num_tenants));
}

void ServiceMetrics::on_submit(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].submitted;
  ++aggregate_.submitted;
}

void ServiceMetrics::on_admit(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].admitted;
  ++aggregate_.admitted;
}

void ServiceMetrics::on_queue(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].queued;
  ++aggregate_.queued;
}

void ServiceMetrics::on_degrade(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].degraded;
  ++aggregate_.degraded;
}

void ServiceMetrics::on_reject(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].rejected;
  ++aggregate_.rejected;
}

void ServiceMetrics::on_timeout(int tenant) {
  util::MutexLock lock(mutex_);
  ++tenants_[static_cast<std::size_t>(tenant)].timed_out;
  ++aggregate_.timed_out;
}

void ServiceMetrics::on_complete(int tenant, double sojourn_s,
                                 double queueing_s, double service_s) {
  util::MutexLock lock(mutex_);
  for (TenantCounters* c : {&tenants_[static_cast<std::size_t>(tenant)],
                            &aggregate_}) {
    ++c->completed;
    c->sojourn_s.add(sojourn_s);
    c->queueing_s.add(queueing_s);
    c->service_s.add(service_s);
  }
}

TenantCounters ServiceMetrics::tenant(int tenant) const {
  util::MutexLock lock(mutex_);
  return tenants_[static_cast<std::size_t>(tenant)];
}

TenantCounters ServiceMetrics::aggregate() const {
  util::MutexLock lock(mutex_);
  return aggregate_;
}

int ServiceMetrics::num_tenants() const {
  util::MutexLock lock(mutex_);
  return static_cast<int>(tenants_.size());
}

double ServiceMetrics::throughput(double span_s) const {
  util::MutexLock lock(mutex_);
  return span_s <= 0 ? 0
                     : static_cast<double>(aggregate_.completed) / span_s;
}

std::string ServiceMetrics::summary(double span_s) const {
  const TenantCounters agg = aggregate();
  std::ostringstream out;
  out.precision(3);
  out << "jobs=" << agg.submitted << " completed=" << agg.completed
      << " rejected=" << agg.rejected << " timed_out=" << agg.timed_out
      << " degraded=" << agg.degraded << " throughput="
      << throughput(span_s) << "/s sojourn_ms{p50="
      << agg.sojourn_s.p50.value() * 1e3
      << ",p99=" << agg.sojourn_s.p99.value() * 1e3
      << ",p99.9=" << agg.sojourn_s.p999.value() * 1e3 << "}";
  return out.str();
}

namespace {

void write_quantiles(JsonWriter& json, const char* name,
                     const LatencyQuantiles& q) {
  json.key(name).begin_object();
  json.kv("p50_s", q.p50.value());
  json.kv("p99_s", q.p99.value());
  json.kv("p999_s", q.p999.value());
  json.kv("mean_s", q.mean());
  json.kv("max_s", q.max);
  json.kv("samples", q.n);
  json.end_object();
}

void write_counters(JsonWriter& json, const TenantCounters& c) {
  json.kv("submitted", c.submitted);
  json.kv("admitted", c.admitted);
  json.kv("queued", c.queued);
  json.kv("degraded", c.degraded);
  json.kv("rejected", c.rejected);
  json.kv("timed_out", c.timed_out);
  json.kv("completed", c.completed);
  json.kv("rejection_rate", c.rejection_rate());
  write_quantiles(json, "sojourn", c.sojourn_s);
  write_quantiles(json, "queueing", c.queueing_s);
  write_quantiles(json, "service", c.service_s);
}

}  // namespace

bool WriteServiceMetricsJsonl(const ServiceMetrics& metrics, double span_s,
                              const std::string& path,
                              const std::string& label, bool truncate) {
  JsonWriter json;
  json.begin_object();
  json.kv("label", label);
  json.kv("kind", "service");
  json.kv("span_s", span_s);
  json.kv("throughput_per_s", metrics.throughput(span_s));
  json.key("aggregate").begin_object();
  write_counters(json, metrics.aggregate());
  json.end_object();
  json.key("tenants").begin_array();
  for (int t = 0; t < metrics.num_tenants(); ++t) {
    json.begin_object();
    json.kv("tenant", t);
    write_counters(json, metrics.tenant(t));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::FILE* f = std::fopen(path.c_str(), truncate ? "w" : "a");
  if (f == nullptr) return false;
  const bool ok = std::fputs(json.str().c_str(), f) >= 0 &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

}  // namespace sbs::service
