#include "service/admission.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace sbs::service {

const char* PolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kQueue:
      return "queue";
    case AdmissionPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

AdmissionPolicy ParsePolicy(const std::string& name) {
  if (name == "reject") return AdmissionPolicy::kReject;
  if (name == "queue") return AdmissionPolicy::kQueue;
  if (name == "degrade") return AdmissionPolicy::kDegrade;
  SBS_CHECK_MSG(false, "admission policy must be reject|queue|degrade");
  return AdmissionPolicy::kReject;
}

AdmissionController::AdmissionController(const machine::Topology& topo,
                                         const AdmissionOptions& options)
    : topo_(topo),
      options_(options),
      reserved_(static_cast<std::size_t>(topo.num_nodes())) {
  SBS_CHECK_MSG(options_.sigma > 0 && options_.sigma <= 1.0,
                "admission sigma must be in (0,1]");
  const int depths = topo.leaf_depth();
  budget_by_depth_.assign(static_cast<std::size_t>(depths), 0);
  for (int d = 1; d < depths; ++d) {
    const std::uint64_t cap = topo.config().levels[static_cast<std::size_t>(d)].size;
    budget_by_depth_[static_cast<std::size_t>(d)] = static_cast<std::uint64_t>(
        options_.sigma * static_cast<double>(cap));
  }
}

int AdmissionController::befit_depth(std::uint64_t declared_bytes) const {
  for (int d = topo_.num_cache_levels(); d >= 1; --d) {
    if (declared_bytes <= budget_by_depth_[static_cast<std::size_t>(d)])
      return d;
  }
  return 0;
}

bool AdmissionController::fits_any_cache(std::uint64_t declared_bytes) const {
  return befit_depth(declared_bytes) >= 1;
}

bool AdmissionController::try_charge_path(int node, std::uint64_t bytes) {
  // Bottom-up CAS charge with rollback, mirroring the scheduler's
  // bounded-occupancy admission (sched/sb.cpp). The root (depth 0) is
  // memory and unlimited, so the walk stops below it.
  int charged[16];
  int n_charged = 0;
  for (int id = node; topo_.node(id).depth > 0; id = topo_.node(id).parent) {
    const std::uint64_t cap =
        budget_by_depth_[static_cast<std::size_t>(topo_.node(id).depth)];
    auto& reserved = reserved_[static_cast<std::size_t>(id)].reserved;
    // Relaxed seed: the CAS revalidates against the cap every retry.
    std::uint64_t cur = reserved.load(std::memory_order_relaxed);
    bool ok = false;
    while (cur + bytes <= cap) {
      // acq_rel: all reserve/release RMWs on a node form one chain, so
      // a tenant admitted after a release also observes the freed budget
      // (same protocol as sched/sb.cpp try_charge_path).
      if (reserved.compare_exchange_weak(cur, cur + bytes,
                                         std::memory_order_acq_rel)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      for (int i = 0; i < n_charged; ++i) {
        // acq_rel: rollback joins the same RMW chain as the CAS above.
        reserved_[static_cast<std::size_t>(charged[i])].reserved.fetch_sub(
            bytes, std::memory_order_acq_rel);
      }
      return false;
    }
    SBS_ASSERT(n_charged < 16);
    charged[n_charged++] = id;
  }
  return true;
}

void AdmissionController::release_path(int node, std::uint64_t bytes) {
  for (int id = node; topo_.node(id).depth > 0; id = topo_.node(id).parent) {
    // acq_rel: releases chain with later admission CASes so freed budget
    // is visible to the next try_charge_path.
    [[maybe_unused]] const std::uint64_t prev =
        reserved_[static_cast<std::size_t>(id)].reserved.fetch_sub(
            bytes, std::memory_order_acq_rel);
    SBS_ASSERT(prev >= bytes);
  }
}

AdmissionDecision AdmissionController::try_admit(std::uint64_t declared_bytes) {
  AdmissionDecision decision;
  const int d = befit_depth(declared_bytes);
  decision.depth = d;
  if (d == 0) {
    decision.kind = AdmissionDecision::Kind::kTooLarge;
    // Relaxed: metrics counter, read by stats endpoints only.
    too_large_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }

  // Least-loaded first: sort the depth-d candidates by current reservation
  // so concurrent tenants spread across sibling caches instead of piling
  // onto the leftmost one.
  std::vector<int> candidates = topo_.nodes_at_depth(d);
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return reserved(a) < reserved(b);
  });
  for (int id : candidates) {
    if (try_charge_path(id, declared_bytes)) {
      decision.kind = AdmissionDecision::Kind::kAdmitted;
      decision.node = id;
      // Relaxed: metrics counter.
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }
  decision.kind = AdmissionDecision::Kind::kNoBudget;
  // Relaxed: metrics counter.
  no_budget_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

void AdmissionController::release(int node, std::uint64_t declared_bytes) {
  release_path(node, declared_bytes);
}

std::uint64_t AdmissionController::reserved(int node) const {
  // Relaxed: load-balancing hint (candidate sort) and stats; a stale
  // value only perturbs placement, never the bound — the CAS enforces it.
  return reserved_[static_cast<std::size_t>(node)].reserved.load(
      std::memory_order_relaxed);
}

std::uint64_t AdmissionController::budget(int node) const {
  return budget_by_depth_[static_cast<std::size_t>(topo_.node(node).depth)];
}

std::string AdmissionController::stats_string() const {
  std::ostringstream out;
  out << "policy=" << PolicyName(options_.policy)
      << " sigma=" << options_.sigma
      << " admitted=" << admitted_.load()
      << " no_budget=" << no_budget_.load()
      << " too_large=" << too_large_.load();
  return out.str();
}

}  // namespace sbs::service
