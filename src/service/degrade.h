// DegradeMux — route admitted submissions to the primary (space-bounded)
// scheduler and degraded submissions to a plain work-stealing fallback.
//
// Under AdmissionPolicy::kDegrade, a submission whose declared footprint
// does not fit the remaining σM budget still runs — best effort, with no
// cache reservation and no anchoring guarantees — on a WS fallback
// scheduler sharing the same workers. The mux is itself a Scheduler: the
// engine (service runtime workers) sees one add/get/done interface, and
// routing is decided per job by a marker on the job's Task.
//
// Marker propagation: the runtime marks a degraded submission's root Task
// (anchor = kDegradedAnchor, a value no real scheduler ever writes there —
// SB assigns node ids ≥ 0 and the WS family never touches the slot). Every
// descendant task is marked on first add() by inheriting its parent's
// marker; the write happens on the worker that executed the parent strand
// before the child is published to any queue, so no lock is needed. Tasks
// of admitted submissions carry ordinary anchors and flow to the primary
// untouched — the mux adds one comparison to their add/done path.
//
// get() drains the primary first (reserved work has priority), then the
// fallback — degraded work runs in the gaps, which is exactly the
// "best-effort" contract.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "runtime/scheduler.h"

namespace sbs::service {

class DegradeMux final : public runtime::Scheduler {
 public:
  /// Task::anchor marker for degraded submissions (never a valid node id).
  static constexpr int kDegradedAnchor = -2;

  DegradeMux(std::unique_ptr<runtime::Scheduler> primary,
             std::unique_ptr<runtime::Scheduler> fallback);

  /// Mark a submission's root task as degraded before it is first added.
  static void MarkDegraded(runtime::Task* task) {
    task->anchor = kDegradedAnchor;
  }

  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override;
  bool needs_size_annotations() const override {
    return primary_->needs_size_annotations();
  }
  std::string stats_string() const override;

  runtime::Scheduler& primary() { return *primary_; }
  runtime::Scheduler& fallback() { return *fallback_; }
  std::uint64_t degraded_strands() const {
    // Relaxed: stats counter (tests read it after the run quiesced).
    return degraded_strands_.load(std::memory_order_relaxed);
  }

 private:
  static bool is_degraded(runtime::Task* task) {
    if (task->anchor == kDegradedAnchor) return true;
    if (task->parent != nullptr && task->parent->anchor == kDegradedAnchor) {
      // Inherit the marker. Single writer: the worker adding this task's
      // first job (see the header comment on propagation).
      task->anchor = kDegradedAnchor;
      return true;
    }
    return false;
  }

  std::unique_ptr<runtime::Scheduler> primary_;
  std::unique_ptr<runtime::Scheduler> fallback_;
  std::atomic<std::uint64_t> degraded_strands_{0};
};

}  // namespace sbs::service
