#include "service/arrivals.h"

#include <cmath>

#include "util/assert.h"

namespace sbs::service {

double ExponentialSample(Rng& rng, double mean) {
  // Inverse CDF on (0,1]: -mean·ln(u). next_double() is in [0,1); flip it
  // so the log argument never hits zero.
  const double u = 1.0 - rng.next_double();
  return -mean * std::log(u);
}

namespace {

class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(const PoissonParams& params, std::uint64_t seed)
      : params_(params), rng_(seed) {
    SBS_CHECK_MSG(params_.rate_per_s > 0, "poisson rate must be positive");
  }
  double next() override {
    now_ += ExponentialSample(rng_, 1.0 / params_.rate_per_s);
    return now_;
  }
  std::string name() const override { return "poisson"; }

 private:
  PoissonParams params_;
  Rng rng_;
  double now_ = 0;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(const MmppParams& params, std::uint64_t seed)
      : params_(params), rng_(seed) {
    SBS_CHECK_MSG(params_.quiet_rate_per_s > 0 && params_.burst_rate_per_s > 0,
                  "mmpp rates must be positive");
    SBS_CHECK_MSG(params_.mean_quiet_s > 0 && params_.mean_burst_s > 0,
                  "mmpp dwell times must be positive");
    state_end_ = ExponentialSample(rng_, params_.mean_quiet_s);
  }
  double next() override {
    for (;;) {
      const double rate =
          bursting_ ? params_.burst_rate_per_s : params_.quiet_rate_per_s;
      const double gap = ExponentialSample(rng_, 1.0 / rate);
      if (now_ + gap <= state_end_) {
        now_ += gap;
        return now_;
      }
      // Rate change mid-gap: advance to the switch and redraw (the
      // exponential's memorylessness makes the redraw exact).
      now_ = state_end_;
      bursting_ = !bursting_;
      state_end_ = now_ + ExponentialSample(rng_, bursting_
                                                      ? params_.mean_burst_s
                                                      : params_.mean_quiet_s);
    }
  }
  std::string name() const override { return "mmpp"; }

 private:
  MmppParams params_;
  Rng rng_;
  double now_ = 0;
  double state_end_ = 0;
  bool bursting_ = false;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(const DiurnalParams& params, std::uint64_t seed)
      : params_(params), rng_(seed) {
    SBS_CHECK_MSG(params_.base_rate_per_s > 0, "diurnal rate must be positive");
    SBS_CHECK_MSG(params_.amplitude >= 0 && params_.amplitude < 1.0,
                  "diurnal amplitude must be in [0,1)");
    SBS_CHECK_MSG(params_.period_s > 0, "diurnal period must be positive");
  }
  double next() override {
    // Thinning (Lewis & Shedler): draw from the peak-rate Poisson process
    // and accept each candidate with probability λ(t)/λ_max.
    const double peak = params_.base_rate_per_s * (1.0 + params_.amplitude);
    for (;;) {
      now_ += ExponentialSample(rng_, 1.0 / peak);
      const double rate =
          params_.base_rate_per_s *
          (1.0 + params_.amplitude *
                     std::sin(2.0 * M_PI * now_ / params_.period_s));
      if (rng_.next_double() * peak <= rate) return now_;
    }
  }
  std::string name() const override { return "diurnal"; }

 private:
  DiurnalParams params_;
  Rng rng_;
  double now_ = 0;
};

}  // namespace

std::unique_ptr<ArrivalProcess> MakePoissonArrivals(const PoissonParams& params,
                                                    std::uint64_t seed) {
  return std::make_unique<PoissonArrivals>(params, seed);
}

std::unique_ptr<ArrivalProcess> MakeMmppArrivals(const MmppParams& params,
                                                 std::uint64_t seed) {
  return std::make_unique<MmppArrivals>(params, seed);
}

std::unique_ptr<ArrivalProcess> MakeDiurnalArrivals(const DiurnalParams& params,
                                                    std::uint64_t seed) {
  return std::make_unique<DiurnalArrivals>(params, seed);
}

std::unique_ptr<ArrivalProcess> MakeArrivals(const std::string& kind,
                                             double rate_per_s,
                                             std::uint64_t seed) {
  if (kind == "poisson") {
    PoissonParams p;
    p.rate_per_s = rate_per_s;
    return MakePoissonArrivals(p, seed);
  }
  if (kind == "mmpp") {
    // Same mean rate as the Poisson baseline: dwell-weighted average of the
    // two state rates equals rate_per_s with the 5:1 quiet:burst dwell split
    // below (5/6·0.5x + 1/6·3.5x = 1x).
    MmppParams p;
    p.quiet_rate_per_s = 0.5 * rate_per_s;
    p.burst_rate_per_s = 3.5 * rate_per_s;
    p.mean_quiet_s = 0.5;
    p.mean_burst_s = 0.1;
    return MakeMmppArrivals(p, seed);
  }
  if (kind == "diurnal") {
    DiurnalParams p;
    p.base_rate_per_s = rate_per_s;
    return MakeDiurnalArrivals(p, seed);
  }
  SBS_CHECK_MSG(false, "arrival process must be poisson|mmpp|diurnal");
  return nullptr;
}

}  // namespace sbs::service
