#include "service/workload.h"

#include <bit>
#include <cmath>

#include "util/assert.h"

namespace sbs::service {

Workload::Workload(const WorkloadOptions& options, std::uint64_t seed)
    : options_(options), rng_(seed), prepare_seed_(seed * 0x9e37 + 1) {
  SBS_CHECK_MSG(options_.tenants >= 1, "workload needs at least one tenant");
  SBS_CHECK_MSG(!options_.kernels.empty(), "workload needs kernels");
  SBS_CHECK_MSG(options_.min_n <= options_.max_n, "size band inverted");
  SBS_CHECK_MSG(options_.size_classes >= 1, "need at least one size class");

  tenants_.resize(static_cast<std::size_t>(options_.tenants));
  for (auto& tenant : tenants_) {
    // Preference weights: uniform draws, cumulated for O(log k) sampling.
    double total = 0;
    tenant.kernel_weights.reserve(options_.kernels.size());
    for (std::size_t k = 0; k < options_.kernels.size(); ++k) {
      total += 0.1 + rng_.next_double();
      tenant.kernel_weights.push_back(total);
    }
    for (double& w : tenant.kernel_weights) w /= total;

    // Size classes: fixed per tenant so the instance pool stays bounded.
    tenant.sizes.reserve(static_cast<std::size_t>(options_.size_classes));
    for (int c = 0; c < options_.size_classes; ++c) {
      const std::uint64_t span = options_.max_n - options_.min_n + 1;
      tenant.sizes.push_back(options_.min_n +
                             static_cast<std::size_t>(rng_.next_below(span)));
    }
  }
}

Request Workload::next() {
  Request req;
  req.tenant = static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(options_.tenants)));
  Tenant& tenant = tenants_[static_cast<std::size_t>(req.tenant)];

  const double draw = rng_.next_double();
  std::size_t pick = 0;
  while (pick + 1 < tenant.kernel_weights.size() &&
         draw > tenant.kernel_weights[pick]) {
    ++pick;
  }
  req.kernel = options_.kernels[pick];
  std::size_t n = tenant.sizes[rng_.next_below(tenant.sizes.size())];
  if (req.kernel == "matmul") {
    // Matrix order with a footprint (3·n²·8 bytes) comparable to the sort
    // kernels' 2·n·8 bytes over the same band, rounded down to the
    // power of two the recursive matmul requires.
    n = std::max<std::size_t>(
        32, static_cast<std::size_t>(std::sqrt(static_cast<double>(n) * 2.0 /
                                               3.0)));
    n = std::bit_floor(n);
  }
  req.n = n;

  const PoolKey key{req.kernel, req.n};
  auto& bucket = free_[key];
  kernels::Kernel* instance = nullptr;
  if (!bucket.empty()) {
    instance = bucket.back().release();
    bucket.pop_back();
  } else {
    // Instances are never destroyed mid-run, so the created count is the
    // live total (leased + pooled).
    if (created_ >= options_.max_instances) {
      ++dropped_;
      req.dropped = true;
      return req;
    }
    kernels::KernelParams params;
    params.n = req.n;
    auto fresh = kernels::MakeKernel(req.kernel, params);
    fresh->prepare(prepare_seed_ + created_);
    ++created_;
    instance = fresh.release();
  }
  leased_.emplace(instance, key);

  req.instance = instance;
  req.root = instance->make_root();
  req.declared_bytes = static_cast<std::uint64_t>(
      static_cast<double>(instance->problem_bytes()) * options_.overdeclare);
  return req;
}

void Workload::release(kernels::Kernel* instance) {
  auto it = leased_.find(instance);
  SBS_CHECK_MSG(it != leased_.end(), "release of an instance not leased");
  free_[it->second].push_back(std::unique_ptr<kernels::Kernel>(instance));
  leased_.erase(it);
}

}  // namespace sbs::service
