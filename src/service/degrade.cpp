#include "service/degrade.h"

#include <sstream>

#include "util/assert.h"

namespace sbs::service {

DegradeMux::DegradeMux(std::unique_ptr<runtime::Scheduler> primary,
                       std::unique_ptr<runtime::Scheduler> fallback)
    : primary_(std::move(primary)), fallback_(std::move(fallback)) {
  SBS_CHECK(primary_ != nullptr && fallback_ != nullptr);
  SBS_CHECK_MSG(!fallback_->needs_size_annotations(),
                "degrade fallback must accept unannotated work");
}

void DegradeMux::start(const machine::Topology& topo, int num_threads) {
  primary_->start(topo, num_threads);
  fallback_->start(topo, num_threads);
}

void DegradeMux::finish() {
  primary_->finish();
  fallback_->finish();
}

void DegradeMux::add(runtime::Job* job, int thread_id) {
  if (is_degraded(job->task())) {
    // Relaxed: stats counter surfaced in stats_string() only.
    degraded_strands_.fetch_add(1, std::memory_order_relaxed);
    fallback_->add(job, thread_id);
  } else {
    primary_->add(job, thread_id);
  }
}

runtime::Job* DegradeMux::get(int thread_id) {
  if (runtime::Job* job = primary_->get(thread_id)) return job;
  return fallback_->get(thread_id);
}

void DegradeMux::done(runtime::Job* job, int thread_id, bool task_completed) {
  if (job->task()->anchor == kDegradedAnchor) {
    fallback_->done(job, thread_id, task_completed);
  } else {
    primary_->done(job, thread_id, task_completed);
  }
}

std::string DegradeMux::name() const {
  return primary_->name() + "+wsfallback";
}

std::string DegradeMux::stats_string() const {
  std::ostringstream out;
  // Relaxed: stats snapshot; exactness not required while running.
  out << primary_->stats_string() << " degraded_strands="
      << degraded_strands_.load(std::memory_order_relaxed);
  const std::string fb = fallback_->stats_string();
  if (!fb.empty()) out << " fallback{" << fb << "}";
  return out.str();
}

}  // namespace sbs::service
