// Scheduler-as-a-service runtime: a resident worker pool hosting many
// concurrent job-graph submissions over one scheduler instance.
//
// The one-shot harness (runtime/thread_pool.h) runs exactly one root job
// and tears the pool down when its sentinel triggers. The service Runtime
// keeps the same engine loop (get → execute → done → settle → add, with
// the same tiered idle backoff) but decouples job lifetime from engine
// lifetime:
//
//   - submit() is callable from any client thread and never blocks. The
//     admission controller (admission.h) decides against the remaining σM
//     budget; admitted submissions land on an *injection queue*, because
//     scheduler callbacks may only run on worker threads (the Chase-Lev
//     deques require owner-thread pushes, and add() may take node locks
//     workers expect to contend on).
//   - a worker drains the injection queue at the top of its loop: it wires
//     the submission via StrandOps::make_submission — the user's root job
//     becomes a fresh root task whose join releases a service-owned
//     CompletionJob — and calls sched.add() from worker context.
//   - when the CompletionJob's strand settles, root_completed fires *for
//     that submission only*. The worker maps it back through a per-worker
//     slot the CompletionJob filled during execute(), releases the σM
//     reservation, records latency, and keeps looping.
//
// Policy mechanics (admission.h): kReject fails over-budget submissions
// immediately; kQueue parks them FIFO with a deadline (re-admitted as
// completions release budget, timed out lazily by idle workers and
// waiters); kDegrade routes them unreserved to a plain work-stealing
// fallback through the DegradeMux when the primary scheduler is
// space-bounded.
//
// Every submission reaching a terminal state has its latency folded into
// ServiceMetrics. Root-job ownership passes to the Runtime at submit();
// rejected/timed-out roots are freed without running.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "machine/topology.h"
#include "runtime/job_arena.h"
#include "runtime/scheduler.h"
#include "sched/registry.h"
#include "service/admission.h"
#include "service/metrics.h"
#include "util/thread_safety.h"
#include "verify/invariants.h"

namespace sbs::service {

/// Lifecycle of one submission.
enum class JobState {
  kQueued,    ///< parked: waiting for budget (kQueue) or for dispatch
  kRunning,   ///< wired into the scheduler, strands executing
  kRejected,  ///< failed admission (policy kReject, or larger than any cache)
  kTimedOut,  ///< policy kQueue: budget never freed before the deadline
  kDone,      ///< completed; latency recorded
};

const char* JobStateName(JobState state);

struct RuntimeOptions {
  sched::SchedulerSpec scheduler;  ///< primary scheduler (WS/PWS/SB/SB-D...)
  AdmissionOptions admission;
  int num_threads = -1;  ///< workers; -1 = topology thread count
  int num_tenants = 8;   ///< metrics breakdown width
  bool verify = false;   ///< wrap the scheduler in verify::VerifyingScheduler
};

class Runtime;

/// Shared handle to one submission; cheap to copy, outlives the job.
class JobHandle {
 public:
  JobHandle() = default;
  bool valid() const { return ticket_ != nullptr; }
  JobState state() const;
  bool terminal() const;
  int tenant() const;
  std::uint64_t id() const;
  /// Latencies in seconds; 0 until the submission reaches kDone.
  double sojourn_s() const;
  double queueing_s() const;
  double service_s() const;

 private:
  friend class Runtime;
  struct Ticket;
  explicit JobHandle(std::shared_ptr<Ticket> ticket)
      : ticket_(std::move(ticket)) {}
  std::shared_ptr<Ticket> ticket_;
};

class Runtime {
 public:
  /// Starts the scheduler and the worker pool immediately. The topology is
  /// copied; the options' scheduler spec is instantiated via the registry,
  /// composed with the WS degrade fallback (policy kDegrade + a
  /// size-annotated primary) and the verify decorator as requested.
  Runtime(const machine::Topology& topo, const RuntimeOptions& options);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Submit a job graph. Never blocks; safe from any thread. Ownership of
  /// `root` passes to the runtime: it is executed or freed unrun. The
  /// declared footprint is what admission charges against σM — honest
  /// declarations keep the occupancy bound meaningful (over-declaration is
  /// safe but wastes budget; under-declaration re-creates the batch mode's
  /// reactive queueing inside the scheduler).
  JobHandle submit(runtime::Job* root, std::uint64_t declared_bytes,
                   int tenant = 0);

  /// Block until the submission reaches a terminal state; returns it.
  JobState wait(const JobHandle& handle);

  /// Block until every submission so far is terminal.
  void drain();

  /// drain(), stop the workers, finish() the scheduler. Idempotent; the
  /// destructor calls it.
  void shutdown();

  ServiceMetrics& metrics() { return metrics_; }
  const AdmissionController& admission() const { return admission_; }
  runtime::Scheduler& scheduler() { return *sched_; }
  /// Non-null iff options.verify: read violations after shutdown().
  const verify::VerifyingScheduler* verifier() const { return verifier_; }
  int num_threads() const { return num_threads_; }
  /// Seconds since the runtime started (timestamps use the same clock).
  double uptime_s() const;
  /// Submissions not yet terminal.
  std::uint64_t live_jobs() const {
    return live_.load(std::memory_order_acquire);
  }

 private:
  using Clock = std::chrono::steady_clock;
  friend class JobHandle;
  class CompletionJob;

  void worker_loop(int tid);
  /// Wire + sched.add() every injected submission. Worker context only.
  bool drain_injection(int tid);
  void dispatch(int tid, const std::shared_ptr<JobHandle::Ticket>& ticket);
  /// Retry parked submissions against freed budget; fail expired ones.
  /// Never blocks; callable from any thread (admits go via injection).
  void pump_parked();
  void finalize_completion(const std::shared_ptr<JobHandle::Ticket>& ticket);
  void finish_terminal(const std::shared_ptr<JobHandle::Ticket>& ticket,
                       JobState state);
  void enqueue_injection(const std::shared_ptr<JobHandle::Ticket>& ticket);

  const RuntimeOptions options_;
  machine::Topology topo_ SBS_INIT_ONLY;
  // lint:allow(guarded-by) internally synchronized (atomic reservations)
  AdmissionController admission_;
  // lint:allow(guarded-by) internally synchronized (own mutex)
  ServiceMetrics metrics_;
  std::unique_ptr<runtime::Scheduler> sched_ SBS_INIT_ONLY;  ///< pointee
                                                             ///< self-syncing
  verify::VerifyingScheduler* verifier_ SBS_INIT_ONLY =
      nullptr;  ///< borrowed from sched_
  bool has_degrade_mux_ SBS_INIT_ONLY = false;
  int num_threads_ SBS_INIT_ONLY = 0;
  Clock::time_point epoch_ SBS_INIT_ONLY;

  /// Vector shaped in the constructor; arena i is used only from worker i.
  std::vector<std::unique_ptr<runtime::JobArena>> arenas_ SBS_INIT_ONLY;
  std::vector<std::thread> workers_ SBS_CONFINED(control thread);
  bool shut_down_ SBS_CONFINED(control thread) =
      false;  ///< shutdown() is sequential, not thread-safe
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> next_id_{1};

  util::Mutex inject_mutex_;
  std::deque<std::shared_ptr<JobHandle::Ticket>> injected_
      SBS_GUARDED_BY(inject_mutex_);
  std::atomic<std::size_t> inject_count_{0};

  util::Mutex parked_mutex_;
  std::deque<std::shared_ptr<JobHandle::Ticket>> parked_
      SBS_GUARDED_BY(parked_mutex_);
  std::atomic<std::size_t> parked_count_{0};

  /// Woken on every terminal transition; waiters poll with a short timeout
  /// (which also gives parked-deadline enforcement a heartbeat).
  util::Mutex wait_mutex_;
  std::condition_variable_any wait_cv_;

  /// Per-worker slot: the ticket whose CompletionJob this worker is
  /// currently settling. The CompletionJob copies its shared_ptr here in
  /// execute(), because settle() frees the job itself before the engine
  /// loop observes root_completed.
  struct alignas(64) CompletionSlot {
    std::shared_ptr<JobHandle::Ticket> ticket;
  };
  std::vector<CompletionSlot> completion_slots_ SBS_CONFINED(slot owner);
};

}  // namespace sbs::service
