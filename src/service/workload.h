// Multi-tenant job mixes over the paper's kernels, plus a kernel-instance
// pool so an open-loop stream can reuse prepared inputs.
//
// Each tenant gets a deterministic profile drawn once from the workload
// seed: a preference weight per kernel family (quicksort / samplesort /
// matmul by default) and a problem-size band. next() then draws
// (tenant, kernel, size) per arrival, leases a prepared Kernel instance
// from the pool (preparing a fresh one on first use of a size class), and
// builds the root job for submission. Instances return to the pool via
// release() once the submission completes and its output is verified.
//
// Not thread-safe by design: one Workload per generator thread (closed-loop
// clients construct their own with a distinct seed), matching the repo's
// determinism-by-explicit-seed convention.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.h"
#include "util/rng.h"

namespace sbs::service {

struct WorkloadOptions {
  int tenants = 8;
  std::vector<std::string> kernels = {"quicksort", "samplesort", "matmul"};
  /// Problem-size band for the sort kernels, in elements. Matmul draws a
  /// matrix order from the band scaled to a comparable byte footprint.
  std::size_t min_n = 16 << 10;
  std::size_t max_n = 64 << 10;
  /// Number of size classes per (tenant, kernel) — bounds pool cardinality.
  int size_classes = 2;
  /// Multiplier on the declared footprint handed to admission control.
  /// 1.0 declares honestly; > 1 over-declares (drives rejection tests).
  double overdeclare = 1.0;
  /// Hard cap on live kernel instances; next() fails (drop) beyond it.
  std::size_t max_instances = 256;
};

/// One generated request. `instance` stays leased until release().
struct Request {
  int tenant = -1;
  std::string kernel;
  std::size_t n = 0;
  std::uint64_t declared_bytes = 0;
  kernels::Kernel* instance = nullptr;
  runtime::Job* root = nullptr;
  bool dropped = false;  ///< pool exhausted — client-side drop, not submitted
};

class Workload {
 public:
  /// The seed is explicit and mandatory (see arrivals.h's determinism
  /// contract): tenant profiles and all per-arrival draws derive from it.
  Workload(const WorkloadOptions& options, std::uint64_t seed);

  const WorkloadOptions& options() const { return options_; }

  /// Draw the next request and build its root job. The returned Request
  /// owns nothing the caller must free on the happy path: the root job's
  /// ownership passes to Runtime::submit, the instance returns via
  /// release(). If the request is dropped (pool cap), root is null.
  Request next();

  /// Return a leased instance to the pool. Call after the submission
  /// reached a terminal state (and, if desired, after Kernel::verify()).
  void release(kernels::Kernel* instance);

  std::uint64_t created_instances() const { return created_; }
  std::uint64_t dropped_requests() const { return dropped_; }

 private:
  struct Tenant {
    std::vector<double> kernel_weights;  ///< cumulative, normalized to 1
    std::vector<std::size_t> sizes;      ///< one per size class
  };
  struct PoolKey {
    std::string kernel;
    std::size_t n;
    bool operator<(const PoolKey& other) const {
      return kernel != other.kernel ? kernel < other.kernel : n < other.n;
    }
  };

  WorkloadOptions options_;
  Rng rng_;
  std::uint64_t prepare_seed_;
  std::vector<Tenant> tenants_;
  std::map<PoolKey, std::vector<std::unique_ptr<kernels::Kernel>>> free_;
  std::map<kernels::Kernel*, PoolKey> leased_;
  std::uint64_t created_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sbs::service
