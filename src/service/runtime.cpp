#include "service/runtime.h"

#include <pthread.h>

#include <algorithm>

#include "runtime/strand_ops.h"
#include "util/cpu_relax.h"
#include "service/degrade.h"
#include "util/assert.h"

namespace sbs::service {

namespace {

bool is_terminal(JobState s) {
  return s == JobState::kRejected || s == JobState::kTimedOut ||
         s == JobState::kDone;
}

/// Same tiered idle backoff as the one-shot engine (runtime/thread_pool.cpp):
/// spin hot, then yield, then sleep in 50µs bursts. Service workers are
/// resident, so the sleep tier is what keeps an idle service near-zero CPU.
constexpr int kSpinRounds = 8;
constexpr int kYieldRounds = 16;
constexpr auto kIdleSleep = std::chrono::microseconds(50);

void idle_backoff(int streak) {
  if (streak < kSpinRounds) {
    for (int i = 0; i < (1 << streak); ++i) util::cpu_relax();
  } else if (streak < kSpinRounds + kYieldRounds) {
    std::this_thread::yield();  // lint:allow(blocking-call) idle tier only
  } else {
    // lint:allow(blocking-call) idle tier only, bounds wakeup at 50µs
    std::this_thread::sleep_for(kIdleSleep);
  }
}

void try_pin(int host_cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(host_cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kRejected:
      return "rejected";
    case JobState::kTimedOut:
      return "timed_out";
    case JobState::kDone:
      return "done";
  }
  return "?";
}

/// One submission's whole lifecycle. Timestamps are plain fields written by
/// the thread that performs the transition and published by the
/// release-store of `state`; readers load `state` (acquire) first, so a
/// terminal state licenses reading every field below it.
struct JobHandle::Ticket {
  std::uint64_t id = 0;
  int tenant = 0;
  std::uint64_t declared_bytes = 0;
  runtime::Job* root = nullptr;  ///< owned until dispatch or terminal free
  runtime::JoinCounter* sentinel = nullptr;
  bool degraded = false;
  int reserved_node = -1;  ///< σM reservation to release; -1 = none
  std::atomic<JobState> state{JobState::kQueued};
  Runtime::Clock::time_point submit_time;
  Runtime::Clock::time_point deadline;  ///< kQueue policy only
  Runtime::Clock::time_point dispatch_time;
  Runtime::Clock::time_point complete_time;
};

JobState JobHandle::state() const {
  // Acquire pairs with the release transitions in dispatch() and
  // finish_terminal(): a client that observes kDone also observes the
  // job's results and timing fields.
  return ticket_->state.load(std::memory_order_acquire);
}

bool JobHandle::terminal() const { return is_terminal(state()); }

int JobHandle::tenant() const { return ticket_->tenant; }

std::uint64_t JobHandle::id() const { return ticket_->id; }

double JobHandle::sojourn_s() const {
  if (state() != JobState::kDone) return 0;
  return std::chrono::duration<double>(ticket_->complete_time -
                                       ticket_->submit_time)
      .count();
}

double JobHandle::queueing_s() const {
  if (state() != JobState::kDone) return 0;
  return std::chrono::duration<double>(ticket_->dispatch_time -
                                       ticket_->submit_time)
      .count();
}

double JobHandle::service_s() const {
  if (state() != JobState::kDone) return 0;
  return std::chrono::duration<double>(ticket_->complete_time -
                                       ticket_->dispatch_time)
      .count();
}

/// Service-owned root job released by a submission's join: its execute()
/// only records which submission finished; the engine loop finalizes after
/// settle() reports root_completed. ~64B footprint so SB anchors it without
/// disturbing any budget (parentless tasks anchor at the unbounded root).
class Runtime::CompletionJob final : public runtime::SBJob {
 public:
  CompletionJob(Runtime* rt, std::shared_ptr<JobHandle::Ticket> ticket)
      : SBJob(/*task_bytes=*/64), rt_(rt), ticket_(std::move(ticket)) {}

  void execute(runtime::Strand& strand) override {
    rt_->completion_slots_[static_cast<std::size_t>(strand.thread_id())]
        .ticket = ticket_;
  }

 private:
  Runtime* rt_;
  std::shared_ptr<JobHandle::Ticket> ticket_;
};

Runtime::Runtime(const machine::Topology& topo, const RuntimeOptions& options)
    : options_(options),
      topo_(topo),
      admission_(topo_, options.admission),
      metrics_(options.num_tenants),
      num_threads_(options.num_threads < 0 ? topo_.num_threads()
                                           : options.num_threads),
      epoch_(Clock::now()) {
  SBS_CHECK_MSG(num_threads_ >= 1 && num_threads_ <= topo_.num_threads(),
                "service worker count out of range");

  auto primary = sched::MakeScheduler(options_.scheduler);
  if (options_.admission.policy == AdmissionPolicy::kDegrade &&
      primary->needs_size_annotations()) {
    // Degraded submissions bypass the σM reservation, so they must not flow
    // into the space-bounded scheduler (its own occupancy bound would just
    // park them — the reactive queueing admission exists to pre-empt).
    auto fallback =
        sched::MakeScheduler("WS", options_.scheduler.seed + 1);
    primary = std::make_unique<DegradeMux>(std::move(primary),
                                           std::move(fallback));
    has_degrade_mux_ = true;
  }
  if (options_.verify) {
    auto wrapped =
        std::make_unique<verify::VerifyingScheduler>(std::move(primary));
    verifier_ = wrapped.get();
    sched_ = std::move(wrapped);
  } else {
    sched_ = std::move(primary);
  }

  completion_slots_.resize(static_cast<std::size_t>(num_threads_));
  arenas_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t)
    arenas_.push_back(std::make_unique<runtime::JobArena>());

  sched_->start(topo_, num_threads_);
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

Runtime::~Runtime() { shutdown(); }

JobHandle Runtime::submit(runtime::Job* root, std::uint64_t declared_bytes,
                          int tenant) {
  SBS_CHECK_MSG(root != nullptr, "submit needs a root job");
  SBS_CHECK_MSG(tenant >= 0 && tenant < options_.num_tenants,
                "tenant id out of range");
  // Acquire: a submitter that races shutdown() must see the stores the
  // stopping thread made before raising stop_.
  SBS_CHECK_MSG(!shut_down_ && !stop_.load(std::memory_order_acquire),
                "submit after shutdown");

  auto ticket = std::make_shared<JobHandle::Ticket>();
  // Relaxed: id allocation needs uniqueness only, no ordering.
  ticket->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->tenant = tenant;
  ticket->declared_bytes = declared_bytes;
  ticket->root = root;
  ticket->submit_time = Clock::now();
  metrics_.on_submit(tenant);
  // acq_rel: live_ RMWs form one chain; drain()'s acquire load of zero
  // therefore happens-after every submission it counted (no lost jobs).
  live_.fetch_add(1, std::memory_order_acq_rel);

  const AdmissionPolicy policy = options_.admission.policy;
  const AdmissionDecision decision = admission_.try_admit(declared_bytes);
  switch (decision.kind) {
    case AdmissionDecision::Kind::kAdmitted:
      ticket->reserved_node = decision.node;
      metrics_.on_admit(tenant);
      enqueue_injection(ticket);
      break;

    case AdmissionDecision::Kind::kTooLarge:
      // Fits no cache, so no release can ever admit it: parking would wedge
      // the FIFO forever. Reject under every policy except best-effort.
      if (policy == AdmissionPolicy::kDegrade) {
        ticket->degraded = true;
        metrics_.on_degrade(tenant);
        enqueue_injection(ticket);
      } else {
        metrics_.on_reject(tenant);
        finish_terminal(ticket, JobState::kRejected);
      }
      break;

    case AdmissionDecision::Kind::kNoBudget:
      switch (policy) {
        case AdmissionPolicy::kReject:
          metrics_.on_reject(tenant);
          finish_terminal(ticket, JobState::kRejected);
          break;
        case AdmissionPolicy::kDegrade:
          ticket->degraded = true;
          metrics_.on_degrade(tenant);
          enqueue_injection(ticket);
          break;
        case AdmissionPolicy::kQueue: {
          bool parked = false;
          {
            util::MutexLock lock(parked_mutex_);
            if (parked_.size() < options_.admission.max_queue) {
              ticket->deadline =
                  ticket->submit_time +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          options_.admission.queue_timeout_s));
              parked_.push_back(ticket);
              // Release mirror of the locked deque size; pairs with
              // pump_parked()'s acquire probe that elides the lock.
              parked_count_.store(parked_.size(), std::memory_order_release);
              parked = true;
            }
          }
          if (parked) {
            metrics_.on_queue(tenant);
          } else {
            metrics_.on_reject(tenant);
            finish_terminal(ticket, JobState::kRejected);
          }
          break;
        }
      }
      break;
  }
  return JobHandle(ticket);
}

void Runtime::enqueue_injection(
    const std::shared_ptr<JobHandle::Ticket>& ticket) {
  util::MutexLock lock(inject_mutex_);
  injected_.push_back(ticket);
  // Release mirror of the locked deque size; pairs with the acquire
  // probe in drain_injection() that elides the lock when empty.
  inject_count_.store(injected_.size(), std::memory_order_release);
}

void Runtime::dispatch(int tid,
                       const std::shared_ptr<JobHandle::Ticket>& ticket) {
  // Wiring happens here — on a worker, inside an arena scope — not at
  // submit time, so a rejected or timed-out ticket never owns engine
  // bookkeeping that would need unwinding: pre-dispatch failure is a plain
  // `delete root`.
  auto* completion = new CompletionJob(this, ticket);  // lint:allow(raw-new)
  ticket->sentinel =
      runtime::StrandOps::make_submission(ticket->root, completion);
  if (ticket->degraded && has_degrade_mux_) {
    DegradeMux::MarkDegraded(ticket->root->task());
    DegradeMux::MarkDegraded(completion->task());
  }
  ticket->dispatch_time = Clock::now();
  runtime::Job* root = ticket->root;
  ticket->root = nullptr;  // ownership passes to the engine
  // Release: a client polling state() acquires the dispatch_time and
  // wiring written above once it reads kRunning.
  ticket->state.store(JobState::kRunning, std::memory_order_release);
  sched_->add(root, tid);
}

bool Runtime::drain_injection(int tid) {
  // Acquire probe of the release-mirrored size: lets idle workers skip
  // the mutex; a stale zero is re-checked on the next loop iteration.
  if (inject_count_.load(std::memory_order_acquire) == 0) return false;
  bool any = false;
  for (;;) {
    std::shared_ptr<JobHandle::Ticket> ticket;
    {
      util::MutexLock lock(inject_mutex_);
      if (injected_.empty()) break;
      ticket = std::move(injected_.front());
      injected_.pop_front();
      // Release mirror (see enqueue_injection).
      inject_count_.store(injected_.size(), std::memory_order_release);
    }
    dispatch(tid, ticket);
    any = true;
  }
  return any;
}

void Runtime::pump_parked() {
  // Acquire probe of the release-mirrored queue size; a stale zero is
  // retried by the idle-tier heartbeat, never lost.
  if (parked_count_.load(std::memory_order_acquire) == 0) return;
  std::vector<std::shared_ptr<JobHandle::Ticket>> expired;
  std::vector<std::shared_ptr<JobHandle::Ticket>> admitted;
  {
    util::MutexLock lock(parked_mutex_);
    const auto now = Clock::now();
    while (!parked_.empty()) {
      std::shared_ptr<JobHandle::Ticket>& head = parked_.front();
      if (now >= head->deadline) {
        expired.push_back(std::move(head));
        parked_.pop_front();
        continue;
      }
      const AdmissionDecision decision =
          admission_.try_admit(head->declared_bytes);
      if (decision.kind != AdmissionDecision::Kind::kAdmitted) {
        // Strict FIFO: stop at the first still-unadmittable head so large
        // submissions cannot be starved by a stream of small ones.
        // Deadlines are monotone in queue order (same timeout, FIFO
        // arrival), so nothing behind an unexpired head is expired.
        break;
      }
      head->reserved_node = decision.node;
      admitted.push_back(std::move(head));
      parked_.pop_front();
    }
    // Release mirror of the locked deque size (see submit()).
    parked_count_.store(parked_.size(), std::memory_order_release);
  }
  for (const auto& ticket : expired) {
    metrics_.on_timeout(ticket->tenant);
    finish_terminal(ticket, JobState::kTimedOut);
  }
  for (const auto& ticket : admitted) {
    metrics_.on_admit(ticket->tenant);
    enqueue_injection(ticket);
  }
}

void Runtime::finish_terminal(
    const std::shared_ptr<JobHandle::Ticket>& ticket, JobState state) {
  SBS_ASSERT(state == JobState::kRejected || state == JobState::kTimedOut);
  delete ticket->root;  // never dispatched, never ran
  ticket->root = nullptr;
  ticket->state.store(state, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_acq_rel);
  wait_cv_.notify_all();
}

void Runtime::finalize_completion(
    const std::shared_ptr<JobHandle::Ticket>& ticket) {
  ticket->complete_time = Clock::now();
  delete ticket->sentinel;
  ticket->sentinel = nullptr;
  if (ticket->reserved_node >= 0)
    admission_.release(ticket->reserved_node, ticket->declared_bytes);
  const double sojourn =
      std::chrono::duration<double>(ticket->complete_time -
                                    ticket->submit_time)
          .count();
  const double queueing =
      std::chrono::duration<double>(ticket->dispatch_time -
                                    ticket->submit_time)
          .count();
  metrics_.on_complete(ticket->tenant, sojourn, queueing, sojourn - queueing);
  // Release: publishes results/timing to JobHandle::state() acquirers.
  ticket->state.store(JobState::kDone, std::memory_order_release);
  // acq_rel: same live_ chain as submit(); lets drain() conclude no
  // jobs remain once it reads zero.
  live_.fetch_sub(1, std::memory_order_acq_rel);
  wait_cv_.notify_all();
  pump_parked();  // the release above may admit parked submissions
}

void Runtime::worker_loop(int tid) {
  const unsigned host_cpus =
      std::max(1u, std::thread::hardware_concurrency());
  try_pin(static_cast<int>(static_cast<unsigned>(tid) % host_cpus));
  runtime::JobArena::Scope arena_scope(
      arenas_[static_cast<std::size_t>(tid)].get());
  std::vector<runtime::Job*> to_add;
  int idle_streak = 0;
  for (;;) {
    const bool dispatched = drain_injection(tid);
    runtime::Job* job = sched_->get(tid);
    if (job == nullptr) {
      if (dispatched) {
        idle_streak = 0;
        continue;
      }
      // All acquire: the exit decision must observe everything that
      // preceded stop_ being raised and the final completion/injection.
      if (stop_.load(std::memory_order_acquire) &&
          live_.load(std::memory_order_acquire) == 0 &&
          inject_count_.load(std::memory_order_acquire) == 0) {
        break;
      }
      // Deep in the idle tiers, double as the timeout heartbeat: parked
      // deadlines must fire even when no completion ever frees budget.
      if (idle_streak >= kSpinRounds + kYieldRounds) pump_parked();
      idle_backoff(idle_streak++);
      continue;
    }
    idle_streak = 0;

    runtime::Strand strand(tid, num_threads_);
    job->execute(strand);
    const bool completed = !strand.forked();
    sched_->done(job, tid, completed);

    to_add.clear();
    bool root_completed = false;
    runtime::StrandOps::settle(job, strand, to_add, root_completed);
    for (runtime::Job* a : to_add) sched_->add(a, tid);

    if (root_completed) {
      std::shared_ptr<JobHandle::Ticket> ticket =
          std::move(completion_slots_[static_cast<std::size_t>(tid)].ticket);
      SBS_CHECK_MSG(ticket != nullptr,
                    "root_completed with no completion slot");
      finalize_completion(ticket);
    }
  }
}

JobState Runtime::wait(const JobHandle& handle) {
  SBS_CHECK_MSG(handle.valid(), "wait on an invalid handle");
  for (;;) {
    const JobState state = handle.state();
    if (is_terminal(state)) return state;
    pump_parked();  // enforce deadlines even if every worker is busy
    std::unique_lock<util::Mutex> lock(wait_mutex_);
    // Short timeout: the predicate reads an atomic outside the lock, so a
    // transition between check and sleep self-heals at the next tick.
    wait_cv_.wait_for(  // lint:allow(blocking-call) waiter, not submit path
        lock, std::chrono::milliseconds(10),
        [&] { return is_terminal(handle.state()); });
  }
}

void Runtime::drain() {
  // Acquire pairs with finish_terminal()'s acq_rel decrement: zero here
  // means every counted job's completion is visible.
  while (live_.load(std::memory_order_acquire) > 0) {
    pump_parked();
    std::unique_lock<util::Mutex> lock(wait_mutex_);
    wait_cv_.wait_for(  // lint:allow(blocking-call) waiter, not submit path
        lock, std::chrono::milliseconds(10),
        [&] { return live_.load(std::memory_order_acquire) == 0; });
  }
}

void Runtime::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  drain();
  // Release pairs with worker_loop()'s acquire: workers that see stop_
  // also see the drained state that justified it.
  stop_.store(true, std::memory_order_release);
  for (std::thread& w : workers_)
    w.join();  // lint:allow(blocking-call) teardown, not submit path
  workers_.clear();
  sched_->finish();
}

double Runtime::uptime_s() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

}  // namespace sbs::service
