// WS — the basic work-stealing scheduler (paper §4.2 and Appendix A).
//
// One double-ended queue per worker. add() pushes to the bottom of the
// calling worker's deque; get() pops from the bottom, or — when the local
// deque is empty — picks a victim uniformly at random among the *other*
// workers and steals one job from the *top* of the victim's deque (the
// paper's WS, Appendix A, steals from other deques; a self-steal after the
// local-deque-empty check would be a guaranteed wasted attempt).
//
// The deques are lock-free Chase–Lev deques (sched/chase_lev.h): the owner
// fast path is a handful of plain loads/stores, a thief is one CAS. This
// replaces the paper's "two-locks-per-deque" variant, whose lock traffic
// showed up in exactly the add/get overheads the framework is trying to
// attribute to scheduling *policy* (cf. Gu et al., arXiv:2111.04994, and
// Cole & Ramachandran, arXiv:1103.4142, on scheduler-induced cache traffic).
// The locked seed path survives, measured side by side with this one, in
// bench/micro_overheads.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "sched/chase_lev.h"
#include "sched/ops.h"
#include "util/rng.h"

namespace sbs::sched {

class WorkStealing : public runtime::Scheduler {
 public:
  /// seed controls victim selection (deterministic experiments).
  /// steal_batch > 1 steals up to that many jobs per successful attempt
  /// (ChaseLevDeque::steal_some); the extras land in the thief's own deque.
  /// The default of 1 is the paper's WS — batching is an opt-in for
  /// steal-bound workloads (measured in bench/micro_overheads).
  explicit WorkStealing(std::uint64_t seed = 1, int steal_batch = 1)
      : seed_(seed), steal_batch_(steal_batch) {
    SBS_CHECK(steal_batch_ >= 1 && steal_batch_ <= kMaxStealBatch);
  }

  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override { return "WS"; }
  std::string stats_string() const override;

  std::uint64_t total_steals() const;
  std::uint64_t total_failed_steals() const;

 protected:
  /// Victim choice; never the caller itself. Returns -1 when there is no
  /// eligible victim (single-worker runs). Subclasses (PWS) override to
  /// bias by topology distance.
  virtual int steal_choice(int thread_id);

  struct alignas(64) PerThread {
    ChaseLevDeque<runtime::Job*> jobs;
    Rng rng{0};
    std::uint64_t steals = 0;
    std::uint64_t failed_steals = 0;
  };

  int num_threads_ = 0;
  const machine::Topology* topo_ = nullptr;
  std::vector<std::unique_ptr<PerThread>> threads_;

  static constexpr int kMaxStealBatch = 16;

 private:
  std::uint64_t seed_;
  int steal_batch_ = 1;
};

}  // namespace sbs::sched
