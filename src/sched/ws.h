// WS — the basic work-stealing scheduler (paper §4.2 and Appendix A).
//
// One double-ended queue per worker. add() pushes to the bottom of the
// calling worker's deque; get() pops from the bottom, or — when the local
// deque is empty — picks a victim uniformly at random and steals one job
// from the *top* of the victim's deque. Each deque has two locks: the local
// lock taken for every operation, and a steal lock that serializes thieves
// so that the owner's common case contends with at most one of them
// (paper §4.2 "two-locks-per-dequeue").
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "sched/ops.h"
#include "util/rng.h"

namespace sbs::sched {

class WorkStealing : public runtime::Scheduler {
 public:
  /// seed controls victim selection (deterministic experiments).
  explicit WorkStealing(std::uint64_t seed = 1) : seed_(seed) {}

  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override { return "WS"; }
  std::string stats_string() const override;

  std::uint64_t total_steals() const;

 protected:
  /// Victim choice; subclasses (PWS) override to bias by topology distance.
  virtual int steal_choice(int thread_id);

  struct alignas(64) PerThread {
    Spinlock local_lock;
    Spinlock steal_lock;
    std::deque<runtime::Job*> jobs;
    Rng rng{0};
    std::uint64_t steals = 0;
    std::uint64_t failed_steals = 0;
  };

  int num_threads_ = 0;
  const machine::Topology* topo_ = nullptr;
  std::vector<std::unique_ptr<PerThread>> threads_;

 private:
  std::uint64_t seed_;
};

}  // namespace sbs::sched
