#include "sched/sb.h"

#include <algorithm>
#include <sstream>

#include "trace/recorder.h"
#include "util/assert.h"

namespace sbs::sched {

using runtime::Job;
using runtime::kNoSize;
using runtime::Task;

SpaceBounded::SpaceBounded() : SpaceBounded(Options()) {}

SpaceBounded::SpaceBounded(Options options, std::uint64_t seed)
    : options_(options), seed_(seed) {
  SBS_CHECK_MSG(options_.sigma > 0 && options_.sigma <= 1.0,
                "dilation sigma must be in (0,1]");
  SBS_CHECK_MSG(options_.mu > 0 && options_.mu <= 1.0,
                "mu must be in (0,1]");
}

void SpaceBounded::start(const machine::Topology& topo, int num_threads) {
  topo_ = &topo;
  num_threads_ = num_threads;
  const int depths = topo.leaf_depth();  // cache depths are 0..depths-1

  capacity_.assign(static_cast<std::size_t>(depths), 0);
  line_.assign(static_cast<std::size_t>(depths), 64);
  for (int d = 0; d < depths; ++d) {
    capacity_[static_cast<std::size_t>(d)] = topo.config().levels[static_cast<std::size_t>(d)].size;
    line_[static_cast<std::size_t>(d)] = topo.config().levels[static_cast<std::size_t>(d)].line;
  }

  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (int id = 0; id < topo.num_nodes(); ++id) {
    const int num_children =
        options_.distributed_top && topo.node(id).depth < depths
            ? topo.node(id).num_children
            : 0;
    nodes_.push_back(std::make_unique<NodeState>(depths, num_children));
  }

  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads_.push_back(std::make_unique<PerThread>());
    threads_.back()->rng = Rng(seed_ * 0x5bd1 + static_cast<std::uint64_t>(t));
  }

  anchors_at_depth_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(depths));
}

void SpaceBounded::finish() {
  for (int id = 0; id < topo_->num_nodes(); ++id) {
    NodeState& node = *nodes_[static_cast<std::size_t>(id)];
    // Relaxed: finish() runs after the pool quiesced; no concurrent
    // charges exist and the check only needs the final value.
    SBS_CHECK_MSG(node.occupied.load(std::memory_order_relaxed) == 0,
                  "SB: cache occupancy must drain to zero at finish");
    SBS_CHECK_MSG(node.local.drained(), "SB: local queue not drained");
    for (auto& b : node.buckets)
      SBS_CHECK_MSG(b.drained(), "SB: bucket not drained");
    for (auto& q : node.child_top)
      SBS_CHECK_MSG(q.drained(), "SB: distributed top bucket not drained");
  }
}

std::uint64_t SpaceBounded::task_size_at(const Job& job, int depth) const {
  return job.size(line_[static_cast<std::size_t>(depth)]);
}

std::uint64_t SpaceBounded::strand_size_at(const Job& job, int depth) const {
  return job.strand_size(line_[static_cast<std::size_t>(depth)]);
}

int SpaceBounded::befit_depth(const Job& job) const {
  // Deepest (smallest) cache whose dilated capacity σM_d holds the task;
  // the root (depth 0, infinite) always befits.
  for (int d = topo_->num_cache_levels(); d >= 1; --d) {
    const std::uint64_t size = task_size_at(job, d);
    SBS_CHECK_MSG(size != kNoSize,
                  "space-bounded schedulers require size-annotated tasks");
    if (static_cast<double>(size) <=
        options_.sigma * static_cast<double>(capacity_[static_cast<std::size_t>(d)])) {
      return d;
    }
  }
  return 0;
}

bool SpaceBounded::is_top_bucket(int x_node, int b) const {
  return options_.distributed_top && b == topo_->node(x_node).depth + 1;
}

void SpaceBounded::add(Job* job, int thread_id) {
  Task* task = job->task();
  SBS_ASSERT(task != nullptr);

  if (!job->starts_task()) {
    // Continuation strand: queue at the cluster where the task that called
    // the corresponding fork is anchored (paper §4.2).
    nodes_[static_cast<std::size_t>(task->anchor)]->local.push_back(job);
    return;
  }

  if (task->parent == nullptr) {
    // The root task: anchored at the root of the tree by convention.
    task->anchor = topo_->root();
    task->size = task_size_at(*job, 0);
    SBS_CHECK_MSG(task->size != kNoSize,
                  "space-bounded schedulers require size-annotated tasks");
    task->maximal = false;
    task->attr = 0;
    nodes_[static_cast<std::size_t>(topo_->root())]->local.push_back(job);
    return;
  }

  const int parent_anchor = task->parent->anchor;
  SBS_ASSERT(parent_anchor >= 0);
  const int parent_depth = topo_->node(parent_anchor).depth;
  const int b = befit_depth(*job);

  if (b <= parent_depth) {
    // Non-maximal: the parent's anchored cache already befits this task, so
    // it inherits the anchor and consumes no additional space.
    task->anchor = parent_anchor;
    task->size = task_size_at(*job, parent_depth);
    task->maximal = false;
    task->attr = static_cast<std::uint64_t>(parent_depth);
    nodes_[static_cast<std::size_t>(parent_anchor)]->local.push_back(job);
    return;
  }

  // Maximal task: queue in the parent anchor's bucket for depth b; it will
  // be anchored to a concrete depth-b cache when a core admits it.
  task->maximal = true;
  task->anchor = -1;
  task->size = task_size_at(*job, b);
  NodeState& node = *nodes_[static_cast<std::size_t>(parent_anchor)];
  if (is_top_bucket(parent_anchor, b)) {
    // SB-D: per-child distributed top bucket; enqueue at the child cluster
    // the adding thread belongs to.
    const int child =
        topo_->cache_of_thread(thread_id, parent_depth + 1);
    const int ordinal = child - topo_->node(parent_anchor).first_child;
    node.child_top[static_cast<std::size_t>(ordinal)].push_back(job);
  } else {
    node.buckets[static_cast<std::size_t>(b)].push_back(job);
  }
}

bool SpaceBounded::try_charge_path(int anchor_node, int ceiling_depth,
                                   std::uint64_t bytes) {
  // Charge every cache from the anchor up to (excluding) the ceiling,
  // checking the bounded property; roll back already-charged nodes on
  // failure. Nodes are charged bottom-up; each node's check+charge is a CAS.
  int charged[16];
  int n_charged = 0;
  for (int id = anchor_node; topo_->node(id).depth > ceiling_depth;
       id = topo_->node(id).parent) {
    NodeState& node = *nodes_[static_cast<std::size_t>(id)];
    const std::uint64_t cap =
        capacity_[static_cast<std::size_t>(topo_->node(id).depth)];
    // Relaxed seed for the CAS loop: the CAS below revalidates `cur`
    // against the capacity on every retry, so a stale read only costs
    // one extra iteration.
    std::uint64_t cur = node.occupied.load(std::memory_order_relaxed);
    bool ok = false;
    while (cur + bytes <= cap) {
      count_op();
      // acq_rel: all charge/release RMWs on `occupied` form one
      // modification order; acquire+release chains them so a core that
      // wins admission after a release also observes the frees the
      // releasing task published before it (occupancy never observed
      // above its true bound).
      if (node.occupied.compare_exchange_weak(cur, cur + bytes,
                                              std::memory_order_acq_rel)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      for (int i = 0; i < n_charged; ++i) {
        // acq_rel: rollback participates in the same RMW chain as the
        // charges (see the admission CAS above).
        nodes_[static_cast<std::size_t>(charged[i])]->occupied.fetch_sub(
            bytes, std::memory_order_acq_rel);
      }
      return false;
    }
    bump_max(node);
    SBS_ASSERT(n_charged < 16);
    charged[n_charged++] = id;
  }
  return true;
}

void SpaceBounded::force_charge_path(int anchor_node, int ceiling_depth,
                                     std::uint64_t bytes) {
  // Mutation-test hook (Options::TestFaults::force_admission): charge the
  // path like try_charge_path but without the capacity check, so the
  // bounded property can be violated. Charges are still recorded, so
  // release_path keeps the books balanced at finish().
  for (int id = anchor_node; topo_->node(id).depth > ceiling_depth;
       id = topo_->node(id).parent) {
    NodeState& node = *nodes_[static_cast<std::size_t>(id)];
    count_op();
    // acq_rel: same RMW chain as try_charge_path, minus the bound check.
    node.occupied.fetch_add(bytes, std::memory_order_acq_rel);
    bump_max(node);
  }
}

void SpaceBounded::release_path(int anchor_node, int ceiling_depth,
                                std::uint64_t bytes) {
  for (int id = anchor_node; topo_->node(id).depth > ceiling_depth;
       id = topo_->node(id).parent) {
    count_op();
    // acq_rel: the release chains with later admission CASes so freed
    // budget is visible to the next charge (see try_charge_path).
    [[maybe_unused]] const std::uint64_t prev =
        nodes_[static_cast<std::size_t>(id)]->occupied.fetch_sub(
            bytes, std::memory_order_acq_rel);
    SBS_ASSERT(prev >= bytes);
  }
}

void SpaceBounded::bump_max(NodeState& node) {
  // All relaxed: max_occupied is a statistics high-water mark read only
  // after the run (or by tests); the CAS loop needs atomicity, not
  // ordering, and must stay off the admission fast path's critical cost.
  const std::uint64_t cur = node.occupied.load(std::memory_order_relaxed);
  std::uint64_t max = node.max_occupied.load(std::memory_order_relaxed);
  while (cur > max &&
         !node.max_occupied.compare_exchange_weak(
             max, cur, std::memory_order_relaxed)) {  // stats only, see above
  }
}

void SpaceBounded::charge_strand(Job* job, int thread_id) {
  Task* task = job->task();
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  const int anchor_depth = topo_->node(task->anchor).depth;
  const int leaf = topo_->leaf_of_thread(thread_id);
  for (int id = topo_->node(leaf).parent;
       id != -1 && topo_->node(id).depth > anchor_depth;
       id = topo_->node(id).parent) {
    const int depth = topo_->node(id).depth;
    std::uint64_t s = options_.use_strand_sizes
                          ? strand_size_at(*job, depth)
                          : task->size;
    if (s == kNoSize) s = task->size;  // paper: default to the task's size
    const std::uint64_t cap = capacity_[static_cast<std::size_t>(depth)];
    std::uint64_t amount = s;
    if (options_.mu_cap) {
      amount = std::min<std::uint64_t>(
          s, static_cast<std::uint64_t>(options_.mu *
                                        static_cast<double>(cap)));
    }
    if (amount == 0) continue;
    NodeState& node = *nodes_[static_cast<std::size_t>(id)];
    count_op();
    // acq_rel: strand charges join the same occupied RMW chain as task
    // admission (try_charge_path) so the bound holds across both.
    node.occupied.fetch_add(amount, std::memory_order_acq_rel);
    bump_max(node);
    self.strand_charges.emplace_back(id, amount);
  }
}

bool SpaceBounded::try_anchor(Job* job, int x_node, int b, int thread_id) {
  Task* task = job->task();
  const int ceiling_depth = topo_->node(x_node).depth;
  int anchor_depth = b;
  if (options_.test_faults.anchor_depth_bias > 0) {
    // Mutation-test hook: anchor above the befitting cache (clamped so the
    // charge path stays within (ceiling, anchor]).
    anchor_depth =
        std::max(ceiling_depth, b - options_.test_faults.anchor_depth_bias);
  }
  const int anchor = topo_->cache_of_thread(thread_id, anchor_depth);
  if (options_.test_faults.force_admission) {
    force_charge_path(anchor, ceiling_depth, task->size);
  } else if (!try_charge_path(anchor, ceiling_depth, task->size)) {
    return false;
  }
  task->anchor = anchor;
  task->attr = static_cast<std::uint64_t>(ceiling_depth);
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  ++self.anchors;
  // Relaxed: per-depth anchor tally for stats_string()/tests; counted,
  // never used to synchronize.
  anchors_at_depth_[static_cast<std::size_t>(b)].fetch_add(
      1, std::memory_order_relaxed);
  trace::emit(thread_id, trace::EventKind::kAnchor,
              static_cast<std::uint64_t>(anchor_depth),
              static_cast<std::uint64_t>(anchor), task->size,
              static_cast<std::uint64_t>(ceiling_depth));
  return true;
}

Job* SpaceBounded::get(int thread_id) {
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  const int leaf = topo_->leaf_of_thread(thread_id);
  const int max_depth = topo_->num_cache_levels();

  for (int id = topo_->node(leaf).parent; id != -1;
       id = topo_->node(id).parent) {
    NodeState& node = *nodes_[static_cast<std::size_t>(id)];
    const int depth = topo_->node(id).depth;

    // 1) Local strands / non-maximal tasks anchored at this cache. The
    // lock-free maybe_empty() probe keeps the (overwhelmingly common) empty
    // scan entirely outside any critical section; only queues that look
    // non-empty pay for a lock round-trip.
    if (!node.local.maybe_empty()) {
      if (Job* job = node.local.pop_back(); job != nullptr) {
        charge_strand(job, thread_id);
        return job;
      }
    }

    // 2) Buckets, heaviest (closest to this cache's level) first.
    for (int b = depth + 1; b <= max_depth; ++b) {
      Job* candidate = nullptr;
      if (is_top_bucket(id, b)) {
        // Own child queue first, then siblings (WS-style). Own pops LIFO
        // (depth-first locality); sibling queues are stolen FIFO like a WS
        // thief. Per-child-queue locks make a steal contend only with the
        // one queue it touches, not with the whole node.
        const int own = topo_->cache_of_thread(thread_id, depth + 1) -
                        topo_->node(id).first_child;
        const int nq = static_cast<int>(node.child_top.size());
        for (int k = 0; k < nq && candidate == nullptr; ++k) {
          auto& q = node.child_top[static_cast<std::size_t>((own + k) % nq)];
          if (q.maybe_empty()) continue;
          candidate = k == 0 ? q.pop_back() : q.pop_front();
          if (candidate != nullptr && k != 0) ++self.sibling_pops;
        }
      } else {
        auto& bucket = node.buckets[static_cast<std::size_t>(b)];
        if (!bucket.maybe_empty()) candidate = bucket.pop_back();
      }
      if (candidate == nullptr) continue;
      if (try_anchor(candidate, id, b, thread_id)) {
        charge_strand(candidate, thread_id);
        return candidate;
      }
      // Bounded property would be violated: put the task back and move on.
      ++self.admission_failures;
      trace::emit(thread_id, trace::EventKind::kAdmissionFail,
                  static_cast<std::uint64_t>(b), static_cast<std::uint64_t>(id));
      if (is_top_bucket(id, b)) {
        const int own = topo_->cache_of_thread(thread_id, depth + 1) -
                        topo_->node(id).first_child;
        node.child_top[static_cast<std::size_t>(own)].push_front(candidate);
      } else {
        node.buckets[static_cast<std::size_t>(b)].push_front(candidate);
      }
    }
  }
  return nullptr;
}

void SpaceBounded::done(Job* job, int thread_id, bool task_completed) {
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  for (const auto& [node_id, amount] : self.strand_charges) {
    count_op();
    // acq_rel: strand-charge release, same occupied RMW chain as above.
    [[maybe_unused]] const std::uint64_t prev =
        nodes_[static_cast<std::size_t>(node_id)]->occupied.fetch_sub(
            amount, std::memory_order_acq_rel);
    SBS_ASSERT(prev >= amount);
  }
  self.strand_charges.clear();

  if (task_completed) {
    Task* task = job->task();
    if (task->maximal && task->anchor >= 0) {
      release_path(task->anchor, static_cast<int>(task->attr), task->size);
      trace::emit(
          thread_id, trace::EventKind::kRelease,
          static_cast<std::uint64_t>(topo_->node(task->anchor).depth),
          static_cast<std::uint64_t>(task->anchor), task->size, task->attr);
    }
  }
}

std::uint64_t SpaceBounded::occupied(int node_id) const {
  // Acquire: test/verify readers observe at least every charge chained
  // before the RMW they read (tests assert the bounded property).
  return nodes_[static_cast<std::size_t>(node_id)]->occupied.load(
      std::memory_order_acquire);
}

std::uint64_t SpaceBounded::total_anchors() const {
  std::uint64_t n = 0;
  for (const auto& t : threads_) n += t->anchors;
  return n;
}

std::uint64_t SpaceBounded::anchors_at_depth(int depth) const {
  // Relaxed: stats counter, read after the run.
  return anchors_at_depth_[static_cast<std::size_t>(depth)].load(
      std::memory_order_relaxed);
}

std::uint64_t SpaceBounded::max_occupied(int node_id) const {
  // Relaxed: statistics high-water mark (see bump_max), read post-run.
  return nodes_[static_cast<std::size_t>(node_id)]->max_occupied.load(
      std::memory_order_relaxed);
}

std::string SpaceBounded::stats_string() const {
  std::uint64_t anchors = 0, failures = 0, sibling = 0;
  for (const auto& t : threads_) {
    anchors += t->anchors;
    failures += t->admission_failures;
    sibling += t->sibling_pops;
  }
  std::ostringstream out;
  out << "anchors=" << anchors << " admission_failures=" << failures;
  if (options_.distributed_top) out << " sibling_pops=" << sibling;
  out << " anchors_by_depth=[";
  for (std::size_t d = 0; d < anchors_at_depth_.size(); ++d) {
    // Relaxed: post-run stats read.
    out << (d ? "," : "") << anchors_at_depth_[d].load(
        std::memory_order_relaxed);
  }
  out << "]";
  return out.str();
}

}  // namespace sbs::sched
