#include "sched/ops.h"

namespace sbs::sched {

thread_local std::uint64_t tl_ops = 0;

}  // namespace sbs::sched
