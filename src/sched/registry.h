// Scheduler factory: construct any of the paper's schedulers by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "sched/sb.h"

namespace sbs::sched {

struct SchedulerSpec {
  std::string name;  ///< "WS", "PWS", "CilkWS", "SB", "SB-D"
  std::uint64_t seed = 1;
  /// Space-bounded knobs (ignored by work-stealing schedulers).
  SpaceBounded::Options sb;
};

/// Construct a scheduler. Checks the name against the registry.
std::unique_ptr<runtime::Scheduler> MakeScheduler(const SchedulerSpec& spec);

/// Shorthand: default options, given σ for the space-bounded variants.
std::unique_ptr<runtime::Scheduler> MakeScheduler(const std::string& name,
                                                  std::uint64_t seed = 1,
                                                  double sigma = 0.5,
                                                  double mu = 0.2);

std::vector<std::string> SchedulerNames();

}  // namespace sbs::sched
