#include "sched/cilk_ws.h"

#include <sstream>

#include "trace/recorder.h"
#include "util/assert.h"

namespace sbs::sched {

using runtime::Job;

void CilkWorkStealing::start(const machine::Topology& topo, int num_threads) {
  (void)topo;
  num_threads_ = num_threads;
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads_.push_back(std::make_unique<PerThread>());
    threads_.back()->rng = Rng(seed_ * 0x51ed + static_cast<std::uint64_t>(t));
  }
}

void CilkWorkStealing::finish() {
  for (const auto& t : threads_)
    SBS_CHECK_MSG(t->deque.empty(), "CilkWS: deque not drained at finish");
}

void CilkWorkStealing::add(Job* job, int thread_id) {
  threads_[static_cast<std::size_t>(thread_id)]->deque.push_bottom(job);
}

Job* CilkWorkStealing::get(int thread_id) {
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  Job* job = nullptr;
  if (self.deque.pop_bottom(&job)) return job;
  for (int attempt = 0; attempt < steal_attempts_; ++attempt) {
    const auto victim =
        self.rng.next_below(static_cast<std::uint64_t>(num_threads_));
    PerThread& v = *threads_[static_cast<std::size_t>(victim)];
    if (&v == &self) continue;
    trace::emit(thread_id, trace::EventKind::kStealAttempt, victim);
    if (v.deque.steal_top(&job)) {
      ++self.steals;
      trace::emit(thread_id, trace::EventKind::kStealSuccess, victim);
      return job;
    }
  }
  return nullptr;
}

void CilkWorkStealing::done(Job* job, int thread_id, bool task_completed) {
  (void)job;
  (void)thread_id;
  (void)task_completed;
}

std::string CilkWorkStealing::stats_string() const {
  std::uint64_t steals = 0;
  for (const auto& t : threads_) steals += t->steals;
  std::ostringstream out;
  out << "steals=" << steals;
  return out.str();
}

}  // namespace sbs::sched
