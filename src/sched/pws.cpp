#include "sched/pws.h"

#include <map>

#include "util/assert.h"

namespace sbs::sched {

void PriorityWorkStealing::start(const machine::Topology& topo,
                                 int num_threads) {
  WorkStealing::start(topo, num_threads);
  socket_members_.clear();
  socket_of_thread_.assign(static_cast<std::size_t>(num_threads), 0);
  std::map<int, int> socket_index;  // socket node id -> dense index
  for (int t = 0; t < num_threads; ++t) {
    const int node = topo.socket_of_thread(t);
    auto [it, inserted] =
        socket_index.emplace(node, static_cast<int>(socket_members_.size()));
    if (inserted) socket_members_.emplace_back();
    socket_of_thread_[static_cast<std::size_t>(t)] = it->second;
    socket_members_[static_cast<std::size_t>(it->second)].push_back(t);
  }
}

int PriorityWorkStealing::steal_choice(int thread_id) {
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  const auto& local =
      socket_members_[static_cast<std::size_t>(
          socket_of_thread_[static_cast<std::size_t>(thread_id)])];
  const std::size_t n_local = local.size();
  const std::size_t n_total = static_cast<std::size_t>(num_threads_);
  const std::size_t n_remote = n_total - n_local;

  // Weighted coin: each local candidate has weight `intra_weight_`, each
  // remote candidate weight 1 (the caller itself stays a candidate, exactly
  // like the paper's WS code, where a self-steal just finds an empty deque).
  const double w_local = intra_weight_ * static_cast<double>(n_local);
  const double w_total = w_local + static_cast<double>(n_remote);
  if (n_remote == 0 || self.rng.next_double() * w_total < w_local) {
    return local[self.rng.next_below(n_local)];
  }
  // Uniform among remote threads: skip over local ones.
  std::uint64_t k = self.rng.next_below(n_remote);
  for (int t = 0; t < num_threads_; ++t) {
    if (socket_of_thread_[static_cast<std::size_t>(t)] ==
        socket_of_thread_[static_cast<std::size_t>(thread_id)]) {
      continue;
    }
    if (k-- == 0) return t;
  }
  SBS_CHECK_MSG(false, "PWS: remote victim selection out of range");
  return 0;
}

}  // namespace sbs::sched
