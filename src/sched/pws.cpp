#include "sched/pws.h"

#include <map>

#include "util/assert.h"

namespace sbs::sched {

void PriorityWorkStealing::start(const machine::Topology& topo,
                                 int num_threads) {
  WorkStealing::start(topo, num_threads);
  socket_members_.clear();
  socket_of_thread_.assign(static_cast<std::size_t>(num_threads), 0);
  std::map<int, int> socket_index;  // socket node id -> dense index
  for (int t = 0; t < num_threads; ++t) {
    const int node = topo.socket_of_thread(t);
    auto [it, inserted] =
        socket_index.emplace(node, static_cast<int>(socket_members_.size()));
    if (inserted) socket_members_.emplace_back();
    socket_of_thread_[static_cast<std::size_t>(t)] = it->second;
    socket_members_[static_cast<std::size_t>(it->second)].push_back(t);
  }
}

int PriorityWorkStealing::steal_choice(int thread_id) {
  if (num_threads_ < 2) return -1;
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  const auto& local =
      socket_members_[static_cast<std::size_t>(
          socket_of_thread_[static_cast<std::size_t>(thread_id)])];
  // The caller is never its own victim: a self-steal after the
  // local-deque-empty check is a guaranteed failed attempt.
  const std::size_t n_local = local.size() - 1;
  const std::size_t n_total = static_cast<std::size_t>(num_threads_);
  const std::size_t n_remote = n_total - local.size();

  // Weighted coin: each intra-socket candidate has weight `intra_weight_`,
  // each remote candidate weight 1.
  const double w_local = intra_weight_ * static_cast<double>(n_local);
  const double w_total = w_local + static_cast<double>(n_remote);
  const bool pick_local =
      n_local > 0 &&
      (n_remote == 0 || self.rng.next_double() * w_total < w_local);
  if (pick_local) {
    // Uniform among intra-socket peers, skipping the caller.
    std::uint64_t k = self.rng.next_below(n_local);
    for (const int t : local) {
      if (t == thread_id) continue;
      if (k-- == 0) return t;
    }
    SBS_CHECK_MSG(false, "PWS: local victim selection out of range");
  }
  if (n_remote == 0) return -1;  // alone on the only socket
  // Uniform among remote threads: skip over local ones.
  std::uint64_t k = self.rng.next_below(n_remote);
  for (int t = 0; t < num_threads_; ++t) {
    if (socket_of_thread_[static_cast<std::size_t>(t)] ==
        socket_of_thread_[static_cast<std::size_t>(thread_id)]) {
      continue;
    }
    if (k-- == 0) return t;
  }
  SBS_CHECK_MSG(false, "PWS: remote victim selection out of range");
  return -1;
}

}  // namespace sbs::sched
