// CilkWS — lock-free work stealing over Chase–Lev deques.
//
// Plays the role the commercial Cilk Plus runtime plays in the paper:
// an independently engineered work-stealing scheduler used to validate
// that the framework's WS implementation is representative (§5, Figs. 5–6).
// Differences from WS: lock-free deques instead of two spinlocks, and a
// bounded burst of steal attempts per get() instead of a single attempt.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "sched/chase_lev.h"
#include "util/rng.h"

namespace sbs::sched {

class CilkWorkStealing final : public runtime::Scheduler {
 public:
  explicit CilkWorkStealing(std::uint64_t seed = 1, int steal_attempts = 4)
      : seed_(seed), steal_attempts_(steal_attempts) {}

  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override { return "CilkWS"; }
  std::string stats_string() const override;

 private:
  struct alignas(64) PerThread {
    ChaseLevDeque<runtime::Job*> deque;
    Rng rng{0};
    std::uint64_t steals = 0;
  };

  std::uint64_t seed_;
  int steal_attempts_;
  int num_threads_ = 0;
  std::vector<std::unique_ptr<PerThread>> threads_;
};

}  // namespace sbs::sched
