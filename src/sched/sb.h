// SB / SB-D — space-bounded schedulers (paper §4.1–§4.2).
//
// Terminology (paper §4.1, with tree depths instead of paper levels: depth 0
// is the root/memory, larger depth = smaller cache):
//   befitting cache   a depth-d cache befits task t iff
//                     σ·M_{d+1} < S(t,B_d) ≤ σ·M_d  — i.e. the smallest
//                     cache level whose dilated capacity holds the task.
//   maximal task      befits a strictly deeper (smaller) level than the
//                     level its parent is anchored to.
//   anchored          a maximal task is bound to one concrete cache Y; all
//                     its strands execute on cores of Y's cluster.
//   bounded           at every cache, anchored-task sizes (plus skip-level
//                     tasks anchored below whose parents are anchored above,
//                     for inclusive caches) plus min(µM, strand-size) for
//                     live foreign strands never exceed the capacity.
//
// Implementation (paper §4.2): every cache node owns a logical queue split
// into per-befit-level buckets plus a local FIFO for strands and
// non-maximal tasks. add() enqueues a spawned task at its parent's anchor
// node, in the bucket of its befitting level. Idle cores walk their
// root-to-leaf path from the innermost cache outwards; buckets are scanned
// heaviest-first. Taking a maximal task anchors it to the befitting cache
// on the taker's path, after an atomic bounded-occupancy admission over
// every cache from the anchor up to (excluding) the parent's anchor —
// the skip-level charge for inclusive caches. SB-D replaces each node's
// top (heaviest) bucket with one queue per child cache to remove the
// contention hotspot, stealing from sibling child-queues like WS.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "sched/ops.h"
#include "util/rng.h"

namespace sbs::sched {

class SpaceBounded : public runtime::Scheduler {
 public:
  struct Options {
    double sigma = 0.5;  ///< dilation parameter σ ∈ (0,1] (paper uses 0.5)
    double mu = 0.2;     ///< strand occupancy cap µ ∈ (0,1] (paper uses 0.2)
    bool distributed_top = false;  ///< SB-D: distribute each top bucket
    /// Ablation A: when false, strands charge their full size (no µ cap).
    bool mu_cap = true;
    /// Ablation B: when false, per-strand sizes are ignored and every strand
    /// charges its task's size (the paper notes per-strand sizes are an
    /// optional but important optimization, §4.1).
    bool use_strand_sizes = true;

    /// Deliberate scheduler bugs, reachable only from tests: the mutation
    /// tests in tests/test_verify.cpp seed each one and assert that the
    /// verify:: invariant checker flags it. Never set outside tests.
    struct TestFaults {
      /// Over-admit: charge the anchor path unconditionally, skipping the
      /// bounded-occupancy capacity check of try_charge_path.
      bool force_admission = false;
      /// Mis-anchor: anchor maximal tasks this many levels *above* their
      /// befitting cache (clamped at the ceiling), violating anchoring.
      int anchor_depth_bias = 0;
    } test_faults;
  };

  SpaceBounded();  // default options
  explicit SpaceBounded(Options options, std::uint64_t seed = 1);

  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override {
    return options_.distributed_top ? "SB-D" : "SB";
  }
  bool needs_size_annotations() const override { return true; }
  std::string stats_string() const override;

  const Options& options() const { return options_; }

  /// Current occupancy of a cache node (tests assert the bounded property).
  std::uint64_t occupied(int node_id) const;
  /// High-water occupancy of a cache node across the run.
  std::uint64_t max_occupied(int node_id) const;
  /// Anchoring decisions across the run (tests compare against the trace).
  std::uint64_t total_anchors() const;
  std::uint64_t anchors_at_depth(int depth) const;

 private:
  /// One spinlock-protected job queue, padded onto its own cache line(s) so
  /// neighbouring buckets never false-share lock or size words. The atomic
  /// size mirror lets idle cores scan for work without taking the lock:
  /// maybe_empty() is a relaxed load, and the lock is only acquired once a
  /// queue looks non-empty. A stale zero merely delays the scanner by one
  /// pass (the engine polls get() until work appears); a stale non-zero
  /// costs one uncontended lock round-trip. Queues with one lock each also
  /// shrink hold times versus the previous single per-node lock, which
  /// serialized the local queue and every bucket of a node together.
  struct alignas(64) JobQueue {
    Spinlock lock;
    std::atomic<std::size_t> size{0};
    /// Cold container behind the spinlock; the JobQueue itself (spinlock +
    /// atomic size mirror) is the hot-path interface.
    // lint:allow(std-deque)
    std::deque<runtime::Job*> jobs SBS_GUARDED_BY(lock);

    bool maybe_empty() const {
      count_op();
      // Relaxed: advisory probe to skip taking the lock; callers
      // revalidate under the lock before acting on the answer.
      return size.load(std::memory_order_relaxed) == 0;
    }
    void push_back(runtime::Job* job) {
      SpinGuard guard(lock);
      count_op();
      jobs.push_back(job);
      // Relaxed mirror write: `size` only feeds maybe_empty()'s
      // advisory probe; the deque itself is published by the lock.
      size.store(jobs.size(), std::memory_order_relaxed);
    }
    void push_front(runtime::Job* job) {
      SpinGuard guard(lock);
      count_op();
      jobs.push_front(job);
      // Relaxed mirror write (see push_back).
      size.store(jobs.size(), std::memory_order_relaxed);
    }
    runtime::Job* pop_back() {
      SpinGuard guard(lock);
      count_op();
      if (jobs.empty()) return nullptr;
      runtime::Job* job = jobs.back();
      jobs.pop_back();
      // Relaxed mirror write (see push_back).
      size.store(jobs.size(), std::memory_order_relaxed);
      return job;
    }
    runtime::Job* pop_front() {
      SpinGuard guard(lock);
      count_op();
      if (jobs.empty()) return nullptr;
      runtime::Job* job = jobs.front();
      jobs.pop_front();
      // Relaxed mirror write (see push_back).
      size.store(jobs.size(), std::memory_order_relaxed);
      return job;
    }
    /// Drain check for finish(): takes the lock (run quiescent, so it is
    /// uncontended) rather than poking `jobs` past the capability analysis.
    bool drained() {
      SpinGuard guard(lock);
      return jobs.empty();
    }
  };

  struct NodeState {
    /// Queue containers are std::deque because JobQueue (spinlock + atomic)
    /// is immovable; deque never relocates elements. Containers are sized at
    /// start() and never resized during a run — only JobQueue's own methods
    /// touch the hot path. lint:allow(std-deque) on both.
    /// local: strands (continuations) and non-maximal tasks anchored here.
    JobQueue local;
    /// buckets[b]: maximal tasks whose befitting depth is b (> node depth).
    std::deque<JobQueue> buckets;  // lint:allow(std-deque)
    /// SB-D: the top bucket (b == depth+1) distributed per child.
    std::deque<JobQueue> child_top;  // lint:allow(std-deque)
    /// Occupancy counters on their own line: admission CASes from every
    /// core hammer these words and must not false-share with queue locks.
    alignas(64) std::atomic<std::uint64_t> occupied{0};
    std::atomic<std::uint64_t> max_occupied{0};

    NodeState(int num_buckets, int num_children)
        : buckets(static_cast<std::size_t>(num_buckets)),
          child_top(static_cast<std::size_t>(num_children)) {}
  };

  struct alignas(64) PerThread {
    /// (node id, amount) strand-occupancy charges of the running strand.
    std::vector<std::pair<int, std::uint64_t>> strand_charges;
    Rng rng{0};
    std::uint64_t anchors = 0;
    std::uint64_t admission_failures = 0;
    std::uint64_t sibling_pops = 0;  ///< SB-D cross-child-queue pops
  };

  // --- helpers ---
  std::uint64_t task_size_at(const runtime::Job& job, int depth) const;
  std::uint64_t strand_size_at(const runtime::Job& job, int depth) const;
  /// Deepest depth whose dilated capacity holds the task (0 = root).
  int befit_depth(const runtime::Job& job) const;
  /// Atomically charge `bytes` on every cache on `leaf_path` with depth in
  /// (ceiling_depth, anchor_depth], checking capacity; rolls back on
  /// failure. Returns success.
  bool try_charge_path(int anchor_node, int ceiling_depth, std::uint64_t bytes);
  /// Test-fault variant: charge unconditionally, ignoring capacity (the
  /// over-admission mutation the invariant checker must catch).
  void force_charge_path(int anchor_node, int ceiling_depth,
                         std::uint64_t bytes);
  void release_path(int anchor_node, int ceiling_depth, std::uint64_t bytes);
  void bump_max(NodeState& node);
  /// Charge strand occupancy below the task's anchor on this thread's path.
  void charge_strand(runtime::Job* job, int thread_id);
  /// Attempt to admit+anchor a maximal task popped from node X, bucket b.
  bool try_anchor(runtime::Job* job, int x_node, int b, int thread_id);
  bool is_top_bucket(int x_node, int b) const;

  Options options_;
  std::uint64_t seed_;
  const machine::Topology* topo_ = nullptr;
  int num_threads_ = 0;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<PerThread>> threads_;
  std::vector<std::uint64_t> capacity_;       ///< per-depth M_d (0 = inf)
  std::vector<std::uint32_t> line_;           ///< per-depth B_d
  std::vector<std::atomic<std::uint64_t>> anchors_at_depth_;
};

}  // namespace sbs::sched
