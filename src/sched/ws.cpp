#include "sched/ws.h"

#include <sstream>

#include "trace/recorder.h"
#include "util/assert.h"

namespace sbs::sched {

using runtime::Job;

void WorkStealing::start(const machine::Topology& topo, int num_threads) {
  topo_ = &topo;
  num_threads_ = num_threads;
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads_.push_back(std::make_unique<PerThread>());
    threads_.back()->rng = Rng(seed_ * 0x9e37 + static_cast<std::uint64_t>(t));
  }
}

void WorkStealing::finish() {
  for (const auto& t : threads_)
    SBS_CHECK_MSG(t->jobs.empty(), "WS: deque not drained at finish");
}

void WorkStealing::add(Job* job, int thread_id) {
  threads_[static_cast<std::size_t>(thread_id)]->jobs.push_bottom(job);
}

int WorkStealing::steal_choice(int thread_id) {
  if (num_threads_ < 2) return -1;
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  // Uniform among the other workers: draw from [0, P-1) and skip self.
  int choice = static_cast<int>(
      self.rng.next_below(static_cast<std::uint64_t>(num_threads_ - 1)));
  if (choice >= thread_id) ++choice;
  return choice;
}

Job* WorkStealing::get(int thread_id) {
  PerThread& self = *threads_[static_cast<std::size_t>(thread_id)];
  Job* job = nullptr;
  if (self.jobs.pop_bottom(&job)) return job;

  // Local deque empty: steal from the top of a random other victim's deque.
  const int choice = steal_choice(thread_id);
  if (choice < 0) {
    ++self.failed_steals;
    return nullptr;
  }
  SBS_ASSERT(choice != thread_id);
  trace::emit(thread_id, trace::EventKind::kStealAttempt,
              static_cast<std::uint64_t>(choice));
  PerThread& victim = *threads_[static_cast<std::size_t>(choice)];
  if (steal_batch_ > 1) {
    Job* batch[kMaxStealBatch];
    const std::size_t got = victim.jobs.steal_some(
        batch, static_cast<std::size_t>(steal_batch_));
    if (got > 0) {
      ++self.steals;
      trace::emit(thread_id, trace::EventKind::kStealSuccess,
                  static_cast<std::uint64_t>(choice));
      // Keep the oldest job (the one steal_top would have taken); the rest
      // go to the bottom of our own deque, oldest-first.
      for (std::size_t i = 1; i < got; ++i) self.jobs.push_bottom(batch[i]);
      return batch[0];
    }
  } else if (victim.jobs.steal_top(&job)) {
    ++self.steals;
    trace::emit(thread_id, trace::EventKind::kStealSuccess,
                static_cast<std::uint64_t>(choice));
    return job;
  }
  ++self.failed_steals;
  return nullptr;
}

void WorkStealing::done(Job* job, int thread_id, bool task_completed) {
  (void)job;
  (void)thread_id;
  (void)task_completed;
}

std::uint64_t WorkStealing::total_steals() const {
  std::uint64_t n = 0;
  for (const auto& t : threads_) n += t->steals;
  return n;
}

std::uint64_t WorkStealing::total_failed_steals() const {
  std::uint64_t n = 0;
  for (const auto& t : threads_) n += t->failed_steals;
  return n;
}

std::string WorkStealing::stats_string() const {
  std::ostringstream out;
  out << "steals=" << total_steals()
      << " failed_steals=" << total_failed_steals();
  return out.str();
}

}  // namespace sbs::sched
