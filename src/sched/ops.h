// Instrumented primitives for scheduler implementations.
//
// Every lock acquisition and queue operation inside a scheduler bumps a
// thread-local operation counter. The PMH simulator converts the per-callback
// op count into virtual cycles, so a scheduler's overhead in simulated
// experiments is an emergent property of how much synchronization and queue
// work it actually performs — heavier schedulers (space-bounded tree walks)
// automatically cost more than a work-stealing deque, with no per-scheduler
// tuning knobs.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cpu_relax.h"
#include "util/thread_safety.h"

namespace sbs::sched {

/// Scheduler operations performed by the current thread since reset.
extern thread_local std::uint64_t tl_ops;

inline void count_op(std::uint64_t n = 1) { tl_ops += n; }
inline std::uint64_t ops_snapshot() { return tl_ops; }

#if defined(__SANITIZE_THREAD__)
#define SBS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SBS_TSAN 1
#endif
#endif
#ifndef SBS_TSAN
#define SBS_TSAN 0
#endif

/// Full StoreLoad barrier, equivalent to
/// std::atomic_thread_fence(seq_cst) but lowered to a locked RMW on the
/// stack instead of `mfence` on x86-64 (≈20 vs ≈35+ cycles; both compilers
/// still emit mfence for the portable fence). The locked no-op does not
/// order non-temporal stores — none are issued anywhere in src/sched/.
/// Under TSan the portable fence is kept so the race detector can see it.
inline void seq_cst_fence() {
#if defined(__x86_64__) && !SBS_TSAN
  __asm__ __volatile__("lock; orl $0, (%%rsp)" ::: "memory", "cc");
#else
  // Portable StoreLoad barrier (see doc comment; TSan-visible).
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

/// Test-and-test-and-set spinlock (critical sections in schedulers are a
/// few queue operations long; CP.20: always used through RAII guards).
/// Declared as a thread-safety capability: fields it protects carry
/// SBS_GUARDED_BY(lock) and clang's -Wthread-safety proves the discipline.
class SBS_CAPABILITY("spinlock") Spinlock {
 public:
  void lock() SBS_ACQUIRE() {
    count_op();
    // Acquire on the winning exchange pairs with unlock()'s release
    // store; the relaxed inner wait loop needs no ordering — only the
    // exchange that takes the lock opens the critical section.
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) util::cpu_relax();
    }
  }
  bool try_lock() SBS_TRY_ACQUIRE(true) {
    count_op();
    // Same acquire-on-success pairing as lock().
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() SBS_RELEASE() {
    // Release publishes the critical section to the next acquirer.
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard (named per CP.44), visible to the analysis as a scoped
/// capability so guarded accesses inside the scope check out.
class SBS_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) SBS_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinGuard() SBS_RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sbs::sched
