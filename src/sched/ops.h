// Instrumented primitives for scheduler implementations.
//
// Every lock acquisition and queue operation inside a scheduler bumps a
// thread-local operation counter. The PMH simulator converts the per-callback
// op count into virtual cycles, so a scheduler's overhead in simulated
// experiments is an emergent property of how much synchronization and queue
// work it actually performs — heavier schedulers (space-bounded tree walks)
// automatically cost more than a work-stealing deque, with no per-scheduler
// tuning knobs.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sbs::sched {

/// Scheduler operations performed by the current thread since reset.
extern thread_local std::uint64_t tl_ops;

inline void count_op(std::uint64_t n = 1) { tl_ops += n; }
inline std::uint64_t ops_snapshot() { return tl_ops; }

inline void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

/// Test-and-test-and-set spinlock (critical sections in schedulers are a
/// few queue operations long; CP.20: always used through RAII guards).
class Spinlock {
 public:
  void lock() {
    count_op();
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }
  bool try_lock() {
    count_op();
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard (named per CP.44).
class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sbs::sched
