// PWS — priority work stealing (paper §4.2, after Quintin & Wagner).
//
// Identical to WS except for victim selection: victims sharing the caller's
// socket (depth-1 cache cluster) are chosen with `intra_weight` times the
// probability of remote victims (the paper sets 10× on its 4-socket box).
// Like WS, the caller is never its own victim.
#pragma once

#include "sched/ws.h"

namespace sbs::sched {

class PriorityWorkStealing final : public WorkStealing {
 public:
  explicit PriorityWorkStealing(std::uint64_t seed = 1,
                                double intra_weight = 10.0)
      : WorkStealing(seed), intra_weight_(intra_weight) {}

  void start(const machine::Topology& topo, int num_threads) override;
  std::string name() const override { return "PWS"; }

 protected:
  int steal_choice(int thread_id) override;

 private:
  double intra_weight_;
  /// threads grouped by socket: socket_members_[s] = thread ids under s.
  std::vector<std::vector<int>> socket_members_;
  std::vector<int> socket_of_thread_;
};

}  // namespace sbs::sched
