// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; memory ordering
// after Lê et al., PPoPP 2013). Owner pushes/pops at the bottom without
// locks; thieves steal from the top with a single CAS. Backs the hot paths
// of every work-stealing scheduler here (WS, PWS, CilkWS); `top_` and
// `bottom_` live on separate cache lines so thief CAS traffic does not
// invalidate the owner's push/pop line.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "sched/ops.h"
#include "util/assert.h"

namespace sbs::sched {

template <class T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Ring(initial_capacity)) {}

  ~ChaseLevDeque() {
    // Relaxed: destruction requires external quiescence (no owner, no
    // thieves); there is nothing left to synchronize with.
    delete buffer_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only.
  void push_bottom(T item) {
    count_op();
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    // Release store: a thief that acquire-loads bottom_ and sees b+1 also
    // sees the slot write above *and* every preceding write to the item
    // itself (jobs are published fully initialized).
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns false when empty.
  bool pop_bottom(T* out) {
    count_op();
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    seq_cst_fence();
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *out = ring->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      // Relaxed: restoring bottom after winning the last-element race;
      // the seq-cst CAS above already ordered this pop against thieves.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread. Returns false on empty or lost race.
  bool steal_top(T* out) {
    count_op();
    std::int64_t t = top_.load(std::memory_order_acquire);
    seq_cst_fence();
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Ring* ring = buffer_.load(std::memory_order_acquire);
    T item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = item;
    return true;
  }

  /// Any thread. Steal up to `max_n` items from the top with one CAS,
  /// amortizing the thief's fence+CAS cost across the batch. Returns the
  /// number of items written to `out` (0 on empty or lost race).
  ///
  /// Soundness: the items are copied out *before* the CAS claims
  /// [t, t+n) — a concurrent owner push can only overwrite ring slots once
  /// they are outside [top, bottom), which claimed-but-unread slots would
  /// be. A concurrent owner pop_bottom may free-take a slot inside our
  /// claim when its seq-cst fence ordered before our CAS (it read the
  /// stale top). Every such pop decrements bottom_ before its fence, so
  /// after our own post-CAS fence a re-read of bottom_ observes all of
  /// them; we deliver only the min(n, bottom-t) lowest claimed slots and
  /// discard the rest as owner-consumed. Pops whose fence ordered after
  /// our CAS see top == t+n and never touch slots below it. Hence every
  /// slot is consumed by exactly one party.
  std::size_t steal_some(T* out, std::size_t max_n) {
    count_op();
    std::int64_t t = top_.load(std::memory_order_acquire);
    seq_cst_fence();
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return 0;
    const std::int64_t n =
        std::min<std::int64_t>(static_cast<std::int64_t>(max_n), b - t);
    // Acquire pairs with grow()'s release store: the ring we read from
    // is at least as new as the bottom_ we observed. Seq-cst CAS totals
    // the claim against owner pops' fences (protocol in the doc block).
    Ring* ring = buffer_.load(std::memory_order_acquire);
    for (std::int64_t i = 0; i < n; ++i) out[i] = ring->get(t + i);
    if (!top_.compare_exchange_strong(t, t + n, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return 0;
    }
    seq_cst_fence();
    // Relaxed re-read: the fence above orders it after our CAS, so every
    // owner pop whose fence preceded the CAS is reflected in b2.
    const std::int64_t b2 = bottom_.load(std::memory_order_relaxed);
    const std::int64_t kept = std::min(n, b2 - t);
    return kept > 0 ? static_cast<std::size_t>(kept) : 0;
  }

  bool empty() const {
    // Acquire on both indices: an advisory snapshot (callers tolerate
    // staleness) but never reads indices out of thin air.
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), slots(cap) {}
    std::size_t capacity;
    std::vector<std::atomic<T>> slots;

    T get(std::int64_t i) const {
      // Relaxed slot access: slots carry no ordering of their own — the
      // top_/bottom_ protocol (release publish, seq-cst claim) decides
      // which slots are owned; atomicity only prevents torn reads.
      return slots[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      // Relaxed: see get() — ordering comes from the index protocol.
      slots[static_cast<std::size_t>(i) & (capacity - 1)].store(
          v, std::memory_order_relaxed);
    }
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Release publishes the copied slots with the new ring pointer;
    // pairs with the acquire loads of buffer_ on the thief paths.
    buffer_.store(bigger, std::memory_order_release);
    // Old ring may still be read by in-flight thieves; retire, free at dtor.
    retired_.push_back(old);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> buffer_;
  std::vector<Ring*> retired_;  // owner-only mutation (inside push_bottom)
};

}  // namespace sbs::sched
