#include "sched/registry.h"

#include "sched/cilk_ws.h"
#include "sched/pws.h"
#include "sched/ws.h"
#include "util/assert.h"

namespace sbs::sched {

std::unique_ptr<runtime::Scheduler> MakeScheduler(const SchedulerSpec& spec) {
  if (spec.name == "WS") return std::make_unique<WorkStealing>(spec.seed);
  if (spec.name == "PWS")
    return std::make_unique<PriorityWorkStealing>(spec.seed);
  if (spec.name == "CilkWS")
    return std::make_unique<CilkWorkStealing>(spec.seed);
  if (spec.name == "SB") {
    SpaceBounded::Options opts = spec.sb;
    opts.distributed_top = false;
    return std::make_unique<SpaceBounded>(opts, spec.seed);
  }
  if (spec.name == "SB-D") {
    SpaceBounded::Options opts = spec.sb;
    opts.distributed_top = true;
    return std::make_unique<SpaceBounded>(opts, spec.seed);
  }
  SBS_CHECK_MSG(false, ("unknown scheduler: " + spec.name).c_str());
  return nullptr;
}

std::unique_ptr<runtime::Scheduler> MakeScheduler(const std::string& name,
                                                  std::uint64_t seed,
                                                  double sigma, double mu) {
  SchedulerSpec spec;
  spec.name = name;
  spec.seed = seed;
  spec.sb.sigma = sigma;
  spec.sb.mu = mu;
  return MakeScheduler(spec);
}

std::vector<std::string> SchedulerNames() {
  return {"CilkWS", "WS", "PWS", "SB", "SB-D"};
}

}  // namespace sbs::sched
