// RRM — recursive repeated map (paper §5.1).
//
// Two n-length double arrays A and B. Each task maps B[i] = A[i] + 1 over
// its range `repeats` times, then splits the range by the cut ratio f and
// recurses on both parts down to the base-case size. Memory-intensive:
// almost no compute per byte, but every subrange that fits in a cache is
// fully reused once resident.
#pragma once

#include <cstddef>

#include "kernels/kernel.h"
#include "runtime/mem.h"

namespace sbs::kernels {

class Rrm final : public Kernel {
 public:
  explicit Rrm(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "RRM"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 2 * params_.n * sizeof(double);
  }

 private:
  runtime::Job* make_task(std::size_t lo, std::size_t hi);
  /// Fork map pass `pass` of [lo,hi) (continuation-chained), then recurse.
  void run_pass(runtime::Strand& strand, std::size_t lo, std::size_t hi,
                int pass, std::uint64_t bytes);

  KernelParams params_;
  mem::Array<double> a_;
  mem::Array<double> b_;
};

}  // namespace sbs::kernels
