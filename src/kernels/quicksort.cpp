#include "kernels/quicksort.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "util/assert.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::ParallelFor;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

void SerialSortWithTouches(double* data, std::size_t lo, std::size_t hi) {
  const std::size_t m = hi - lo;
  if (m <= 1) return;
  std::sort(data + lo, data + hi);
  // Cache traffic of a serial quicksort: every recursion level sweeps the
  // whole range once (read + write) until subranges reach insertion grain.
  const double levels =
      std::max(1.0, std::log2(static_cast<double>(m) / 32.0));
  for (int pass = 0; pass < static_cast<int>(levels); ++pass) {
    mem::touch_read(data + lo, m * sizeof(double));
    mem::touch_write(data + lo, m * sizeof(double));
  }
  charge_work(kCompareCyclesPerElem,
              static_cast<std::uint64_t>(static_cast<double>(m) *
                                         std::log2(static_cast<double>(m))));
}

namespace {

double median3_with_touches(const double* data, std::size_t lo,
                            std::size_t hi) {
  const std::size_t mid = lo + (hi - lo) / 2;
  mem::touch_read(&data[lo], sizeof(double));
  mem::touch_read(&data[mid], sizeof(double));
  mem::touch_read(&data[hi - 1], sizeof(double));
  const double a = data[lo], b = data[mid], c = data[hi - 1];
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

/// Guard against pathological pivots: the partition produced an empty left
/// side, i.e. the pivot is the range minimum (duplicates). Move the entire
/// pivot-equal run to the front — that prefix is sorted — and return its
/// length so the caller recurses only on the strictly-greater remainder.
/// Keeps duplicate-heavy inputs at O(log n) recursion depth.
std::size_t fix_empty_left(double* data, std::size_t lo, std::size_t hi,
                           double pivot) {
  double* split = std::partition(data + lo, data + hi,
                                 [pivot](double x) { return x == pivot; });
  mem::touch_read(data + lo, (hi - lo) * sizeof(double));
  mem::touch_write(data + lo, (hi - lo) * sizeof(double));
  charge_work(kPartitionCyclesPerElem, hi - lo);
  return static_cast<std::size_t>(split - (data + lo));
}

/// Shared state of one parallel partition (count → prefix → scatter → copy).
struct ParPartition {
  double* data;
  double* aux;
  std::size_t lo, hi;
  double pivot;
  std::size_t block;
  std::size_t nblocks;
  // Scratch lives on the deterministic arena (it is touched, so its
  // simulated placement must be reproducible).
  mem::Array<std::size_t> less;      // per-block < pivot counts
  mem::Array<std::size_t> less_off;  // scatter offsets (into aux)
  mem::Array<std::size_t> geq_off;
  std::size_t n_less = 0;
  QuicksortLimits limits;

  std::size_t block_lo(std::size_t b) const { return lo + b * block; }
  std::size_t block_hi(std::size_t b) const {
    return std::min(hi, lo + (b + 1) * block);
  }
};

Job* sort_task(double* data, double* aux, std::size_t lo, std::size_t hi,
               const QuicksortLimits& limits);

/// Phase bodies of the parallel partition, chained by continuations.
void fork_recursion(Strand& strand, const std::shared_ptr<ParPartition>& ctx) {
  std::size_t n_less = ctx->n_less;
  if (n_less == 0) {
    // All elements ≥ pivot: the pivot-equal prefix is already in order.
    n_less = fix_empty_left(ctx->data, ctx->lo, ctx->hi, ctx->pivot);
    if (n_less == ctx->hi - ctx->lo) return;  // all equal: sorted
    strand.fork({sort_task(ctx->data, ctx->aux, ctx->lo + n_less, ctx->hi,
                           ctx->limits)},
                make_nop());
    return;
  }
  strand.fork2(
      sort_task(ctx->data, ctx->aux, ctx->lo, ctx->lo + n_less, ctx->limits),
      sort_task(ctx->data, ctx->aux, ctx->lo + n_less, ctx->hi, ctx->limits),
      make_nop());
}

Job* make_parallel_partition(double* data, double* aux, std::size_t lo,
                             std::size_t hi, double pivot,
                             const QuicksortLimits& limits) {
  auto ctx = std::make_shared<ParPartition>();
  ctx->data = data;
  ctx->aux = aux;
  ctx->lo = lo;
  ctx->hi = hi;
  ctx->pivot = pivot;
  ctx->block = limits.partition_block;
  ctx->nblocks = (hi - lo + ctx->block - 1) / ctx->block;
  ctx->less.reset(ctx->nblocks);
  std::fill(ctx->less.data(), ctx->less.data() + ctx->nblocks, 0);
  ctx->limits = limits;
  const std::uint64_t ctx_bytes = ctx->nblocks * 3 * sizeof(std::size_t);

  // Phase A: per-block counts of elements < pivot.
  Job* count = ParallelFor::make_flat(
      0, ctx->nblocks, 1, ctx->block * sizeof(double),
      [ctx](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t blo = ctx->block_lo(b), bhi = ctx->block_hi(b);
          std::size_t n = 0;
          for (std::size_t i = blo; i < bhi; ++i) {
            n += ctx->data[i] < ctx->pivot ? 1 : 0;
          }
          ctx->less[b] = n;
          mem::touch_read(ctx->data + blo, (bhi - blo) * sizeof(double));
          charge_work(kPartitionCyclesPerElem, bhi - blo);
        }
      });

  // Phase B (continuation): prefix sums → scatter offsets.
  Job* prefix = make_job(
      [ctx](Strand& strand) {
        mem::touch_read(ctx->less.data(),
                        ctx->nblocks * sizeof(std::size_t));
        ctx->less_off.reset(ctx->nblocks);
        ctx->geq_off.reset(ctx->nblocks);
        std::size_t total_less = 0, total = 0;
        for (std::size_t b = 0; b < ctx->nblocks; ++b) total_less += ctx->less[b];
        ctx->n_less = total_less;
        std::size_t run_less = 0, run_geq = 0;
        for (std::size_t b = 0; b < ctx->nblocks; ++b) {
          ctx->less_off[b] = ctx->lo + run_less;
          ctx->geq_off[b] = ctx->lo + total_less + run_geq;
          const std::size_t len = ctx->block_hi(b) - ctx->block_lo(b);
          run_less += ctx->less[b];
          run_geq += len - ctx->less[b];
          total += len;
        }
        SBS_ASSERT(run_less + run_geq == total);
        mem::touch_write(ctx->less_off.data(),
                         ctx->nblocks * sizeof(std::size_t));
        charge_work(2.0, ctx->nblocks);

        // Phase C: scatter each block into aux.
        Job* scatter = ParallelFor::make_flat(
            0, ctx->nblocks, 1, 2 * ctx->block * sizeof(double),
            [ctx](std::size_t b0, std::size_t b1) {
              for (std::size_t b = b0; b < b1; ++b) {
                const std::size_t blo = ctx->block_lo(b);
                const std::size_t bhi = ctx->block_hi(b);
                std::size_t l = ctx->less_off[b], g = ctx->geq_off[b];
                for (std::size_t i = blo; i < bhi; ++i) {
                  if (ctx->data[i] < ctx->pivot) {
                    ctx->aux[l++] = ctx->data[i];
                  } else {
                    ctx->aux[g++] = ctx->data[i];
                  }
                }
                mem::touch_read(ctx->data + blo,
                                (bhi - blo) * sizeof(double));
                mem::touch_write(ctx->aux + ctx->less_off[b],
                                 ctx->less[b] * sizeof(double));
                mem::touch_write(ctx->aux + ctx->geq_off[b],
                                 (bhi - blo - ctx->less[b]) * sizeof(double));
                charge_work(kPartitionCyclesPerElem, bhi - blo);
              }
            });

        // Phase D: copy aux back, then recurse on both sides.
        Job* copy_back_then_recurse = make_job(
            [ctx](Strand& inner) {
              Job* copy = ParallelFor::make_flat(
                  ctx->lo, ctx->hi, ctx->limits.partition_block,
                  2 * sizeof(double),
                  [ctx](std::size_t i0, std::size_t i1) {
                    std::copy(ctx->aux + i0, ctx->aux + i1, ctx->data + i0);
                    mem::touch_read(ctx->aux + i0, (i1 - i0) * sizeof(double));
                    mem::touch_write(ctx->data + i0,
                                     (i1 - i0) * sizeof(double));
                    charge_work(1.0, i1 - i0);
                  });
              Job* recurse = make_job(
                  [ctx](Strand& rec) { fork_recursion(rec, ctx); }, kNoSize,
                  64);
              inner.fork({copy}, recurse);
            },
            kNoSize, /*strand_bytes=*/64);
        strand.fork({scatter}, copy_back_then_recurse);
      },
      kNoSize, /*strand_bytes=*/ctx_bytes);

  // The partition task itself: fork the count phase, continue with prefix.
  const std::uint64_t bytes = 2 * (hi - lo) * sizeof(double);
  return make_job(
      [count, prefix](Strand& strand) { strand.fork({count}, prefix); },
      bytes, /*strand_bytes=*/64);
}

Job* sort_task(double* data, double* aux, std::size_t lo, std::size_t hi,
               const QuicksortLimits& limits) {
  const std::uint64_t bytes = 2 * (hi - lo) * sizeof(double);
  return make_job(
      [data, aux, lo, hi, limits](Strand& strand) {
        const std::size_t m = hi - lo;
        if (m <= limits.serial_cutoff) {
          SerialSortWithTouches(data, lo, hi);
          return;
        }
        const double pivot = median3_with_touches(data, lo, hi);
        if (m <= limits.parallel_partition_cutoff) {
          // Serial partition, parallel recursion.
          double* first = data + lo;
          double* split = std::partition(
              first, data + hi, [pivot](double x) { return x < pivot; });
          mem::touch_read(data + lo, m * sizeof(double));
          mem::touch_write(data + lo, m * sizeof(double));
          charge_work(kPartitionCyclesPerElem, m);
          std::size_t n_less = static_cast<std::size_t>(split - first);
          if (n_less == 0) {
            n_less = fix_empty_left(data, lo, hi, pivot);
            if (n_less == m) return;  // all equal: sorted
            strand.fork({sort_task(data, aux, lo + n_less, hi, limits)},
                        make_nop());
            return;
          }
          strand.fork2(sort_task(data, aux, lo, lo + n_less, limits),
                       sort_task(data, aux, lo + n_less, hi, limits),
                       make_nop());
          return;
        }
        strand.fork({make_parallel_partition(data, aux, lo, hi, pivot,
                                             limits)},
                    make_nop());
      },
      bytes, /*strand_bytes=*/64);
}

}  // namespace

Job* MakeQuicksortTask(double* data, double* aux, std::size_t lo,
                       std::size_t hi, const QuicksortLimits& limits) {
  return sort_task(data, aux, lo, hi, limits);
}

void Quicksort::prepare(std::uint64_t seed) {
  Rng rng(seed);
  data_.reset(params_.n);
  aux_.reset(params_.n);
  input_.resize(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    input_[i] = rng.next_double();
    data_[i] = input_[i];
  }
}

Job* Quicksort::make_root() {
  std::copy(input_.begin(), input_.end(), data_.data());
  QuicksortLimits limits;
  limits.serial_cutoff = params_.scaled(16 * 1024);
  limits.parallel_partition_cutoff = params_.scaled(128 * 1024);
  limits.partition_block = params_.scaled(16 * 1024);
  return MakeQuicksortTask(data_.data(), aux_.data(), 0, params_.n, limits);
}

bool Quicksort::verify() const {
  if (!std::is_sorted(data_.data(), data_.data() + params_.n)) return false;
  std::vector<double> expect = input_;
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (data_[i] != expect[i]) return false;
  }
  return true;
}

}  // namespace sbs::kernels
