#include "kernels/samplesort.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "kernels/quicksort.h"
#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "util/assert.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::ParallelFor;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

namespace {

constexpr std::size_t kOversample = 8;

/// Binary search with instrumented probes (each probe touches one element).
std::size_t search_with_touches(const double* data, std::size_t lo,
                                std::size_t hi, double key) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    mem::touch_read(&data[mid], sizeof(double));
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  charge_work(kCompareCyclesPerElem, 1);
  return lo;
}

/// State of one samplesort node: √n-way split, counts matrix, offsets.
struct SsCtx {
  double* src;      ///< sorted in place
  double* scratch;  ///< same extent, disjoint storage
  std::size_t lo, hi;
  std::size_t m;       ///< number of subarrays / buckets (≈ √len)
  std::size_t sublen;  ///< elements per subarray (last may be short)
  std::size_t serial_cutoff;
  std::vector<double> pivots;           // m-1 (host-only metadata)
  mem::Array<std::uint32_t> counts;     // m*m: counts[i*m+j] (touched)
  mem::Array<std::uint32_t> seg;        // m*m scatter offsets (touched)
  std::vector<std::size_t> bucket_off;  // m+1 (relative to lo)

  std::size_t sub_lo(std::size_t i) const { return lo + i * sublen; }
  std::size_t sub_hi(std::size_t i) const {
    return std::min(hi, lo + (i + 1) * sublen);
  }
};

Job* sample_sort_task(double* src, double* scratch, std::size_t lo,
                      std::size_t hi, std::size_t serial_cutoff);

/// After subarrays are sorted: sample → pivots → counts → transpose →
/// bucket sorts. Chained through continuations.
void pick_pivots_and_continue(Strand& strand,
                              const std::shared_ptr<SsCtx>& ctx) {
  // Oversample: kOversample evenly spaced elements per sorted subarray.
  std::vector<double> sample;
  sample.reserve(ctx->m * kOversample);
  for (std::size_t i = 0; i < ctx->m; ++i) {
    const std::size_t slo = ctx->sub_lo(i), shi = ctx->sub_hi(i);
    const std::size_t len = shi - slo;
    for (std::size_t k = 0; k < kOversample && k < len; ++k) {
      const std::size_t pos = slo + k * len / kOversample;
      mem::touch_read(&ctx->src[pos], sizeof(double));
      sample.push_back(ctx->src[pos]);
    }
  }
  std::sort(sample.begin(), sample.end());
  charge_work(kCompareCyclesPerElem,
              static_cast<std::uint64_t>(
                  static_cast<double>(sample.size()) *
                  std::max(1.0, std::log2(static_cast<double>(sample.size())))));
  ctx->pivots.clear();
  for (std::size_t j = 1; j < ctx->m; ++j) {
    ctx->pivots.push_back(sample[j * sample.size() / ctx->m]);
  }
  ctx->counts.reset(ctx->m * ctx->m);
  std::fill(ctx->counts.data(), ctx->counts.data() + ctx->m * ctx->m, 0u);

  // Count phase: for each sorted subarray, locate the pivot boundaries.
  Job* count = ParallelFor::make_flat(
      0, ctx->m, 1, ctx->sublen * sizeof(double),
      [ctx](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const std::size_t slo = ctx->sub_lo(i), shi = ctx->sub_hi(i);
          std::size_t prev = slo;
          for (std::size_t j = 0; j + 1 < ctx->m; ++j) {
            const std::size_t cut =
                search_with_touches(ctx->src, prev, shi, ctx->pivots[j]);
            ctx->counts[i * ctx->m + j] =
                static_cast<std::uint32_t>(cut - prev);
            prev = cut;
          }
          ctx->counts[i * ctx->m + (ctx->m - 1)] =
              static_cast<std::uint32_t>(shi - prev);
        }
      });

  // Prefix + transpose + bucket sort chain as the fork's continuation.
  Job* prefix = make_job(
      [ctx](Strand& s2) {
        // Bucket offsets (column sums), then turn counts into per-(i,j)
        // scatter offsets in place.
        mem::touch_read(ctx->counts.data(),
                        ctx->counts.size() * sizeof(std::uint32_t));
        ctx->bucket_off.assign(ctx->m + 1, 0);
        for (std::size_t j = 0; j < ctx->m; ++j) {
          std::size_t total = 0;
          for (std::size_t i = 0; i < ctx->m; ++i)
            total += ctx->counts[i * ctx->m + j];
          ctx->bucket_off[j + 1] = ctx->bucket_off[j] + total;
        }
        SBS_CHECK(ctx->bucket_off[ctx->m] == ctx->hi - ctx->lo);
        std::vector<std::size_t> next(ctx->m);
        for (std::size_t j = 0; j < ctx->m; ++j) next[j] = ctx->bucket_off[j];
        // seg[i][j] := relative scatter offset for segment (i,j).
        ctx->seg.reset(ctx->m * ctx->m);
        for (std::size_t i = 0; i < ctx->m; ++i) {
          for (std::size_t j = 0; j < ctx->m; ++j) {
            ctx->seg[i * ctx->m + j] = static_cast<std::uint32_t>(next[j]);
            next[j] += ctx->counts[i * ctx->m + j];
          }
        }
        mem::touch_write(ctx->seg.data(),
                         ctx->seg.size() * sizeof(std::uint32_t));
        charge_work(2.0, ctx->m * ctx->m);

        // Block transpose: scatter each subarray's segments to the buckets.
        Job* transpose = ParallelFor::make_flat(
            0, ctx->m, 1, 2 * ctx->sublen * sizeof(double),
            [ctx](std::size_t i0, std::size_t i1) {
              for (std::size_t i = i0; i < i1; ++i) {
                std::size_t pos = ctx->sub_lo(i);
                for (std::size_t j = 0; j < ctx->m; ++j) {
                  const std::size_t len = ctx->counts[i * ctx->m + j];
                  if (len == 0) continue;
                  const std::size_t dst =
                      ctx->lo + ctx->seg[i * ctx->m + j];
                  std::copy(ctx->src + pos, ctx->src + pos + len,
                            ctx->scratch + dst);
                  mem::touch_read(ctx->src + pos, len * sizeof(double));
                  mem::touch_write(ctx->scratch + dst, len * sizeof(double));
                  charge_work(1.0, len);
                  pos += len;
                }
              }
            });

        Job* bucket_stage = make_job(
            [ctx](Strand& s3) {
              // Recursively sort each bucket in scratch (roles swapped),
              // then copy the result back into src.
              std::vector<Job*> buckets;
              for (std::size_t j = 0; j < ctx->m; ++j) {
                const std::size_t blo = ctx->lo + ctx->bucket_off[j];
                const std::size_t bhi = ctx->lo + ctx->bucket_off[j + 1];
                if (bhi > blo) {
                  buckets.push_back(sample_sort_task(
                      ctx->scratch, ctx->src, blo, bhi, ctx->serial_cutoff));
                }
              }
              Job* copy_back = make_job(
                  [ctx](Strand& s4) {
                    s4.fork({ParallelFor::make_flat(
                                ctx->lo, ctx->hi, ctx->serial_cutoff,
                                2 * sizeof(double),
                                [ctx](std::size_t i0, std::size_t i1) {
                                  std::copy(ctx->scratch + i0,
                                            ctx->scratch + i1, ctx->src + i0);
                                  mem::touch_read(ctx->scratch + i0,
                                                  (i1 - i0) * sizeof(double));
                                  mem::touch_write(ctx->src + i0,
                                                   (i1 - i0) * sizeof(double));
                                  charge_work(1.0, i1 - i0);
                                })},
                            make_nop());
                  },
                  kNoSize, 64);
              if (buckets.empty()) {
                s3.fork({make_nop()}, copy_back);
              } else {
                s3.fork(std::move(buckets), copy_back);
              }
            },
            kNoSize, 64);
        s2.fork({transpose}, bucket_stage);
      },
      kNoSize,
      /*strand_bytes=*/ctx->m * ctx->m * sizeof(std::uint32_t));

  strand.fork({count}, prefix);
}

Job* sample_sort_task(double* src, double* scratch, std::size_t lo,
                      std::size_t hi, std::size_t serial_cutoff) {
  const std::uint64_t bytes = 2 * (hi - lo) * sizeof(double);
  return make_job(
      [src, scratch, lo, hi, serial_cutoff](Strand& strand) {
        const std::size_t len = hi - lo;
        if (len <= serial_cutoff) {
          SerialSortWithTouches(src, lo, hi);
          return;
        }
        auto ctx = std::make_shared<SsCtx>();
        ctx->src = src;
        ctx->scratch = scratch;
        ctx->lo = lo;
        ctx->hi = hi;
        ctx->serial_cutoff = serial_cutoff;
        ctx->m = static_cast<std::size_t>(
            std::sqrt(static_cast<double>(len)));
        ctx->sublen = (len + ctx->m - 1) / ctx->m;
        // Recursively sort the √n subarrays, then continue with pivots.
        std::vector<Job*> subs;
        for (std::size_t i = 0; i < ctx->m; ++i) {
          if (ctx->sub_hi(i) > ctx->sub_lo(i)) {
            subs.push_back(sample_sort_task(src, scratch, ctx->sub_lo(i),
                                            ctx->sub_hi(i), serial_cutoff));
          }
        }
        Job* cont = make_job(
            [ctx](Strand& s) { pick_pivots_and_continue(s, ctx); }, kNoSize,
            /*strand_bytes=*/ctx->m * kOversample * sizeof(double));
        strand.fork(std::move(subs), cont);
      },
      bytes, /*strand_bytes=*/64);
}

}  // namespace

// ---------------------------------------------------------------------------
// SampleSort kernel
// ---------------------------------------------------------------------------

void SampleSort::prepare(std::uint64_t seed) {
  Rng rng(seed);
  data_.reset(params_.n);
  aux_.reset(params_.n);
  input_.resize(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    input_[i] = rng.next_double();
    data_[i] = input_[i];
  }
}

Job* SampleSort::make_root() {
  std::copy(input_.begin(), input_.end(), data_.data());
  return sample_sort_task(data_.data(), aux_.data(), 0, params_.n,
                          params_.scaled(16 * 1024));
}

bool SampleSort::verify() const {
  if (!std::is_sorted(data_.data(), data_.data() + params_.n)) return false;
  std::vector<double> expect = input_;
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (data_[i] != expect[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// AwareSampleSort kernel
// ---------------------------------------------------------------------------

namespace {

/// One round of k-way bucketing sized for the target cache, then quicksort
/// per bucket (paper: "moves elements into buckets that fit into the L3
/// cache and then runs quicksort on the buckets").
struct AwCtx {
  double* data;
  double* aux;
  std::size_t n;
  std::size_t k;                      // bucket count
  std::size_t block;                  // histogram block size
  std::size_t nblocks;
  std::vector<double> splitters;        // k-1 (host-only metadata)
  mem::Array<std::uint32_t> counts;     // nblocks * k (touched)
  mem::Array<std::size_t> seg;          // nblocks * k offsets (touched)
  std::vector<std::size_t> bucket_off;  // k+1
  QuicksortLimits qs_limits;
};

}  // namespace

std::uint64_t AwareSampleSort::bucket_bytes() const {
  // Default: half of the Xeon preset's 24 MB L3, as the paper's aware sort
  // targets L3 residence for each bucket (scaled with the machine).
  if (params_.target_bucket_bytes != 0) return params_.target_bucket_bytes;
  return (12ull << 20) / static_cast<std::uint64_t>(params_.machine_scale);
}

void AwareSampleSort::prepare(std::uint64_t seed) {
  Rng rng(seed);
  data_.reset(params_.n);
  aux_.reset(params_.n);
  input_.resize(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    input_[i] = rng.next_double();
    data_[i] = input_[i];
  }
}

Job* AwareSampleSort::make_root() {
  std::copy(input_.begin(), input_.end(), data_.data());

  auto ctx = std::make_shared<AwCtx>();
  ctx->data = data_.data();
  ctx->aux = aux_.data();
  ctx->n = params_.n;
  ctx->k = std::max<std::size_t>(
      2, (params_.n * sizeof(double) + bucket_bytes() - 1) / bucket_bytes());
  ctx->block = params_.scaled(64 * 1024);
  ctx->nblocks = (ctx->n + ctx->block - 1) / ctx->block;
  ctx->qs_limits.serial_cutoff = params_.scaled(16 * 1024);
  ctx->qs_limits.parallel_partition_cutoff = params_.scaled(128 * 1024);
  ctx->qs_limits.partition_block = params_.scaled(16 * 1024);

  const std::uint64_t bytes = 2 * params_.n * sizeof(double);
  return make_job(
      [ctx](Strand& strand) {
        // Splitters from a sorted sample of the input.
        Rng rng(42);
        const std::size_t sample_size = ctx->k * 64;
        std::vector<double> sample(sample_size);
        for (auto& s : sample) {
          const std::size_t pos = rng.next_below(ctx->n);
          mem::touch_read(&ctx->data[pos], sizeof(double));
          s = ctx->data[pos];
        }
        std::sort(sample.begin(), sample.end());
        charge_work(kCompareCyclesPerElem, sample_size * 6);
        ctx->splitters.clear();
        for (std::size_t j = 1; j < ctx->k; ++j)
          ctx->splitters.push_back(sample[j * sample.size() / ctx->k]);
        ctx->counts.reset(ctx->nblocks * ctx->k);
        std::fill(ctx->counts.data(),
                  ctx->counts.data() + ctx->nblocks * ctx->k, 0u);

        // Histogram phase.
        Job* histogram = ParallelFor::make_flat(
            0, ctx->nblocks, 1, ctx->block * sizeof(double),
            [ctx](std::size_t b0, std::size_t b1) {
              for (std::size_t b = b0; b < b1; ++b) {
                const std::size_t blo = b * ctx->block;
                const std::size_t bhi =
                    std::min(ctx->n, (b + 1) * ctx->block);
                std::uint32_t* row = ctx->counts.data() + b * ctx->k;
                for (std::size_t i = blo; i < bhi; ++i) {
                  const std::size_t j = static_cast<std::size_t>(
                      std::upper_bound(ctx->splitters.begin(),
                                       ctx->splitters.end(), ctx->data[i]) -
                      ctx->splitters.begin());
                  ++row[j];
                }
                mem::touch_read(ctx->data + blo,
                                (bhi - blo) * sizeof(double));
                charge_work(kCompareCyclesPerElem *
                                std::max(1.0, std::log2(static_cast<double>(
                                                  ctx->k))),
                            bhi - blo);
              }
            });

        Job* prefix = make_job(
            [ctx](Strand& s2) {
              // Column prefix: per-(block, bucket) scatter offsets.
              mem::touch_read(ctx->counts.data(),
                              ctx->counts.size() * sizeof(std::uint32_t));
              ctx->bucket_off.assign(ctx->k + 1, 0);
              for (std::size_t j = 0; j < ctx->k; ++j) {
                std::size_t total = 0;
                for (std::size_t b = 0; b < ctx->nblocks; ++b)
                  total += ctx->counts[b * ctx->k + j];
                ctx->bucket_off[j + 1] = ctx->bucket_off[j] + total;
              }
              SBS_CHECK(ctx->bucket_off[ctx->k] == ctx->n);
              std::vector<std::size_t> next(ctx->k);
              for (std::size_t j = 0; j < ctx->k; ++j)
                next[j] = ctx->bucket_off[j];
              ctx->seg.reset(ctx->nblocks * ctx->k);
              for (std::size_t b = 0; b < ctx->nblocks; ++b) {
                for (std::size_t j = 0; j < ctx->k; ++j) {
                  ctx->seg[b * ctx->k + j] = next[j];
                  next[j] += ctx->counts[b * ctx->k + j];
                }
              }
              mem::touch_write(ctx->seg.data(),
                               ctx->seg.size() * sizeof(std::size_t));
              charge_work(2.0, ctx->nblocks * ctx->k);

              Job* scatter = ParallelFor::make_flat(
                  0, ctx->nblocks, 1, 2 * ctx->block * sizeof(double),
                  [ctx](std::size_t b0, std::size_t b1) {
                    for (std::size_t b = b0; b < b1; ++b) {
                      const std::size_t blo = b * ctx->block;
                      const std::size_t bhi =
                          std::min(ctx->n, (b + 1) * ctx->block);
                      std::vector<std::size_t> cursor(
                          ctx->seg.data() + b * ctx->k,
                          ctx->seg.data() + (b + 1) * ctx->k);
                      for (std::size_t i = blo; i < bhi; ++i) {
                        const std::size_t j = static_cast<std::size_t>(
                            std::upper_bound(ctx->splitters.begin(),
                                             ctx->splitters.end(),
                                             ctx->data[i]) -
                            ctx->splitters.begin());
                        // Instrument the scattered write (data-dependent).
                        mem::touch_write(&ctx->aux[cursor[j]],
                                         sizeof(double));
                        ctx->aux[cursor[j]++] = ctx->data[i];
                      }
                      mem::touch_read(ctx->data + blo,
                                      (bhi - blo) * sizeof(double));
                      charge_work(kPartitionCyclesPerElem, bhi - blo);
                    }
                  });

              Job* bucket_sorts = make_job(
                  [ctx](Strand& s3) {
                    std::vector<Job*> sorts;
                    for (std::size_t j = 0; j < ctx->k; ++j) {
                      const std::size_t blo = ctx->bucket_off[j];
                      const std::size_t bhi = ctx->bucket_off[j + 1];
                      if (bhi > blo) {
                        // Quicksort the bucket in aux, using data as scratch.
                        sorts.push_back(MakeQuicksortTask(
                            ctx->aux, ctx->data, blo, bhi, ctx->qs_limits));
                      }
                    }
                    Job* copy_back = make_job(
                        [ctx](Strand& s4) {
                          s4.fork({ParallelFor::make_flat(
                                      0, ctx->n, 64 * 1024, 2 * sizeof(double),
                                      [ctx](std::size_t i0, std::size_t i1) {
                                        std::copy(ctx->aux + i0,
                                                  ctx->aux + i1,
                                                  ctx->data + i0);
                                        mem::touch_read(
                                            ctx->aux + i0,
                                            (i1 - i0) * sizeof(double));
                                        mem::touch_write(
                                            ctx->data + i0,
                                            (i1 - i0) * sizeof(double));
                                        charge_work(1.0, i1 - i0);
                                      })},
                                  make_nop());
                        },
                        kNoSize, 64);
                    if (sorts.empty()) {
                      s3.fork({make_nop()}, copy_back);
                    } else {
                      s3.fork(std::move(sorts), copy_back);
                    }
                  },
                  kNoSize, 64);
              s2.fork({scatter}, bucket_sorts);
            },
            kNoSize,
            /*strand_bytes=*/ctx->nblocks * ctx->k * sizeof(std::uint32_t));
        strand.fork({histogram}, prefix);
      },
      bytes, /*strand_bytes=*/64);
}

bool AwareSampleSort::verify() const {
  if (!std::is_sorted(data_.data(), data_.data() + params_.n)) return false;
  std::vector<double> expect = input_;
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (data_[i] != expect[i]) return false;
  }
  return true;
}

}  // namespace sbs::kernels
