// RRG — recursive repeated gather (paper §5.1).
//
// Three n-length arrays A, B, I (I holds random integers). Each task sets
// B[i] = A[lo + (I[i] mod (hi-lo))] over its range [lo,hi) `repeats` times,
// then splits by the cut ratio and recurses. Like RRM but with random
// instead of linear reads of A — even more bandwidth-hungry, and the
// per-element gathers are genuinely data-dependent, so they go through the
// instrumented single-element accessor rather than range touches.
#pragma once

#include <cstdint>

#include "kernels/kernel.h"
#include "runtime/mem.h"

namespace sbs::kernels {

class Rrg final : public Kernel {
 public:
  explicit Rrg(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "RRG"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return params_.n * (2 * sizeof(double) + sizeof(std::uint32_t));
  }

 private:
  runtime::Job* make_task(std::size_t lo, std::size_t hi);
  /// Fork gather pass `pass` of [lo,hi) (continuation-chained), then recurse.
  void run_pass(runtime::Strand& strand, std::size_t lo, std::size_t hi,
                int pass);
  /// The base-level decomposition of [lo,hi), used by verify() to recompute
  /// the final (deepest-level) gather values sequentially.
  void base_ranges(std::size_t lo, std::size_t hi,
                   std::vector<std::pair<std::size_t, std::size_t>>* out) const;

  KernelParams params_;
  mem::Array<double> a_;
  mem::Array<double> b_;
  mem::Array<std::uint32_t> idx_;
};

}  // namespace sbs::kernels
