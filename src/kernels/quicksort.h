// Parallel quicksort (paper §5.1): parallelizes both the partition and the
// recursive calls; median-of-3 pivots. Below 128K elements it parallelizes
// only the recursion (serial partition); below 16K it runs serially —
// the paper's thresholds.
//
// The task builder is exposed so the aware samplesort can fork quicksorts
// on its buckets, exactly as the paper describes.
#pragma once

#include <cstddef>

#include "kernels/kernel.h"
#include "runtime/job.h"
#include "runtime/mem.h"

namespace sbs::kernels {

struct QuicksortLimits {
  std::size_t serial_cutoff = 16 * 1024;          // paper: serial below 16K
  std::size_t parallel_partition_cutoff = 128 * 1024;  // paper: 128K
  std::size_t partition_block = 16 * 1024;        // block size for par. part.
};

/// Build a task that sorts data[lo,hi) in place, using aux[lo,hi) as
/// scratch for the parallel partition. Annotated for space-bounded
/// schedulers (footprint = both buffers over the range).
runtime::Job* MakeQuicksortTask(double* data, double* aux, std::size_t lo,
                                std::size_t hi,
                                const QuicksortLimits& limits = {});

/// Serial base case shared by the sort kernels: really sorts [lo,hi) and
/// charges the cache traffic of a quicksort — one read+write sweep of the
/// range per recursion level down to insertion-sort grain.
void SerialSortWithTouches(double* data, std::size_t lo, std::size_t hi);

class Quicksort final : public Kernel {
 public:
  explicit Quicksort(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "Quicksort"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 2 * params_.n * sizeof(double);  // data + partition scratch
  }

 private:
  KernelParams params_;
  mem::Array<double> data_;
  mem::Array<double> aux_;
  std::vector<double> input_;  ///< pristine copy: reset + verification
};

}  // namespace sbs::kernels
