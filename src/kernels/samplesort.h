// Sample sorts (paper §5.1).
//
// Samplesort: the cache-oblivious algorithm of Blelloch, Gibbons & Simhadri
// (SPAA 2010): split the input into √n subarrays, recursively sort each,
// pick pivots from an oversampled, sorted sample, bucket the sorted
// subarrays by binary search ("block transpose"), and recursively sort the
// buckets. Q*(n;M,B) = O(⌈n/B⌉ log_{2+M/B} n/B) — optimally cache-oblivious,
// which is why the paper finds *no* scheduler-dependent L3 difference on it.
//
// Aware samplesort: the cache-aware variant — one round of bucketing with
// bucket size targeted at the L3 cache, then quicksort per bucket. The
// fastest sort in the paper's study.
#pragma once

#include <vector>

#include "kernels/kernel.h"
#include "runtime/mem.h"

namespace sbs::kernels {

class SampleSort final : public Kernel {
 public:
  explicit SampleSort(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "Samplesort"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 2 * params_.n * sizeof(double);
  }

 private:
  KernelParams params_;
  mem::Array<double> data_;
  mem::Array<double> aux_;
  std::vector<double> input_;
};

class AwareSampleSort final : public Kernel {
 public:
  explicit AwareSampleSort(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "AwareSamplesort"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 2 * params_.n * sizeof(double);
  }

 private:
  KernelParams params_;
  std::uint64_t bucket_bytes() const;
  mem::Array<double> data_;
  mem::Array<double> aux_;
  std::vector<double> input_;
};

}  // namespace sbs::kernels
