#include "kernels/quadtree.h"

#include <algorithm>

#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "util/spinlock.h"
#include "util/assert.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::ParallelFor;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

namespace {

constexpr int kMaxDepth = 48;

struct QtLimits {
  std::size_t serial_cutoff = 16 * 1024;  // paper: < 16K sequential
  std::size_t leaf_size = 256;
  std::size_t block = 16 * 1024;
};

struct Bounds {
  double x0, y0, x1, y1;
  double midx() const { return (x0 + x1) / 2; }
  double midy() const { return (y0 + y1) / 2; }
  Bounds quadrant(int q) const {
    const double mx = midx(), my = midy();
    switch (q) {
      case 0: return {x0, y0, mx, my};
      case 1: return {x0, my, mx, y1};
      case 2: return {mx, y0, x1, my};
      default: return {mx, my, x1, y1};
    }
  }
  bool contains(double x, double y) const {
    return x >= x0 && x < x1 + 1e-12 && y >= y0 && y < y1 + 1e-12;
  }
};

int quadrant_of(double x, double y, const Bounds& b) {
  return (x >= b.midx() ? 2 : 0) + (y >= b.midy() ? 1 : 0);
}

void make_leaf(QuadNode* node, const double* x, const double* y,
               std::size_t lo, std::size_t hi) {
  node->leaf = true;
  node->count = hi - lo;
  mem::touch_read(x + lo, (hi - lo) * sizeof(double));
  mem::touch_read(y + lo, (hi - lo) * sizeof(double));
}

/// In-place tandem partition of (x,y)[lo,hi) by pred; returns the split.
template <class Pred>
std::size_t tandem_partition(double* x, double* y, std::size_t lo,
                             std::size_t hi, Pred pred) {
  std::size_t i = lo;
  for (std::size_t j = lo; j < hi; ++j) {
    if (pred(x[j], y[j])) {
      std::swap(x[i], x[j]);
      std::swap(y[i], y[j]);
      ++i;
    }
  }
  return i;
}

}  // namespace

/// Leaf bookkeeping needs access to QuadNode's fields; keep a tiny POD view
/// inside the node via its public members (points stay in the caller's
/// buffers; verify() re-walks them through these records).
struct QuadLeafRecord {
  const double* x;
  const double* y;
  std::size_t lo, hi;
};

namespace {

// Side table: leaf node -> where its points live. Rebuilt every run.
std::vector<std::pair<const QuadNode*, QuadLeafRecord>>* g_leaves = nullptr;
util::Spinlock g_leaves_lock;

void record_leaf(const QuadNode* node, const double* x, const double* y,
                 std::size_t lo, std::size_t hi) {
  util::SpinGuard guard(g_leaves_lock);
  g_leaves->emplace_back(node, QuadLeafRecord{x, y, lo, hi});
}

void serial_build(QuadNode* node, double* x, double* y, std::size_t lo,
                  std::size_t hi, const Bounds& b, int depth,
                  std::size_t leaf_size) {
  node->count = hi - lo;
  if (hi - lo <= leaf_size || depth >= kMaxDepth) {
    make_leaf(node, x, y, lo, hi);
    record_leaf(node, x, y, lo, hi);
    return;
  }
  node->leaf = false;
  // Two tandem partition passes: by x, then by y within each half.
  mem::touch_read(x + lo, (hi - lo) * sizeof(double));
  mem::touch_read(y + lo, (hi - lo) * sizeof(double));
  mem::touch_write(x + lo, (hi - lo) * sizeof(double));
  mem::touch_write(y + lo, (hi - lo) * sizeof(double));
  charge_work(2 * kPartitionCyclesPerElem, hi - lo);
  const double mx = b.midx(), my = b.midy();
  const std::size_t sx = tandem_partition(
      x, y, lo, hi, [mx](double px, double) { return px < mx; });
  const std::size_t s0 = tandem_partition(
      x, y, lo, sx, [my](double, double py) { return py < my; });
  const std::size_t s2 = tandem_partition(
      x, y, sx, hi, [my](double, double py) { return py < my; });
  const std::size_t cuts[5] = {lo, s0, sx, s2, hi};
  for (int q = 0; q < 4; ++q) {
    node->child[q] = std::make_unique<QuadNode>();
    const Bounds qb = b.quadrant(q);
    node->child[q]->x0 = qb.x0;
    node->child[q]->y0 = qb.y0;
    node->child[q]->x1 = qb.x1;
    node->child[q]->y1 = qb.y1;
    serial_build(node->child[q].get(), x, y, cuts[q], cuts[q + 1], qb,
                 depth + 1, leaf_size);
  }
}

struct QtCtx {
  double* x;
  double* y;
  double* xs;
  double* ys;
  std::size_t lo, hi;
  Bounds bounds;
  QuadNode* node;
  int depth;
  QtLimits limits;
  std::size_t nblocks;
  mem::Array<std::uint32_t> counts;  // nblocks * 4 (touched scratch)
  mem::Array<std::size_t> seg;       // nblocks * 4 scatter offsets
  std::size_t quad_off[5];           // absolute offsets of the 4 groups
};

Job* build_task(double* x, double* y, double* xs, double* ys, std::size_t lo,
                std::size_t hi, Bounds bounds, QuadNode* node, int depth,
                const QtLimits& limits);

}  // namespace

namespace {

Job* build_task(double* x, double* y, double* xs, double* ys, std::size_t lo,
                std::size_t hi, Bounds bounds, QuadNode* node, int depth,
                const QtLimits& limits) {
  const std::uint64_t bytes = 4 * (hi - lo) * sizeof(double);
  return make_job(
      [x, y, xs, ys, lo, hi, bounds, node, depth, limits](Strand& strand) {
        node->count = hi - lo;
        if (hi - lo <= limits.serial_cutoff || depth >= kMaxDepth) {
          serial_build(node, x, y, lo, hi, bounds, depth, limits.leaf_size);
          return;
        }
        node->leaf = false;
        auto ctx = std::make_shared<QtCtx>();
        ctx->x = x;
        ctx->y = y;
        ctx->xs = xs;
        ctx->ys = ys;
        ctx->lo = lo;
        ctx->hi = hi;
        ctx->bounds = bounds;
        ctx->node = node;
        ctx->depth = depth;
        ctx->limits = limits;
        ctx->nblocks = (hi - lo + limits.block - 1) / limits.block;
        ctx->counts.reset(ctx->nblocks * 4);
        std::fill(ctx->counts.data(), ctx->counts.data() + ctx->nblocks * 4,
                  0u);

        // Count phase: per-block quadrant histograms.
        Job* count = ParallelFor::make_flat(
            0, ctx->nblocks, 1, 2 * ctx->limits.block * sizeof(double),
            [ctx](std::size_t b0, std::size_t b1) {
              for (std::size_t b = b0; b < b1; ++b) {
                const std::size_t blo = ctx->lo + b * ctx->limits.block;
                const std::size_t bhi =
                    std::min(ctx->hi, blo + ctx->limits.block);
                std::uint32_t* row = ctx->counts.data() + b * 4;
                for (std::size_t i = blo; i < bhi; ++i)
                  ++row[quadrant_of(ctx->x[i], ctx->y[i], ctx->bounds)];
                mem::touch_read(ctx->x + blo, (bhi - blo) * sizeof(double));
                mem::touch_read(ctx->y + blo, (bhi - blo) * sizeof(double));
                charge_work(kPartitionCyclesPerElem, bhi - blo);
              }
            });

        Job* prefix = make_job(
            [ctx](Strand& s2) {
              mem::touch_read(ctx->counts.data(),
                              ctx->counts.size() * sizeof(std::uint32_t));
              std::size_t totals[4] = {0, 0, 0, 0};
              for (std::size_t b = 0; b < ctx->nblocks; ++b)
                for (int q = 0; q < 4; ++q)
                  totals[static_cast<std::size_t>(q)] +=
                      ctx->counts[b * 4 + static_cast<std::size_t>(q)];
              ctx->quad_off[0] = ctx->lo;
              for (int q = 0; q < 4; ++q)
                ctx->quad_off[q + 1] =
                    ctx->quad_off[q] + totals[static_cast<std::size_t>(q)];
              SBS_CHECK(ctx->quad_off[4] == ctx->hi);
              ctx->seg.reset(ctx->nblocks * 4);
              std::size_t next[4];
              for (int q = 0; q < 4; ++q)
                next[q] = ctx->quad_off[q];
              for (std::size_t b = 0; b < ctx->nblocks; ++b) {
                for (int q = 0; q < 4; ++q) {
                  ctx->seg[b * 4 + static_cast<std::size_t>(q)] =
                      next[static_cast<std::size_t>(q)];
                  next[static_cast<std::size_t>(q)] +=
                      ctx->counts[b * 4 + static_cast<std::size_t>(q)];
                }
              }
              charge_work(2.0, ctx->nblocks * 4);

              // Scatter into the alternate buffers.
              Job* scatter = ParallelFor::make_flat(
                  0, ctx->nblocks, 1,
                  4 * ctx->limits.block * sizeof(double),
                  [ctx](std::size_t b0, std::size_t b1) {
                    for (std::size_t b = b0; b < b1; ++b) {
                      const std::size_t blo =
                          ctx->lo + b * ctx->limits.block;
                      const std::size_t bhi =
                          std::min(ctx->hi, blo + ctx->limits.block);
                      std::size_t cursor[4];
                      for (int q = 0; q < 4; ++q)
                        cursor[q] =
                            ctx->seg[b * 4 + static_cast<std::size_t>(q)];
                      for (std::size_t i = blo; i < bhi; ++i) {
                        const int q =
                            quadrant_of(ctx->x[i], ctx->y[i], ctx->bounds);
                        ctx->xs[cursor[q]] = ctx->x[i];
                        ctx->ys[cursor[q]] = ctx->y[i];
                        ++cursor[q];
                      }
                      mem::touch_read(ctx->x + blo,
                                      (bhi - blo) * sizeof(double));
                      mem::touch_read(ctx->y + blo,
                                      (bhi - blo) * sizeof(double));
                      for (int q = 0; q < 4; ++q) {
                        const std::size_t s =
                            ctx->seg[b * 4 + static_cast<std::size_t>(q)];
                        const std::size_t len = cursor[q] - s;
                        mem::touch_write(ctx->xs + s, len * sizeof(double));
                        mem::touch_write(ctx->ys + s, len * sizeof(double));
                      }
                      charge_work(kPartitionCyclesPerElem, bhi - blo);
                    }
                  });

              Job* recurse = make_job(
                  [ctx](Strand& s3) {
                    std::vector<Job*> children;
                    for (int q = 0; q < 4; ++q) {
                      ctx->node->child[q] = std::make_unique<QuadNode>();
                      const Bounds qb = ctx->bounds.quadrant(q);
                      QuadNode* child = ctx->node->child[q].get();
                      child->x0 = qb.x0;
                      child->y0 = qb.y0;
                      child->x1 = qb.x1;
                      child->y1 = qb.y1;
                      // Children build from the scratch buffers with the
                      // primary buffers as their scratch (ping-pong).
                      children.push_back(build_task(
                          ctx->xs, ctx->ys, ctx->x, ctx->y, ctx->quad_off[q],
                          ctx->quad_off[q + 1], qb, child, ctx->depth + 1,
                          ctx->limits));
                    }
                    s3.fork(std::move(children), make_nop());
                  },
                  kNoSize, 64);
              s2.fork({scatter}, recurse);
            },
            kNoSize,
            /*strand_bytes=*/ctx->nblocks * 4 * sizeof(std::uint32_t));
        strand.fork({count}, prefix);
      },
      bytes, /*strand_bytes=*/64);
}

}  // namespace

void QuadTree::prepare(std::uint64_t seed) {
  Rng rng(seed);
  x_.reset(params_.n);
  y_.reset(params_.n);
  xs_.reset(params_.n);
  ys_.reset(params_.n);
  in_x_.resize(params_.n);
  in_y_.resize(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    in_x_[i] = rng.next_double();
    in_y_[i] = rng.next_double();
  }
}

Job* QuadTree::make_root() {
  std::copy(in_x_.begin(), in_x_.end(), x_.data());
  std::copy(in_y_.begin(), in_y_.end(), y_.data());
  root_ = std::make_unique<QuadNode>();
  root_->x0 = 0;
  root_->y0 = 0;
  root_->x1 = 1;
  root_->y1 = 1;
  // Reset the leaf side-table (single global build at a time).
  static std::vector<std::pair<const QuadNode*, QuadLeafRecord>> leaves;
  leaves.clear();
  g_leaves = &leaves;
  QtLimits limits;
  limits.serial_cutoff = params_.scaled(16 * 1024);
  limits.leaf_size = params_.scaled(256);
  limits.block = params_.scaled(16 * 1024);
  return build_task(x_.data(), y_.data(), xs_.data(), ys_.data(), 0,
                    params_.n, Bounds{0, 0, 1, 1}, root_.get(), 0, limits);
}

namespace {

bool verify_node(const QuadNode* node, std::size_t* leaf_total) {
  if (node->leaf) {
    *leaf_total += node->count;
    return true;
  }
  std::size_t child_sum = 0;
  for (int q = 0; q < 4; ++q) {
    if (!node->child[q]) return false;
    const QuadNode* c = node->child[q].get();
    // Children tile the parent box.
    if (c->x0 < node->x0 - 1e-12 || c->x1 > node->x1 + 1e-12 ||
        c->y0 < node->y0 - 1e-12 || c->y1 > node->y1 + 1e-12) {
      return false;
    }
    child_sum += c->count;
    if (!verify_node(c, leaf_total)) return false;
  }
  return child_sum == node->count;
}

}  // namespace

bool QuadTree::verify() const {
  if (!root_ || root_->count != params_.n) return false;
  std::size_t leaf_total = 0;
  if (!verify_node(root_.get(), &leaf_total)) return false;
  if (leaf_total != params_.n) return false;

  // Every recorded leaf's points lie in its box, and together the leaves
  // hold a permutation of the input (checked via sorted-x comparison).
  SBS_CHECK(g_leaves != nullptr);
  std::vector<double> all_x;
  all_x.reserve(params_.n);
  for (const auto& [node, rec] : *g_leaves) {
    const Bounds b{node->x0, node->y0, node->x1, node->y1};
    if (rec.hi - rec.lo != node->count) return false;
    for (std::size_t i = rec.lo; i < rec.hi; ++i) {
      if (!b.contains(rec.x[i], rec.y[i])) return false;
      all_x.push_back(rec.x[i]);
    }
  }
  if (all_x.size() != params_.n) return false;
  std::vector<double> expect = in_x_;
  std::sort(expect.begin(), expect.end());
  std::sort(all_x.begin(), all_x.end());
  return all_x == expect;
}

}  // namespace sbs::kernels
