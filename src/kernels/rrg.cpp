#include "kernels/rrg.h"

#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "util/assert.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::ParallelFor;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

void Rrg::prepare(std::uint64_t seed) {
  Rng rng(seed);
  a_.reset(params_.n);
  b_.reset(params_.n);
  idx_.reset(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    a_[i] = static_cast<double>(rng.next_below(1u << 30));
    b_[i] = 0.0;
    idx_[i] = static_cast<std::uint32_t>(rng.next());
  }
}

Job* Rrg::make_task(std::size_t lo, std::size_t hi) {
  // Like RRM, each repeat is a parallel pass over the whole range, chained
  // through continuations, followed by the two-way recursion.
  const std::uint64_t bytes =
      (hi - lo) * (2 * sizeof(double) + sizeof(std::uint32_t));
  return make_job(
      [this, lo, hi](Strand& strand) { run_pass(strand, lo, hi, 0); },
      bytes, /*strand_bytes=*/64);
}

void Rrg::run_pass(Strand& strand, std::size_t lo, std::size_t hi, int pass) {
  const std::size_t len = hi - lo;
  if (pass < params_.repeats) {
    Job* gather = ParallelFor::make_flat(
        lo, hi, params_.base, 2 * sizeof(double) + sizeof(std::uint32_t),
        [this, lo, len](std::size_t i0, std::size_t i1) {
          idx_.touch_range(i0, i1, false);
          for (std::size_t i = i0; i < i1; ++i) {
            // Random read within the *task's* subrange: per-element hook.
            b_[i] = a_.read(lo + idx_[i] % len);
          }
          b_.touch_range(i0, i1, true);
          charge_work(kGatherCyclesPerElem, i1 - i0);
        });
    Job* cont = make_job(
        [this, lo, hi, pass](Strand& s) { run_pass(s, lo, hi, pass + 1); },
        kNoSize, /*strand_bytes=*/64);
    strand.fork({gather}, cont);
    return;
  }
  if (len > params_.base) {
    const std::size_t cut =
        lo + len * static_cast<std::size_t>(params_.cut_ratio_pct) / 100;
    const std::size_t mid = std::min(std::max(cut, lo + 1), hi - 1);
    strand.fork2(make_task(lo, mid), make_task(mid, hi), make_nop());
  }
}

Job* Rrg::make_root() { return make_task(0, params_.n); }

void Rrg::base_ranges(
    std::size_t lo, std::size_t hi,
    std::vector<std::pair<std::size_t, std::size_t>>* out) const {
  if (hi - lo <= params_.base) {
    out->emplace_back(lo, hi);
    return;
  }
  const std::size_t cut =
      lo + (hi - lo) * static_cast<std::size_t>(params_.cut_ratio_pct) / 100;
  const std::size_t mid = std::min(std::max(cut, lo + 1), hi - 1);
  base_ranges(lo, mid, out);
  base_ranges(mid, hi, out);
}

bool Rrg::verify() const {
  // B is overwritten at every recursion level; its final contents are the
  // gathers of the deepest (base) level, whose ranges are deterministic.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  base_ranges(0, params_.n, &ranges);
  std::size_t covered = 0;
  for (const auto& [lo, hi] : ranges) {
    SBS_CHECK(hi > lo);
    covered += hi - lo;
    for (std::size_t i = lo; i < hi; ++i) {
      if (b_[i] != a_[lo + idx_[i] % (hi - lo)]) return false;
    }
  }
  return covered == params_.n;
}

}  // namespace sbs::kernels
