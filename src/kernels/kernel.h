// Common interface for the paper's seven benchmarks (§5.1).
//
// A Kernel owns its input/output arrays. The harness calls prepare() once,
// then for each measured run builds a fresh job tree with make_root() (the
// same tree runs under any scheduler and either engine) and afterwards calls
// verify() to confirm the computation really happened — simulation replays
// costs, but the strand bodies execute real C++, so sorts must sort and
// multiplies must multiply.
//
// Approximate per-element compute costs (virtual cycles charged via
// mem::work) live here so every kernel draws from one tuning table; they
// set the compute-to-traffic ratio, which is what distinguishes
// memory-intensive benchmarks (RRM/RRG/sorts) from compute-intensive ones
// (matmul) in the paper's analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/job.h"
#include "util/rng.h"

namespace sbs::kernels {

// --- virtual-cycle costs per element operation ---
inline constexpr double kMapCyclesPerElem = 2.0;      // load+add+store
inline constexpr double kGatherCyclesPerElem = 4.0;   // mod + indexed load
inline constexpr double kCompareCyclesPerElem = 6.0;  // branchy compare/swap
inline constexpr double kPartitionCyclesPerElem = 3.0;
inline constexpr double kMacCyclesPerOp = 0.6;  // dgemm MAC (~3.3 flop/cy)

/// Charge c * n cycles of compute to the running strand.
void charge_work(double cycles_per_elem, std::uint64_t elems);

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;
  /// Allocate and (re)generate the input; deterministic in `seed`.
  virtual void prepare(std::uint64_t seed) = 0;
  /// Build a fresh job tree for one run. prepare() must have been called;
  /// may be called repeatedly (the kernel resets its output state).
  virtual runtime::Job* make_root() = 0;
  /// Check the output of the last run.
  virtual bool verify() const = 0;
  /// Total input footprint in bytes (for reporting).
  virtual std::uint64_t problem_bytes() const = 0;
};

struct KernelParams {
  std::size_t n = 1 << 20;  ///< elements (doubles / points / matrix order²)
  /// Machine-awareness for the aware samplesort: target bucket bytes
  /// (the paper sizes buckets to fit L3). 0 = kernel default.
  std::uint64_t target_bucket_bytes = 0;
  /// RRM/RRG: number of repeated passes per recursion level (paper: 3).
  int repeats = 3;
  /// RRM/RRG: divide ratio f as a percentage (paper default 50).
  int cut_ratio_pct = 50;
  /// RRM/RRG: recursion base-case size in elements.
  std::size_t base = 2048;
  /// When running on a scaled-down machine preset (xeon7560_s<k>), divide
  /// the paper's element-count thresholds (16K serial sort cutoff, 128K
  /// parallel-partition cutoff, quadtree 16K sequential cutoff, ...) by the
  /// same factor k so every cache-relative ratio is preserved.
  int machine_scale = 1;

  std::size_t scaled(std::size_t elems) const {
    return std::max<std::size_t>(
        64, elems / static_cast<std::size_t>(machine_scale));
  }
};

/// Construct a kernel by name: "rrm", "rrg", "quicksort", "samplesort",
/// "aware-samplesort", "quadtree", "matmul" (n = matrix order for matmul).
std::unique_ptr<Kernel> MakeKernel(const std::string& name,
                                   const KernelParams& params);

std::vector<std::string> KernelNames();

}  // namespace sbs::kernels
