// Matrix multiplication (paper §5.1): 8-way recursive C += A·B on n×n
// doubles. To allow an in-place implementation, four of the eight recursive
// quadrant products run in parallel, followed by the other four (two fork
// phases). The base case is a hand-written blocked serial dgemm standing in
// for the paper's MKL cblas_dgemm — compute-dense, so the kernel has a very
// high instruction-to-miss ratio (Q* = Θ(n²/B · n/√M)).
#pragma once

#include <vector>

#include "kernels/kernel.h"
#include "runtime/mem.h"

namespace sbs::kernels {

class MatMul final : public Kernel {
 public:
  /// params.n is the matrix order (must be a power of two ≥ 8).
  explicit MatMul(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "MatMul"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 3 * params_.n * params_.n * sizeof(double);
  }

 private:
  KernelParams params_;
  mem::Array<double> a_, b_, c_;
};

}  // namespace sbs::kernels
