// Quad-tree construction (paper §5.1): recursively partition n points in
// [0,1)² into four quadrants along the midlines of each node's bounding
// square, reverting to a sequential builder below 16K points.
//
// Points are stored SoA (x[], y[]); each internal node reorders its range
// into the four quadrant groups (counts → prefix → scatter into the
// alternate buffer), so the structure is memory-intensive like the sorts.
#pragma once

#include <memory>
#include <vector>

#include "kernels/kernel.h"
#include "runtime/mem.h"

namespace sbs::kernels {

struct QuadNode {
  double x0, y0, x1, y1;  ///< bounding square
  std::size_t count = 0;  ///< points in this subtree
  bool leaf = true;
  std::unique_ptr<QuadNode> child[4];
};

class QuadTree final : public Kernel {
 public:
  explicit QuadTree(const KernelParams& params) : params_(params) {}

  std::string name() const override { return "Quad-Tree"; }
  void prepare(std::uint64_t seed) override;
  runtime::Job* make_root() override;
  bool verify() const override;
  std::uint64_t problem_bytes() const override {
    return 4 * params_.n * sizeof(double);  // x,y + scratch copies
  }

  const QuadNode* root_node() const { return root_.get(); }

 private:
  KernelParams params_;
  mem::Array<double> x_, y_;        ///< working buffers (ping)
  mem::Array<double> xs_, ys_;      ///< scratch buffers (pong)
  std::vector<double> in_x_, in_y_;  ///< pristine input
  std::unique_ptr<QuadNode> root_;
};

}  // namespace sbs::kernels
