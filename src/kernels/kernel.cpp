#include "kernels/kernel.h"

#include <cmath>

#include "kernels/matmul.h"
#include "kernels/quadtree.h"
#include "kernels/quicksort.h"
#include "kernels/rrg.h"
#include "kernels/rrm.h"
#include "kernels/samplesort.h"
#include "runtime/mem.h"
#include "util/assert.h"

namespace sbs::kernels {

void charge_work(double cycles_per_elem, std::uint64_t elems) {
  mem::work(static_cast<std::uint64_t>(cycles_per_elem *
                                       static_cast<double>(elems)));
}

std::unique_ptr<Kernel> MakeKernel(const std::string& name,
                                   const KernelParams& params) {
  if (name == "rrm") return std::make_unique<Rrm>(params);
  if (name == "rrg") return std::make_unique<Rrg>(params);
  if (name == "quicksort") return std::make_unique<Quicksort>(params);
  if (name == "samplesort") return std::make_unique<SampleSort>(params);
  if (name == "aware-samplesort")
    return std::make_unique<AwareSampleSort>(params);
  if (name == "quadtree") return std::make_unique<QuadTree>(params);
  if (name == "matmul") return std::make_unique<MatMul>(params);
  SBS_CHECK_MSG(false, ("unknown kernel: " + name).c_str());
  return nullptr;
}

std::vector<std::string> KernelNames() {
  return {"rrm",      "rrg",        "quicksort", "samplesort",
          "aware-samplesort", "quadtree", "matmul"};
}

}  // namespace sbs::kernels
