#include "kernels/matmul.h"

#include <algorithm>

#include "runtime/jobs.h"
#include "util/assert.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

namespace {

constexpr std::size_t kFullBase = 128;  // paper: serial MKL dgemm at 128×128

/// A square submatrix view into a row-major order-`ld` matrix.
struct View {
  double* base;
  std::size_t ld;
  std::size_t r0, c0;

  double* row(std::size_t i) const { return base + (r0 + i) * ld + c0; }
  View quad(int qr, int qc, std::size_t half) const {
    return {base, ld, r0 + static_cast<std::size_t>(qr) * half,
            c0 + static_cast<std::size_t>(qc) * half};
  }
};

/// Serial blocked dgemm: C += A·B over m×m views. Real arithmetic; traffic
/// declared as one pass over each operand (the blocked loop order reuses
/// operands from cache within the 128×128 tile, which all fits in L2).
void base_dgemm(const View& c, const View& a, const View& b, std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) {
    mem::touch_read(a.row(i), m * sizeof(double));
    mem::touch_read(b.row(i), m * sizeof(double));
    mem::touch_read(c.row(i), m * sizeof(double));
  }
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c.row(i);
    const double* arow = a.row(i);
    for (std::size_t k = 0; k < m; ++k) {
      const double aik = arow[k];
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    mem::touch_write(c.row(i), m * sizeof(double));
  }
  charge_work(kMacCyclesPerOp, m * m * m);
}

Job* mm_task(View c, View a, View b, std::size_t m, std::size_t base) {
  const std::uint64_t bytes = 3 * m * m * sizeof(double);
  return make_job(
      [c, a, b, m, base](Strand& strand) {
        if (m <= base) {
          base_dgemm(c, a, b, m);
          return;
        }
        const std::size_t h = m / 2;
        // Phase 1: the four products that touch disjoint C quadrants.
        std::vector<Job*> first = {
            mm_task(c.quad(0, 0, h), a.quad(0, 0, h), b.quad(0, 0, h), h, base),
            mm_task(c.quad(0, 1, h), a.quad(0, 0, h), b.quad(0, 1, h), h, base),
            mm_task(c.quad(1, 0, h), a.quad(1, 0, h), b.quad(0, 0, h), h, base),
            mm_task(c.quad(1, 1, h), a.quad(1, 0, h), b.quad(0, 1, h), h, base),
        };
        // Phase 2 (continuation): the other four, accumulating into the
        // same C quadrants — hence the serialization between phases.
        Job* second = make_job(
            [c, a, b, h, base](Strand& s2) {
              s2.fork({mm_task(c.quad(0, 0, h), a.quad(0, 1, h),
                               b.quad(1, 0, h), h, base),
                       mm_task(c.quad(0, 1, h), a.quad(0, 1, h),
                               b.quad(1, 1, h), h, base),
                       mm_task(c.quad(1, 0, h), a.quad(1, 1, h),
                               b.quad(1, 0, h), h, base),
                       mm_task(c.quad(1, 1, h), a.quad(1, 1, h),
                               b.quad(1, 1, h), h, base)},
                      make_nop());
            },
            kNoSize, 64);
        strand.fork(std::move(first), second);
      },
      bytes, /*strand_bytes=*/64);
}

}  // namespace

void MatMul::prepare(std::uint64_t seed) {
  const std::size_t n = params_.n;
  SBS_CHECK_MSG(n >= 8 && (n & (n - 1)) == 0,
                "matmul needs a power-of-two matrix order >= 8");
  Rng rng(seed);
  a_.reset(n * n);
  b_.reset(n * n);
  c_.reset(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a_[i] = rng.next_double() - 0.5;
    b_[i] = rng.next_double() - 0.5;
  }
}

Job* MatMul::make_root() {
  const std::size_t n = params_.n;
  std::fill(c_.data(), c_.data() + n * n, 0.0);
  // Base-case order scales with the square root of the machine scale
  // (cache capacities are quadratic in the tile order): 128 on the real
  // machine, 64 on the ÷8-scaled preset, 32 on ÷16, ...
  std::size_t base = kFullBase;
  for (int s = params_.machine_scale; s >= 4 && base > 16; s /= 4) base /= 2;
  return mm_task(View{c_.data(), n, 0, 0}, View{a_.data(), n, 0, 0},
                 View{b_.data(), n, 0, 0}, n, base);
}

bool MatMul::verify() const {
  const std::size_t n = params_.n;
  Rng rng(999);
  // Exhaustive check for small orders; random spot checks for large ones.
  const std::size_t checks = n <= 256 ? n * n : 256;
  for (std::size_t t = 0; t < checks; ++t) {
    std::size_t i, j;
    if (n <= 256) {
      i = t / n;
      j = t % n;
    } else {
      i = rng.next_below(n);
      j = rng.next_below(n);
    }
    double expect = 0;
    for (std::size_t k = 0; k < n; ++k) expect += a_[i * n + k] * b_[k * n + j];
    const double got = c_[i * n + j];
    if (std::abs(got - expect) > 1e-9 * (1.0 + std::abs(expect))) return false;
  }
  return true;
}

}  // namespace sbs::kernels
