#include "kernels/rrm.h"

#include "runtime/jobs.h"
#include "runtime/parallel_for.h"

namespace sbs::kernels {

using runtime::Job;
using runtime::ParallelFor;
using runtime::Strand;
using runtime::kNoSize;
using runtime::make_job;
using runtime::make_nop;

void Rrm::prepare(std::uint64_t seed) {
  Rng rng(seed);
  a_.reset(params_.n);
  b_.reset(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    a_[i] = static_cast<double>(rng.next_below(1u << 30));
    b_[i] = 0.0;
  }
}

namespace {

/// One parallel point-wise map pass over [lo,hi) (the paper: "RRM first
/// does a parallel point-wise map from A to B").
runtime::Job* map_pass(const mem::Array<double>& a, mem::Array<double>& b,
                       std::size_t lo, std::size_t hi, std::size_t grain) {
  return ParallelFor::make_flat(
      lo, hi, grain, 2 * sizeof(double),
      [&a, &b](std::size_t i0, std::size_t i1) {
        a.touch_range(i0, i1, false);
        for (std::size_t i = i0; i < i1; ++i) b[i] = a[i] + 1.0;
        b.touch_range(i0, i1, true);
        charge_work(kMapCyclesPerElem, i1 - i0);
      });
}

}  // namespace

Job* Rrm::make_task(std::size_t lo, std::size_t hi) {
  // The task chains `repeats` parallel map passes over its whole range via
  // continuations, then splits by the cut ratio and recurses.
  const std::uint64_t bytes = 2 * (hi - lo) * sizeof(double);
  return make_job(
      [this, lo, hi, bytes](Strand& strand) {
        run_pass(strand, lo, hi, 0, bytes);
      },
      bytes, /*strand_bytes=*/64);
}

void Rrm::run_pass(Strand& strand, std::size_t lo, std::size_t hi, int pass,
                   std::uint64_t bytes) {
  if (pass < params_.repeats) {
    Job* map = map_pass(a_, b_, lo, hi, params_.base);
    Job* cont = make_job(
        [this, lo, hi, pass, bytes](Strand& s) {
          run_pass(s, lo, hi, pass + 1, bytes);
        },
        kNoSize, /*strand_bytes=*/64);
    strand.fork({map}, cont);
    return;
  }
  if (hi - lo > params_.base) {
    const std::size_t cut =
        lo + (hi - lo) * static_cast<std::size_t>(params_.cut_ratio_pct) / 100;
    // Guard degenerate ratios so both halves stay non-empty.
    const std::size_t mid = std::min(std::max(cut, lo + 1), hi - 1);
    strand.fork2(make_task(lo, mid), make_task(mid, hi), make_nop());
  }
}

Job* Rrm::make_root() { return make_task(0, params_.n); }

bool Rrm::verify() const {
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (b_[i] != a_[i] + 1.0) return false;
  }
  return true;
}

}  // namespace sbs::kernels
