#include "runtime/mem.h"

#include <sys/mman.h>

#include <map>
#include <vector>

#include "util/assert.h"
#include "util/thread_safety.h"

namespace sbs::mem {

thread_local AccessSink* tl_sink = nullptr;

namespace arena {
namespace {

constexpr std::size_t kChunk = 2ull << 20;  // 2 MB (hugepage-sized)
constexpr std::size_t kReserve = 64ull << 30;
// Fixed hint well away from typical heap/stack/mmap bases; if the kernel
// cannot honor it we still get a stable base for the process lifetime.
void* const kBaseHint = reinterpret_cast<void*>(0x7e0000000000ull);

struct State {
  util::Mutex lock;
  std::byte* base = nullptr;  // set once before any concurrent access
  std::size_t bump SBS_GUARDED_BY(lock) = 0;  // next fresh chunk offset
  std::size_t live SBS_GUARDED_BY(lock) = 0;  // bytes currently handed out
  std::map<std::size_t, std::vector<void*>> free_by_size
      SBS_GUARDED_BY(lock);  // keyed by rounded size
};

State& state() {
  static State s;
  if (s.base == nullptr) {
    void* region = mmap(kBaseHint, kReserve, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    SBS_CHECK_MSG(region != MAP_FAILED, "arena reservation failed");
    s.base = static_cast<std::byte*>(region);
  }
  return s;
}

std::size_t round_up(std::size_t bytes) {
  return (bytes + kChunk - 1) / kChunk * kChunk;
}

}  // namespace

void* alloc(std::size_t bytes) {
  const std::size_t size = round_up(bytes);
  State& s = state();
  util::MutexLock guard(s.lock);
  s.live += size;
  auto it = s.free_by_size.find(size);
  if (it != s.free_by_size.end() && !it->second.empty()) {
    void* ptr = it->second.back();
    it->second.pop_back();
    // Pages were MADV_DONTNEED'd on free; they fault back in zeroed.
    return ptr;
  }
  SBS_CHECK_MSG(s.bump + size <= kReserve, "arena exhausted (64 GB)");
  void* ptr = s.base + s.bump;
  s.bump += size;
  SBS_CHECK_MSG(mprotect(ptr, size, PROT_READ | PROT_WRITE) == 0,
                "arena mprotect failed");
  return ptr;
}

void free(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const std::size_t size = round_up(bytes);
  State& s = state();
  util::MutexLock guard(s.lock);
  SBS_CHECK(s.live >= size);
  s.live -= size;
  // Release physical pages, keep the mapping for deterministic reuse.
  (void)madvise(ptr, size, MADV_DONTNEED);
  s.free_by_size[size].push_back(ptr);
}

std::size_t allocated_bytes() {
  State& s = state();
  util::MutexLock guard(s.lock);
  return s.live;
}

}  // namespace arena

}  // namespace sbs::mem
