#include "runtime/mem.h"

#include <sys/mman.h>

#include <map>
#include <vector>

#include "util/assert.h"
#include "util/thread_safety.h"

namespace sbs::mem {

thread_local AccessSink* tl_sink = nullptr;

namespace arena {
namespace {

constexpr std::size_t kChunk = 2ull << 20;  // 2 MB (hugepage-sized)
// Region layout: one large host stream (kernel inputs, anything allocated
// outside a simulated strand) followed by kStreams fixed-size transient
// streams, one per virtual core (AccessSink::stream_id()).
constexpr std::size_t kHostSpan = 64ull << 30;
constexpr int kStreams = 1024;
constexpr std::size_t kStreamSpan = 128ull << 20;  // per-core transient span
constexpr std::size_t kReserve =
    kHostSpan + static_cast<std::size_t>(kStreams) * kStreamSpan;
// Fixed hint well away from typical heap/stack/mmap bases; if the kernel
// cannot honor it we still get a stable base for the process lifetime.
void* const kBaseHint = reinterpret_cast<void*>(0x7e0000000000ull);

struct Stream {
  std::size_t bump = 0;  // next fresh chunk offset within the stream
  std::size_t live = 0;  // bytes currently handed out
  std::map<std::size_t, std::vector<void*>> free_by_size;  // rounded size
};

struct State {
  util::Mutex lock;
  std::byte* base SBS_INIT_ONLY = nullptr;  // set once, before threads
  Stream host SBS_GUARDED_BY(lock);
  std::map<int, Stream> transient SBS_GUARDED_BY(lock);  // by stream id
};

State& state() {
  static State s;
  if (s.base == nullptr) {
    void* region = mmap(kBaseHint, kReserve, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    SBS_CHECK_MSG(region != MAP_FAILED, "arena reservation failed");
    s.base = static_cast<std::byte*>(region);
  }
  return s;
}

std::size_t round_up(std::size_t bytes) {
  return (bytes + kChunk - 1) / kChunk * kChunk;
}

/// The stream a chunk belongs to (by address), and its span bounds.
struct Placement {
  Stream* stream;
  std::size_t stream_base;  // offset of the stream within the region
  std::size_t stream_span;
};

Placement placement_of(State& s, std::size_t offset)
    SBS_REQUIRES(s.lock) {
  if (offset < kHostSpan) return {&s.host, 0, kHostSpan};
  const int id = static_cast<int>((offset - kHostSpan) / kStreamSpan);
  return {&s.transient[id],
          kHostSpan + static_cast<std::size_t>(id) * kStreamSpan,
          kStreamSpan};
}

Placement placement_for_alloc(State& s, int id)
    SBS_REQUIRES(s.lock) {
  if (id < 0) return {&s.host, 0, kHostSpan};
  SBS_CHECK_MSG(id < kStreams, "arena: virtual core id exceeds stream count");
  return {&s.transient[id],
          kHostSpan + static_cast<std::size_t>(id) * kStreamSpan,
          kStreamSpan};
}

}  // namespace

void* alloc(std::size_t bytes) {
  const std::size_t size = round_up(bytes);
  const int id = tl_sink != nullptr ? tl_sink->stream_id() : -1;
  State& s = state();
  util::MutexLock guard(s.lock);
  Placement p = placement_for_alloc(s, id);
  p.stream->live += size;
  auto it = p.stream->free_by_size.find(size);
  if (it != p.stream->free_by_size.end() && !it->second.empty()) {
    void* ptr = it->second.back();
    it->second.pop_back();
    // Pages were MADV_DONTNEED'd on free; they fault back in zeroed.
    return ptr;
  }
  SBS_CHECK_MSG(p.stream->bump + size <= p.stream_span,
                "arena stream exhausted");
  void* ptr = s.base + p.stream_base + p.stream->bump;
  p.stream->bump += size;
  SBS_CHECK_MSG(mprotect(ptr, size, PROT_READ | PROT_WRITE) == 0,
                "arena mprotect failed");
  return ptr;
}

void free(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const std::size_t size = round_up(bytes);
  State& s = state();
  util::MutexLock guard(s.lock);
  const std::size_t offset =
      static_cast<std::size_t>(static_cast<std::byte*>(ptr) - s.base);
  Placement p = placement_of(s, offset);
  SBS_CHECK(p.stream->live >= size);
  p.stream->live -= size;
  // Release physical pages, keep the mapping for deterministic reuse.
  (void)madvise(ptr, size, MADV_DONTNEED);
  p.stream->free_by_size[size].push_back(ptr);
}

std::size_t allocated_bytes() {
  State& s = state();
  util::MutexLock guard(s.lock);
  std::size_t total = s.host.live;
  for (const auto& [id, st] : s.transient) total += st.live;
  return total;
}

void reset_transient() {
  State& s = state();
  util::MutexLock guard(s.lock);
  for (auto& [id, st] : s.transient) {
    SBS_CHECK_MSG(st.live == 0,
                  "transient arena allocation outlived the simulated run");
    st.bump = 0;
    st.free_by_size.clear();
  }
}

}  // namespace arena

}  // namespace sbs::mem
