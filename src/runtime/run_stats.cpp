#include "runtime/run_stats.h"

#include <sstream>

#include "util/table.h"

namespace sbs::runtime {

std::string RunStats::summary() const {
  std::ostringstream out;
  out << "wall " << fmt_seconds(wall_s) << ", avg active "
      << fmt_seconds(avg_active_s()) << " (max " << fmt_seconds(max_active_s())
      << ", imb " << fmt_double(imbalance(), 2) << "x), avg overhead "
      << fmt_seconds(avg_overhead_s()) << " (empty "
      << fmt_seconds(avg_empty_s()) << ", " << total_empty_wakeups()
      << " wakeups), " << total_strands() << " strands";
  return out.str();
}

}  // namespace sbs::runtime
