#include "runtime/job_arena.h"

#include <new>

#include "util/assert.h"

namespace sbs::runtime {

namespace {

thread_local JobArena* tl_current_arena = nullptr;

constexpr std::uintptr_t kLineMask = 63;

char* align_up(char* p) {
  return reinterpret_cast<char*>(
      (reinterpret_cast<std::uintptr_t>(p) + kLineMask) & ~kLineMask);
}

}  // namespace

JobArena::Scope::Scope(JobArena* arena) : prev_(tl_current_arena) {
  tl_current_arena = arena;
}

JobArena::Scope::~Scope() { tl_current_arena = prev_; }

JobArena* JobArena::current() { return tl_current_arena; }

JobArena::~JobArena() {
  for (char* slab : slabs_) ::operator delete(slab);
}

void* JobArena::allocate(std::size_t bytes) {
  JobArena* arena = tl_current_arena;
  if (arena != nullptr && bytes + kHeaderBytes <= kMaxBlockBytes) {
    return arena->allocate_block(bytes);
  }
  // Heap fallback: same layout, owner = nullptr.
  char* raw = static_cast<char*>(::operator new(bytes + kHeaderBytes));
  Header* h = reinterpret_cast<Header*>(raw);
  h->owner = nullptr;
  h->cls = 0;
  return raw + kHeaderBytes;
}

void JobArena::deallocate(void* payload) {
  if (payload == nullptr) return;
  Header* h = reinterpret_cast<Header*>(static_cast<char*>(payload) -
                                        kHeaderBytes);
  JobArena* owner = h->owner;
  if (owner == nullptr) {
    ::operator delete(static_cast<void*>(h));
    return;
  }
  if (owner == tl_current_arena) {
    owner->free_local(h);
  } else {
    owner->free_remote(h);
  }
}

void* JobArena::allocate_block(std::size_t payload_bytes) {
  const std::size_t cls = (payload_bytes + kHeaderBytes - 1) / kGranularity;
  SBS_ASSERT(cls < kClasses);

  FreeNode* node = local_free_[cls];
  // Relaxed emptiness probe: cheap filter before the exchange below,
  // which carries the real (acquire) ordering.
  if (node == nullptr &&
      remote_free_[cls].load(std::memory_order_relaxed) != nullptr) {
    // Claim the whole remote chain in one exchange; the acquire pairs with
    // the release CAS in free_remote so the freeing thread's writes (the
    // object's destruction) happen-before our reuse.
    node = remote_free_[cls].exchange(nullptr, std::memory_order_acquire);
    local_free_[cls] = node;
  }

  char* block;
  if (node != nullptr) {
    local_free_[cls] = node->next;
    block = reinterpret_cast<char*>(node);
  } else {
    block = carve((cls + 1) * kGranularity);
  }

  Header* h = reinterpret_cast<Header*>(block);
  h->owner = this;
  h->cls = static_cast<std::uint32_t>(cls);
  // Relaxed: live_ is a leak-check counter, only compared against zero
  // at reset() after the pool quiesced.
  live_.fetch_add(1, std::memory_order_relaxed);
  return block + kHeaderBytes;
}

char* JobArena::carve(std::size_t stride) {
  if (bump_ == nullptr ||
      bump_ + stride > slab_end_) {
    if (next_slab_ == slabs_.size()) {
      slabs_.push_back(
          static_cast<char*>(::operator new(kSlabBytes + kLineMask)));
    }
    char* raw = slabs_[next_slab_++];
    bump_ = align_up(raw);
    slab_end_ = raw + kSlabBytes + kLineMask;
  }
  char* block = bump_;
  bump_ += stride;
  return block;
}

void JobArena::free_local(Header* h) {
  const std::size_t cls = h->cls;
  auto* node = reinterpret_cast<FreeNode*>(h);
  node->next = local_free_[cls];
  local_free_[cls] = node;
  // Relaxed: leak-check counter (see allocate_block).
  live_.fetch_sub(1, std::memory_order_relaxed);
}

void JobArena::free_remote(Header* h) {
  const std::size_t cls = h->cls;
  auto* node = reinterpret_cast<FreeNode*>(h);
  // Treiber push. Relaxed seed + failure loads are fine — the CAS
  // revalidates `head`; the release on success publishes the freed
  // object's final writes to the owner's acquire exchange in
  // allocate_block.
  FreeNode* head = remote_free_[cls].load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!remote_free_[cls].compare_exchange_weak(
      head, node, std::memory_order_release, std::memory_order_relaxed));
  // Relaxed: leak-check counter (see allocate_block).
  live_.fetch_sub(1, std::memory_order_relaxed);
}

void JobArena::reset() {
  // Acquire pairs with the release decrements above so the reset thread
  // observes every free that brought live_ to zero before recycling.
  SBS_CHECK_MSG(live_.load(std::memory_order_acquire) == 0,
                "JobArena::reset with live blocks");
  for (std::size_t c = 0; c < kClasses; ++c) {
    local_free_[c] = nullptr;
    // Relaxed: reset runs single-threaded after quiescence.
    remote_free_[c].store(nullptr, std::memory_order_relaxed);
  }
  next_slab_ = 0;
  bump_ = nullptr;
  slab_end_ = nullptr;
}

}  // namespace sbs::runtime
