// Convenience Job implementations: lambda-backed strands and no-op
// continuations. Kernels build their task trees out of these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "runtime/job.h"

namespace sbs::runtime {

/// A job whose strand body is a callable `void(Strand&)`, with optional
/// task/strand footprint annotations in bytes.
template <class F>
class LambdaJob final : public Job {
 public:
  LambdaJob(F fn, std::uint64_t task_bytes, std::uint64_t strand_bytes)
      : fn_(std::move(fn)),
        task_bytes_(task_bytes),
        strand_bytes_(strand_bytes) {}

  void execute(Strand& strand) override { fn_(strand); }

  std::uint64_t size(std::uint32_t block_size) const override {
    return SBJob::round_to_lines(task_bytes_, block_size);
  }
  std::uint64_t strand_size(std::uint32_t block_size) const override {
    if (strand_bytes_ == kNoSize) return size(block_size);
    return SBJob::round_to_lines(strand_bytes_, block_size);
  }

 private:
  F fn_;
  std::uint64_t task_bytes_;
  std::uint64_t strand_bytes_;
};

/// Allocate a job from a callable. `task_bytes` annotates the footprint of
/// the task the job begins (kNoSize = unannotated; space-bounded schedulers
/// refuse such jobs); `strand_bytes` annotates this strand alone. The job
/// comes from the calling worker's JobArena when one is in scope.
template <class F>
Job* make_job(F&& fn, std::uint64_t task_bytes = kNoSize,
              std::uint64_t strand_bytes = kNoSize) {
  using JobType = LambdaJob<std::decay_t<F>>;
  static_assert(alignof(JobType) <= alignof(std::max_align_t),
                "over-aligned captures are not supported by the job arena");
  return new JobType(std::forward<F>(fn), task_bytes, strand_bytes);
}

/// An empty continuation strand (used when a fork has nothing to do after
/// the join). A distinct type rather than an empty LambdaJob so engines can
/// see the emptiness (inline_runnable) and skip the fiber switch.
class NopJob final : public Job {
 public:
  explicit NopJob(std::uint64_t strand_bytes) : strand_bytes_(strand_bytes) {}

  void execute(Strand&) override {}
  bool inline_runnable() const override { return true; }

  std::uint64_t strand_size(std::uint32_t block_size) const override {
    return SBJob::round_to_lines(strand_bytes_, block_size);
  }

 private:
  std::uint64_t strand_bytes_;
};

/// An empty continuation strand; its strand footprint is a single line.
inline Job* make_nop(std::uint64_t strand_bytes = 64) {
  return new NopJob(strand_bytes);
}

}  // namespace sbs::runtime
