#include "runtime/thread_pool.h"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/strand_ops.h"
#include "util/cpu_relax.h"
#include "util/assert.h"

namespace sbs::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double seconds_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-effort pinning of the calling thread to a host CPU. Failure is fine
/// (containers, small hosts): correctness never depends on placement.
void try_pin(int host_cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(host_cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

struct alignas(64) WorkerSlot {
  ThreadBreakdown times;
};

// Tiered idle backoff: a worker whose get() returned nothing first spins
// with `pause` (cheap, keeps the thread hot for an immediate retry), then
// yields to the OS, then sleeps in short bursts. Without this, every idle
// core hammers get() in a tight loop, saturating victim deques and SB node
// locks with probe traffic — overhead charged to the *scheduler* in §3.3
// even though it is pure engine behaviour. The streak resets whenever a job
// arrives, so the fast tiers always cover the transient case; the sleep
// tier caps wakeup latency at kIdleSleep.
constexpr int kSpinRounds = 8;    // streaks 0..7: 1..128 pause iterations
constexpr int kYieldRounds = 16;  // streaks 8..23: sched_yield
constexpr auto kIdleSleep = std::chrono::microseconds(50);

void idle_backoff(int streak) {
  if (streak < kSpinRounds) {
    for (int i = 0; i < (1 << streak); ++i) util::cpu_relax();
  } else if (streak < kSpinRounds + kYieldRounds) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(kIdleSleep);
  }
}

}  // namespace

ThreadPool::ThreadPool(const machine::Topology& topo, int num_threads)
    : topo_(topo),
      num_threads_(num_threads < 0 ? topo.num_threads() : num_threads) {
  SBS_CHECK(num_threads_ >= 1 && num_threads_ <= topo.num_threads());
  arenas_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t)
    arenas_.push_back(std::make_unique<JobArena>());
}

void ThreadPool::enable_tracing(std::size_t events_per_worker) {
  recorder_ =
      std::make_unique<trace::Recorder>(num_threads_, events_per_worker);
}

RunStats ThreadPool::run(Scheduler& sched, Job* root_job) {
  sched.start(topo_, num_threads_);

  if (recorder_) recorder_->begin_run(/*virtual_time=*/false, 1e9);
  trace::Scope trace_scope(recorder_.get());
  trace::Recorder* const rec = recorder_.get();

  StrandOps::Root root = StrandOps::make_root(root_job);
  std::atomic<bool> finished{false};
  std::vector<WorkerSlot> slots(static_cast<std::size_t>(num_threads_));

  const auto wall_start = Clock::now();
  sched.add(root_job, /*thread_id=*/0);

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  auto worker = [&](int tid) {
    try_pin(static_cast<int>(static_cast<unsigned>(tid) % host_cpus));
    JobArena::Scope arena_scope(arenas_[static_cast<std::size_t>(tid)].get());
    ThreadBreakdown& bd = slots[static_cast<std::size_t>(tid)].times;
    std::vector<Job*> to_add;
    int idle_streak = 0;
    using trace::EventKind;
    // Acquire pairs with the release store below: a worker that sees
    // `finished` also sees the root job's results.
    while (!finished.load(std::memory_order_acquire)) {
      auto t0 = Clock::now();
      if (rec) rec->record(tid, EventKind::kGetBegin, rec->ticks_of(t0));
      Job* job = sched.get(tid);
      auto t1 = Clock::now();
      bd.get_s += seconds_between(t0, t1);
      if (rec) {
        rec->record(tid, EventKind::kGetEnd, rec->ticks_of(t1), 0,
                    job != nullptr ? 1 : 0);
      }
      if (job == nullptr) {
        ++bd.empty_wakeups;
        idle_backoff(idle_streak++);
        auto t2 = Clock::now();
        bd.empty_s += seconds_between(t1, t2);
        if (rec) {
          rec->record(tid, EventKind::kEmpty, rec->ticks_of(t1),
                      rec->ticks_of(t2) - rec->ticks_of(t1));
        }
        continue;
      }
      idle_streak = 0;

      Strand strand(tid, num_threads_);
      auto t2 = Clock::now();
      job->execute(strand);
      auto t3 = Clock::now();
      bd.active_s += seconds_between(t2, t3);
      ++bd.strands;
      if (rec) {
        rec->record(tid, EventKind::kStrand, rec->ticks_of(t2),
                    rec->ticks_of(t3) - rec->ticks_of(t2));
      }

      const bool completed = !strand.forked();
      sched.done(job, tid, completed);
      auto t4 = Clock::now();
      bd.done_s += seconds_between(t3, t4);
      if (rec) {
        rec->record(tid, EventKind::kDone, rec->ticks_of(t3),
                    rec->ticks_of(t4) - rec->ticks_of(t3));
      }

      to_add.clear();
      bool root_completed = false;
      StrandOps::settle(job, strand, to_add, root_completed);
      if (rec) {
        if (strand.forked()) {
          rec->record_now(tid, EventKind::kFork, to_add.size());
        } else if (!to_add.empty()) {
          rec->record_now(tid, EventKind::kJoin);
        }
      }

      auto t5 = Clock::now();
      for (Job* a : to_add) sched.add(a, tid);
      auto t6 = Clock::now();
      bd.add_s += seconds_between(t5, t6);
      if (rec) {
        rec->record(tid, EventKind::kAdd, rec->ticks_of(t5),
                    rec->ticks_of(t6) - rec->ticks_of(t5));
      }

      // Release publishes the completed root's writes to every worker's
      // acquire load at the top of the loop.
      if (root_completed) finished.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid)
    threads.emplace_back(worker, tid);
  worker(0);
  for (auto& t : threads) t.join();

  RunStats stats;
  stats.wall_s = seconds_since(wall_start);
  stats.per_thread.reserve(slots.size());
  for (const auto& s : slots) stats.per_thread.push_back(s.times);

  sched.finish();
  delete root.sentinel;
  return stats;
}

}  // namespace sbs::runtime
