#include "runtime/thread_pool.h"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/strand_ops.h"
#include "util/assert.h"

namespace sbs::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double seconds_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-effort pinning of the calling thread to a host CPU. Failure is fine
/// (containers, small hosts): correctness never depends on placement.
void try_pin(int host_cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(host_cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

struct alignas(64) WorkerSlot {
  ThreadBreakdown times;
};

}  // namespace

ThreadPool::ThreadPool(const machine::Topology& topo, int num_threads)
    : topo_(topo),
      num_threads_(num_threads < 0 ? topo.num_threads() : num_threads) {
  SBS_CHECK(num_threads_ >= 1 && num_threads_ <= topo.num_threads());
}

void ThreadPool::enable_tracing(std::size_t events_per_worker) {
  recorder_ =
      std::make_unique<trace::Recorder>(num_threads_, events_per_worker);
}

RunStats ThreadPool::run(Scheduler& sched, Job* root_job) {
  sched.start(topo_, num_threads_);

  if (recorder_) recorder_->begin_run(/*virtual_time=*/false, 1e9);
  trace::Scope trace_scope(recorder_.get());
  trace::Recorder* const rec = recorder_.get();

  StrandOps::Root root = StrandOps::make_root(root_job);
  std::atomic<bool> finished{false};
  std::vector<WorkerSlot> slots(static_cast<std::size_t>(num_threads_));

  const auto wall_start = Clock::now();
  sched.add(root_job, /*thread_id=*/0);

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  auto worker = [&](int tid) {
    try_pin(static_cast<int>(static_cast<unsigned>(tid) % host_cpus));
    ThreadBreakdown& bd = slots[static_cast<std::size_t>(tid)].times;
    std::vector<Job*> to_add;
    using trace::EventKind;
    while (!finished.load(std::memory_order_acquire)) {
      auto t0 = Clock::now();
      if (rec) rec->record(tid, EventKind::kGetBegin, rec->ticks_of(t0));
      Job* job = sched.get(tid);
      auto t1 = Clock::now();
      bd.get_s += seconds_between(t0, t1);
      if (rec) {
        rec->record(tid, EventKind::kGetEnd, rec->ticks_of(t1), 0,
                    job != nullptr ? 1 : 0);
      }
      if (job == nullptr) {
        std::this_thread::yield();
        auto t2 = Clock::now();
        bd.empty_s += seconds_between(t1, t2);
        if (rec) {
          rec->record(tid, EventKind::kEmpty, rec->ticks_of(t1),
                      rec->ticks_of(t2) - rec->ticks_of(t1));
        }
        continue;
      }

      Strand strand(tid, num_threads_);
      auto t2 = Clock::now();
      job->execute(strand);
      auto t3 = Clock::now();
      bd.active_s += seconds_between(t2, t3);
      ++bd.strands;
      if (rec) {
        rec->record(tid, EventKind::kStrand, rec->ticks_of(t2),
                    rec->ticks_of(t3) - rec->ticks_of(t2));
      }

      const bool completed = !strand.forked();
      sched.done(job, tid, completed);
      auto t4 = Clock::now();
      bd.done_s += seconds_between(t3, t4);
      if (rec) {
        rec->record(tid, EventKind::kDone, rec->ticks_of(t3),
                    rec->ticks_of(t4) - rec->ticks_of(t3));
      }

      to_add.clear();
      bool root_completed = false;
      StrandOps::settle(job, strand, to_add, root_completed);
      if (rec) {
        if (strand.forked()) {
          rec->record_now(tid, EventKind::kFork, to_add.size());
        } else if (!to_add.empty()) {
          rec->record_now(tid, EventKind::kJoin);
        }
      }

      auto t5 = Clock::now();
      for (Job* a : to_add) sched.add(a, tid);
      auto t6 = Clock::now();
      bd.add_s += seconds_between(t5, t6);
      if (rec) {
        rec->record(tid, EventKind::kAdd, rec->ticks_of(t5),
                    rec->ticks_of(t6) - rec->ticks_of(t5));
      }

      if (root_completed) finished.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid)
    threads.emplace_back(worker, tid);
  worker(0);
  for (auto& t : threads) t.join();

  RunStats stats;
  stats.wall_s = seconds_since(wall_start);
  stats.per_thread.reserve(slots.size());
  for (const auto& s : slots) stats.per_thread.push_back(s.times);

  sched.finish();
  delete root.sentinel;
  return stats;
}

}  // namespace sbs::runtime
