#include "runtime/thread_pool.h"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/strand_ops.h"
#include "util/assert.h"

namespace sbs::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-effort pinning of the calling thread to a host CPU. Failure is fine
/// (containers, small hosts): correctness never depends on placement.
void try_pin(int host_cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(host_cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

struct alignas(64) WorkerSlot {
  ThreadBreakdown times;
};

}  // namespace

ThreadPool::ThreadPool(const machine::Topology& topo, int num_threads)
    : topo_(topo),
      num_threads_(num_threads < 0 ? topo.num_threads() : num_threads) {
  SBS_CHECK(num_threads_ >= 1 && num_threads_ <= topo.num_threads());
}

RunStats ThreadPool::run(Scheduler& sched, Job* root_job) {
  sched.start(topo_, num_threads_);

  StrandOps::Root root = StrandOps::make_root(root_job);
  std::atomic<bool> finished{false};
  std::vector<WorkerSlot> slots(static_cast<std::size_t>(num_threads_));

  const auto wall_start = Clock::now();
  sched.add(root_job, /*thread_id=*/0);

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  auto worker = [&](int tid) {
    try_pin(static_cast<int>(static_cast<unsigned>(tid) % host_cpus));
    ThreadBreakdown& bd = slots[static_cast<std::size_t>(tid)].times;
    std::vector<Job*> to_add;
    while (!finished.load(std::memory_order_acquire)) {
      auto t0 = Clock::now();
      Job* job = sched.get(tid);
      bd.get_s += seconds_since(t0);
      if (job == nullptr) {
        auto t1 = Clock::now();
        std::this_thread::yield();
        bd.empty_s += seconds_since(t1);
        continue;
      }

      Strand strand(tid, num_threads_);
      auto t2 = Clock::now();
      job->execute(strand);
      bd.active_s += seconds_since(t2);
      ++bd.strands;

      const bool completed = !strand.forked();
      auto t3 = Clock::now();
      sched.done(job, tid, completed);
      bd.done_s += seconds_since(t3);

      to_add.clear();
      bool root_completed = false;
      StrandOps::settle(job, strand, to_add, root_completed);

      auto t4 = Clock::now();
      for (Job* a : to_add) sched.add(a, tid);
      bd.add_s += seconds_since(t4);

      if (root_completed) finished.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid)
    threads.emplace_back(worker, tid);
  worker(0);
  for (auto& t : threads) t.join();

  RunStats stats;
  stats.wall_s = seconds_since(wall_start);
  stats.per_thread.reserve(slots.size());
  for (const auto& s : slots) stats.per_thread.push_back(s.times);

  sched.finish();
  delete root.sentinel;
  return stats;
}

}  // namespace sbs::runtime
