// JobArena — per-worker slab allocator for the fork/join hot path.
//
// Every fork allocates a Job per child, a Task per child, and a JoinCounter;
// every join frees them. Routing those through the global heap puts one
// malloc/free pair (lock traffic, size-class lookups, cross-thread cache
// misses) on the critical path of every strand — overhead the framework
// would otherwise attribute to the scheduler under measurement (§3.3).
//
// The arena is a classic slab + size-class free-list design:
//   - blocks are carved from 64 KiB slabs at cache-line-aligned, size-class
//     strides (64..512 bytes), so two blocks never share a line with blocks
//     handed to another thread;
//   - each block starts with a 16-byte header naming its owning arena and
//     size class; the payload follows at +16 (16-byte aligned);
//   - frees by the owning worker push onto a plain per-class free list;
//   - frees by *other* workers (a stolen continuation settles on the thief)
//     push onto the owner's lock-free remote list (Treiber stack, push-only
//     producers + whole-chain exchange by the single consumer — no ABA);
//   - allocation pops local first, then drains the remote list, then bumps
//     the slab; oversized or out-of-scope allocations fall back to the heap
//     (header owner = nullptr), so the arena is always safe to bypass.
//
// Threading contract: an arena is made "current" on a thread with
// JobArena::Scope; allocate() and owner-side frees must run on the thread
// where the arena is current (one arena per worker — the engines arrange
// this). Remote frees may come from any thread at any time.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace sbs::runtime {

class JobArena {
 public:
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kGranularity = 64;  ///< block stride quantum
  static constexpr std::size_t kClasses = 8;       ///< strides 64..512 bytes
  static constexpr std::size_t kMaxBlockBytes = kClasses * kGranularity;
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;

  JobArena() = default;
  ~JobArena();

  JobArena(const JobArena&) = delete;
  JobArena& operator=(const JobArena&) = delete;

  /// Route allocations on the constructing thread through `arena` for the
  /// scope's lifetime (nullptr = heap fallback). Nests; restores on exit.
  class Scope {
   public:
    explicit Scope(JobArena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    JobArena* prev_;
  };

  /// The arena current on this thread, or nullptr.
  static JobArena* current();

  /// Allocate `bytes` of payload through the current arena (heap fallback
  /// when no arena is current or the payload exceeds kMaxBlockBytes-16).
  static void* allocate(std::size_t bytes);
  /// Free a pointer obtained from allocate(); callable from any thread.
  static void deallocate(void* payload);

  // --- introspection (tests and benches) ---
  /// Blocks allocated from this arena and not yet freed (remote frees still
  /// parked on the remote lists count as freed).
  std::uint64_t blocks_live() const {
    return live_.load(std::memory_order_relaxed);
  }
  std::uint64_t slab_count() const { return slabs_.size(); }

  /// Forget all free lists and make every slab's memory available again.
  /// Caller must guarantee no block of this arena is still live (owner
  /// thread only, no concurrent remote frees in flight).
  void reset();

 private:
  struct Header {
    JobArena* owner;    ///< nullptr = heap-backed block
    std::uint32_t cls;  ///< size-class index, 0-based
    std::uint32_t pad;
  };
  static_assert(sizeof(Header) <= kHeaderBytes, "header must fit the stride");

  struct FreeNode {
    FreeNode* next;
  };

  void* allocate_block(std::size_t payload_bytes);
  void free_local(Header* h);
  void free_remote(Header* h);
  char* carve(std::size_t stride);

  FreeNode* local_free_[kClasses] = {};
  std::atomic<FreeNode*> remote_free_[kClasses] = {};
  std::vector<char*> slabs_;       ///< raw (unaligned) slab pointers
  std::size_t next_slab_ = 0;      ///< first slab not yet bump-carved
  char* bump_ = nullptr;
  char* slab_end_ = nullptr;
  std::atomic<std::uint64_t> live_{0};
};

}  // namespace sbs::runtime
