// parallel_for built on fork/join (paper §3.1).
//
// Iterations are grouped recursively by binary splitting down to `grain`,
// which is exactly the CGC-style recursive grouping the paper applies
// (§4.1: "This can be simulated in our framework by grouping iterations
// recursively (which is what we do)"). Each subrange node is an annotated
// task, so space-bounded schedulers can anchor loop subtrees to befitting
// caches.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "runtime/job.h"
#include "runtime/jobs.h"

namespace sbs::runtime {

struct ParallelFor {
  /// Runs body(lo, hi) on subranges of [lo, hi) no larger than grain.
  using Body = std::function<void(std::size_t, std::size_t)>;
  /// footprint(lo, hi) — task size annotation in bytes for a subrange.
  using SizeFn = std::function<std::uint64_t(std::size_t, std::size_t)>;

  /// Build the loop job for [lo, hi). Fork it from a strand with your own
  /// continuation:  strand.fork({ParallelFor::make(...)}, cont);
  static Job* make(std::size_t lo, std::size_t hi, std::size_t grain,
                   Body body, SizeFn footprint) {
    SBS_CHECK(grain > 0);
    return node(lo, hi, grain, std::move(body), std::move(footprint));
  }

  /// Convenience for flat footprints: bytes_per_iter * (hi - lo).
  static Job* make_flat(std::size_t lo, std::size_t hi, std::size_t grain,
                        std::uint64_t bytes_per_iter, Body body) {
    return make(lo, hi, grain, std::move(body),
                [bytes_per_iter](std::size_t l, std::size_t h) {
                  return bytes_per_iter * (h - l);
                });
  }

 private:
  static Job* node(std::size_t lo, std::size_t hi, std::size_t grain,
                   Body body, SizeFn footprint) {
    const std::uint64_t bytes = footprint(lo, hi);
    if (hi - lo <= grain) {
      return make_job(
          [lo, hi, body = std::move(body)](Strand&) { body(lo, hi); }, bytes,
          bytes);
    }
    // Internal node: a small strand that forks the two halves. Its own
    // strand touches no data, so annotate the strand as one line.
    return make_job(
        [lo, hi, grain, body, footprint](Strand& strand) {
          const std::size_t mid = lo + (hi - lo) / 2;
          strand.fork2(node(lo, mid, grain, body, footprint),
                       node(mid, hi, grain, body, footprint), make_nop());
        },
        bytes, /*strand_bytes=*/64);
  }
};

}  // namespace sbs::runtime
