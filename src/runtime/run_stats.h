// Execution-time breakdown, per thread and aggregated (paper §3.3).
//
// Time is split into five components: active (program code), add, done, get
// (scheduler callback costs), and empty-queue (get returned nothing — the
// load-imbalance signal). The real engine fills these from wall-clock
// timers; the simulator fills them from virtual core clocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sbs::runtime {

struct ThreadBreakdown {
  double active_s = 0;
  double add_s = 0;
  double done_s = 0;
  double get_s = 0;
  double empty_s = 0;
  std::uint64_t strands = 0;  ///< strands executed by this thread
  /// get() calls that returned nothing (each one triggers an idle-backoff
  /// step on the real engine / an idle clock jump on the simulator).
  std::uint64_t empty_wakeups = 0;

  double overhead_s() const { return add_s + done_s + get_s + empty_s; }
  double total_s() const { return active_s + overhead_s(); }
};

struct RunStats {
  double wall_s = 0;  ///< wall clock (real) or makespan (virtual)
  std::vector<ThreadBreakdown> per_thread;

  /// Mean of `field` over *all* workers, including ones that stayed idle
  /// the whole run: an idle worker contributes 0 to the numerator but still
  /// counts in the denominator (the paper's §3.3 per-thread averages divide
  /// by the worker count, not by the count of busy workers — tested in
  /// test_runtime).
  double avg(double ThreadBreakdown::* field) const {
    if (per_thread.empty()) return 0;
    double sum = 0;
    for (const auto& t : per_thread) sum += t.*field;
    return sum / static_cast<double>(per_thread.size());
  }
  /// Worst single worker — max() / avg() of active time is the
  /// load-imbalance signal the trace metrics report.
  double max(double ThreadBreakdown::* field) const {
    double worst = 0;
    for (const auto& t : per_thread) worst = std::max(worst, t.*field);
    return worst;
  }
  /// Active time averaged over all threads — the paper's headline number.
  double avg_active_s() const { return avg(&ThreadBreakdown::active_s); }
  double max_active_s() const { return max(&ThreadBreakdown::active_s); }
  /// Worst-thread imbalance: max active / mean active (1.0 = perfectly
  /// even; 0 when no thread did any work).
  double imbalance() const {
    const double mean = avg_active_s();
    return mean == 0 ? 0 : max_active_s() / mean;
  }
  /// Average scheduler + load-imbalance overhead (add+done+get+empty).
  double avg_overhead_s() const {
    double sum = 0;
    for (const auto& t : per_thread) sum += t.overhead_s();
    return per_thread.empty() ? 0 : sum / static_cast<double>(per_thread.size());
  }
  double avg_empty_s() const { return avg(&ThreadBreakdown::empty_s); }
  std::uint64_t total_strands() const {
    std::uint64_t n = 0;
    for (const auto& t : per_thread) n += t.strands;
    return n;
  }
  /// Empty get() results across all workers — with idle backoff this stays
  /// modest even for long stalls (workers sleep instead of hammering get()).
  std::uint64_t total_empty_wakeups() const {
    std::uint64_t n = 0;
    for (const auto& t : per_thread) n += t.empty_wakeups;
    return n;
  }

  std::string summary() const;
};

}  // namespace sbs::runtime
