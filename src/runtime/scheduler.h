// The scheduler interface: exactly the three callbacks of paper §3.1
// (add / get / done) plus lifecycle and introspection hooks.
//
// Schedulers are concurrent modules — add/get/done may be called from any
// worker thread (real engine) or from the event loop on behalf of any
// virtual core (simulator). A scheduler must not block inside a callback.
#pragma once

#include <cstdint>
#include <string>

#include "machine/topology.h"
#include "runtime/job.h"

namespace sbs::runtime {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before execution with the machine the program will run on
  /// and the number of worker threads (≤ topology thread count).
  virtual void start(const machine::Topology& topo, int num_threads) = 0;

  /// Called after the root task completes; a scheduler may verify that its
  /// internal state drained (all queues empty, occupancy zero).
  virtual void finish() {}

  /// A fork spawned `job` (once per new child task, and once for the
  /// continuation when a join triggers). Decides where the job is queued.
  virtual void add(Job* job, int thread_id) = 0;

  /// Worker `thread_id` is idle and asks for a strand to run. May return
  /// nullptr (the "empty queue" case, charged as load-imbalance overhead).
  virtual Job* get(int thread_id) = 0;

  /// Worker `thread_id` finished executing `job`'s strand.
  /// `task_completed` is true when the strand ended without forking, i.e.
  /// the job's task (and possibly, by nesting, some of its ancestors whose
  /// joins this completion triggers) is finished.
  virtual void done(Job* job, int thread_id, bool task_completed) = 0;

  virtual std::string name() const = 0;

  /// True for space-bounded schedulers, which refuse unannotated jobs.
  virtual bool needs_size_annotations() const { return false; }

  /// One-line diagnostic (steal counts, max occupancy, ...) for reports.
  virtual std::string stats_string() const { return ""; }
};

}  // namespace sbs::runtime
