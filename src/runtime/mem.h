// Instrumented memory: the bridge between kernel code and the PMH simulator.
//
// Kernels allocate data in mem::Array<T> and perform their real computation
// on the underlying host memory (so results are exact and testable), while
// declaring the memory traffic of each strand through the thread-local
// AccessSink:
//   - touch(addr, bytes, write): one contiguous range access (a scan, a
//     block move, one random element);
//   - work(cycles): pure compute between accesses.
//
// On the real-threads engine the sink is null and every hook is a single
// predictable branch. The simulator installs a sink per virtual core; each
// hook advances that core's virtual clock through the cache hierarchy.
//
// Granularity contract: a `touch` of a multi-line range is replayed by the
// simulator line-by-line in order, so scans cost one cache lookup per line,
// not per element. Kernels therefore batch contiguous traffic into range
// touches and only issue per-element touches for data-dependent (random)
// accesses — RRG's gather, hash-partition scatters, and so on.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.h"

namespace sbs::mem {

class AccessSink {
 public:
  virtual ~AccessSink() = default;
  /// A contiguous [addr, addr+bytes) access by the current strand.
  virtual void touch(std::uintptr_t addr, std::uint64_t bytes, bool write) = 0;
  /// `cycles` of pure computation by the current strand.
  virtual void work(std::uint64_t cycles) = 0;
  /// Allocation stream of code running under this sink (see arena below).
  /// The simulator returns the virtual core id so that mid-run allocations
  /// are placed deterministically; the default (host stream) is for
  /// everything outside simulated strands.
  virtual int stream_id() const { return -1; }
};

/// The sink of the strand running on this (real or fiber) thread context.
/// Null outside simulation.
extern thread_local AccessSink* tl_sink;

inline void touch(const void* addr, std::uint64_t bytes, bool write) {
  if (tl_sink != nullptr)
    tl_sink->touch(reinterpret_cast<std::uintptr_t>(addr), bytes, write);
}
inline void touch_read(const void* addr, std::uint64_t bytes) {
  touch(addr, bytes, false);
}
inline void touch_write(const void* addr, std::uint64_t bytes) {
  touch(addr, bytes, true);
}
inline void work(std::uint64_t cycles) {
  if (tl_sink != nullptr) tl_sink->work(cycles);
}

/// Deterministic allocation arena backing mem::Array.
///
/// Chunks are 2 MB-aligned and carved from one reserved region at a fixed
/// address hint, bump-allocated with exact-size recycling. Two benefits:
/// (i) simulated page→socket homes and cache set indices depend only on the
/// allocation *sequence*, not on ASLR, so every experiment is reproducible
/// across process runs; (ii) freed chunks release their physical pages
/// (MADV_DONTNEED) but keep their virtual address for the next same-size
/// array — repeated repetitions reuse identical addresses.
///
/// The region is split into a host stream plus one *transient stream* per
/// virtual core (keyed by AccessSink::stream_id() of the installed sink).
/// Arrays allocated inside a simulated strand come from the owning core's
/// stream, so their addresses are a pure function of that core's
/// deterministic execution — not of how window phases interleave on host
/// threads. Without this, a kernel that allocates scratch arrays mid-run
/// would see different page→socket homes under different host_threads
/// values, breaking the engine's bit-identical-results guarantee. The
/// engine calls reset_transient() at the start of every run so repeated
/// runs in one process replay identical addresses.
namespace arena {
void* alloc(std::size_t bytes);          ///< bytes rounded up to 2 MB chunks
void free(void* ptr, std::size_t bytes);
std::size_t allocated_bytes();           ///< current live total (diagnostics)
/// Rewind every per-core transient stream (all its chunks must have been
/// freed) so the next run's mid-strand allocations replay the same
/// addresses. Host-stream allocations (kernel inputs) are untouched.
void reset_transient();
}  // namespace arena

/// RAII installer used by the simulator around strand execution.
class SinkScope {
 public:
  explicit SinkScope(AccessSink* sink) : prev_(tl_sink) { tl_sink = sink; }
  ~SinkScope() { tl_sink = prev_; }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  AccessSink* prev_;
};

/// A fixed-size array of trivially-copyable elements, allocated on a page
/// boundary (the simulator maps pages to memory sockets by address, mirroring
/// the paper's hugepage placement). Element access is raw; instrumentation is
/// explicit via the touch helpers or the read()/write() convenience methods.
template <class T>
class Array {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Array() = default;
  explicit Array(std::size_t n) { reset(n); }
  ~Array() { release(); }

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;
  Array(Array&& other) noexcept { *this = std::move(other); }
  Array& operator=(Array&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      n_ = other.n_;
      other.data_ = nullptr;
      other.n_ = 0;
    }
    return *this;
  }

  void reset(std::size_t n) {
    release();
    n_ = n;
    if (n == 0) return;
    // 2 MB chunks from the deterministic arena: matches the hugepage
    // allocation of the paper's setup and gives the simulator clean,
    // reproducible page→socket homes.
    data_ = static_cast<T*>(arena::alloc(n * sizeof(T)));
  }

  std::size_t size() const { return n_; }
  std::uint64_t bytes() const { return n_ * sizeof(T); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Instrumented single-element access (use for data-dependent patterns).
  T read(std::size_t i) const {
    touch_read(&data_[i], sizeof(T));
    return data_[i];
  }
  void write(std::size_t i, const T& v) {
    touch_write(&data_[i], sizeof(T));
    data_[i] = v;
  }

  /// Declare a scan over [lo, hi) without per-element hooks.
  void touch_range(std::size_t lo, std::size_t hi, bool write_access) const {
    SBS_ASSERT(lo <= hi && hi <= n_);
    if (hi > lo) touch(&data_[lo], (hi - lo) * sizeof(T), write_access);
  }

 private:
  void release() {
    if (data_ != nullptr) arena::free(data_, n_ * sizeof(T));
    data_ = nullptr;
    n_ = 0;
  }

  T* data_ = nullptr;
  std::size_t n_ = 0;
};

}  // namespace sbs::mem
