// Engine-shared mechanics for executing strands and wiring forks/joins.
//
// Both engines (the real thread pool and the PMH simulator) drive the same
// sequence for every strand, so the fork/join bookkeeping lives here:
//
//   Job* j = sched.get(tid);                 // timed as "get"
//   Strand s(tid, P);
//   j->execute(s);                           // timed as "active"
//   bool completed = !s.forked();
//   sched.done(j, tid, completed);           // timed as "done"
//   StrandOps::settle(j, s, to_add, root_completed);
//   for (Job* a : to_add) sched.add(a, tid); // timed as "add"
//   (settle deleted j, its task if completed, and any spent JoinCounter)
//
// settle() performs, per paper §3.1: on a fork, creation of the join counter
// and of one fresh Task per child; on a strand end, join-counter notification
// releasing the continuation strand of the enclosing task.
//
// Every new/delete below goes through the calling worker's JobArena (the
// types are ArenaBacked — see job_arena.h), so fork/join bookkeeping does
// not touch the global heap on the hot path. A job may be freed by a
// different worker than the one that allocated it (stolen continuations);
// the arena's remote free list handles that.
#pragma once

#include <vector>

#include "runtime/job.h"

namespace sbs::runtime {

class StrandOps {
 public:
  /// Prepare a job to serve as the computation root. Returns the sentinel
  /// counter whose trigger marks the end of the whole computation; the
  /// caller owns the sentinel and frees it after the run (the root Task,
  /// like every task, is freed by settle() when it completes).
  struct Root {
    Task* task;
    JoinCounter* sentinel;
  };
  static Root make_root(Job* root_job) {
    Task* task = new Task(nullptr);
    auto* sentinel = new JoinCounter(1, nullptr);
    root_job->task_ = task;
    root_job->on_complete_ = sentinel;
    root_job->starts_task_ = true;
    return {task, sentinel};
  }

  /// Service-mode submission (src/service/): wire `user_root` as a fresh
  /// root task whose completion releases `completion` — a service-owned job
  /// that is itself a root task, so a scheduler can host many concurrent
  /// submissions. When `completion`'s strand ends, settle() triggers the
  /// returned sentinel and reports root_completed; the service runtime maps
  /// that back to the submission (via state `completion` stashed during its
  /// execute()) instead of stopping the engine, and frees the sentinel.
  static JoinCounter* make_submission(Job* user_root, Job* completion) {
    completion->task_ = new Task(nullptr);
    auto* sentinel = new JoinCounter(1, nullptr);
    completion->on_complete_ = sentinel;
    completion->starts_task_ = true;
    user_root->task_ = new Task(nullptr);
    user_root->on_complete_ = new JoinCounter(1, completion);
    user_root->starts_task_ = true;
    return sentinel;
  }

  /// Post-execution bookkeeping. Appends to `to_add` the jobs the engine
  /// must pass to Scheduler::add (fork children, or a released continuation).
  /// Sets `root_completed` when the sentinel counter triggers. Deletes the
  /// job, and — when its task completed — the Task.
  static void settle(Job* job, Strand& strand, std::vector<Job*>& to_add,
                     bool& root_completed) {
    root_completed = false;
    if (strand.forked()) {
      Task* task = job->task_;
      Job* cont = strand.continuation();
      auto* jc = new JoinCounter(static_cast<int>(strand.children().size()),
                                 cont);
      // The continuation is the next strand of the same task.
      cont->task_ = task;
      cont->on_complete_ = job->on_complete_;
      cont->starts_task_ = false;
      for (Job* child : strand.children()) {
        child->task_ = new Task(task);
        child->on_complete_ = jc;
        child->starts_task_ = true;
        to_add.push_back(child);
      }
    } else {
      // Strand ended: its task is complete. Notify the enclosing join.
      JoinCounter* jc = job->on_complete_;
      Task* task = job->task_;
      SBS_ASSERT(jc != nullptr);
      // acq_rel: release publishes this strand's writes to whoever takes
      // the counter to zero; acquire makes the last decrementer see every
      // sibling's writes before running/deleting the continuation.
      if (jc->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (jc->continuation != nullptr) {
          to_add.push_back(jc->continuation);
          delete jc;
        } else {
          root_completed = true;  // sentinel is freed by the engine
        }
      }
      delete task;
    }
    delete job;
  }

  /// Number of strands a fork will hand to the scheduler (children now, the
  /// continuation later) — used by engines for accounting only.
  static std::size_t fork_width(Strand& strand) {
    return strand.forked() ? strand.children().size() + 1 : 0;
  }
};

}  // namespace sbs::runtime
