// The real-threads execution engine (paper §3.2): one POSIX thread pinned
// per core, each repeatedly asking the scheduler for strands.
//
// On machines smaller than the described topology the pool oversubscribes
// (pinning becomes best-effort); results stay correct — this engine is the
// correctness/validation vehicle, while the PMH simulator is the
// measurement vehicle.
#pragma once

#include <memory>
#include <vector>

#include "machine/topology.h"
#include "runtime/job.h"
#include "runtime/job_arena.h"
#include "runtime/run_stats.h"
#include "runtime/scheduler.h"
#include "trace/recorder.h"

namespace sbs::runtime {

class ThreadPool {
 public:
  /// num_threads <= topo.num_threads(); -1 means all of them.
  explicit ThreadPool(const machine::Topology& topo, int num_threads = -1);

  /// Execute the computation rooted at `root_job` under `sched`. Takes
  /// ownership of the job tree. Blocks until the root task completes.
  RunStats run(Scheduler& sched, Job* root_job);

  int num_threads() const { return num_threads_; }

  /// Own a trace recorder: subsequent run()s record scheduler lifecycle
  /// events with real (nanosecond) timestamps. Each run resets the rings,
  /// so export (trace::WriteChromeTrace / Analyze) before the next run.
  void enable_tracing(
      std::size_t events_per_worker = trace::Recorder::kDefaultCapacity);
  /// The pool's recorder; nullptr unless enable_tracing() was called.
  trace::Recorder* recorder() { return recorder_.get(); }

 private:
  const machine::Topology& topo_;
  int num_threads_;
  std::unique_ptr<trace::Recorder> recorder_;
  /// One JobArena per worker, reused across run()s: fork/join allocations
  /// recycle through per-worker free lists instead of the global heap.
  std::vector<std::unique_ptr<JobArena>> arenas_;
};

}  // namespace sbs::runtime
