// Nested-parallel computation model: tasks, strands, and jobs (paper §2, §3.1).
//
// A Job is the unit the framework hands to schedulers: one strand of a task,
// whose control flow is sequential with an optional *terminal* fork. A task
// is a chain of strands `l1; b1; l2; ...` — the fork at the end of strand
// l_k spawns the tasks of parallel block b_k plus a continuation job for
// strand l_{k+1} of the same task. When the last strand of a task ends
// without forking, the task is complete and the enclosing fork's join
// counter is notified.
//
// Space-bounded schedulers additionally need size annotations (paper §3.1,
// "SBJob"): size(B) — distinct footprint of the whole task, and
// strand_size(B) — footprint of the current strand alone. Unannotated jobs
// report kNoSize; a strand without its own size defaults to its task's size
// (paper §4.1 footnote 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/job_arena.h"
#include "util/assert.h"

namespace sbs::runtime {

class Job;
class Strand;

inline constexpr std::uint64_t kNoSize = ~std::uint64_t{0};

/// Mixin routing a type's new/delete through the calling worker's JobArena
/// (heap fallback outside an engine). Jobs, Tasks and JoinCounters are
/// allocated at every fork and freed at every join — the arena keeps that
/// churn off the global heap and off the measured scheduler overheads.
struct ArenaBacked {
  static void* operator new(std::size_t bytes) {
    return JobArena::allocate(bytes);
  }
  static void operator delete(void* p) noexcept { JobArena::deallocate(p); }
};

/// Join bookkeeping for one parallel block: when `remaining` task
/// completions have been observed, the continuation strand is released.
struct JoinCounter : ArenaBacked {
  explicit JoinCounter(int count, Job* cont)
      : remaining(count), continuation(cont) {}
  std::atomic<int> remaining;
  Job* continuation;  ///< nullptr only for the root sentinel.
};

/// Per-task bookkeeping created when a task is spawned at a fork. Scheduler
/// state (e.g. the cache a space-bounded scheduler anchored the task to)
/// lives in the `anchor`/`attr` slots so the same struct serves every
/// scheduler without casts.
struct Task : ArenaBacked {
  explicit Task(Task* parent_task) : parent(parent_task) {}
  Task* parent;  ///< enclosing task; nullptr for the root task.

  // --- scheduler slots (owned by the active scheduler) ---
  int anchor = -1;             ///< cache node id the task is anchored to.
  std::uint64_t size = 0;      ///< S(t;B) as computed at anchoring time.
  bool maximal = false;        ///< true if this task is level-i maximal.
  std::uint64_t attr = 0;      ///< free slot for scheduler-specific data.
};

/// One strand of a task. Derive and implement execute(); the body may call
/// Strand::fork() at most once, as its final action. Concrete jobs are
/// arena-allocated (see ArenaBacked); subclasses must not require alignment
/// beyond alignof(std::max_align_t).
class Job : public ArenaBacked {
 public:
  virtual ~Job() = default;

  /// Run the strand on the calling worker.
  virtual void execute(Strand& strand) = 0;

  /// Distinct-footprint size S(t;B) in bytes of the task this job begins.
  /// Only meaningful on jobs that start a task (fork children / roots).
  /// kNoSize means "not annotated" — space-bounded schedulers will refuse it.
  virtual std::uint64_t size(std::uint32_t block_size) const {
    (void)block_size;
    return kNoSize;
  }

  /// Footprint of this strand alone; defaults to the enclosing task's size.
  virtual std::uint64_t strand_size(std::uint32_t block_size) const {
    return size(block_size);
  }

  /// True if execute() is known to perform no simulated memory accesses and
  /// no simulated work — e.g. an empty join continuation. The simulator may
  /// run such strands directly on its pump without a fiber switch
  /// (engine.cpp); an engine asserts the promise by installing a trapping
  /// access sink while the strand runs. Conservative default: false.
  virtual bool inline_runnable() const { return false; }

  Task* task() const { return task_; }
  /// True if this job is the first strand of its task (set by the framework).
  bool starts_task() const { return starts_task_; }

 private:
  friend class StrandOps;
  Task* task_ = nullptr;
  JoinCounter* on_complete_ = nullptr;
  bool starts_task_ = false;
};

/// Convenience base for annotated jobs: stores byte sizes and exposes them
/// through the virtual interface (footprints measured in whole bytes are a
/// faithful S(t;B) for the dense-array kernels in this repo, where the
/// distinct-line count is just ceil(bytes / B)).
class SBJob : public Job {
 public:
  SBJob(std::uint64_t task_bytes, std::uint64_t strand_bytes = kNoSize)
      : task_bytes_(task_bytes), strand_bytes_(strand_bytes) {}

  std::uint64_t size(std::uint32_t block_size) const override {
    return round_to_lines(task_bytes_, block_size);
  }
  std::uint64_t strand_size(std::uint32_t block_size) const override {
    if (strand_bytes_ == kNoSize) return size(block_size);
    return round_to_lines(strand_bytes_, block_size);
  }

  static std::uint64_t round_to_lines(std::uint64_t bytes,
                                      std::uint32_t block_size) {
    if (bytes == kNoSize || block_size == 0) return bytes;
    return (bytes + block_size - 1) / block_size * block_size;
  }

 private:
  std::uint64_t task_bytes_;
  std::uint64_t strand_bytes_;
};

/// Execution context handed to Job::execute. Captures the (at most one,
/// terminal) fork request; the engine turns it into scheduler callbacks.
class Strand {
 public:
  Strand(int thread_id, int num_threads)
      : thread_id_(thread_id), num_threads_(num_threads) {}

  /// Spawn `children` as parallel subtasks and `continuation` as the next
  /// strand of the calling task, to run after all children complete.
  /// Must be the last action of execute(); children must be non-empty and
  /// continuation non-null.
  void fork(std::vector<Job*> children, Job* continuation) {
    SBS_CHECK_MSG(!forked_, "a strand may fork at most once");
    SBS_CHECK_MSG(!children.empty(), "fork needs at least one child");
    SBS_CHECK_MSG(continuation != nullptr, "fork needs a continuation");
    forked_ = true;
    children_ = std::move(children);
    continuation_ = continuation;
  }

  /// Binary fork — the common case.
  void fork2(Job* left, Job* right, Job* continuation) {
    fork({left, right}, continuation);
  }

  int thread_id() const { return thread_id_; }
  int num_threads() const { return num_threads_; }

  // --- framework side ---
  bool forked() const { return forked_; }
  std::vector<Job*>& children() { return children_; }
  Job* continuation() const { return continuation_; }

 private:
  int thread_id_;
  int num_threads_;
  bool forked_ = false;
  std::vector<Job*> children_;
  Job* continuation_ = nullptr;
};

}  // namespace sbs::runtime
