// Offline (replay) invariant checking over JSONL traces — the second half
// of the verification tooling. Where verify::VerifyingScheduler checks a
// *live* run, CheckTrace re-verifies a finished one from its exported
// evidence alone: the machine config embedded in the trace header plus the
// per-event payloads (anchor depth/node/size/ceiling, steal victims,
// fork/join counts).
//
// Checked properties, in increasing strictness as the trace allows:
//   always (any schema, drops ok)
//     - every anchor names an existing cache node whose tree depth matches
//       the event's depth payload, on the admitting worker's root-to-leaf
//       path (a worker may only admit into its own cache subtree);
//     - anchored sizes befit their level: S ≤ σM_d at the anchor depth and
//       S > σM_{d+1} one level deeper (a task must not be anchored above
//       its befitting cache) — needs the header's sigma and config;
//     - the skip-level ceiling is strictly above the anchor depth;
//     - steal events name a live victim: a valid worker id ≠ the thief.
//   complete traces (no ring-buffer drops)
//     - anchors and releases pair up: equal counts and, per cache node,
//       charged bytes equal released bytes (occupancy drains to zero);
//     - forks and joins balance: every fork's join counter fires once.
//   complete virtual-time traces (deterministic global event order)
//     - chronological occupancy replay: anchored-task bytes at every cache
//       never exceed its capacity M_i, and never go negative.
//
// Real-time traces skip the chronological replay because steady_clock
// timestamps taken on different cores are not a total order; the
// order-independent balance checks still run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/jsonl_trace.h"

namespace sbs::verify {

struct TraceCheckResult {
  std::uint64_t checks = 0;
  std::uint64_t events = 0;
  std::uint64_t anchors = 0;
  std::uint64_t releases = 0;
  std::uint64_t forks = 0;
  std::uint64_t joins = 0;
  bool replayed_occupancy = false;  ///< chronological replay ran
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// Human-readable summary ("trace_check: OK ..." or the messages).
  std::string report() const;
};

/// Re-verify a parsed JSONL trace. Structural problems (bad node ids,
/// malformed config text) are reported as violations, never as crashes.
TraceCheckResult CheckTrace(const trace::JsonlTrace& trace);

/// Convenience: read the file at `path` and check it. A parse failure
/// becomes the single violation in the result.
TraceCheckResult CheckTraceFile(const std::string& path);

}  // namespace sbs::verify
