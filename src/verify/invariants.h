// Online invariant checking for schedulers (the --verify mode).
//
// VerifyingScheduler is a decorator: it wraps any runtime::Scheduler and
// re-checks, on every add/get/done callback, the properties the paper's
// space-bounded schedulers promise (§4.1) plus generic fork/join
// well-formedness. The checker keeps *shadow* state — its own occupancy
// counters, befit-depth computation, and job/task lifecycle sets — derived
// only from the callback arguments and the machine topology, so a
// bookkeeping bug in the scheduler cannot hide itself.
//
// Checked invariants:
//   lifecycle    every job is added exactly once, executed exactly once,
//                completed exactly once; nothing pending at finish; every
//                started task completes (join counters balance).
//   anchoring    a maximal task is anchored to the befitting cache on the
//                admitting worker's root-to-leaf path — σM_{d+1} <
//                S(t,B_d) ≤ σM_d at the anchor depth d — with its
//                skip-level charge ceiling equal to the parent's anchor
//                depth recorded when the task was spawned.
//   inheritance  a non-maximal task inherits its parent's anchor and
//                charges no additional task space; the root task is
//                anchored at the root.
//   boundedness  at every cache on an admitted task's charge path, shadow
//                occupancy (anchored task sizes plus µ-capped live strand
//                charges) never exceeds the capacity M_i at admission.
//   accounting   shadow occupancy equals the scheduler's own occupancy
//                counters after every callback, and both drain to zero at
//                quiescence (generalizing the finish()-time assert in
//                sched/sb.cpp).
//
// Cost when off: zero — the engine simply runs the unwrapped scheduler.
// Cost when on: one global mutex serializes callbacks (the shadow state
// must observe them in a single total order), so verified runs measure
// correctness, not performance.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/scheduler.h"
#include "util/thread_safety.h"

namespace sbs::sched {
class SpaceBounded;
}

namespace sbs::verify {

struct Options {
  /// Keep at most this many violation messages (further ones only count).
  std::size_t max_violations = 64;
};

class VerifyingScheduler final : public runtime::Scheduler {
 public:
  explicit VerifyingScheduler(std::unique_ptr<runtime::Scheduler> inner,
                              Options options = Options());
  ~VerifyingScheduler() override;

  // --- runtime::Scheduler (forwards to the wrapped scheduler) ---
  void start(const machine::Topology& topo, int num_threads) override;
  void finish() override;
  void add(runtime::Job* job, int thread_id) override;
  runtime::Job* get(int thread_id) override;
  void done(runtime::Job* job, int thread_id, bool task_completed) override;
  std::string name() const override;
  bool needs_size_annotations() const override;
  std::string stats_string() const override;

  runtime::Scheduler& inner() { return *inner_; }

  // --- results (read after the run; not thread-safe during one) ---
  bool ok() const { return total_violations_ == 0; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t total_violations() const { return total_violations_; }
  const std::vector<std::string>& violations() const { return violations_; }
  /// Multi-line human-readable summary ("verify: OK ..." or the messages).
  std::string report() const;

 private:
  struct TaskInfo {
    int anchor = -1;          ///< -1 while a maximal task waits in a bucket
    int anchor_depth = -1;
    int ceiling_depth = -1;   ///< parent's anchor depth at spawn time
    std::uint64_t size = 0;
    bool maximal = false;
    bool anchored = false;    ///< maximal task admitted (charges held)
  };
  struct StrandCharge {
    int node = -1;
    std::uint64_t amount = 0;
  };
  struct ThreadState {
    runtime::Job* running = nullptr;
    std::vector<StrandCharge> strand_charges;
  };

  void violation(const std::string& what) SBS_REQUIRES(mutex_);
  std::uint64_t capacity_at(int depth) const;
  std::uint64_t task_size_at(const runtime::Job& job, int depth) const;
  int befit_depth(const runtime::Job& job) const;
  /// Shadow mirror of SpaceBounded::charge_strand for `job` on `thread_id`.
  void shadow_charge_strand(runtime::Job* job, int thread_id)
      SBS_REQUIRES(mutex_);
  void shadow_release_path(int anchor_node, int ceiling_depth,
                           std::uint64_t bytes) SBS_REQUIRES(mutex_);
  /// After-callback cross-check: shadow occupancy == scheduler occupancy.
  void check_occupancy_mirror(const char* when) SBS_REQUIRES(mutex_);
  void check_admission(runtime::Job* job, int thread_id) SBS_REQUIRES(mutex_);
  void check_added_task(runtime::Job* job) SBS_REQUIRES(mutex_);

  std::unique_ptr<runtime::Scheduler> inner_;
  Options options_;
  /// The wrapped scheduler when it is space-bounded (enables the anchoring
  /// and occupancy checks); nullptr for WS/PWS.
  sched::SpaceBounded* sb_ = nullptr;

  const machine::Topology* topo_ = nullptr;
  double sigma_ = 0.0;
  double mu_ = 0.0;
  bool mu_cap_ = true;
  bool use_strand_sizes_ = true;

  /// One mutex serializes every callback; held *across* the inner call so
  /// shadow state and scheduler state advance in the same total order.
  util::Mutex mutex_;
  std::vector<std::uint64_t> shadow_occupied_ SBS_GUARDED_BY(mutex_);
  std::unordered_set<runtime::Job*> pending_ SBS_GUARDED_BY(mutex_);
  std::unordered_map<runtime::Job*, int> running_ SBS_GUARDED_BY(mutex_);
  std::unordered_map<runtime::Task*, TaskInfo> tasks_ SBS_GUARDED_BY(mutex_);
  std::vector<ThreadState> threads_ SBS_GUARDED_BY(mutex_);
  std::uint64_t adds_ SBS_GUARDED_BY(mutex_) = 0;
  std::uint64_t gets_ SBS_GUARDED_BY(mutex_) = 0;
  std::uint64_t dones_ SBS_GUARDED_BY(mutex_) = 0;
  std::uint64_t tasks_started_ SBS_GUARDED_BY(mutex_) = 0;
  std::uint64_t tasks_completed_ SBS_GUARDED_BY(mutex_) = 0;

  std::uint64_t checks_ = 0;
  std::uint64_t total_violations_ = 0;
  std::vector<std::string> violations_;
};

/// Convenience: wrap `inner` for a --verify run.
std::unique_ptr<VerifyingScheduler> Wrap(
    std::unique_ptr<runtime::Scheduler> inner, Options options = Options());

}  // namespace sbs::verify
