#include "verify/trace_check.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "machine/topology.h"

namespace sbs::verify {

using trace::EventKind;

namespace {

struct Checker {
  const trace::JsonlTrace& tr;
  TraceCheckResult result;
  std::optional<machine::Topology> topo;

  explicit Checker(const trace::JsonlTrace& t) : tr(t) {}

  void violation(std::size_t index, const std::string& what) {
    if (result.violations.size() < 64) {
      result.violations.push_back("event " + std::to_string(index) + ": " +
                                  what);
    } else if (result.violations.size() == 64) {
      result.violations.push_back("... further violations suppressed");
    }
  }
  void global_violation(const std::string& what) {
    result.violations.push_back(what);
  }

  bool valid_worker(int w) const {
    return w >= 0 && (tr.workers == 0 || w < tr.workers);
  }

  std::uint64_t capacity_at(int depth) const {
    return topo->config().levels[static_cast<std::size_t>(depth)].size;
  }

  /// Structural validity of an anchor/release payload; returns the node id
  /// or -1 when the payload is unusable.
  int check_anchor_shape(std::size_t i, const trace::Event& e,
                         const char* what) {
    const int node = static_cast<int>(e.b);
    const int depth = static_cast<int>(e.a);
    ++result.checks;
    if (node < 0 || node >= topo->num_nodes()) {
      violation(i, std::string(what) + " names cache node " +
                       std::to_string(node) + " outside the machine");
      return -1;
    }
    if (topo->node(node).depth != depth) {
      violation(i, std::string(what) + " depth payload " +
                       std::to_string(depth) + " does not match node " +
                       std::to_string(node) + "'s tree depth " +
                       std::to_string(topo->node(node).depth));
      return -1;
    }
    const int ceiling = static_cast<int>(e.c);
    if (tr.schema >= 2 && ceiling >= depth) {
      violation(i, std::string(what) + " skip-level ceiling " +
                       std::to_string(ceiling) +
                       " is not strictly above the anchor depth " +
                       std::to_string(depth));
    }
    return node;
  }

  void check_anchor(std::size_t i, const trace::JsonlTrace::Record& r) {
    ++result.anchors;
    const int node = check_anchor_shape(i, r.event, "anchor");
    if (node < 0) return;
    const int depth = topo->node(node).depth;
    ++result.checks;
    if (!topo->thread_in_cluster(r.worker, node)) {
      violation(i, "worker " + std::to_string(r.worker) +
                       " anchored a task at node " + std::to_string(node) +
                       " outside its cache subtree");
    }
    if (tr.params.sigma > 0) {
      const double size = static_cast<double>(r.event.dur);
      const std::uint64_t cap = capacity_at(depth);
      ++result.checks;
      if (cap != 0 &&
          size > tr.params.sigma * static_cast<double>(cap)) {
        violation(i, "anchored task of " + std::to_string(r.event.dur) +
                         " bytes exceeds sigma*M at depth " +
                         std::to_string(depth));
      }
      if (depth + 1 <= topo->num_cache_levels()) {
        // Befitting means the *deepest* fitting cache: a task that also
        // fits one level deeper was anchored too high (mis-anchoring).
        ++result.checks;
        if (size <= tr.params.sigma *
                        static_cast<double>(capacity_at(depth + 1))) {
          violation(i, "anchored task of " + std::to_string(r.event.dur) +
                           " bytes at depth " + std::to_string(depth) +
                           " also fits sigma*M one level deeper — anchored "
                           "above its befitting cache");
        }
      }
    }
  }

  void check_steal(std::size_t i, const trace::JsonlTrace::Record& r) {
    const int victim = static_cast<int>(r.event.a);
    ++result.checks;
    if (!valid_worker(victim)) {
      violation(i, "steal names victim " + std::to_string(victim) +
                       " outside the live worker set");
    } else if (victim == r.worker) {
      violation(i, "worker " + std::to_string(r.worker) + " stole from "
                   "itself");
    }
  }

  void run() {
    // Header / config plausibility first: everything else needs a topology.
    if (tr.params.config_text.empty()) {
      global_violation(
          "trace header carries no machine config (schema 1 trace?) — "
          "schedule-level checks need a schema 2 trace");
      return;
    }
    try {
      topo.emplace(machine::ParseConfig(tr.params.config_text));
    } catch (const std::exception& e) {
      global_violation(std::string("embedded machine config does not "
                                   "parse: ") +
                       e.what());
      return;
    }
    ++result.checks;
    if (tr.workers > topo->num_threads()) {
      global_violation("trace names " + std::to_string(tr.workers) +
                       " workers but the machine has only " +
                       std::to_string(topo->num_threads()) + " threads");
    }

    // Per-event structural checks, in file order.
    std::uint64_t charged = 0, released = 0;
    std::vector<std::int64_t> net(
        static_cast<std::size_t>(topo->num_nodes()), 0);
    for (std::size_t i = 0; i < tr.records.size(); ++i) {
      const auto& r = tr.records[i];
      ++result.events;
      ++result.checks;
      if (!valid_worker(r.worker)) {
        violation(i, "worker id " + std::to_string(r.worker) +
                         " out of range");
        continue;
      }
      switch (r.event.kind) {
        case EventKind::kAnchor:
          check_anchor(i, r);
          ++charged;
          apply_path(r.event, net, +1);
          break;
        case EventKind::kRelease:
          ++result.releases;
          if (check_anchor_shape(i, r.event, "release") >= 0) {
            ++released;
            apply_path(r.event, net, -1);
          }
          break;
        case EventKind::kStealAttempt:
        case EventKind::kStealSuccess:
          check_steal(i, r);
          break;
        case EventKind::kFork: ++result.forks; break;
        case EventKind::kJoin: ++result.joins; break;
        default: break;
      }
    }

    // Order-independent balance checks need every event to have survived
    // the ring buffers.
    if (tr.dropped_events != 0) return;
    ++result.checks;
    if (result.anchors != result.releases) {
      global_violation("anchor/release counts unbalanced: " +
                       std::to_string(result.anchors) + " anchors vs " +
                       std::to_string(result.releases) + " releases");
    }
    ++result.checks;
    if (result.forks != result.joins) {
      global_violation("fork/join counts unbalanced: " +
                       std::to_string(result.forks) + " forks vs " +
                       std::to_string(result.joins) + " joins");
    }
    for (std::size_t n = 0; n < net.size(); ++n) {
      ++result.checks;
      if (net[n] != 0) {
        global_violation("cache node " + std::to_string(n) +
                         " does not drain: net " + std::to_string(net[n]) +
                         " bytes after replaying all anchors/releases");
      }
    }

    // Chronological occupancy replay: only meaningful under the
    // simulator's virtual clocks, where timestamps form a total order.
    if (!tr.virtual_time || charged != released) return;
    replay_occupancy();
  }

  void apply_path(const trace::Event& e, std::vector<std::int64_t>& occ,
                  int sign) {
    // Walk the charge path: from the anchor node up to, excluding, the
    // ceiling depth (schema 1 traces carry no ceiling; treat the anchor
    // node alone as charged, which keeps the balance checks valid).
    const int node = static_cast<int>(e.b);
    if (node < 0 || node >= topo->num_nodes()) return;
    const int ceiling =
        tr.schema >= 2 ? static_cast<int>(e.c) : topo->node(node).depth - 1;
    for (int id = node; id >= 0 && topo->node(id).depth > ceiling;
         id = topo->node(id).parent) {
      occ[static_cast<std::size_t>(id)] +=
          sign * static_cast<std::int64_t>(e.dur);
    }
  }

  void replay_occupancy() {
    result.replayed_occupancy = true;
    struct Step {
      std::uint64_t ts;
      std::size_t index;
    };
    std::vector<Step> order;
    for (std::size_t i = 0; i < tr.records.size(); ++i) {
      const EventKind k = tr.records[i].event.kind;
      if (k == EventKind::kAnchor || k == EventKind::kRelease) {
        order.push_back({tr.records[i].event.ts, i});
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Step& x, const Step& y) { return x.ts < y.ts; });
    std::vector<std::int64_t> occ(
        static_cast<std::size_t>(topo->num_nodes()), 0);
    for (const Step& step : order) {
      const auto& r = tr.records[step.index];
      const bool is_anchor = r.event.kind == EventKind::kAnchor;
      apply_path(r.event, occ, is_anchor ? +1 : -1);
      const int node = static_cast<int>(r.event.b);
      if (node < 0 || node >= topo->num_nodes()) continue;
      const int ceiling = tr.schema >= 2 ? static_cast<int>(r.event.c)
                                         : topo->node(node).depth - 1;
      for (int id = node; id >= 0 && topo->node(id).depth > ceiling;
           id = topo->node(id).parent) {
        const std::size_t n = static_cast<std::size_t>(id);
        const std::uint64_t cap = capacity_at(topo->node(id).depth);
        ++result.checks;
        if (occ[n] < 0) {
          violation(step.index, "release drives cache node " +
                                    std::to_string(id) +
                                    " occupancy negative during replay");
          occ[n] = 0;
        } else if (is_anchor && cap != 0 &&
                   static_cast<std::uint64_t>(occ[n]) > cap) {
          violation(step.index,
                    "bounded property violated in replay: node " +
                        std::to_string(id) + " holds " +
                        std::to_string(occ[n]) + " bytes > capacity " +
                        std::to_string(cap));
        }
      }
    }
  }
};

}  // namespace

std::string TraceCheckResult::report() const {
  std::ostringstream out;
  if (ok()) {
    out << "trace_check: OK (" << events << " events, " << checks
        << " checks, " << anchors << " anchors, " << forks << " forks"
        << (replayed_occupancy ? ", occupancy replayed" : "") << ")";
    return out.str();
  }
  out << "trace_check: FAILED (" << violations.size() << " violation(s), "
      << checks << " checks over " << events << " events)";
  for (const std::string& v : violations) out << "\n  " << v;
  return out.str();
}

TraceCheckResult CheckTrace(const trace::JsonlTrace& trace) {
  Checker checker(trace);
  checker.run();
  return std::move(checker.result);
}

TraceCheckResult CheckTraceFile(const std::string& path) {
  trace::JsonlTrace parsed;
  std::string error;
  if (!trace::ReadJsonlTrace(path, &parsed, &error)) {
    TraceCheckResult result;
    result.violations.push_back("trace does not parse: " + error);
    return result;
  }
  return CheckTrace(parsed);
}

}  // namespace sbs::verify
