#include "verify/invariants.h"

#include <algorithm>
#include <sstream>

#include "sched/sb.h"

namespace sbs::verify {

using runtime::Job;
using runtime::Task;
using runtime::kNoSize;

VerifyingScheduler::VerifyingScheduler(
    std::unique_ptr<runtime::Scheduler> inner, Options options)
    : inner_(std::move(inner)), options_(options) {
  SBS_CHECK(inner_ != nullptr);
  sb_ = dynamic_cast<sched::SpaceBounded*>(inner_.get());
  if (sb_ != nullptr) {
    sigma_ = sb_->options().sigma;
    mu_ = sb_->options().mu;
    mu_cap_ = sb_->options().mu_cap;
    use_strand_sizes_ = sb_->options().use_strand_sizes;
  }
}

VerifyingScheduler::~VerifyingScheduler() = default;

std::string VerifyingScheduler::name() const { return inner_->name(); }

bool VerifyingScheduler::needs_size_annotations() const {
  return inner_->needs_size_annotations();
}

std::string VerifyingScheduler::stats_string() const {
  std::ostringstream out;
  const std::string inner_stats = inner_->stats_string();
  if (!inner_stats.empty()) out << inner_stats << " ";
  out << "verify_checks=" << checks_
      << " verify_violations=" << total_violations_;
  return out.str();
}

void VerifyingScheduler::violation(const std::string& what) {
  ++total_violations_;
  if (violations_.size() < options_.max_violations) {
    violations_.push_back(inner_->name() + ": " + what);
  }
}

std::uint64_t VerifyingScheduler::capacity_at(int depth) const {
  return topo_->config().levels[static_cast<std::size_t>(depth)].size;
}

std::uint64_t VerifyingScheduler::task_size_at(const Job& job,
                                               int depth) const {
  return job.size(topo_->config().levels[static_cast<std::size_t>(depth)].line);
}

int VerifyingScheduler::befit_depth(const Job& job) const {
  // Independent recomputation of the befitting cache (paper §4.1): the
  // deepest depth whose dilated capacity σM_d holds the task.
  for (int d = topo_->num_cache_levels(); d >= 1; --d) {
    const std::uint64_t size = task_size_at(job, d);
    if (size == kNoSize) return -1;
    if (static_cast<double>(size) <=
        sigma_ * static_cast<double>(capacity_at(d))) {
      return d;
    }
  }
  return 0;
}

void VerifyingScheduler::start(const machine::Topology& topo,
                               int num_threads) {
  topo_ = &topo;
  {
    util::MutexLock lock(mutex_);
    shadow_occupied_.assign(static_cast<std::size_t>(topo.num_nodes()), 0);
    pending_.clear();
    running_.clear();
    tasks_.clear();
    threads_.assign(static_cast<std::size_t>(num_threads), ThreadState());
    adds_ = gets_ = dones_ = 0;
    tasks_started_ = tasks_completed_ = 0;
  }
  inner_->start(topo, num_threads);
}

void VerifyingScheduler::check_added_task(Job* job) {
  Task* task = job->task();
  if (task == nullptr) {
    violation("add: job without a task");
    return;
  }
  ++tasks_started_;
  TaskInfo info;
  info.maximal = task->maximal;
  info.size = task->size;
  info.anchor = task->anchor;

  if (task->parent == nullptr) {
    // Root task: anchored to the root of the tree by convention.
    ++checks_;
    if (sb_ != nullptr && task->anchor != topo_->root()) {
      violation("add: root task not anchored at the root");
    }
    info.anchor_depth = 0;
    info.ceiling_depth = 0;
    info.anchored = false;
  } else if (sb_ != nullptr) {
    const auto parent_it = tasks_.find(task->parent);
    if (parent_it == tasks_.end()) {
      violation("add: child of an unknown or completed task");
      return;
    }
    const TaskInfo& parent = parent_it->second;
    if (parent.anchor < 0) {
      violation("add: child spawned by a task that is not anchored");
      return;
    }
    const int parent_depth = topo_->node(parent.anchor).depth;
    const int b = befit_depth(*job);
    ++checks_;
    if (b < 0) {
      violation("add: task without size annotations under an SB scheduler");
      return;
    }
    if (task->maximal) {
      // Maximal task (befits deeper than the parent's anchor): must not be
      // pre-anchored; its future charge ceiling is the parent's depth.
      if (b <= parent_depth) {
        violation("add: task marked maximal but its befit depth " +
                  std::to_string(b) + " does not exceed parent anchor depth " +
                  std::to_string(parent_depth));
      }
      if (task->anchor != -1) {
        violation("add: maximal task pre-anchored before admission");
      }
      info.ceiling_depth = parent_depth;
    } else {
      // Non-maximal: inherits the parent's anchor, consumes no extra space.
      if (b > parent_depth) {
        violation("add: task marked non-maximal but befits depth " +
                  std::to_string(b) + " below parent anchor depth " +
                  std::to_string(parent_depth));
      }
      if (task->anchor != parent.anchor) {
        violation("add: non-maximal task does not inherit its parent's "
                  "anchor (skip-level inheritance broken)");
      }
      const std::uint64_t expected = task_size_at(*job, parent_depth);
      if (task->size != expected) {
        violation("add: non-maximal task size " + std::to_string(task->size) +
                  " not measured at the parent anchor depth (expected " +
                  std::to_string(expected) + ")");
      }
      info.anchor_depth = parent_depth;
      info.ceiling_depth = parent_depth;
    }
  }
  if (!tasks_.emplace(task, info).second) {
    violation("add: task object started twice without completing");
  }
}

void VerifyingScheduler::add(Job* job, int thread_id) {
  util::MutexLock lock(mutex_);
  ++adds_;
  ++checks_;
  if (!pending_.insert(job).second) {
    violation("add: job added twice");
  }
  if (running_.count(job) != 0) {
    violation("add: job re-added while running");
  }
  inner_->add(job, thread_id);
  if (job->starts_task()) {
    // Inspect the scheduler's placement decision *after* the inner add —
    // that is when SB fills in the task's anchor/size/maximal slots.
    check_added_task(job);
  } else if (sb_ != nullptr) {
    // Continuation strand of a live task: must already be anchored.
    Task* task = job->task();
    ++checks_;
    if (task == nullptr || tasks_.count(task) == 0) {
      violation("add: continuation of an unknown or completed task");
    } else if (task->anchor < 0) {
      violation("add: continuation of a task with no anchor");
    }
  }
  check_occupancy_mirror("add");
}

void VerifyingScheduler::check_admission(Job* job, int thread_id) {
  // A maximal task just crossed from queued to anchored: re-derive the
  // anchoring rules (paper §4.1) and charge the shadow occupancy.
  Task* task = job->task();
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    violation("get: admitted task is unknown");
    return;
  }
  TaskInfo& info = it->second;
  ++checks_;
  if (task->anchor < 0) {
    violation("get: maximal task returned without an anchor");
    return;
  }
  const int anchor = task->anchor;
  const int anchor_depth = topo_->node(anchor).depth;
  const int ceiling_depth = static_cast<int>(task->attr);

  // Anchoring: the befitting cache on the admitting worker's path.
  const int b = befit_depth(*job);
  if (anchor_depth != b) {
    violation("get: task of size " + std::to_string(task->size) +
              " anchored at depth " + std::to_string(anchor_depth) +
              " but its befitting depth is " + std::to_string(b));
  }
  if (!topo_->thread_in_cluster(thread_id, anchor)) {
    violation("get: anchor node " + std::to_string(anchor) +
              " is not on worker " + std::to_string(thread_id) + "'s path");
  }
  if (static_cast<double>(task->size) >
      sigma_ * static_cast<double>(capacity_at(anchor_depth))) {
    violation("get: anchored task size " + std::to_string(task->size) +
              " exceeds sigma*M at depth " + std::to_string(anchor_depth));
  }
  if (ceiling_depth != info.ceiling_depth) {
    violation("get: charge ceiling depth " + std::to_string(ceiling_depth) +
              " does not match the parent's anchor depth " +
              std::to_string(info.ceiling_depth) + " recorded at spawn");
  }

  // Boundedness: charging S(t,B) on every cache from the anchor up to
  // (excluding) the ceiling must respect each capacity M_i.
  for (int id = anchor; topo_->node(id).depth > ceiling_depth;
       id = topo_->node(id).parent) {
    const std::size_t n = static_cast<std::size_t>(id);
    const std::uint64_t cap = capacity_at(topo_->node(id).depth);
    ++checks_;
    if (cap != 0 && shadow_occupied_[n] + task->size > cap) {
      violation("get: bounded property violated at node " +
                std::to_string(id) + " depth " +
                std::to_string(topo_->node(id).depth) + ": occupancy " +
                std::to_string(shadow_occupied_[n]) + " + task " +
                std::to_string(task->size) + " > capacity " +
                std::to_string(cap));
    }
    shadow_occupied_[n] += task->size;
  }
  info.anchor = anchor;
  info.anchor_depth = anchor_depth;
  info.size = task->size;
  info.anchored = true;
}

void VerifyingScheduler::shadow_charge_strand(Job* job, int thread_id) {
  // Mirror of SpaceBounded::charge_strand: every cache on the worker's path
  // strictly below the task's anchor is charged min(strand size, µM).
  Task* task = job->task();
  if (task == nullptr || task->anchor < 0) return;
  ThreadState& self = threads_[static_cast<std::size_t>(thread_id)];
  const int anchor_depth = topo_->node(task->anchor).depth;
  const int leaf = topo_->leaf_of_thread(thread_id);
  for (int id = topo_->node(leaf).parent;
       id != -1 && topo_->node(id).depth > anchor_depth;
       id = topo_->node(id).parent) {
    const int depth = topo_->node(id).depth;
    std::uint64_t s = use_strand_sizes_
                          ? job->strand_size(topo_->config()
                                                 .levels[static_cast<std::size_t>(depth)]
                                                 .line)
                          : task->size;
    if (s == kNoSize) s = task->size;
    std::uint64_t amount = s;
    if (mu_cap_) {
      amount = std::min<std::uint64_t>(
          s, static_cast<std::uint64_t>(
                 mu_ * static_cast<double>(capacity_at(depth))));
    }
    if (amount == 0) continue;
    shadow_occupied_[static_cast<std::size_t>(id)] += amount;
    self.strand_charges.push_back({id, amount});
  }
}

void VerifyingScheduler::shadow_release_path(int anchor_node,
                                             int ceiling_depth,
                                             std::uint64_t bytes) {
  for (int id = anchor_node; topo_->node(id).depth > ceiling_depth;
       id = topo_->node(id).parent) {
    const std::size_t n = static_cast<std::size_t>(id);
    ++checks_;
    if (shadow_occupied_[n] < bytes) {
      violation("done: releasing more than node " + std::to_string(id) +
                " holds (occupancy underflow)");
      shadow_occupied_[n] = 0;
    } else {
      shadow_occupied_[n] -= bytes;
    }
  }
}

void VerifyingScheduler::check_occupancy_mirror(const char* when) {
  // The callbacks are fully serialized by mutex_, so the scheduler's
  // occupancy counters must agree with the shadow ones exactly — any drift
  // means one side's accounting is wrong.
  if (sb_ == nullptr) return;
  for (int id = 0; id < topo_->num_nodes(); ++id) {
    ++checks_;
    const std::uint64_t real = sb_->occupied(id);
    const std::uint64_t shadow = shadow_occupied_[static_cast<std::size_t>(id)];
    if (real != shadow) {
      violation(std::string(when) + ": occupancy mismatch at node " +
                std::to_string(id) + ": scheduler " + std::to_string(real) +
                " vs shadow " + std::to_string(shadow));
      // Re-sync so one drift does not cascade into a violation per op.
      shadow_occupied_[static_cast<std::size_t>(id)] = real;
    }
  }
}

Job* VerifyingScheduler::get(int thread_id) {
  util::MutexLock lock(mutex_);
  Job* job = inner_->get(thread_id);
  if (job == nullptr) return nullptr;
  ++gets_;
  ++checks_;
  if (pending_.erase(job) == 0) {
    violation("get: job returned that was never added (or executed twice)");
  }
  if (!running_.emplace(job, thread_id).second) {
    violation("get: job already running on another worker");
  }
  ThreadState& self = threads_[static_cast<std::size_t>(thread_id)];
  if (self.running != nullptr) {
    violation("get: worker fetched a second job before finishing the first");
  }
  self.running = job;
  if (sb_ != nullptr) {
    if (job->starts_task() && job->task() != nullptr &&
        job->task()->maximal) {
      check_admission(job, thread_id);
    }
    shadow_charge_strand(job, thread_id);
    check_occupancy_mirror("get");
  }
  return job;
}

void VerifyingScheduler::done(Job* job, int thread_id, bool task_completed) {
  util::MutexLock lock(mutex_);
  ++dones_;
  ++checks_;
  const auto run_it = running_.find(job);
  if (run_it == running_.end()) {
    violation("done: job completed that was never fetched");
  } else {
    if (run_it->second != thread_id) {
      violation("done: job fetched by worker " +
                std::to_string(run_it->second) + " completed by worker " +
                std::to_string(thread_id));
    }
    running_.erase(run_it);
  }
  ThreadState& self = threads_[static_cast<std::size_t>(thread_id)];
  if (self.running != job) {
    violation("done: completing a job this worker was not running");
  }
  self.running = nullptr;

  inner_->done(job, thread_id, task_completed);

  if (sb_ != nullptr) {
    // Strand charges release with the strand.
    for (const StrandCharge& charge : self.strand_charges) {
      const std::size_t n = static_cast<std::size_t>(charge.node);
      ++checks_;
      if (shadow_occupied_[n] < charge.amount) {
        violation("done: strand release underflow at node " +
                  std::to_string(charge.node));
        shadow_occupied_[n] = 0;
      } else {
        shadow_occupied_[n] -= charge.amount;
      }
    }
  }
  self.strand_charges.clear();

  if (task_completed) {
    Task* task = job->task();
    ++tasks_completed_;
    const auto task_it = task != nullptr ? tasks_.find(task) : tasks_.end();
    if (task_it == tasks_.end()) {
      violation("done: completion of an unknown task");
    } else {
      if (sb_ != nullptr && task_it->second.anchored) {
        shadow_release_path(task_it->second.anchor,
                            task_it->second.ceiling_depth,
                            task_it->second.size);
      }
      tasks_.erase(task_it);
    }
  }
  if (sb_ != nullptr) check_occupancy_mirror("done");
}

void VerifyingScheduler::finish() {
  inner_->finish();
  util::MutexLock lock(mutex_);
  ++checks_;
  if (!pending_.empty()) {
    violation("finish: " + std::to_string(pending_.size()) +
              " job(s) added but never executed (dropped)");
  }
  if (!running_.empty()) {
    violation("finish: " + std::to_string(running_.size()) +
              " job(s) still marked running at quiescence");
  }
  if (!tasks_.empty()) {
    violation("finish: " + std::to_string(tasks_.size()) +
              " task(s) started but never completed (join counters "
              "unbalanced)");
  }
  if (adds_ != gets_ || gets_ != dones_) {
    violation("finish: callback counts unbalanced: adds=" +
              std::to_string(adds_) + " gets=" + std::to_string(gets_) +
              " dones=" + std::to_string(dones_));
  }
  for (std::size_t n = 0; n < shadow_occupied_.size(); ++n) {
    ++checks_;
    if (shadow_occupied_[n] != 0) {
      violation("finish: shadow occupancy at node " + std::to_string(n) +
                " did not drain to zero (" +
                std::to_string(shadow_occupied_[n]) + " bytes left)");
    }
  }
  check_occupancy_mirror("finish");
}

std::string VerifyingScheduler::report() const {
  std::ostringstream out;
  if (ok()) {
    out << "verify: OK (" << checks_ << " checks, " << tasks_started_
        << " tasks, " << adds_ << " jobs)";
    return out.str();
  }
  out << "verify: FAILED (" << total_violations_ << " violation(s), "
      << checks_ << " checks)";
  for (const std::string& v : violations_) out << "\n  " << v;
  if (total_violations_ > violations_.size()) {
    out << "\n  ... " << (total_violations_ - violations_.size())
        << " more suppressed";
  }
  return out.str();
}

std::unique_ptr<VerifyingScheduler> Wrap(
    std::unique_ptr<runtime::Scheduler> inner, Options options) {
  return std::make_unique<VerifyingScheduler>(std::move(inner), options);
}

}  // namespace sbs::verify
