// Stackful fibers for the PMH simulator.
//
// Each virtual core executes its current strand inside a fiber so that the
// instrumented memory hooks can suspend the strand mid-execution whenever
// its virtual clock runs ahead of the other cores (bounded-skew
// interleaving), without materializing access traces.
//
// Two implementations: a ~20ns hand-rolled x86-64 context switch
// (SBS_ASM_FIBERS=1, the default on x86-64) and a portable ucontext
// fallback. Both are single-threaded by design — the simulator owns all
// fibers from one host thread; resume/yield never cross threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sbs::sim {

class Fiber {
 public:
  /// Create a suspended fiber that will run `fn` on first resume.
  explicit Fiber(std::function<void()> fn,
                 std::size_t stack_bytes = 512 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run/continue the fiber until it yields or its function returns.
  /// Must be called from the host context, not from inside a fiber.
  void resume();

  /// Suspend the currently running fiber and return control to its resumer.
  /// Must be called from inside a fiber.
  static void yield();

  /// The fiber currently executing on this thread, or nullptr.
  static Fiber* current();

  /// True once fn has returned; resume() must not be called again.
  bool finished() const { return finished_; }

  /// Number of resume() calls so far. Each resume is one host context
  /// switch in and one out; the engine aggregates these into the
  /// `fiber_switches` overhead counter. Counted per fiber (not per host
  /// thread) so sharded parallel execution sums them deterministically.
  std::uint64_t resumes() const { return resumes_; }

  /// Mark a suspended fiber as abandoned so it can be destroyed without
  /// resuming (used for per-core fibers that loop forever by design; their
  /// stacks hold nothing that needs unwinding at teardown).
  void abandon() { finished_ = true; }

 private:
  static void entry(void* self);
  void init_stack();

  std::function<void()> fn_;
  std::size_t stack_bytes_;
  void* stack_base_ = nullptr;  // mmap'd, with a low guard page
  void* fiber_sp_ = nullptr;
  void* main_sp_ = nullptr;
  bool finished_ = false;
  bool started_ = false;
  std::uint64_t resumes_ = 0;
#if !SBS_ASM_FIBERS
  static void entry_thunk();      // reads the fiber from thread-local state
  void* context_ = nullptr;       // ucontext_t of the fiber
  void* main_context_ = nullptr;  // ucontext_t of the resumer
#endif
};

}  // namespace sbs::sim
