// Flat open-addressing hash map for the coherence directory.
//
// The directory is the hottest simulator structure: several operations per
// cache miss. std::unordered_map's node-per-entry allocation makes it ~10×
// slower than this linear-probing table with backward-shift deletion
// (no tombstones, so load stays honest under heavy insert/erase churn).
// Keys are nonzero 64-bit line numbers; key 0 marks an empty slot.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace sbs::sim {

template <class V>
class FlatMap {
 public:
  explicit FlatMap(std::size_t initial_capacity = 1 << 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  /// Value for `key`, default-constructed and inserted if absent.
  V& operator[](std::uint64_t key) {
    SBS_ASSERT(key != 0);
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = probe_start(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == 0) {
        slot.key = key;
        slot.value = V{};
        ++size_;
        return slot.value;
      }
      i = next(i);
    }
  }

  /// Pointer to the value, or nullptr.
  V* find(std::uint64_t key) {
    SBS_ASSERT(key != 0);
    std::size_t i = probe_start(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == 0) return nullptr;
      i = next(i);
    }
  }

  /// Remove `key` if present (backward-shift deletion keeps probe chains
  /// intact without tombstones).
  void erase(std::uint64_t key) {
    SBS_ASSERT(key != 0);
    std::size_t i = probe_start(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == 0) return;
      if (slot.key == key) break;
      i = next(i);
    }
    --size_;
    std::size_t hole = i;
    std::size_t j = next(i);
    while (slots_[j].key != 0) {
      const std::size_t home = probe_start(slots_[j].key);
      // Move j back into the hole if its probe path passes through it.
      const bool wraps = hole <= j ? (home <= hole || home > j)
                                   : (home <= hole && home > j);
      if (wraps) {
        slots_[hole] = std::move(slots_[j]);
        slots_[j] = Slot{};
        hole = j;
      }
      j = next(j);
    }
    slots_[hole] = Slot{};
  }

  /// Issue a host prefetch for the key's home slot (probe chains are short
  /// at our load factor, so one line covers the common case). Barrier loops
  /// that batch many lookups use it to pipeline the cold-table misses.
  void prefetch(std::uint64_t key) const {
    __builtin_prefetch(&slots_[probe_start(key)]);
  }

  void clear() {
    for (auto& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  std::size_t probe_start(std::uint64_t key) const {
    return (key * 0x9e3779b97f4a7c15ULL) >> shift();
  }
  int shift() const {
    // capacity is a power of two; use the top bits of the hash.
    return 64 - std::countr_zero(slots_.size());
  }
  std::size_t next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    for (auto& slot : old) {
      if (slot.key != 0) (*this)[slot.key] = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace sbs::sim
