#include "sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "util/assert.h"

#if !SBS_ASM_FIBERS
#include <ucontext.h>
#endif

namespace sbs::sim {

namespace {
thread_local Fiber* tl_current = nullptr;
}  // namespace

Fiber* Fiber::current() { return tl_current; }

#if SBS_ASM_FIBERS

extern "C" {
void sbs_fiber_swap(void** save_sp, void* new_sp);
void sbs_fiber_trampoline();
}

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_bytes_(stack_bytes) {
  const long page = sysconf(_SC_PAGESIZE);
  SBS_CHECK(page > 0);
  const std::size_t psz = static_cast<std::size_t>(page);
  stack_bytes_ = (stack_bytes_ + psz - 1) / psz * psz;
  // One guard page below the stack catches overflow deterministically.
  stack_base_ = mmap(nullptr, stack_bytes_ + psz, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  SBS_CHECK_MSG(stack_base_ != MAP_FAILED, "fiber stack mmap failed");
  SBS_CHECK(mprotect(stack_base_, psz, PROT_NONE) == 0);
  init_stack();
}

Fiber::~Fiber() {
  SBS_CHECK_MSG(!started_ || finished_,
                "destroying a live fiber (strand still suspended)");
  const long page = sysconf(_SC_PAGESIZE);
  munmap(stack_base_, stack_bytes_ + static_cast<std::size_t>(page));
}

void Fiber::init_stack() {
  // Build the frame sbs_fiber_swap expects to pop: r15 r14 r13 r12 rbx rbp,
  // then the trampoline as the return address. %r12 carries the entry
  // function, %r13 the Fiber*. Alignment: after the final `ret` the
  // trampoline runs with rsp = frame+56; its `callq *%r12` then pushes the
  // return address, so entry() starts with rsp ≡ 8 (mod 16) as the SysV ABI
  // requires — hence frame+56 must be 16-aligned.
  const long page = sysconf(_SC_PAGESIZE);
  auto top = reinterpret_cast<std::uintptr_t>(stack_base_) +
             static_cast<std::uintptr_t>(page) + stack_bytes_;
  top &= ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<std::uint64_t*>(top) - 7;
  // frame[0..5]: r15 r14 r13 r12 rbx rbp; frame[6]: return address;
  // frame+56 == top ≡ 0 (mod 16). ✓
  std::memset(frame, 0, 7 * sizeof(std::uint64_t));
  frame[2] = reinterpret_cast<std::uint64_t>(this);                    // r13
  frame[3] = reinterpret_cast<std::uint64_t>(
      reinterpret_cast<void*>(&Fiber::entry));                         // r12
  frame[6] = reinterpret_cast<std::uint64_t>(
      reinterpret_cast<void*>(&sbs_fiber_trampoline));
  fiber_sp_ = frame;
}

void Fiber::resume() {
  SBS_CHECK_MSG(!finished_, "resume() on a finished fiber");
  SBS_CHECK_MSG(tl_current == nullptr, "resume() from inside a fiber");
  started_ = true;
  ++resumes_;
  tl_current = this;
  sbs_fiber_swap(&main_sp_, fiber_sp_);
  tl_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = tl_current;
  SBS_CHECK_MSG(self != nullptr, "yield() outside a fiber");
  sbs_fiber_swap(&self->fiber_sp_, self->main_sp_);
}

void Fiber::entry(void* raw) {
  auto* self = static_cast<Fiber*>(raw);
  self->fn_();
  self->finished_ = true;
  // Return control forever; resume() checks finished_ first.
  sbs_fiber_swap(&self->fiber_sp_, self->main_sp_);
  SBS_CHECK_MSG(false, "finished fiber resumed");
}

#else  // ucontext fallback

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_bytes_(stack_bytes) {
  stack_base_ = mmap(nullptr, stack_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  SBS_CHECK_MSG(stack_base_ != MAP_FAILED, "fiber stack mmap failed");
  auto* ctx = new ucontext_t;
  auto* main_ctx = new ucontext_t;
  SBS_CHECK(getcontext(ctx) == 0);
  ctx->uc_stack.ss_sp = stack_base_;
  ctx->uc_stack.ss_size = stack_bytes_;
  ctx->uc_link = nullptr;
  // makecontext passes ints; smuggle the pointer through thread-local state
  // set in resume() instead.
  makecontext(ctx, reinterpret_cast<void (*)()>(&Fiber::entry_thunk), 0);
  context_ = ctx;
  main_context_ = main_ctx;
}

Fiber::~Fiber() {
  SBS_CHECK_MSG(!started_ || finished_,
                "destroying a live fiber (strand still suspended)");
  delete static_cast<ucontext_t*>(context_);
  delete static_cast<ucontext_t*>(main_context_);
  munmap(stack_base_, stack_bytes_);
}

void Fiber::resume() {
  SBS_CHECK_MSG(!finished_, "resume() on a finished fiber");
  SBS_CHECK_MSG(tl_current == nullptr, "resume() from inside a fiber");
  started_ = true;
  ++resumes_;
  tl_current = this;
  swapcontext(static_cast<ucontext_t*>(main_context_),
              static_cast<ucontext_t*>(context_));
  tl_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = tl_current;
  SBS_CHECK_MSG(self != nullptr, "yield() outside a fiber");
  swapcontext(static_cast<ucontext_t*>(self->context_),
              static_cast<ucontext_t*>(self->main_context_));
}

void Fiber::entry(void* raw) {
  auto* self = static_cast<Fiber*>(raw);
  self->fn_();
  self->finished_ = true;
  swapcontext(static_cast<ucontext_t*>(self->context_),
              static_cast<ucontext_t*>(self->main_context_));
  SBS_CHECK_MSG(false, "finished fiber resumed");
}

void Fiber::entry_thunk() { entry(tl_current); }

#endif

}  // namespace sbs::sim
