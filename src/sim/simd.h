// Vectorized tag-word search for the cache probe loop — the single place
// in the repo allowed to touch raw x86 intrinsics (tools/lint.py rule
// `raw-simd`); everything else goes through the functions here so the
// portability fallback stays centralized.
//
// The only operation the hierarchy walk needs is "index of the first word
// equal to `key` in a short array of packed tag words, or -1" (cache.h:
// a probe key always has the valid bit set and an invalid way's word is 0,
// so the same search with key 0 finds a free way). Tag words within a set
// are unique, so first-match equals any-match and a block-at-a-time scan
// returns exactly what the scalar early-exit loop returns.
//
// Three implementations:
//   - scalar: the portable early-exit loop (and the non-x86 build).
//   - SSE2:   two ways per compare. SSE2 is baseline on x86-64, so this is
//     plain inline code any TU can call — no dispatch needed. (SSE2 has no
//     64-bit compare; two 32-bit lane compares plus an all-bits movemask
//     test per 64-bit lane are equivalent.)
//   - AVX2:   four ways per compare with a movemask early-out, compiled
//     with a target attribute and guarded by a runtime CPUID check
//     (have_avx2), so the binary still runs on SSE2-only hosts.
//
// Which one a Cache uses is decided once at construction (cache.h
// CacheOptions::simd_probes, overridable with SBS_SIM_SCALAR=1) — results
// are bit-identical across all three by construction, and
// tests/test_sim_probe.cpp asserts it end to end.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SBS_SIMD_X86 1
#include <immintrin.h>
#else
#define SBS_SIMD_X86 0
#endif

namespace sbs::sim::simd {

/// The portable reference: early-exit scan. Returns the index of the first
/// word equal to `key`, or -1.
inline int find_u64_scalar(const std::uint64_t* words, std::uint32_t count,
                           std::uint64_t key) {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (words[i] == key) return static_cast<int>(i);
  }
  return -1;
}

#if SBS_SIMD_X86

/// SSE2: compare two 64-bit words per instruction. A 64-bit lane matches
/// iff both of its 32-bit halves compare equal, i.e. its 8 byte-mask bits
/// are all set.
inline int find_u64_sse2(const std::uint64_t* words, std::uint32_t count,
                         std::uint64_t key) {
  const __m128i k =
      _mm_set1_epi64x(static_cast<long long>(key));
  std::uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(words + i));
    const int m =
        _mm_movemask_epi8(_mm_cmpeq_epi32(v, k));
    if ((m & 0x00FF) == 0x00FF) return static_cast<int>(i);
    if ((m & 0xFF00) == 0xFF00) return static_cast<int>(i) + 1;
  }
  if (i < count && words[i] == key) return static_cast<int>(i);
  return -1;
}

/// AVX2: four 64-bit words per compare, sign-bit movemask, countr_zero for
/// the lane. Call only when have_avx2() — the target attribute lets this
/// header build without -mavx2.
__attribute__((target("avx2"))) inline int find_u64_avx2(
    const std::uint64_t* words, std::uint32_t count, std::uint64_t key) {
  const __m256i k =
      _mm256_set1_epi64x(static_cast<long long>(key));
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(v, k)));
    if (m != 0) {
      return static_cast<int>(i) +
             std::countr_zero(static_cast<unsigned>(m));
    }
  }
  for (; i < count; ++i) {
    if (words[i] == key) return static_cast<int>(i);
  }
  return -1;
}

inline bool have_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#else  // !SBS_SIMD_X86: every path is the scalar loop.

inline int find_u64_sse2(const std::uint64_t* words, std::uint32_t count,
                         std::uint64_t key) {
  return find_u64_scalar(words, count, key);
}
inline int find_u64_avx2(const std::uint64_t* words, std::uint32_t count,
                         std::uint64_t key) {
  return find_u64_scalar(words, count, key);
}
inline bool have_avx2() { return false; }

#endif

/// Probe implementation tiers, widest first. A Cache resolves its tier
/// once at construction: kAvx2 when allowed and the CPU has it, else kSse2
/// on x86, else kScalar.
enum class ProbeImpl : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline ProbeImpl select_probe_impl(bool allow_simd) {
  if (!allow_simd || !SBS_SIMD_X86) return ProbeImpl::kScalar;
  return have_avx2() ? ProbeImpl::kAvx2 : ProbeImpl::kSse2;
}

inline const char* probe_impl_name(ProbeImpl impl) {
  switch (impl) {
    case ProbeImpl::kAvx2:
      return "avx2";
    case ProbeImpl::kSse2:
      return "sse2";
    default:
      return "scalar";
  }
}

}  // namespace sbs::sim::simd
