// The simulated memory hierarchy: every cache of the PMH, an inclusive
// directory, and per-socket memory controllers with finite bandwidth.
//
// Timing model (all values in core cycles, from MachineConfig):
//   - hit at depth d       : levels[d].hit_cycles
//   - DRAM miss            : queue wait + line transfer + effective latency,
//     where the controller of the line's home socket is a FIFO link of
//     `socket_bytes_per_cycle`; effective latency is dram_latency/mlp for
//     isolated misses (modeling overlapped outstanding misses) and 0 for
//     sequential-streak misses (modeling the hardware prefetcher), plus
//     remote_penalty when the home socket differs from the accessor's.
//   - dirty evictions from the outermost cache consume home-link bandwidth
//     but do not stall the evicting core.
//
// Pages map to memory sockets round-robin over the *allowed* socket list —
// exactly the paper's bandwidth-throttling mechanism (§5.2: numactl page
// placement onto 1..4 sockets => 25..100% of aggregate bandwidth).
//
// Coherence: the hierarchy is inclusive (line in a depth-d cache is present
// in all its ancestors). Writes invalidate all copies outside the writer's
// path (MSI-flavored, enough for race-free nested-parallel programs where
// only false sharing and read sharing occur). Within a socket, holders are
// found the way real hardware finds them: each cache way carries an
// *in-cache directory* — a conservative bitmask over the cache's children
// (cache.h) — and sweeps descend only into flagged children, with
// inclusion guaranteeing a cache that does not hold a line has nothing
// below it. This replaces a per-line holder hash table — whose traffic
// (insert per fill, erase per eviction, lookup per write) dominated the
// miss path and missed the host cache on every probe for large machines —
// with metadata that rides along in the cache ways the sweeps scan anyway.
//
// Write-sweep elision: each way additionally carries two sharing flags
// (cache.h kFlag*) — "sock-shared" (a cache in this socket outside this
// way's subtree may hold the line) and a cross-socket state
// (exclusive / shared / unknown). Flags are computed top-down at fill
// time from the parent way's holder mask and flags, conservatively
// maintained by whole-subtree marking walks when a new holder joins an
// existing one (share_children / share_socket), and reset to exclusive on
// the writer's innermost way once a sweep completes. A write whose
// innermost way carries no flag — the overwhelming majority — skips the
// sibling sweep, the sharing-directory lookup, and the outbox entirely.
// Windowed mode never reads the sharing directory mid-window: DRAM fills
// start cross-unknown and writes to non-exclusive lines post a (possibly
// redundant) barrier event, which keeps execution bit-identical for every
// host-thread count while moving the cold directory lookups to the
// barrier, where they pipeline behind explicit prefetches.
//
// Sharding (docs/PERF.md "Simulator performance"): every cache belongs to
// exactly one depth-1 (socket) subtree, so all coherence state below a
// socket is shard-local and shards may mutate their own caches
// concurrently. Cross-shard state is exactly two things: which *other*
// sockets' outermost caches hold a line (a global sharing directory keyed
// by line, maintained from outermost-cache fills/evicts) and the per-socket
// memory links. In the default immediate mode both are applied
// synchronously (semantically identical to the pre-sharded
// implementation). The engine switches to windowed mode, where cross-shard
// write-invalidations and link consumption are buffered per shard and
// applied at window barriers via merge_window() in deterministic shard
// order — the contract that makes parallel window execution bit-identical
// to serial execution of the same windowed schedule.
//
// Hot-path fast path: a small per-thread memo of recently-accessed lines
// short-circuits repeat accesses — the common case for streaming kernels
// (line_bytes/8 consecutive double accesses per line, and a few
// interleaved read/write streams) — without touching the cache sets. The
// memo is kept *precise*: every removal of a line from an innermost cache
// (eviction victim, coherence or back-invalidation, clear) drops exactly
// that line from the memos of the threads the cache serves, so a memo hit
// proves the line is still resident — this also makes the memo sound when
// SMT siblings share the innermost cache. Two deliberate, deterministic
// relaxations relative to the un-memoized model, shared by both modes:
// memo-absorbed hits do not refresh the line's LRU recency, and *repeat*
// writes via the memo skip re-running the remote-invalidate scan, so a
// remote copy refetched between two same-line writes by one thread is
// invalidated one write later than strict MSI would. Both are only
// observable as small deterministic shifts in eviction order and
// coherence counts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "machine/topology.h"
#include "sim/cache.h"
#include "sim/counters.h"
#include "sim/flat_map.h"
#include "sim/socket_set.h"

namespace sbs::sim {

struct MemoryParams {
  /// Sockets whose memory links are used (page homes). Empty = all.
  std::vector<int> allowed_sockets;
  /// Outstanding-miss overlap factor (≥1): effective random-miss latency is
  /// dram_latency / mlp.
  double mlp = 4.0;
  /// Extra cycles when the home socket is not the accessor's socket (QPI
  /// hop on the paper's machine).
  std::uint32_t remote_penalty_cycles = 60;
  /// Cache representation knobs (probe SIMD tier, presence filters, packed
  /// LRU — cache.h). Applied to every cache instance; SBS_SIM_SCALAR=1 in
  /// the environment forces simd_probes off regardless.
  CacheOptions cache;
};

class MemorySystem {
 public:
  MemorySystem(const machine::Topology& topo, MemoryParams params);

  /// One line-sized access by `thread_id` at virtual time `now`.
  /// Returns the stall cycles for this access. The memo probe — which
  /// absorbs the overwhelming majority of accesses on streaming kernels —
  /// is inlined below; everything past it is out of line (access_slow).
  std::uint64_t access(int thread_id, std::uint64_t addr, bool write,
                       std::uint64_t now);

  /// A contiguous range access (the common fast path): iterates lines.
  /// Single-line ranges (the usual case — one element read/write) go
  /// straight to the inlined access().
  std::uint64_t access_range(int thread_id, std::uint64_t addr,
                             std::uint64_t bytes, bool write,
                             std::uint64_t now);

  /// True when an access by `thread_id` at `addr` would be absorbed by the
  /// memos — i.e. it would not touch cache sets, links, or cross-shard
  /// state. The engine's run-ahead rule lets strands continue past the
  /// window horizon over memo-absorbed accesses (they are shard-private
  /// and cannot interact with other cores).
  bool would_absorb(int thread_id, std::uint64_t addr, bool write) const {
    if (!memo_enabled_) return false;
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t e =
        memo_[static_cast<std::size_t>(thread_id)].entry[line &
                                                         (kMemoSlots - 1)];
    if ((e >> 1) == line && (!write || (e & 1) != 0)) return true;
    const RangeMemo& rm = range_memo_[static_cast<std::size_t>(thread_id)];
    return line >= rm.lo && line < rm.hi && (!write || rm.wrote != 0);
  }

  /// Aggregate counters. In windowed mode, complete only after the last
  /// merge_window() (per-shard deltas are folded in at barriers).
  const Counters& counters() const { return counters_; }
  Counters& counters() { return counters_; }

  /// Resident line count of a cache node (tests).
  std::uint64_t resident_lines(int node_id) const;
  /// Tag scans skipped by the presence filters, summed over every cache
  /// (cache.h filter_skips()). Deterministic like the coherence counters;
  /// the engine folds it into the run's Counters.
  std::uint64_t filter_skips_total() const;
  /// Drop all cached state (between experiment repetitions).
  void reset();

  int num_sockets() const { return static_cast<int>(socket_next_free_.size()); }
  std::uint32_t line_bytes() const { return line_bytes_; }

  // --- sharded execution (driven by SimEngine) ---
  /// One shard per depth-1 (socket) subtree.
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of_thread(int thread_id) const {
    return tinfo_[static_cast<std::size_t>(thread_id)].shard;
  }
  /// Enter/leave windowed mode. While windowed, threads of different shards
  /// may call access() concurrently (each shard touches only its own
  /// state); cross-shard traffic is buffered until merge_window().
  void set_windowed(bool on);
  /// Window barrier: fold per-shard counter deltas into counters(), apply
  /// sharing-directory updates and cross-shard invalidation events in
  /// deterministic shard order, merge per-shard link views into the
  /// committed per-socket link state, and reseed the views. Single-threaded.
  void merge_window();
  /// True when the window(s) since the last merge produced no cross-shard
  /// traffic at all: every shard's outbox and sharing-directory delta is
  /// empty and no shard consumed link bandwidth. A quiet merge_window()
  /// would be an identity apart from folding counter deltas — which is
  /// commutative and can be deferred — so the engine elides the barrier
  /// entirely (adaptive windows, engine.h). Single-threaded.
  bool window_quiet() const {
    for (const auto& shp : shards_) {
      if (!shp->outbox.empty() || !shp->sd_delta.empty() || shp->link_touched)
        return false;
    }
    return true;
  }

 private:
  // Deliberately smaller than the innermost cache: memo-absorbed hits skip
  // the LRU refresh, so an over-sized memo starves the simulated L1's
  // recency ordering and measurably inflates downstream misses.
  static constexpr int kMemoSlots = 64;
  /// Streak length at which a contiguous run displaces the promoted range.
  static constexpr std::uint64_t kRangePromoteLen = 16;

  /// A cross-shard write-invalidation deferred to the window barrier.
  struct InvalEvent {
    std::uint64_t line;
    std::int32_t writer_shard;
  };
  /// A deferred sharing-directory update (outermost-cache fill or evict).
  struct SdDelta {
    std::uint64_t line;
    std::int32_t shard;
    bool fill;  ///< true: set the shard bit; false: clear it.
  };

  struct alignas(64) Shard {
    Counters delta;            ///< windowed-mode counter target
    Counters* ctr = nullptr;   ///< where access() counts (delta or global)
    std::uint64_t* links = nullptr;  ///< link state view (local or global)
    std::vector<std::uint64_t> link_view;
    /// Cycles of link service actually consumed this window (transfer time
    /// only — never the idle gaps the view skips over with max(view, now)).
    std::vector<std::uint64_t> link_used;
    std::vector<InvalEvent> outbox;
    std::vector<SdDelta> sd_delta;
    /// Any link bandwidth consumed since the last merge (DRAM read or
    /// writeback). Part of the window_quiet() gate: link state is the one
    /// piece of cross-shard state merge phase 4 rebuilds, so consuming any
    /// of it forces a real barrier.
    bool link_touched = false;
  };

  /// Flattened per-thread hot-path data: the root-to-leaf cache path
  /// innermost-first, with depths/costs precomputed so access() never
  /// touches the Topology.
  struct ThreadInfo {
    int path_len = 0;
    std::array<std::int32_t, 8> node{};
    std::array<std::int32_t, 8> depth{};
    std::array<std::uint32_t, 8> hit_cycles{};
    std::array<Cache*, 8> cache{};
    /// Child index of node[i] within its parent node[i+1] — the bit this
    /// path occupies in the parent's holder masks. 0xFF when the parent has
    /// too many children for a 16-bit mask (sweeps fall back to probe-all).
    std::array<std::uint8_t, 8> slot{};
    int shard = 0;    ///< == socket index
    int leaf_id = 0;
    int inner_depth = 0;
  };

  /// Recent-lines memo (see file comment): direct-mapped on the low line
  /// bits, so lookup, insert, and memo_drop() are all one slot probe. Each
  /// entry packs (line << 1) | wrote into one word so a probe touches a
  /// single host cache line. Kept exact by memo_drop() at every
  /// innermost-cache line removal.
  struct Memo {
    Memo() { entry.fill(~std::uint64_t{0}); }
    std::array<std::uint64_t, kMemoSlots> entry;
  };

  /// Resident-range memo: a contiguous run of lines [lo, hi) proven
  /// resident in the thread's innermost cache (each was accessed, and none
  /// has been removed since — memo_drop() shrinks the run on removal).
  /// `wrote` means every line in the run is additionally known dirty.
  /// Streaming kernels sweep the same buffer repeatedly; once the first
  /// sweep promotes the run, later sweeps are absorbed wholesale — one
  /// range compare and a bulk counter update for an entire access_range().
  /// The candidate fields are the stream detector: a contiguous streak of
  /// completed accesses that replaces the run once it outgrows it.
  struct RangeMemo {
    std::uint64_t lo = 0, hi = 0;  ///< the promoted run; empty when lo == hi
    std::uint64_t cand_lo = 0, cand_hi = 0;  ///< the streak being detected
    std::uint8_t wrote = 0;
    std::uint8_t cand_wrote = 0;
  };

  int home_socket(std::uint64_t line) const;
  /// access() past the memo probe: the probe loop, miss handling, and the
  /// coherence work. `ctr` is the caller's resolved counter target.
  std::uint64_t access_slow(ThreadInfo& ti, Counters& ctr, int thread_id,
                            std::uint64_t line, bool write,
                            std::uint64_t now);
  /// access_range() for multi-line spans: whole-range absorb, then the
  /// per-line loop.
  std::uint64_t access_range_multi(int thread_id, std::uint64_t first,
                                   std::uint64_t last, bool write,
                                   std::uint64_t now);
  /// Feed a completed (residency-proving) access into the stream detector,
  /// promoting the streak into the absorbing run once long enough.
  void extend_streak(RangeMemo& rm, std::uint64_t line, bool write);
  /// Drop `line` from the memos of the threads served by innermost cache
  /// `inner_node`.
  void memo_drop(int inner_node, std::uint64_t line);
  /// Invalidate every copy of `line` in the caches strictly below
  /// `node_id`, probing only the children flagged in `mask` (the holder
  /// mask of node_id's own — possibly just-removed — copy of the line) and
  /// recursing with each removed copy's mask. Counts per depth as
  /// back-invalidations, or coherence invalidations when `coherence`.
  void invalidate_children(int node_id, std::uint32_t mask,
                           std::uint64_t line, bool* dirty, Counters& ctr,
                           bool coherence);
  /// Fill [0, from_index] outermost-first with propagated sharing flags
  /// (`flags` is the state computed at the hit boundary; recomputed at a
  /// depth-1 fill from the sharing directory). Returns the innermost way's
  /// flags — what the write path needs to decide whether any sweep is due.
  std::uint8_t fill_path(const ThreadInfo& ti, Shard& sh, std::uint64_t line,
                         bool write, int from_index, std::uint64_t now,
                         std::uint8_t flags);
  void handle_eviction(Shard& sh, int node_id, const Cache::Evicted& evicted,
                       std::uint64_t now);
  void write_invalidate(const ThreadInfo& ti, Shard& sh, std::uint64_t line,
                        std::uint8_t flags);
  /// Invalidate every copy of `line` held by `victim_shard` (all depths,
  /// including untracked innermost copies), charging coherence counters to
  /// the global counter block. Returns true if the shard held the line.
  bool apply_remote_invalidate(int victim_shard, std::uint64_t line);
  /// OR sharing-flag `bits` into every copy of `line` strictly below
  /// `node_id`, descending via the holder masks (`mask` = node_id's own
  /// copy's mask). Descent stops at a way already carrying any of
  /// `stop_bits` (see share_socket for when that is sound).
  void share_children(int node_id, std::uint32_t mask, std::uint64_t line,
                      std::uint8_t bits, std::uint8_t stop_bits);
  /// share_children from a shard's outermost cache down (no-op if the
  /// socket no longer holds the line).
  void share_socket(int shard, std::uint64_t line, std::uint8_t bits,
                    std::uint8_t stop_bits);
  /// Record a depth-1 fill in the sharing directory and return the new
  /// way's cross-socket flag: exact (exclusive/shared, with arising walks
  /// into the other holders) in immediate mode, kFlagCrossUnknown in
  /// windowed mode where the directory is read-only until the barrier.
  std::uint8_t outer_fill_flags(Shard& sh, int shard, std::uint64_t line);
  void note_outer_evict(Shard& sh, int shard, std::uint64_t line);

  const machine::Topology& topo_;
  MemoryParams params_;
  std::uint32_t line_bytes_;
  std::uint32_t line_shift_;
  int innermost_depth_ = 1;  ///< tree depth of the innermost cache level
  std::uint64_t page_lines_shift_;  ///< log2(lines per page)
  bool memo_enabled_ = false;
  bool windowed_ = false;

  /// Cache instance per cache node id; index aligned with topology ids
  /// (nullptr for the root and leaves).
  std::vector<std::unique_ptr<Cache>> caches_;
  // --- per-node precomputation (hot paths never call into Topology) ---
  std::vector<std::int32_t> node_depth_;
  std::vector<std::int32_t> node_shard_;  ///< socket index; -1 above depth 1
  /// Children of each node, flattened: [child_first_[id], child_first_[id+1])
  /// indexes into nothing — children ids are contiguous, so only the first
  /// child and count are kept, mirrored from the Topology for hot loops.
  std::vector<std::int32_t> child_first_;
  std::vector<std::int32_t> child_count_;
  /// Whether the node's holder masks are usable (≤16 cache children);
  /// otherwise sweeps probe every child.
  std::vector<std::uint8_t> node_mask_ok_;
  /// Threads served by each innermost cache (contiguous): first id / count.
  std::vector<std::int32_t> inner_first_thread_;
  std::vector<std::int32_t> inner_thread_count_;
  std::vector<std::int32_t> socket_node_;  ///< shard -> depth-1 node id

  std::vector<ThreadInfo> tinfo_;
  std::vector<Memo> memo_;
  std::vector<RangeMemo> range_memo_;
  /// Per-thread last missed line (prefetch streak detection).
  std::vector<std::uint64_t> last_miss_line_;

  /// Committed virtual time when each socket's memory link frees up.
  std::vector<std::uint64_t> socket_next_free_;
  double transfer_cycles_;  ///< line transfer time on a socket link
  std::uint64_t isolated_miss_cycles_ = 0;  ///< dram_latency / mlp

  std::vector<std::unique_ptr<Shard>> shards_;
  /// line -> set of shards whose outermost (depth-1) cache holds it.
  /// Mutated only in immediate mode or at barriers; read-only to shards
  /// during a window. SocketSet stays a single inline word up to 64
  /// sockets and spills per-entry above (socket_set.h).
  FlatMap<SocketSet> sharing_;
  Counters counters_;
};

// --- inlined hot path -------------------------------------------------
// The memo probe answers the overwhelming majority of accesses (docs/
// PERF.md §5); keeping it in the header lets the engine's touch call
// collapse to a few loads with no call on the absorbed path.

inline void MemorySystem::extend_streak(RangeMemo& rm, std::uint64_t line,
                                        bool write) {
  const std::uint8_t w = write ? 1 : 0;
  if (line == rm.cand_hi && w == rm.cand_wrote && rm.cand_lo != rm.cand_hi) {
    ++rm.cand_hi;
  } else {
    rm.cand_lo = line;
    rm.cand_hi = line + 1;
    rm.cand_wrote = w;
  }
  // `>=` (not `>`) so a same-length re-sweep that upgrades read→write can
  // displace the clean run with a known-dirty one.
  if (rm.cand_hi - rm.cand_lo >= kRangePromoteLen &&
      rm.cand_hi - rm.cand_lo >= rm.hi - rm.lo) {
    rm.lo = rm.cand_lo;
    rm.hi = rm.cand_hi;
    rm.wrote = rm.cand_wrote;
  }
}

inline std::uint64_t MemorySystem::access(int thread_id, std::uint64_t addr,
                                          bool write, std::uint64_t now) {
  const std::uint64_t line = addr >> line_shift_;
  ThreadInfo& ti = tinfo_[static_cast<std::size_t>(thread_id)];
  Counters& ctr = *shards_[static_cast<std::size_t>(ti.shard)]->ctr;
  ++ctr.accesses;
  if (write) ++ctr.writes;

  // Fast path: repeat access to a recently-touched line — no set scan, no
  // coherence work. The memos are precise (see memo_drop), so a match
  // proves residency; the range memo covers re-swept buffers, the per-line
  // ways cover interleaved read/write streams.
  if (memo_enabled_) {
    // The direct-mapped slot is checked first: on the sort kernels it
    // absorbs the overwhelming majority of accesses (every element touch
    // after the first on a line), while whole-buffer range hits are rare.
    RangeMemo& rm = range_memo_[static_cast<std::size_t>(thread_id)];
    const std::size_t slot = line & (kMemoSlots - 1);
    const std::uint64_t e =
        memo_[static_cast<std::size_t>(thread_id)].entry[slot];
    if ((e >> 1) == line && (!write || (e & 1) != 0)) {
      // A memo hit still proves residency, so let it feed the stream
      // detector — otherwise recently-touched lines punch holes in the
      // streak and starve range promotion.
      extend_streak(rm, line, write);
      ++ctr.level[static_cast<std::size_t>(ti.inner_depth)].hits;
      return ti.hit_cycles[0];
    }
    if (line >= rm.lo && line < rm.hi && (!write || rm.wrote != 0)) {
      ++ctr.level[static_cast<std::size_t>(ti.inner_depth)].hits;
      return ti.hit_cycles[0];
    }
  }
  return access_slow(ti, ctr, thread_id, line, write, now);
}

inline std::uint64_t MemorySystem::access_range(int thread_id,
                                                std::uint64_t addr,
                                                std::uint64_t bytes,
                                                bool write,
                                                std::uint64_t now) {
  if (bytes == 0) return 0;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  if (first == last) return access(thread_id, addr, write, now);
  return access_range_multi(thread_id, first, last, write, now);
}

}  // namespace sbs::sim
