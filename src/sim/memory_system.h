// The simulated memory hierarchy: every cache of the PMH, an inclusive
// directory, and per-socket memory controllers with finite bandwidth.
//
// Timing model (all values in core cycles, from MachineConfig):
//   - hit at depth d       : levels[d].hit_cycles
//   - DRAM miss            : queue wait + line transfer + effective latency,
//     where the controller of the line's home socket is a FIFO link of
//     `socket_bytes_per_cycle`; effective latency is dram_latency/mlp for
//     isolated misses (modeling overlapped outstanding misses) and 0 for
//     sequential-streak misses (modeling the hardware prefetcher), plus
//     remote_penalty when the home socket differs from the accessor's.
//   - dirty evictions from the outermost cache consume home-link bandwidth
//     but do not stall the evicting core.
//
// Pages map to memory sockets round-robin over the *allowed* socket list —
// exactly the paper's bandwidth-throttling mechanism (§5.2: numactl page
// placement onto 1..4 sockets => 25..100% of aggregate bandwidth).
//
// Coherence: the hierarchy is inclusive (line in a depth-d cache is present
// in all its ancestors). A directory tracks, per line, which cache at every
// depth holds it; writes invalidate all copies outside the writer's path
// (MSI-flavored, enough for race-free nested-parallel programs where only
// false sharing and read sharing occur).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "machine/topology.h"
#include "sim/cache.h"
#include "sim/counters.h"
#include "sim/flat_map.h"

namespace sbs::sim {

struct MemoryParams {
  /// Sockets whose memory links are used (page homes). Empty = all.
  std::vector<int> allowed_sockets;
  /// Outstanding-miss overlap factor (≥1): effective random-miss latency is
  /// dram_latency / mlp.
  double mlp = 4.0;
  /// Extra cycles when the home socket is not the accessor's socket (QPI
  /// hop on the paper's machine).
  std::uint32_t remote_penalty_cycles = 60;
};

class MemorySystem {
 public:
  MemorySystem(const machine::Topology& topo, MemoryParams params);

  /// One line-sized access by `thread_id` at virtual time `now`.
  /// Returns the stall cycles for this access.
  std::uint64_t access(int thread_id, std::uint64_t addr, bool write,
                       std::uint64_t now);

  /// A contiguous range access (the common fast path): iterates lines.
  std::uint64_t access_range(int thread_id, std::uint64_t addr,
                             std::uint64_t bytes, bool write,
                             std::uint64_t now);

  const Counters& counters() const { return counters_; }
  Counters& counters() { return counters_; }

  /// Resident line count of a cache node (tests).
  std::uint64_t resident_lines(int node_id) const;
  /// Drop all cached state (between experiment repetitions).
  void reset();

  int num_sockets() const { return static_cast<int>(socket_next_free_.size()); }
  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct DirEntry {
    // holders[d] = bitmask over the depth-d cache ordinals holding the line.
    std::array<std::uint64_t, 8> holders{};
  };

  int home_socket(std::uint64_t line) const;
  /// The innermost cache level is not tracked in the directory (its
  /// fill/evict traffic dominates); inclusion lets the rare events that
  /// need it probe the 1-2 child caches of a tracked holder directly.
  bool tracked(int depth) const {
    if (depth < 1 || depth > innermost_depth_) return false;
    return depth < innermost_depth_ || innermost_depth_ == 1;
  }
  /// Invalidate the line from every innermost cache below `parent_id`
  /// (optionally sparing one), propagating dirtiness and counting.
  void invalidate_innermost_below(int parent_id, std::uint64_t line,
                                  int spare_node, bool* dirty,
                                  bool coherence = false);
  void fill_path(int thread_id, std::uint64_t line, bool dirty,
                 int from_depth, std::uint64_t now);
  void handle_eviction(int node_id, const Cache::Evicted& evicted,
                       std::uint64_t now);
  void write_invalidate(int thread_id, std::uint64_t line);
  void dir_set(std::uint64_t line, int depth, int ordinal);
  void dir_clear(std::uint64_t line, int depth, int ordinal);

  const machine::Topology& topo_;
  MemoryParams params_;
  std::uint32_t line_bytes_;
  std::uint32_t line_shift_;
  int innermost_depth_ = 1;  ///< tree depth of the innermost cache level
  std::uint64_t page_lines_shift_;  ///< log2(lines per page)

  /// Cache instance per cache node id; index aligned with topology ids
  /// (nullptr for the root and leaves).
  std::vector<std::unique_ptr<Cache>> caches_;
  /// Per-depth: id of the first node at that depth (dense ordinals).
  std::vector<int> depth_first_id_;
  /// Per-thread root-to-leaf cache path, innermost first.
  std::vector<std::vector<int>> thread_path_;
  /// Per-thread last missed line (prefetch streak detection).
  std::vector<std::uint64_t> last_miss_line_;

  /// Virtual time when each socket's memory link frees up.
  std::vector<std::uint64_t> socket_next_free_;
  double transfer_cycles_;  ///< line transfer time on a socket link

  FlatMap<DirEntry> directory_;
  Counters counters_;
};

}  // namespace sbs::sim
