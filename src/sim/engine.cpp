#include "sim/engine.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>

#include "runtime/mem.h"
#include "runtime/strand_ops.h"
#include "sched/ops.h"
#include "sim/fiber.h"
#include "util/assert.h"

namespace sbs::sim {

using runtime::Job;
using runtime::Strand;
using runtime::StrandOps;

/// One virtual core: a clock, a fiber that hosts its current strand, and the
/// AccessSink that charges the strand's memory traffic to the clock.
struct SimEngine::VCore final : mem::AccessSink {
  VCore(SimEngine* eng, int thread_id) : engine(eng), tid(thread_id) {}

  // --- AccessSink (called from inside the fiber) ---
  // Run-ahead batching: a strand yields only *before* an access that has to
  // touch real simulated state (cache sets, links, coherence) once its
  // clock has left the window. Memo-absorbed accesses and work() are
  // shard-private and invisible to every other core, so the strand keeps
  // running through them — on streaming kernels this lets whole strands
  // finish in a single resume instead of one fiber round trip per window.
  // The gate reads only the frozen window horizon and the core's own memo
  // state, so the decision is identical for every host_threads value.
  void touch(std::uintptr_t addr, std::uint64_t bytes, bool write) override {
    if (clock > engine->horizon_ &&
        !engine->memory_->would_absorb(tid, addr, write)) {
      // The access runs after resumption, in the window it is visible in.
      Fiber::yield();
    }
    const std::uint64_t cost =
        engine->memory_->access_range(tid, addr, bytes, write, clock);
    clock += cost;
    active_cy += cost;
  }
  void work(std::uint64_t cycles) override {
    clock += cycles;
    active_cy += cycles;
  }
  // Mid-strand mem::Array allocations draw from this core's transient arena
  // stream, so their simulated addresses are deterministic (see mem.h).
  int stream_id() const override { return tid; }

  void ensure_fiber(std::size_t stack_bytes) {
    if (fiber) return;
    fiber = std::make_unique<Fiber>(
        [this] {
          // One fiber per core, reused across strands: run the current
          // strand, report completion, wait for the next one.
          while (true) {
            job->execute(*strand);
            strand_done = true;
            Fiber::yield();
          }
        },
        stack_bytes);
  }

  SimEngine* engine;
  int tid;
  int shard = 0;
  std::uint64_t clock = 0;

  std::unique_ptr<Fiber> fiber;
  Job* job = nullptr;
  std::optional<Strand> strand;
  bool strand_done = false;
  bool busy = false;  ///< strand in progress (possibly suspended)
  bool pending_finish = false;  ///< strand done, done/settle/add not yet run
  std::uint64_t strand_start_clock = 0;  ///< for the kStrand trace event

  // Cycle breakdown (converted to seconds at the end).
  std::uint64_t active_cy = 0, add_cy = 0, done_cy = 0, get_cy = 0,
                empty_cy = 0;
  std::uint64_t strands = 0;
  std::uint64_t empty_wakeups = 0;

  /// Fiber::resumes() at run start (fibers persist across runs).
  std::uint64_t fiber_resumes_base = 0;
};

namespace {
/// Installed while an inline_runnable strand executes on the pump: such
/// strands promised to touch no simulated memory and do no simulated work,
/// and this sink turns a broken promise into a hard failure instead of a
/// silent timing divergence.
struct PoisonSink final : mem::AccessSink {
  void touch(std::uintptr_t, std::uint64_t, bool) override {
    SBS_CHECK_MSG(false,
                  "inline_runnable job touched simulated memory on the pump");
  }
  void work(std::uint64_t) override {
    SBS_CHECK_MSG(false,
                  "inline_runnable job did simulated work on the pump");
  }
  int stream_id() const override { return -1; }
};
}  // namespace

SimEngine::SimEngine(const machine::Topology& topo, SimParams params)
    : topo_(topo), params_(params) {
  num_threads_ =
      params_.num_threads < 0 ? topo.num_threads() : params_.num_threads;
  SBS_CHECK(num_threads_ >= 1 && num_threads_ <= topo.num_threads());
  params_.memory.cache.simd_probes = params_.simd_probes;
  params_.memory.cache.presence_filter = params_.presence_filter;
  params_.memory.cache.packed_lru = params_.packed_lru;
  memory_ = std::make_unique<MemorySystem>(topo, params_.memory);

  host_threads_ = std::max(1, params_.host_threads);
  host_threads_ = std::min(host_threads_, memory_->num_shards());
  shard_busy_.resize(static_cast<std::size_t>(memory_->num_shards()));
  arenas_.reserve(static_cast<std::size_t>(host_threads_));
  for (int h = 0; h < host_threads_; ++h)
    arenas_.push_back(std::make_unique<runtime::JobArena>());

  cores_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    cores_.push_back(std::make_unique<VCore>(this, t));
    cores_.back()->shard = memory_->shard_of_thread(t);
  }

  pool_.reserve(static_cast<std::size_t>(host_threads_ - 1));
  for (int h = 1; h < host_threads_; ++h)
    pool_.emplace_back([this, h] { worker_loop(h); });
}

SimEngine::~SimEngine() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_stop_ = true;
  }
  pool_go_.notify_all();
  for (std::thread& t : pool_) t.join();
  for (auto& core : cores_) {
    if (core->fiber) core->fiber->abandon();
  }
}

void SimEngine::enable_tracing(std::size_t events_per_worker) {
  recorder_ =
      std::make_unique<trace::Recorder>(num_threads_, events_per_worker);
}

std::uint64_t SimEngine::charge_ops(std::uint64_t ops_before) const {
  return (sched::ops_snapshot() - ops_before) *
         topo_.config().sched_op_cycles;
}

void SimEngine::heap_push(std::uint64_t clock, int tid) {
  heap_.emplace_back(clock, tid);
  std::push_heap(heap_.begin(), heap_.end(),
                 std::greater<std::pair<std::uint64_t, int>>());
}

bool SimEngine::heap_pop(std::uint64_t* clock, int* tid) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                std::greater<std::pair<std::uint64_t, int>>());
  *clock = heap_.back().first;
  *tid = heap_.back().second;
  heap_.pop_back();
  return true;
}

void SimEngine::worker_pass(int h) {
  runtime::JobArena::Scope arena_scope(arenas_[static_cast<std::size_t>(h)].get());
  const int n_shards = static_cast<int>(shard_busy_.size());
  for (int s = h; s < n_shards; s += host_threads_) {
    for (VCore* core : shard_busy_[static_cast<std::size_t>(s)]) {
      mem::SinkScope sink(core);
      while (!core->strand_done && core->clock <= horizon_)
        core->fiber->resume();
    }
  }
}

void SimEngine::worker_loop(int h) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_go_.wait(lk, [&] { return pool_stop_ || pool_gen_ != seen; });
      if (pool_stop_) return;
      seen = pool_gen_;
    }
    worker_pass(h);
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (--pool_pending_ == 0) pool_done_.notify_one();
    }
  }
}

void SimEngine::finish_strand(VCore& core) {
  using trace::EventKind;
  trace::Recorder* const rec = recorder_.get();
  core.busy = false;
  ++core.strands;
  const bool completed = !core.strand->forked();
  if (rec) {
    rec->record(core.tid, EventKind::kStrand, core.strand_start_clock,
                core.clock - core.strand_start_clock);
    rec->set_now(core.tid, core.clock);
  }

  std::uint64_t ops0 = sched::ops_snapshot();
  const std::uint64_t done_start = core.clock;
  sched_->done(core.job, core.tid, completed);
  std::uint64_t cy = charge_ops(ops0);
  core.done_cy += cy;
  core.clock += cy;
  if (rec) rec->record(core.tid, EventKind::kDone, done_start, cy);

  std::vector<Job*> to_add;
  bool root_completed = false;
  StrandOps::settle(core.job, *core.strand, to_add, root_completed);
  core.job = nullptr;
  if (rec) {
    rec->set_now(core.tid, core.clock);
    if (!completed) {
      rec->record_now(core.tid, EventKind::kFork, to_add.size());
    } else if (!to_add.empty()) {
      rec->record_now(core.tid, EventKind::kJoin);
    }
  }

  ops0 = sched::ops_snapshot();
  const std::uint64_t add_start = core.clock;
  for (Job* a : to_add) sched_->add(a, core.tid);
  cy = charge_ops(ops0) + topo_.config().fork_join_cycles;
  core.add_cy += cy;
  core.clock += cy;
  if (rec) rec->record(core.tid, EventKind::kAdd, add_start, cy);

  if (root_completed) root_completed_ = true;
}

SimResult SimEngine::run(runtime::Scheduler& sched, Job* root_job) {
  sched_ = &sched;
  root_completed_ = false;
  memory_->reset();
  memory_->set_windowed(true);
  mem::arena::reset_transient();
  for (auto& core : cores_) {
    SBS_CHECK_MSG(!core->busy, "engine reused while a strand was live");
    core->clock = 0;
    core->active_cy = core->add_cy = core->done_cy = core->get_cy =
        core->empty_cy = 0;
    core->strands = 0;
    core->empty_wakeups = 0;
    core->pending_finish = false;
    core->fiber_resumes_base = core->fiber ? core->fiber->resumes() : 0;
  }
  windows_since_merge_ = 0;
  coalesce_limit_ = 1;
  windows_executed_ = pump_passes_ = window_merges_ = inline_strands_run_ = 0;
  inline_done_.clear();
  runtime::JobArena::Scope arena_scope(arenas_[0].get());

  sched.start(topo_, num_threads_);
  StrandOps::Root root = StrandOps::make_root(root_job);

  if (recorder_) {
    recorder_->begin_run(/*virtual_time=*/true, topo_.config().ghz * 1e9);
  }
  trace::Scope trace_scope(recorder_.get());
  trace::Recorder* const rec = recorder_.get();
  using trace::EventKind;

  {
    VCore& c0 = *cores_[0];
    const std::uint64_t ops0 = sched::ops_snapshot();
    sched.add(root_job, 0);
    const std::uint64_t cy = charge_ops(ops0);
    if (rec) rec->record(0, EventKind::kAdd, c0.clock, cy);
    c0.add_cy += cy;
    c0.clock += cy;
  }

  heap_.clear();
  for (int t = 0; t < num_threads_; ++t)
    heap_.emplace_back(cores_[static_cast<std::size_t>(t)]->clock, t);
  std::make_heap(heap_.begin(), heap_.end(),
                 std::greater<std::pair<std::uint64_t, int>>());

  const auto by_clock_tid = [](const VCore* a, const VCore* b) {
    return a->clock < b->clock || (a->clock == b->clock && a->tid < b->tid);
  };

  PoisonSink poison;
  std::uint64_t completion_clock = 0;
  std::uint64_t consecutive_empty = 0;
  while (!root_completed_) {
    ++pump_passes_;
    // Window = [min clock, min clock + quantum] over every core.
    busy_min_ = std::numeric_limits<std::uint64_t>::max();
    for (const auto& list : shard_busy_)
      for (const VCore* c : list) busy_min_ = std::min(busy_min_, c->clock);
    std::uint64_t min_clock = busy_min_;
    if (!heap_.empty()) min_clock = std::min(min_clock, heap_.front().first);
    SBS_CHECK_MSG(min_clock != std::numeric_limits<std::uint64_t>::max(),
                  "no runnable cores, root not complete");
    horizon_ = min_clock + params_.skew_quantum;

    // Pump: idle gets and deferred strand completions, in (clock, thread)
    // order — all scheduler interaction is single-threaded here.
    std::uint64_t clk = 0;
    int tid = 0;
    while (!heap_.empty() && heap_.front().first <= horizon_) {
      heap_pop(&clk, &tid);
      VCore& core = *cores_[static_cast<std::size_t>(tid)];
      if (core.pending_finish) {
        core.pending_finish = false;
        finish_strand(core);
        if (root_completed_) {
          completion_clock = core.clock;
          break;
        }
        heap_push(core.clock, tid);
        continue;
      }

      if (rec) {
        rec->set_now(core.tid, core.clock);
        rec->record(core.tid, EventKind::kGetBegin, core.clock);
      }
      const std::uint64_t ops0 = sched::ops_snapshot();
      Job* job = sched.get(core.tid);
      std::uint64_t cy = charge_ops(ops0);
      if (rec) {
        rec->record(core.tid, EventKind::kGetEnd, core.clock + cy, 0,
                    job != nullptr ? 1 : 0);
      }
      if (job == nullptr) {
        // Idle: nothing can be enqueued before the next core acts, so jump
        // to the earliest other event (but always advance by at least one
        // poll interval). Pure wait-time accounting — no schedulable event
        // is skipped.
        std::uint64_t second = busy_min_;
        if (!heap_.empty())
          second = std::min(second, heap_.front().first);
        if (second == std::numeric_limits<std::uint64_t>::max()) second = 0;
        const std::uint64_t next = std::max(
            core.clock + cy + topo_.config().idle_poll_cycles, second);
        if (rec) {
          rec->record(core.tid, EventKind::kEmpty, core.clock + cy,
                      next - (core.clock + cy));
        }
        core.empty_cy += next - core.clock;
        core.clock = next;
        ++core.empty_wakeups;
        heap_push(core.clock, tid);
        SBS_CHECK_MSG(++consecutive_empty <
                          (std::uint64_t{1} << 24) *
                              static_cast<std::uint64_t>(num_threads_),
                      "simulation wedged: every core idle, no queued work, "
                      "root not complete (scheduler lost a job?)");
        continue;
      }
      consecutive_empty = 0;
      core.get_cy += cy;
      core.clock += cy;
      core.job = job;
      core.strand.emplace(core.tid, num_threads_);
      core.strand_done = false;
      core.busy = true;
      core.strand_start_clock = core.clock;
      if (params_.inline_strands && core.clock <= horizon_ &&
          job->inline_runnable()) {
        // Pure-control strand (e.g. an empty join continuation): execute it
        // right here on the pump stack — no fiber, no window-phase pass.
        // Timing is identical to the fiber path: the strand touches nothing,
        // so its clock is unchanged, and its completion is deferred to the
        // barrier (where the fiber path would collect it) so this pump pass
        // cannot pop it early. The horizon guard keeps the equivalence when
        // the get() charge pushed the clock past the window: the fiber path
        // would not run such a strand until a later window, so it must not
        // be inlined now.
        {
          mem::SinkScope sink(&poison);
          job->execute(*core.strand);
        }
        core.strand_done = true;
        ++inline_strands_run_;
        inline_done_.push_back(&core);
        busy_min_ = std::min(busy_min_, core.clock);
        continue;
      }
      core.ensure_fiber(params_.fiber_stack_bytes);
      shard_busy_[static_cast<std::size_t>(core.shard)].push_back(&core);
      busy_min_ = std::min(busy_min_, core.clock);
    }
    if (root_completed_) break;

    // Inline-run strands complete at the barrier, exactly like fiber-run
    // ones. (Heap order is by value, so push order next to the fiber-path
    // pushes below is immaterial.)
    for (VCore* core : inline_done_) {
      core->pending_finish = true;
      heap_push(core->clock, core->tid);
    }
    inline_done_.clear();

    bool any_busy = false;
    for (auto& list : shard_busy_) {
      if (list.empty()) continue;
      any_busy = true;
      std::sort(list.begin(), list.end(), by_clock_tid);
    }
    if (!any_busy) continue;
    ++windows_executed_;

    // Window phase: run every busy core to the horizon, shards spread over
    // the host workers (each shard's cores on exactly one worker).
    if (host_threads_ > 1) {
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        pool_pending_ = host_threads_ - 1;
        ++pool_gen_;
      }
      pool_go_.notify_all();
      worker_pass(0);
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_done_.wait(lk, [&] { return pool_pending_ == 0; });
    } else {
      worker_pass(0);
    }

    // Barrier: collect finished strands (their done/settle/add runs at the
    // next pump, in clock order) and merge cross-shard traffic.
    for (auto& list : shard_busy_) {
      std::size_t keep = 0;
      for (VCore* core : list) {
        if (core->strand_done) {
          core->pending_finish = true;
          heap_push(core->clock, core->tid);
        } else {
          list[keep++] = core;
        }
      }
      list.resize(keep);
    }

    // Adaptive windows: while every window since the last merge was quiet
    // (no cross-shard coherence, no sharing-directory traffic, no link
    // bandwidth), the merge would be an identity apart from folding counter
    // deltas — defer it, doubling the merge-free budget each time a full
    // budget passes without contact, and collapse back to one window on
    // contact. The decision reads only simulation-determined shard state,
    // so it is identical for every host_threads value, and eliding an
    // identity barrier cannot change results — makespan and all memory
    // counters stay bit-identical to adaptive_window=false.
    ++windows_since_merge_;
    if (params_.adaptive_window && memory_->window_quiet() &&
        windows_since_merge_ < coalesce_limit_) {
      continue;  // barrier elided
    }
    if (params_.adaptive_window) {
      if (memory_->window_quiet()) {
        // A whole budget of quiet windows: widen geometrically (bounded so
        // counter deltas cannot go stale without limit).
        coalesce_limit_ = std::min(coalesce_limit_ * 2, kCoalesceCap);
      } else {
        coalesce_limit_ = 1;
      }
    }
    windows_since_merge_ = 0;
    ++window_merges_;
    memory_->merge_window();
  }

  SBS_CHECK_MSG(inline_done_.empty(),
                "root completed while an inline strand awaited settle");
  for (const auto& list : shard_busy_)
    SBS_CHECK_MSG(list.empty(),
                  "root completed while a strand was still running");
  memory_->merge_window();
  memory_->set_windowed(false);

  sched.finish();
  delete root.sentinel;

  SimResult result;
  result.makespan_cycles = completion_clock;
  result.counters = memory_->counters();
  result.counters.filter_skips = memory_->filter_skips_total();
  result.counters.windows_executed = windows_executed_;
  result.counters.pump_passes = pump_passes_;
  result.counters.window_merges = window_merges_;
  result.counters.inline_strands = inline_strands_run_;
  for (const auto& core : cores_) {
    if (core->fiber)
      result.counters.fiber_switches +=
          core->fiber->resumes() - core->fiber_resumes_base;
  }
  result.sched_stats = sched.stats_string();
  const double hz = topo_.config().ghz * 1e9;
  result.stats.wall_s = static_cast<double>(completion_clock) / hz;
  result.stats.per_thread.reserve(cores_.size());
  for (const auto& core : cores_) {
    runtime::ThreadBreakdown bd;
    bd.active_s = static_cast<double>(core->active_cy) / hz;
    bd.add_s = static_cast<double>(core->add_cy) / hz;
    bd.done_s = static_cast<double>(core->done_cy) / hz;
    bd.get_s = static_cast<double>(core->get_cy) / hz;
    bd.empty_s = static_cast<double>(core->empty_cy) / hz;
    bd.strands = core->strands;
    bd.empty_wakeups = core->empty_wakeups;
    result.stats.per_thread.push_back(bd);
  }
  sched_ = nullptr;
  return result;
}

}  // namespace sbs::sim
