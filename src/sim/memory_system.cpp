#include "sim/memory_system.h"

#include <algorithm>
#include <bit>

#include "util/assert.h"

namespace sbs::sim {

namespace {
constexpr int kMaxCacheDepth = 7;  // DirEntry::holders has 8 slots (1..7)
}

MemorySystem::MemorySystem(const machine::Topology& topo, MemoryParams params)
    : topo_(topo), params_(std::move(params)) {
  const machine::MachineConfig& cfg = topo.config();
  SBS_CHECK_MSG(topo.num_cache_levels() <= kMaxCacheDepth,
                "simulator supports at most 7 cache levels");
  SBS_CHECK_MSG(topo.num_threads() <= 64,
                "simulator supports at most 64 hardware threads");

  line_bytes_ = cfg.levels.back().line;
  for (const auto& lvl : cfg.levels) {
    SBS_CHECK_MSG(lvl.line == line_bytes_,
                  "simulator requires a uniform line size across levels");
  }
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes_));
  innermost_depth_ = topo.num_cache_levels();
  page_lines_shift_ = static_cast<std::uint64_t>(
      std::countr_zero(cfg.page_bytes / line_bytes_));

  // One Cache per cache node (depths 1..L).
  caches_.resize(static_cast<std::size_t>(topo.num_nodes()));
  depth_first_id_.assign(static_cast<std::size_t>(topo.leaf_depth()) + 1, -1);
  for (int id = 0; id < topo.num_nodes(); ++id) {
    const machine::Node& node = topo.node(id);
    if (depth_first_id_[static_cast<std::size_t>(node.depth)] < 0)
      depth_first_id_[static_cast<std::size_t>(node.depth)] = id;
    if (node.depth >= 1 && node.depth < topo.leaf_depth()) {
      const machine::LevelSpec& lvl = topo.level_of(id);
      caches_[static_cast<std::size_t>(id)] =
          std::make_unique<Cache>(lvl.size, lvl.line, lvl.assoc);
    }
  }
  for (int d = 1; d < topo.leaf_depth(); ++d) {
    SBS_CHECK_MSG(topo.nodes_at_depth(d).size() <= 64,
                  "simulator supports at most 64 caches per level");
  }

  // Per-thread path, innermost cache first.
  thread_path_.resize(static_cast<std::size_t>(topo.num_threads()));
  for (int t = 0; t < topo.num_threads(); ++t) {
    for (int id = topo.node(topo.leaf_of_thread(t)).parent;
         topo.node(id).depth >= 1; id = topo.node(id).parent) {
      thread_path_[static_cast<std::size_t>(t)].push_back(id);
    }
  }
  last_miss_line_.assign(static_cast<std::size_t>(topo.num_threads()),
                         ~std::uint64_t{0});

  const int n_sockets = static_cast<int>(topo.nodes_at_depth(1).size());
  socket_next_free_.assign(static_cast<std::size_t>(n_sockets), 0);
  if (params_.allowed_sockets.empty()) {
    for (int s = 0; s < n_sockets; ++s) params_.allowed_sockets.push_back(s);
  }
  for (int s : params_.allowed_sockets)
    SBS_CHECK_MSG(s >= 0 && s < n_sockets, "allowed socket out of range");
  SBS_CHECK(params_.mlp >= 1.0);

  transfer_cycles_ =
      static_cast<double>(line_bytes_) / cfg.socket_bytes_per_cycle;
  counters_.level.resize(static_cast<std::size_t>(topo.leaf_depth()));
}

int MemorySystem::home_socket(std::uint64_t line) const {
  const std::uint64_t page = line >> page_lines_shift_;
  return params_.allowed_sockets[page % params_.allowed_sockets.size()];
}

void MemorySystem::dir_set(std::uint64_t line, int depth, int ordinal) {
  directory_[line].holders[static_cast<std::size_t>(depth)] |=
      1ull << ordinal;
}

void MemorySystem::dir_clear(std::uint64_t line, int depth, int ordinal) {
  DirEntry* entry = directory_.find(line);
  if (entry == nullptr) return;
  entry->holders[static_cast<std::size_t>(depth)] &= ~(1ull << ordinal);
  for (std::uint64_t mask : entry->holders) {
    if (mask != 0) return;
  }
  directory_.erase(line);
}

std::uint64_t MemorySystem::access(int thread_id, std::uint64_t addr,
                                   bool write, std::uint64_t now) {
  const std::uint64_t line = addr >> line_shift_;
  const auto& path = thread_path_[static_cast<std::size_t>(thread_id)];
  ++counters_.accesses;
  if (write) ++counters_.writes;

  // Probe inside-out. Dirtiness is tracked at the innermost level holding
  // the line and propagates outward on eviction.
  for (std::size_t i = 0; i < path.size(); ++i) {
    const int node_id = path[i];
    const int depth = topo_.node(node_id).depth;
    Cache& cache = *caches_[static_cast<std::size_t>(node_id)];
    const bool innermost = (i == 0);
    if (cache.probe_and_touch(line, write && innermost)) {
      ++counters_.level[static_cast<std::size_t>(depth)].hits;
      // Fill the inner levels we missed in (inclusive hierarchy).
      if (i > 0) fill_path(thread_id, line, write, depth + 1, now);
      if (write) write_invalidate(thread_id, line);
      return topo_.level_of(node_id).hit_cycles;
    }
    ++counters_.level[static_cast<std::size_t>(depth)].misses;
  }

  // Miss everywhere: fetch from the home socket's memory link.
  const int home = home_socket(line);
  const int my_socket =
      topo_.socket_of_thread(thread_id) - depth_first_id_[1];
  std::uint64_t& next_free =
      socket_next_free_[static_cast<std::size_t>(home)];
  const std::uint64_t wait = next_free > now ? next_free - now : 0;
  next_free = std::max(next_free, now) +
              static_cast<std::uint64_t>(transfer_cycles_);
  counters_.queue_wait_cycles += wait;
  ++counters_.dram_reads;

  std::uint64_t latency = 0;
  std::uint64_t& last = last_miss_line_[static_cast<std::size_t>(thread_id)];
  if (line != last + 1) {  // not a prefetchable streak
    latency = static_cast<std::uint64_t>(
        static_cast<double>(topo_.config().dram_latency_cycles) / params_.mlp);
  }
  last = line;
  if (home != my_socket) {
    latency += params_.remote_penalty_cycles;
    ++counters_.remote_dram_accesses;
  }

  fill_path(thread_id, line, write, /*from_depth=*/1, now);
  if (write) write_invalidate(thread_id, line);
  return wait + static_cast<std::uint64_t>(transfer_cycles_) + latency;
}

std::uint64_t MemorySystem::access_range(int thread_id, std::uint64_t addr,
                                         std::uint64_t bytes, bool write,
                                         std::uint64_t now) {
  if (bytes == 0) return 0;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  std::uint64_t cost = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    cost += access(thread_id, line << line_shift_, write, now + cost);
  }
  return cost;
}

void MemorySystem::fill_path(int thread_id, std::uint64_t line, bool write,
                             int from_depth, std::uint64_t now) {
  const auto& path = thread_path_[static_cast<std::size_t>(thread_id)];
  // Fill outermost-first so inclusion always holds. Directory bits for the
  // filled line are batched into one table operation at the end (eviction
  // handling erases other entries, which may relocate slots).
  std::uint64_t set_bits[8] = {};
  bool any_bits = false;
  for (std::size_t i = path.size(); i-- > 0;) {
    const int node_id = path[i];
    const int depth = topo_.node(node_id).depth;
    if (depth < from_depth) continue;
    Cache& cache = *caches_[static_cast<std::size_t>(node_id)];
    const bool innermost = (i == 0);
    Cache::Evicted evicted;
    if (!cache.fill_if_absent(line, write && innermost, &evicted)) {
      continue;  // already present (possible when from_depth > 1)
    }
    if (tracked(depth)) {
      set_bits[depth] |= 1ull << (node_id -
                                  depth_first_id_[static_cast<std::size_t>(depth)]);
      any_bits = true;
    }
    if (evicted.valid) handle_eviction(node_id, evicted, now);
  }
  if (any_bits) {
    DirEntry& entry = directory_[line];
    for (int d = 0; d < 8; ++d)
      entry.holders[static_cast<std::size_t>(d)] |= set_bits[d];
  }
}

void MemorySystem::invalidate_innermost_below(int parent_id,
                                              std::uint64_t line,
                                              int spare_node, bool* dirty,
                                              bool coherence) {
  const machine::Node& parent = topo_.node(parent_id);
  for (int c = parent.first_child; c < parent.first_child + parent.num_children;
       ++c) {
    if (c == spare_node) continue;
    bool inner_dirty = false;
    if (caches_[static_cast<std::size_t>(c)]->invalidate(line, &inner_dirty)) {
      *dirty = *dirty || inner_dirty;
      LevelCounters& lc =
          counters_.level[static_cast<std::size_t>(innermost_depth_)];
      if (coherence) {
        ++lc.coherence_invalidations;
      } else {
        ++lc.back_invalidations;
      }
    }
  }
}

void MemorySystem::handle_eviction(int node_id, const Cache::Evicted& evicted,
                                   std::uint64_t now) {
  const int depth = topo_.node(node_id).depth;
  ++counters_.level[static_cast<std::size_t>(depth)].evictions;

  bool dirty = evicted.dirty;
  if (tracked(depth)) {
    dir_clear(evicted.line, depth,
              node_id - depth_first_id_[static_cast<std::size_t>(depth)]);

    // Inclusive hierarchy: evicting here back-invalidates every descendant
    // cache holding the line; a dirty inner copy dirties the outgoing line.
    DirEntry* entry = directory_.find(evicted.line);
    if (entry != nullptr) {
      for (int d = depth + 1; tracked(d); ++d) {
        std::uint64_t mask = entry->holders[static_cast<std::size_t>(d)];
        while (mask != 0) {
          const int ord = std::countr_zero(mask);
          mask &= mask - 1;
          const int holder =
              depth_first_id_[static_cast<std::size_t>(d)] + ord;
          if (topo_.ancestor_at_depth(holder, depth) != node_id) continue;
          bool inner_dirty = false;
          if (caches_[static_cast<std::size_t>(holder)]->invalidate(
                  evicted.line, &inner_dirty)) {
            dirty = dirty || inner_dirty;
            ++counters_.level[static_cast<std::size_t>(d)].back_invalidations;
            dir_clear(evicted.line, d, ord);
          }
          // The untracked innermost copies live under this holder.
          if (d + 1 == innermost_depth_ && !tracked(innermost_depth_)) {
            invalidate_innermost_below(holder, evicted.line, -1, &dirty);
          }
        }
      }
    }
    // Direct parent of the innermost level: probe our own children.
    if (depth + 1 == innermost_depth_ && !tracked(innermost_depth_)) {
      invalidate_innermost_below(node_id, evicted.line, -1, &dirty);
    }
  }

  if (depth == 1) {
    // Leaving the outermost cache: dirty lines are written back to memory,
    // consuming home-link bandwidth (asynchronously: no core stall).
    if (dirty) {
      const int home = home_socket(evicted.line);
      std::uint64_t& next_free =
          socket_next_free_[static_cast<std::size_t>(home)];
      next_free = std::max(next_free, now) +
                  static_cast<std::uint64_t>(transfer_cycles_);
      ++counters_.dram_writebacks;
    }
  } else if (dirty) {
    // Propagate dirtiness to the parent cache, which holds the line by
    // inclusion (unless a concurrent parent eviction raced it out — then the
    // line is already on its way to memory via that eviction's handling).
    const int parent = topo_.node(node_id).parent;
    caches_[static_cast<std::size_t>(parent)]->probe_and_touch(evicted.line,
                                                               true);
  }
}

void MemorySystem::write_invalidate(int thread_id, std::uint64_t line) {
  const int leaf = topo_.leaf_of_thread(thread_id);
  // Sibling innermost caches under our own innermost parent are not in the
  // directory: probe them directly (no-op when the innermost level is
  // private per parent, e.g. fanout-1 L2→L1).
  if (!tracked(innermost_depth_)) {
    const int my_inner = topo_.ancestor_at_depth(leaf, innermost_depth_);
    const int my_parent = topo_.node(my_inner).parent;
    if (topo_.node(my_parent).num_children > 1) {
      for (int c = topo_.node(my_parent).first_child;
           c < topo_.node(my_parent).first_child +
                   topo_.node(my_parent).num_children;
           ++c) {
        if (c == my_inner) continue;
        if (caches_[static_cast<std::size_t>(c)]->invalidate(line, nullptr)) {
          ++counters_.level[static_cast<std::size_t>(innermost_depth_)]
                .coherence_invalidations;
        }
      }
    }
  }

  DirEntry* entry = directory_.find(line);
  if (entry == nullptr) return;
  for (int d = 1; tracked(d); ++d) {
    std::uint64_t mask = entry->holders[static_cast<std::size_t>(d)];
    const int my_node = topo_.ancestor_at_depth(leaf, d);
    const int my_ord = my_node - depth_first_id_[static_cast<std::size_t>(d)];
    mask &= ~(1ull << my_ord);  // keep our own path's copies
    while (mask != 0) {
      const int ord = std::countr_zero(mask);
      mask &= mask - 1;
      const int holder = depth_first_id_[static_cast<std::size_t>(d)] + ord;
      if (caches_[static_cast<std::size_t>(holder)]->invalidate(line,
                                                                nullptr)) {
        ++counters_.level[static_cast<std::size_t>(d)].coherence_invalidations;
      }
      // Remote untracked innermost copies live under this (remote) holder.
      if (d + 1 == innermost_depth_ && !tracked(innermost_depth_)) {
        bool ignored = false;
        invalidate_innermost_below(holder, line, -1, &ignored,
                                   /*coherence=*/true);
      }
      dir_clear(line, d, ord);
    }
    // dir_clear may have erased or moved the entry; re-find per depth.
    entry = directory_.find(line);
    if (entry == nullptr) return;
  }
}

std::uint64_t MemorySystem::resident_lines(int node_id) const {
  const auto& cache = caches_[static_cast<std::size_t>(node_id)];
  return cache ? cache->resident_lines() : 0;
}

void MemorySystem::reset() {
  for (auto& cache : caches_) {
    if (cache) cache->clear();
  }
  directory_.clear();
  std::fill(socket_next_free_.begin(), socket_next_free_.end(), 0);
  std::fill(last_miss_line_.begin(), last_miss_line_.end(), ~std::uint64_t{0});
  counters_ = Counters{};
  counters_.level.resize(static_cast<std::size_t>(topo_.leaf_depth()));
}

}  // namespace sbs::sim
