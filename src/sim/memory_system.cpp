#include "sim/memory_system.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "util/assert.h"

namespace sbs::sim {

namespace {
constexpr int kMaxCacheDepth = 7;  // ThreadInfo path arrays have 8 slots
constexpr int kMaxShards = SocketSet::kMaxSockets;
}  // namespace

MemorySystem::MemorySystem(const machine::Topology& topo, MemoryParams params)
    : topo_(topo), params_(std::move(params)) {
  const machine::MachineConfig& cfg = topo.config();
  SBS_CHECK_MSG(topo.num_cache_levels() <= kMaxCacheDepth,
                "simulator supports at most 7 cache levels");

  line_bytes_ = cfg.levels.back().line;
  for (const auto& lvl : cfg.levels) {
    SBS_CHECK_MSG(lvl.line == line_bytes_,
                  "simulator requires a uniform line size across levels");
  }
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes_));
  innermost_depth_ = topo.num_cache_levels();
  page_lines_shift_ = static_cast<std::uint64_t>(
      std::countr_zero(cfg.page_bytes / line_bytes_));

  const int leaf_depth = topo.leaf_depth();

  // The escape hatch for the vectorized probe loop: SBS_SIM_SCALAR=1 forces
  // every cache onto the scalar tag scan (CI's forced-scalar lane, and any
  // host where the SIMD path is suspected). Read once here so a single env
  // check covers all caches.
  const char* scalar_env = std::getenv("SBS_SIM_SCALAR");
  if (scalar_env != nullptr && std::strcmp(scalar_env, "0") != 0 &&
      scalar_env[0] != '\0') {
    params_.cache.simd_probes = false;
  }

  // One Cache per cache node (depths 1..L), plus the per-node precomputation
  // the hot paths use instead of Topology queries.
  const int n_nodes = topo.num_nodes();
  caches_.resize(static_cast<std::size_t>(n_nodes));
  node_depth_.assign(static_cast<std::size_t>(n_nodes), -1);
  node_shard_.assign(static_cast<std::size_t>(n_nodes), -1);
  child_first_.assign(static_cast<std::size_t>(n_nodes), 0);
  child_count_.assign(static_cast<std::size_t>(n_nodes), 0);
  node_mask_ok_.assign(static_cast<std::size_t>(n_nodes), 0);
  inner_first_thread_.assign(static_cast<std::size_t>(n_nodes), -1);
  inner_thread_count_.assign(static_cast<std::size_t>(n_nodes), 0);

  const std::vector<int> sockets = topo.nodes_at_depth(1);
  const int n_shards = static_cast<int>(sockets.size());
  SBS_CHECK_MSG(n_shards >= 1 && n_shards <= kMaxShards,
                "simulator supports 1..1024 sockets");
  const int first_socket_id = sockets.front();
  socket_node_.assign(sockets.begin(), sockets.end());

  for (int id = 0; id < n_nodes; ++id) {
    const machine::Node& node = topo.node(id);
    node_depth_[static_cast<std::size_t>(id)] = node.depth;
    child_first_[static_cast<std::size_t>(id)] = node.first_child;
    child_count_[static_cast<std::size_t>(id)] = node.num_children;
    node_mask_ok_[static_cast<std::size_t>(id)] = node.num_children <= 16;
    if (node.depth < 1) continue;
    node_shard_[static_cast<std::size_t>(id)] =
        topo.ancestor_at_depth(id, 1) - first_socket_id;
    if (node.depth < leaf_depth) {
      const machine::LevelSpec& lvl = topo.level_of(id);
      caches_[static_cast<std::size_t>(id)] =
          std::make_unique<Cache>(lvl.size, lvl.line, lvl.assoc,
                                  params_.cache);
    }
  }

  // Flattened per-thread paths, innermost cache first.
  const int n_threads = topo.num_threads();
  tinfo_.resize(static_cast<std::size_t>(n_threads));
  memo_.assign(static_cast<std::size_t>(n_threads), Memo{});
  range_memo_.assign(static_cast<std::size_t>(n_threads), RangeMemo{});
  last_miss_line_.assign(static_cast<std::size_t>(n_threads),
                         ~std::uint64_t{0});
  memo_enabled_ = innermost_depth_ >= 1 && n_threads > 0;
  for (int t = 0; t < n_threads; ++t) {
    ThreadInfo& ti = tinfo_[static_cast<std::size_t>(t)];
    ti.leaf_id = topo.leaf_of_thread(t);
    ti.inner_depth = innermost_depth_;
    for (int id = topo.node(ti.leaf_id).parent; topo.node(id).depth >= 1;
         id = topo.node(id).parent) {
      const std::size_t i = static_cast<std::size_t>(ti.path_len++);
      ti.node[i] = id;
      ti.depth[i] = node_depth_[static_cast<std::size_t>(id)];
      ti.hit_cycles[i] = topo.level_of(id).hit_cycles;
      ti.cache[i] = caches_[static_cast<std::size_t>(id)].get();
    }
    for (int i = 0; i + 1 < ti.path_len; ++i) {
      const int parent = ti.node[static_cast<std::size_t>(i + 1)];
      ti.slot[static_cast<std::size_t>(i)] =
          node_mask_ok_[static_cast<std::size_t>(parent)]
              ? static_cast<std::uint8_t>(
                    ti.node[static_cast<std::size_t>(i)] -
                    child_first_[static_cast<std::size_t>(parent)])
              : std::uint8_t{0xFF};
    }
    if (ti.path_len > 0) {
      const int inner = ti.node[0];
      ti.shard = node_shard_[static_cast<std::size_t>(inner)];
      // Threads below one innermost cache are contiguous (breadth-first
      // leaf ids), so a (first, count) pair addresses its memo owners.
      std::int32_t& first = inner_first_thread_[static_cast<std::size_t>(inner)];
      if (first < 0) first = t;
      ++inner_thread_count_[static_cast<std::size_t>(inner)];
    } else {
      memo_enabled_ = false;
    }
  }

  socket_next_free_.assign(static_cast<std::size_t>(n_shards), 0);
  if (params_.allowed_sockets.empty()) {
    for (int s = 0; s < n_shards; ++s) params_.allowed_sockets.push_back(s);
  }
  for (int s : params_.allowed_sockets)
    SBS_CHECK_MSG(s >= 0 && s < n_shards, "allowed socket out of range");
  SBS_CHECK(params_.mlp >= 1.0);

  transfer_cycles_ =
      static_cast<double>(line_bytes_) / cfg.socket_bytes_per_cycle;
  isolated_miss_cycles_ = static_cast<std::uint64_t>(
      static_cast<double>(cfg.dram_latency_cycles) / params_.mlp);
  counters_.level.resize(static_cast<std::size_t>(leaf_depth));

  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->ctr = &counters_;
    sh->links = socket_next_free_.data();
    sh->link_view.assign(static_cast<std::size_t>(n_shards), 0);
    sh->link_used.assign(static_cast<std::size_t>(n_shards), 0);
    shards_.push_back(std::move(sh));
  }
}

int MemorySystem::home_socket(std::uint64_t line) const {
  const std::uint64_t page = line >> page_lines_shift_;
  return params_.allowed_sockets[page % params_.allowed_sockets.size()];
}

namespace {
/// Remove `line` from the run [*lo, *hi), keeping the larger remnant.
inline void shrink_range(std::uint64_t line, std::uint64_t* lo,
                         std::uint64_t* hi) {
  if (line < *lo || line >= *hi) return;
  if (line - *lo < *hi - 1 - line) {
    *lo = line + 1;
  } else {
    *hi = line;
  }
}
}  // namespace

void MemorySystem::memo_drop(int inner_node, std::uint64_t line) {
  const int first = inner_first_thread_[static_cast<std::size_t>(inner_node)];
  const int cnt = inner_thread_count_[static_cast<std::size_t>(inner_node)];
  const std::size_t slot = line & (kMemoSlots - 1);
  for (int t = first; t < first + cnt; ++t) {
    Memo& memo = memo_[static_cast<std::size_t>(t)];
    if ((memo.entry[slot] >> 1) == line) {
      memo.entry[slot] = ~std::uint64_t{0};
    }
    RangeMemo& rm = range_memo_[static_cast<std::size_t>(t)];
    shrink_range(line, &rm.lo, &rm.hi);
    shrink_range(line, &rm.cand_lo, &rm.cand_hi);
  }
}

void MemorySystem::share_children(int node_id, std::uint32_t mask,
                                  std::uint64_t line, std::uint8_t bits,
                                  std::uint8_t stop_bits) {
  const int first = child_first_[static_cast<std::size_t>(node_id)];
  const int cnt = child_count_[static_cast<std::size_t>(node_id)];
  if (cnt == 0 || caches_[static_cast<std::size_t>(first)] == nullptr)
    return;  // children are hardware-thread leaves
  const auto visit = [&](int c) {
    std::uint8_t old = 0;
    const int holders =
        caches_[static_cast<std::size_t>(c)]->mark_shared(line, bits, &old);
    if (holders < 0) return;           // stale holder bit
    if ((old & stop_bits) != 0) return;  // see share_socket
    if (node_depth_[static_cast<std::size_t>(c)] != innermost_depth_) {
      share_children(c, static_cast<std::uint32_t>(holders), line, bits,
                     stop_bits);
    }
  };
  if (node_mask_ok_[static_cast<std::size_t>(node_id)]) {
    for (std::uint32_t m = mask; m != 0; m &= m - 1) {
      visit(first + std::countr_zero(m));
    }
  } else {
    for (int c = first; c < first + cnt; ++c) visit(c);
  }
}

void MemorySystem::share_socket(int shard, std::uint64_t line,
                                std::uint8_t bits, std::uint8_t stop_bits) {
  // `stop_bits`: if the visited way already carries any of these, its whole
  // subtree does too, so descent stops. Cross marking passes
  // CrossShared|CrossUnknown — sound because cross bits are *sticky* (fills
  // inherit them and writes never clear them), so a non-exclusive root can
  // never hide an exclusive descendant. Sock marking passes 0 (full
  // descent): a write resets only the writer's innermost way, so a stale
  // sock-shared ancestor can sit above a sock-exclusive leaf.
  const int socket = socket_node_[static_cast<std::size_t>(shard)];
  std::uint8_t old = 0;
  const int holders =
      caches_[static_cast<std::size_t>(socket)]->mark_shared(line, bits, &old);
  if (holders < 0) return;   // already evicted (directory bit lags a window)
  if ((old & stop_bits) != 0) return;
  if (innermost_depth_ != 1) {
    share_children(socket, static_cast<std::uint32_t>(holders), line, bits,
                   stop_bits);
  }
}

std::uint8_t MemorySystem::outer_fill_flags(Shard& sh, int shard,
                                            std::uint64_t line) {
  if (shards_.size() == 1) return 0;  // one socket: nothing is ever cross
  if (windowed_) {
    // The directory is read-only during a window; start unknown and let the
    // barrier resolve it (a later write posts an outbox event regardless).
    sh.sd_delta.push_back(SdDelta{line, shard, true});
    return Cache::kFlagCrossUnknown;
  }
  SocketSet& holders = sharing_[line];
  const bool others = holders.any_other(shard);
  holders.set(shard);
  if (!others) return 0;
  // We join existing holders: their copies — possibly marked exclusive —
  // are now shared, and so are ours.
  holders.for_each_other(shard, [&](int other) {
    share_socket(other, line, Cache::kFlagCrossShared,
                 Cache::kFlagCrossShared | Cache::kFlagCrossUnknown);
  });
  return Cache::kFlagCrossShared;
}

void MemorySystem::note_outer_evict(Shard& sh, int shard,
                                    std::uint64_t line) {
  if (shards_.size() == 1) return;
  if (windowed_) {
    sh.sd_delta.push_back(SdDelta{line, shard, false});
  } else {
    SocketSet* holders = sharing_.find(line);
    if (holders != nullptr) {
      holders->reset(shard);
      if (holders->none()) sharing_.erase(line);
    }
  }
}

std::uint64_t MemorySystem::access_slow(ThreadInfo& ti, Counters& ctr,
                                        int thread_id, std::uint64_t line,
                                        bool write, std::uint64_t now) {
  Shard& sh = *shards_[static_cast<std::size_t>(ti.shard)];

  // Start the outermost level's tag load now: its array is far larger than
  // the host cache, so by the time the inner probes miss, the line the L-1
  // probe needs is already in flight. (Inner tag arrays are small enough to
  // stay host-resident — prefetching them measured as pure overhead.)
  if (ti.path_len > 1) {
    ti.cache[static_cast<std::size_t>(ti.path_len - 1)]->prefetch(line);
  }

  // Probe inside-out. Dirtiness is tracked at the innermost level holding
  // the line and propagates outward on eviction.
  std::uint64_t cost = 0;
  int hit = -1;
  std::uint8_t hflags = 0;
  std::uint16_t hholders = 0;
  for (int i = 0; i < ti.path_len; ++i) {
    if (ti.cache[static_cast<std::size_t>(i)]->probe_and_touch(
            line, write && i == 0, &hflags, &hholders)) {
      hit = i;
      break;
    }
    ++ctr
          .level[static_cast<std::size_t>(
              ti.depth[static_cast<std::size_t>(i)])]
          .misses;
  }

  std::uint8_t flags = 0;
  if (hit >= 0) {
    ++ctr
          .level[static_cast<std::size_t>(
              ti.depth[static_cast<std::size_t>(hit)])]
          .hits;
    if (hit > 0) {
      // Fill the inner levels we missed in (inclusive hierarchy). The new
      // ways' flags derive from the hit way: they inherit its cross state,
      // and are sock-shared if it is, or if other branches hang off it (the
      // untrackable-mask fallback is conservatively shared).
      const std::uint8_t myslot = ti.slot[static_cast<std::size_t>(hit - 1)];
      const bool sock =
          (hflags & Cache::kFlagSockShared) != 0 || myslot == 0xFF ||
          (hholders & ~(1u << myslot)) != 0;
      flags = static_cast<std::uint8_t>(
          (hflags & (Cache::kFlagCrossShared | Cache::kFlagCrossUnknown)) |
          (sock ? Cache::kFlagSockShared : 0));
      flags = fill_path(ti, sh, line, write, hit - 1, now, flags);
    } else {
      flags = hflags;
    }
    cost = ti.hit_cycles[static_cast<std::size_t>(hit)];
  } else {
    // Miss everywhere: fetch from the home socket's memory link.
    const int home = home_socket(line);
    std::uint64_t& next_free = sh.links[static_cast<std::size_t>(home)];
    const std::uint64_t wait = next_free > now ? next_free - now : 0;
    next_free = std::max(next_free, now) +
                static_cast<std::uint64_t>(transfer_cycles_);
    sh.link_used[static_cast<std::size_t>(home)] +=
        static_cast<std::uint64_t>(transfer_cycles_);
    sh.link_touched = true;
    ctr.queue_wait_cycles += wait;
    ++ctr.dram_reads;

    std::uint64_t latency = 0;
    std::uint64_t& last = last_miss_line_[static_cast<std::size_t>(thread_id)];
    if (line != last + 1) {  // not a prefetchable streak
      latency = isolated_miss_cycles_;
    }
    last = line;
    if (home != ti.shard) {
      latency += params_.remote_penalty_cycles;
      ++ctr.remote_dram_accesses;
    }

    flags = fill_path(ti, sh, line, write, ti.path_len - 1, now, 0);
    cost = wait + static_cast<std::uint64_t>(transfer_cycles_) + latency;
  }

  if (write && flags != 0) {
    // Some copy may live outside our path: sweep, then clear the innermost
    // way's sock bit (the sweep verified the socket is ours alone). Cross
    // bits stay — they are sticky by design (see share_socket), and repeat
    // writes are memo-absorbed anyway.
    write_invalidate(ti, sh, line, flags);
    ti.cache[0]->set_flags(
        line, flags & (Cache::kFlagCrossShared | Cache::kFlagCrossUnknown));
  }

  if (memo_enabled_) {
    // Insert (or refresh) the direct-mapped slot; a write-after-read
    // upgrade keeps the old dirty knowledge via the OR.
    std::uint64_t& e =
        memo_[static_cast<std::size_t>(thread_id)]
            .entry[line & (kMemoSlots - 1)];
    const std::uint64_t w =
        (write ? 1u : 0u) | ((e >> 1) == line ? (e & 1) : 0u);
    e = (line << 1) | w;
    extend_streak(range_memo_[static_cast<std::size_t>(thread_id)], line,
                  write);
  }
  return cost;
}

std::uint64_t MemorySystem::access_range_multi(int thread_id,
                                               std::uint64_t first,
                                               std::uint64_t last, bool write,
                                               std::uint64_t now) {
  if (memo_enabled_) {
    // Whole-range absorb: a re-sweep of a buffer the range memo proves
    // innermost-resident is one compare and a bulk counter update.
    const RangeMemo& rm = range_memo_[static_cast<std::size_t>(thread_id)];
    if (first >= rm.lo && last < rm.hi && (!write || rm.wrote != 0)) {
      const ThreadInfo& ti = tinfo_[static_cast<std::size_t>(thread_id)];
      Counters& ctr = *shards_[static_cast<std::size_t>(ti.shard)]->ctr;
      const std::uint64_t n = last - first + 1;
      ctr.accesses += n;
      if (write) ctr.writes += n;
      ctr.level[static_cast<std::size_t>(ti.inner_depth)].hits += n;
      return n * ti.hit_cycles[0];
    }
  }
  std::uint64_t cost = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    cost += access(thread_id, line << line_shift_, write, now + cost);
  }
  return cost;
}

std::uint8_t MemorySystem::fill_path(const ThreadInfo& ti, Shard& sh,
                                     std::uint64_t line, bool write,
                                     int from_index, std::uint64_t now,
                                     std::uint8_t flags) {
  // Fill outermost-first so inclusion always holds. Every level in
  // [0, from_index] was probed and missed by the caller, and handling an
  // eviction at an outer level never inserts this line anywhere, so the
  // unchecked fill (no probe scan) is safe.
  for (int i = from_index; i >= 0; --i) {
    if (ti.depth[static_cast<std::size_t>(i)] == 1) {
      // DRAM fill of the outermost level: by inclusion nothing in this
      // socket holds the line (we would have hit), so sock-exclusive; the
      // cross state comes from the sharing directory.
      flags = outer_fill_flags(sh, ti.shard, line);
    }
    const Cache::Evicted evicted =
        ti.cache[static_cast<std::size_t>(i)]->fill(line, write && i == 0,
                                                    flags);
    if (evicted.valid)
      handle_eviction(sh, ti.node[static_cast<std::size_t>(i)], evicted, now);
    // Flag this branch in the parent's holder mask (the parent holds the
    // line — it sits above us on the just-filled path).
    if (i + 1 < ti.path_len && ti.slot[static_cast<std::size_t>(i)] != 0xFF) {
      const std::uint16_t old =
          ti.cache[static_cast<std::size_t>(i + 1)]->set_holder_bit(
              line, ti.slot[static_cast<std::size_t>(i)]);
      // Joining existing holders at the hit boundary makes them shared.
      // (Deeper parents are fresh fills whose only holder is us, and a
      // write is about to sweep those siblings out anyway.)
      if (i == from_index && !write) {
        const std::uint16_t others = static_cast<std::uint16_t>(
            old & ~(1u << ti.slot[static_cast<std::size_t>(i)]));
        if (others != 0) {
          share_children(ti.node[static_cast<std::size_t>(i + 1)], others,
                         line, Cache::kFlagSockShared, /*stop_bits=*/0);
        }
      }
    } else if (i + 1 < ti.path_len && i == from_index && !write) {
      // Untrackable parent mask: mark every sibling subtree conservatively.
      share_children(ti.node[static_cast<std::size_t>(i + 1)], 0xFFFF, line,
                     Cache::kFlagSockShared, /*stop_bits=*/0);
    }
  }
  return flags;
}

void MemorySystem::invalidate_children(int node_id, std::uint32_t mask,
                                       std::uint64_t line, bool* dirty,
                                       Counters& ctr, bool coherence) {
  const int first = child_first_[static_cast<std::size_t>(node_id)];
  const int cnt = child_count_[static_cast<std::size_t>(node_id)];
  if (cnt == 0 || caches_[static_cast<std::size_t>(first)] == nullptr)
    return;  // children are hardware-thread leaves
  const auto visit = [&](int c) {
    bool inner_dirty = false;
    std::uint16_t cmask = 0;
    if (!caches_[static_cast<std::size_t>(c)]->invalidate(line, &inner_dirty,
                                                          &cmask)) {
      return;  // stale holder bit — the child evicted the line on its own
    }
    *dirty = *dirty || inner_dirty;
    const int d = node_depth_[static_cast<std::size_t>(c)];
    LevelCounters& lc = ctr.level[static_cast<std::size_t>(d)];
    if (coherence) {
      ++lc.coherence_invalidations;
    } else {
      ++lc.back_invalidations;
    }
    if (d == innermost_depth_) {
      memo_drop(c, line);
    } else {
      invalidate_children(c, cmask, line, dirty, ctr, coherence);
    }
  };
  if (node_mask_ok_[static_cast<std::size_t>(node_id)]) {
    for (std::uint32_t m = mask; m != 0; m &= m - 1) {
      visit(first + std::countr_zero(m));
    }
  } else {
    for (int c = first; c < first + cnt; ++c) visit(c);
  }
}

void MemorySystem::handle_eviction(Shard& sh, int node_id,
                                   const Cache::Evicted& evicted,
                                   std::uint64_t now) {
  const int depth = node_depth_[static_cast<std::size_t>(node_id)];
  Counters& ctr = *sh.ctr;
  ++ctr.level[static_cast<std::size_t>(depth)].evictions;

  bool dirty = evicted.dirty;
  if (depth == innermost_depth_) {
    memo_drop(node_id, evicted.line);
  } else {
    // Inclusive hierarchy: evicting here back-invalidates every descendant
    // copy; a dirty inner copy dirties the outgoing line. The victim way's
    // holder mask names the children that may hold it.
    invalidate_children(node_id, evicted.holders, evicted.line, &dirty, ctr,
                        /*coherence=*/false);
  }

  if (depth == 1) {
    note_outer_evict(sh, node_shard_[static_cast<std::size_t>(node_id)],
                     evicted.line);
    // Leaving the outermost cache: dirty lines are written back to memory,
    // consuming home-link bandwidth (asynchronously: no core stall).
    if (dirty) {
      const int home = home_socket(evicted.line);
      std::uint64_t& next_free = sh.links[static_cast<std::size_t>(home)];
      next_free = std::max(next_free, now) +
                  static_cast<std::uint64_t>(transfer_cycles_);
      sh.link_used[static_cast<std::size_t>(home)] +=
          static_cast<std::uint64_t>(transfer_cycles_);
      sh.link_touched = true;
      ++ctr.dram_writebacks;
    }
  } else if (dirty) {
    // Propagate dirtiness to the parent cache, which holds the line by
    // inclusion (unless a concurrent parent eviction raced it out — then the
    // line is already on its way to memory via that eviction's handling).
    const int parent = topo_.node(node_id).parent;
    caches_[static_cast<std::size_t>(parent)]->probe_and_touch(evicted.line,
                                                               true);
  }
}

void MemorySystem::write_invalidate(const ThreadInfo& ti, Shard& sh,
                                    std::uint64_t line, std::uint8_t flags) {
  Counters& ctr = *sh.ctr;
  // Copies inside our own socket, outside our own path: walk the path
  // outermost-in and sweep the sibling subtrees hanging off each path node,
  // consulting each path cache's holder mask. The caller's sock-shared flag
  // already proved a line with no such copies needs no sweep at all, so
  // reaching the loop means some mask is worth reading.
  for (int i = (flags & Cache::kFlagSockShared) ? ti.path_len - 1 : 0; i >= 1;
       --i) {
    const int parent = ti.node[static_cast<std::size_t>(i)];
    const int first = child_first_[static_cast<std::size_t>(parent)];
    const int cnt = child_count_[static_cast<std::size_t>(parent)];
    if (cnt <= 1) continue;  // only my own branch hangs off this node
    const auto sweep = [&](int c) {
      std::uint16_t cmask = 0;
      if (!caches_[static_cast<std::size_t>(c)]->invalidate(line, nullptr,
                                                            &cmask)) {
        return;  // stale holder bit
      }
      const int d = node_depth_[static_cast<std::size_t>(c)];
      ++ctr.level[static_cast<std::size_t>(d)].coherence_invalidations;
      if (d == innermost_depth_) {
        memo_drop(c, line);
      } else {
        bool ignored = false;
        invalidate_children(c, cmask, line, &ignored, ctr,
                            /*coherence=*/true);
      }
    };
    const std::uint8_t myslot = ti.slot[static_cast<std::size_t>(i - 1)];
    if (myslot != 0xFF) {
      // The path cache holds the line (inclusion), so its mask exists.
      std::uint16_t* mp =
          ti.cache[static_cast<std::size_t>(i)]->holder_mask(line);
      SBS_ASSERT(mp != nullptr);
      const std::uint16_t others =
          static_cast<std::uint16_t>(*mp & ~(1u << myslot));
      for (std::uint32_t m = others; m != 0; m &= m - 1) {
        sweep(first + std::countr_zero(m));
      }
      // Every flagged sibling is now verified gone (invalidated or stale):
      // scrub the bits so the next write is mask-read only. `mp` is still
      // valid — sibling invalidations never touch this cache's sets.
      *mp = static_cast<std::uint16_t>(*mp & ~others);
    } else {
      const int me = ti.node[static_cast<std::size_t>(i - 1)];
      for (int c = first; c < first + cnt; ++c) {
        if (c != me) sweep(c);
      }
    }
  }

  // Copies in other sockets. Cross-exclusive lines — the overwhelming
  // majority — already skipped this via the flags gate in access().
  // Windowed mode defers the event to the barrier without consulting the
  // directory (cross-unknown lines may post a redundant event; the barrier
  // lookup resolves it); immediate mode applies it now, identical to the
  // pre-sharded implementation.
  if ((flags & (Cache::kFlagCrossShared | Cache::kFlagCrossUnknown)) == 0)
    return;
  if (windowed_) {
    sh.outbox.push_back(InvalEvent{line, ti.shard});
    return;
  }
  SocketSet* sd = sharing_.find(line);
  if (sd == nullptr) return;
  if (!sd->any_other(ti.shard)) return;
  sd->for_each_other(ti.shard,
                     [&](int victim) { apply_remote_invalidate(victim, line); });
  sd->clear_others(ti.shard);
  if (sd->none()) sharing_.erase(line);
}

bool MemorySystem::apply_remote_invalidate(int victim_shard,
                                           std::uint64_t line) {
  // The victim's outermost cache holds every copy below it (inclusion), so
  // one probe decides whether any sweep is needed at all. Remote dirty
  // copies are dropped without a writeback (the writer supplies the data).
  const int socket = socket_node_[static_cast<std::size_t>(victim_shard)];
  Cache* sc = caches_[static_cast<std::size_t>(socket)].get();
  std::uint16_t cmask = 0;
  if (!sc->invalidate(line, nullptr, &cmask)) return false;
  ++counters_.level[1].coherence_invalidations;
  if (innermost_depth_ == 1) {
    memo_drop(socket, line);
  } else {
    bool ignored = false;
    invalidate_children(socket, cmask, line, &ignored, counters_,
                        /*coherence=*/true);
  }
  return true;
}

void MemorySystem::set_windowed(bool on) {
  windowed_ = on;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    if (on) {
      sh.delta.level.resize(static_cast<std::size_t>(topo_.leaf_depth()));
      sh.delta.clear();
      sh.ctr = &sh.delta;
      sh.link_view.assign(socket_next_free_.begin(), socket_next_free_.end());
      std::fill(sh.link_used.begin(), sh.link_used.end(), 0);
      sh.links = sh.link_view.data();
      sh.outbox.clear();
      sh.sd_delta.clear();
      sh.link_touched = false;
    } else {
      sh.ctr = &counters_;
      sh.links = socket_next_free_.data();
    }
  }
}

void MemorySystem::merge_window() {
  // 1. Counter deltas (before any barrier-time events charge counters_).
  //    Every delta-mutating path starts by bumping `accesses`, so a shard
  //    with none folded nothing — skip it (huge machines run many windows
  //    where most shards are idle).
  for (auto& shp : shards_) {
    if (shp->delta.accesses == 0) continue;
    counters_ += shp->delta;
    shp->delta.clear();
  }
  // 2. Sharing-directory deltas, in shard order: after this, sharing_
  //    reflects end-of-window outermost-cache residency. A fill that joins
  //    existing holders is where cross-socket sharing is first discovered
  //    in windowed mode, so mark both sides' subtrees here (idempotent —
  //    share_socket stops at an already-marked root). The directory table
  //    is far larger than the host cache, so lookups are pipelined with a
  //    prefetch lookahead.
  for (auto& shp : shards_) {
    const std::size_t n = shp->sd_delta.size();
    for (std::size_t k = 0; k < n; ++k) {
      if (k + 8 < n) sharing_.prefetch(shp->sd_delta[k + 8].line);
      const SdDelta& d = shp->sd_delta[k];
      if (d.fill) {
        SocketSet& holders = sharing_[d.line];
        const bool others = holders.any_other(d.shard);
        holders.set(d.shard);
        if (others) {
          // The other holders — possibly marked exclusive — learn of the
          // join. The filler's own ways are fresh cross-unknown fills and
          // already behave conservatively, so only the others need a walk,
          // and it short-circuits at any already-non-exclusive root.
          holders.for_each_other(d.shard, [&](int other) {
            share_socket(other, d.line, Cache::kFlagCrossShared,
                         Cache::kFlagCrossShared | Cache::kFlagCrossUnknown);
          });
        }
      } else {
        SocketSet* holders = sharing_.find(d.line);
        if (holders != nullptr) {
          holders->reset(d.shard);
          if (holders->none()) sharing_.erase(d.line);
        }
      }
    }
    shp->sd_delta.clear();
  }
  // 3. Cross-shard write-invalidations, in shard order. Most events come
  //    from cross-unknown writers and resolve to "no other holder".
  for (auto& shp : shards_) {
    const std::size_t n = shp->outbox.size();
    for (std::size_t k = 0; k < n; ++k) {
      if (k + 8 < n) sharing_.prefetch(shp->outbox[k + 8].line);
      const InvalEvent& ev = shp->outbox[k];
      SocketSet* sd = sharing_.find(ev.line);
      if (sd == nullptr) continue;
      sd->for_each_other(ev.writer_shard, [&](int victim) {
        apply_remote_invalidate(victim, ev.line);
      });
      sd->clear_others(ev.writer_shard);
      if (sd->none()) sharing_.erase(ev.line);
    }
    shp->outbox.clear();
  }
  // 4. Link views: each shard served its requests privately from the same
  //    committed baseline. The merged link frees no earlier than any
  //    shard's local estimate (requests end when the last one finishes) and
  //    no earlier than serving every shard's actual consumption back to
  //    back from the baseline (full backlog when oversubscribed). Idle gaps
  //    a view skipped over with max(view, now) are *not* consumption —
  //    summing raw view advances would compound those gaps shard-fold every
  //    window and run the link away from the clocks.
  for (std::size_t h = 0; h < socket_next_free_.size(); ++h) {
    const std::uint64_t base = socket_next_free_[h];
    std::uint64_t next = base;
    std::uint64_t backlog = base;
    for (auto& shp : shards_) {
      next = std::max(next, shp->link_view[h]);
      backlog += shp->link_used[h];
      shp->link_used[h] = 0;
    }
    next = std::max(next, backlog);
    socket_next_free_[h] = next;
    for (auto& shp : shards_) shp->link_view[h] = next;
  }
  for (auto& shp : shards_) shp->link_touched = false;
}

std::uint64_t MemorySystem::resident_lines(int node_id) const {
  const auto& cache = caches_[static_cast<std::size_t>(node_id)];
  return cache ? cache->resident_lines() : 0;
}

std::uint64_t MemorySystem::filter_skips_total() const {
  std::uint64_t total = 0;
  for (const auto& cache : caches_) {
    if (cache) total += cache->filter_skips();
  }
  return total;
}

void MemorySystem::reset() {
  for (auto& cache : caches_) {
    if (cache) cache->clear();
  }
  sharing_.clear();
  std::fill(socket_next_free_.begin(), socket_next_free_.end(), 0);
  std::fill(last_miss_line_.begin(), last_miss_line_.end(), ~std::uint64_t{0});
  std::fill(memo_.begin(), memo_.end(), Memo{});
  std::fill(range_memo_.begin(), range_memo_.end(), RangeMemo{});
  counters_ = Counters{};
  counters_.level.resize(static_cast<std::size_t>(topo_.leaf_depth()));
  windowed_ = false;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    sh.outbox.clear();
    sh.sd_delta.clear();
    sh.link_touched = false;
    sh.delta = Counters{};
    sh.ctr = &counters_;
    sh.links = socket_next_free_.data();
    std::fill(sh.link_view.begin(), sh.link_view.end(), 0);
    std::fill(sh.link_used.begin(), sh.link_used.end(), 0);
  }
}

}  // namespace sbs::sim
