// Simulated hardware counters (the stand-in for the paper's core PMU +
// C-Box uncore counters, Appendix B). Counts are exact, not sampled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbs::sim {

/// Per-cache-level aggregate counters. Index = tree depth (1 = outermost
/// cache, e.g. L3 on the Xeon preset).
struct LevelCounters {
  std::uint64_t hits = 0;    ///< requests served by this level
  std::uint64_t misses = 0;  ///< requests that probed this level and missed
  std::uint64_t evictions = 0;
  std::uint64_t back_invalidations = 0;  ///< inclusion-driven (parent evict)
  std::uint64_t coherence_invalidations = 0;  ///< remote-write-driven

  double miss_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) /
                                  static_cast<double>(total);
  }
};

struct Counters {
  std::vector<LevelCounters> level;  ///< [0] unused (memory), [1..L] caches

  std::uint64_t dram_reads = 0;       ///< line fetches from memory
  std::uint64_t dram_writebacks = 0;  ///< dirty line evictions to memory
  std::uint64_t remote_dram_accesses = 0;  ///< home socket != accessor socket
  std::uint64_t queue_wait_cycles = 0;     ///< total bandwidth queueing stall
  std::uint64_t accesses = 0;              ///< total line requests
  std::uint64_t writes = 0;
  /// Tag scans the presence filters answered without touching the tag
  /// array (cache.h). A host-cost metric like the engine counters — it
  /// does not affect simulated time — but deterministic like the coherence
  /// counters, so equivalence checks compare it exactly.
  std::uint64_t filter_skips = 0;

  // Engine-overhead counters (filled by SimEngine, not the memory system):
  // how much host work the simulation spent on machinery rather than cache
  // modeling. None of these affect simulated time.
  std::uint64_t fiber_switches = 0;    ///< strand resume/yield round trips
  std::uint64_t windows_executed = 0;  ///< bounded-skew windows run
  std::uint64_t window_merges = 0;     ///< barriers that did a real merge
  std::uint64_t pump_passes = 0;       ///< scheduler-pump iterations
  std::uint64_t inline_strands = 0;    ///< strands run on the pump, no fiber

  /// Zero every counter without releasing the level vector (the per-shard
  /// window deltas are cleared once per window — reallocating them there
  /// showed up in profiles).
  void clear() {
    for (LevelCounters& lc : level) lc = LevelCounters{};
    dram_reads = 0;
    dram_writebacks = 0;
    remote_dram_accesses = 0;
    queue_wait_cycles = 0;
    accesses = 0;
    writes = 0;
    filter_skips = 0;
    fiber_switches = 0;
    windows_executed = 0;
    window_merges = 0;
    pump_passes = 0;
    inline_strands = 0;
  }

  /// Misses at the outermost cache level — the paper's headline metric
  /// ("L3 cache misses" on the Xeon preset).
  std::uint64_t llc_misses() const {
    return level.size() > 1 ? level[1].misses : 0;
  }
  std::uint64_t llc_hits() const {
    return level.size() > 1 ? level[1].hits : 0;
  }

  std::string summary() const;

  Counters& operator+=(const Counters& other);
};

}  // namespace sbs::sim
