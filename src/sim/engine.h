// SimEngine: executes a nested-parallel computation on the simulated PMH
// machine, under an unmodified Scheduler implementation.
//
// Every hardware thread of the machine is a virtual core with its own
// virtual clock. The engine repeatedly advances the core with the smallest
// clock: an idle core performs a scheduler get() (overhead charged from the
// instrumented op count); a core with a strand runs it inside the core's
// fiber — each instrumented memory access walks the simulated cache
// hierarchy and advances the clock, and the fiber yields whenever its clock
// runs more than `skew_quantum` cycles past the slowest other core, so
// concurrent strands interleave in bounded-skew virtual time. Strand
// completion drives the usual done/settle/add sequence at the core's
// current virtual time.
//
// Semantics are exact (strand bodies execute real C++ on host memory);
// timing is the model documented in memory_system.h. Scheduler queue
// *contents* are not simulated as memory traffic — callbacks are charged
// `sched_op_cycles` per instrumented lock/queue operation instead (see
// sched/ops.h); the paper's observation that coherence traffic from
// scheduler bookkeeping perturbs active time is thus out of scope.
#pragma once

#include <memory>
#include <string>

#include "machine/topology.h"
#include "runtime/job.h"
#include "runtime/job_arena.h"
#include "runtime/run_stats.h"
#include "runtime/scheduler.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "trace/recorder.h"

namespace sbs::sim {

struct SimParams {
  MemoryParams memory;
  /// Maximum virtual-clock lead a running strand may take over the slowest
  /// other core before being suspended.
  std::uint64_t skew_quantum = 10000;
  /// Worker count; -1 = all hardware threads of the machine.
  int num_threads = -1;
  std::size_t fiber_stack_bytes = 512 * 1024;
};

struct SimResult {
  runtime::RunStats stats;  ///< times in seconds (cycles / GHz)
  Counters counters;
  std::uint64_t makespan_cycles = 0;
  std::string sched_stats;

  double llc_misses_m() const {
    return static_cast<double>(counters.llc_misses()) / 1e6;
  }
};

class SimEngine {
 public:
  SimEngine(const machine::Topology& topo, SimParams params = SimParams());
  ~SimEngine();

  /// Run the computation rooted at `root_job` (ownership transferred) under
  /// `sched` on the simulated machine. May be called repeatedly; cache and
  /// bandwidth state is reset between runs.
  SimResult run(runtime::Scheduler& sched, runtime::Job* root_job);

  const machine::Topology& topology() const { return topo_; }
  MemorySystem& memory() { return *memory_; }

  /// Own a trace recorder: subsequent run()s record scheduler lifecycle
  /// events with virtual-cycle timestamps from the per-core clocks. Each
  /// run resets the rings, so export before the next run.
  void enable_tracing(
      std::size_t events_per_worker = trace::Recorder::kDefaultCapacity);
  /// The engine's recorder; nullptr unless enable_tracing() was called.
  trace::Recorder* recorder() { return recorder_.get(); }

 private:
  struct VCore;
  friend struct VCore;

  void finish_strand(VCore& core);
  std::uint64_t charge_ops(std::uint64_t ops_before) const;

  const machine::Topology& topo_;
  SimParams params_;
  int num_threads_;
  std::unique_ptr<MemorySystem> memory_;
  std::vector<std::unique_ptr<VCore>> cores_;
  std::unique_ptr<trace::Recorder> recorder_;
  runtime::Scheduler* sched_ = nullptr;
  /// Fork/join allocation arena for the (single-host-threaded) event loop;
  /// strand bodies run in fibers on the same host thread, so one arena
  /// serves every virtual core with purely local frees.
  runtime::JobArena arena_;
  std::uint64_t horizon_ = 0;  ///< yield threshold for the running fiber
  bool root_completed_ = false;
};

}  // namespace sbs::sim
