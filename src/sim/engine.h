// SimEngine: executes a nested-parallel computation on the simulated PMH
// machine, under an unmodified Scheduler implementation.
//
// Every hardware thread of the machine is a virtual core with its own
// virtual clock. Execution proceeds in bounded-skew *windows*: each window
// spans [min clock, min clock + skew_quantum]. A single-threaded pump first
// drives every idle or just-finished core whose clock falls inside the
// window, in deterministic (clock, thread) order — scheduler get()/done()/
// add() calls all happen here, so scheduler implementations stay
// single-threaded and overheads are charged from the instrumented op count.
// Then every core with a live strand runs its fiber until its clock leaves
// the window (or the strand completes): each instrumented memory access
// walks the simulated cache hierarchy and advances the clock.
//
// The window phase is where host parallelism comes in (SimParams::
// host_threads): cores are grouped by their depth-1 (socket) subtree —
// the memory system's shards — and each shard's cores execute on one host
// worker, shards spread round-robin over workers. Within a shard cores run
// sequentially in (clock, thread) order; across shards all simulated state
// is disjoint for the duration of the window (memory_system.h), with
// cross-shard coherence and bandwidth merged at the window barrier in
// deterministic shard order. Results are therefore bit-identical for every
// host_threads value, including 1 — the serial path is the same algorithm.
//
// Semantics are exact (strand bodies execute real C++ on host memory);
// timing is the model documented in memory_system.h. Scheduler queue
// *contents* are not simulated as memory traffic — callbacks are charged
// `sched_op_cycles` per instrumented lock/queue operation instead (see
// sched/ops.h); the paper's observation that coherence traffic from
// scheduler bookkeeping perturbs active time is thus out of scope.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "machine/topology.h"
#include "runtime/job.h"
#include "runtime/job_arena.h"
#include "runtime/run_stats.h"
#include "runtime/scheduler.h"
#include "sim/counters.h"
#include "sim/memory_system.h"
#include "trace/recorder.h"

namespace sbs::sim {

struct SimParams {
  MemoryParams memory;
  /// Maximum virtual-clock lead a running strand may take over the slowest
  /// other core before being suspended (the window width).
  std::uint64_t skew_quantum = 10000;
  /// Worker count; -1 = all hardware threads of the machine.
  int num_threads = -1;
  std::size_t fiber_stack_bytes = 512 * 1024;
  /// Host threads executing window phases; clamped to the machine's socket
  /// count. Results are identical for every value (see file comment).
  int host_threads = 1;
  /// Adaptive windows: elide the window-merge barrier while windows stay
  /// "quiet" (no cross-shard coherence traffic, no link bandwidth use),
  /// geometrically widening the merge-free run and shrinking back to one
  /// window on contact. A quiet merge is an identity apart from folding
  /// counter deltas (which is commutative), and the elision decision reads
  /// only simulation-determined state, so results are bit-identical to the
  /// fixed-quantum baseline — the equivalence tests assert it.
  bool adaptive_window = true;
  /// Run inline-runnable strands (e.g. empty join continuations, see
  /// runtime::Job::inline_runnable) directly on the pump with no fiber
  /// switch. Bit-identical to the fiber path: such strands touch no
  /// simulated state, and the pump defers their completion to the same
  /// barrier the fiber path uses.
  bool inline_strands = true;
  // Cache-representation knobs, mirrored into MemoryParams::cache by the
  // engine constructor (cache.h CacheOptions). All three are pure host-side
  // representation choices: makespans and every coherence counter are
  // bit-identical whichever way they are set (tests/test_sim_probe.cpp).
  /// Vectorized tag probes (SSE2/AVX2 where available); scalar scan when
  /// false. SBS_SIM_SCALAR=1 in the environment also forces scalar.
  bool simd_probes = true;
  /// Per-set line-presence filters on big outer-level tag arrays.
  bool presence_filter = true;
  /// Packed O(1) recency encoding instead of the rotate-to-front shuffle.
  /// Off by default — see CacheOptions::packed_lru (cache.h).
  bool packed_lru = false;
};

struct SimResult {
  runtime::RunStats stats;  ///< times in seconds (cycles / GHz)
  Counters counters;
  std::uint64_t makespan_cycles = 0;
  std::string sched_stats;

  double llc_misses_m() const {
    return static_cast<double>(counters.llc_misses()) / 1e6;
  }
};

class SimEngine {
 public:
  SimEngine(const machine::Topology& topo, SimParams params = SimParams());
  ~SimEngine();

  /// Run the computation rooted at `root_job` (ownership transferred) under
  /// `sched` on the simulated machine. May be called repeatedly; cache and
  /// bandwidth state is reset between runs.
  SimResult run(runtime::Scheduler& sched, runtime::Job* root_job);

  const machine::Topology& topology() const { return topo_; }
  MemorySystem& memory() { return *memory_; }
  int host_threads() const { return host_threads_; }

  /// Own a trace recorder: subsequent run()s record scheduler lifecycle
  /// events with virtual-cycle timestamps from the per-core clocks. Each
  /// run resets the rings, so export before the next run.
  void enable_tracing(
      std::size_t events_per_worker = trace::Recorder::kDefaultCapacity);
  /// The engine's recorder; nullptr unless enable_tracing() was called.
  trace::Recorder* recorder() { return recorder_.get(); }

 private:
  struct VCore;
  friend struct VCore;

  void finish_strand(VCore& core);
  std::uint64_t charge_ops(std::uint64_t ops_before) const;
  /// Resume every busy core of the shards assigned to host worker `h`
  /// until their clocks pass horizon_ (one window phase's share).
  void worker_pass(int h);
  void worker_loop(int h);
  void heap_push(std::uint64_t clock, int tid);
  bool heap_pop(std::uint64_t* clock, int* tid);

  const machine::Topology& topo_;
  SimParams params_;
  int num_threads_;
  int host_threads_ = 1;
  std::unique_ptr<MemorySystem> memory_;
  std::vector<std::unique_ptr<VCore>> cores_;
  std::unique_ptr<trace::Recorder> recorder_;
  runtime::Scheduler* sched_ = nullptr;
  /// One fork/join allocation arena per host worker; strand bodies allocate
  /// on the worker running their shard, the pump's settle() frees remotely.
  std::vector<std::unique_ptr<runtime::JobArena>> arenas_;
  std::uint64_t horizon_ = 0;  ///< yield threshold for running fibers

  // Adaptive-window state (SimParams::adaptive_window).
  std::uint64_t windows_since_merge_ = 0;
  std::uint64_t coalesce_limit_ = 1;  ///< merge-free window budget
  static constexpr std::uint64_t kCoalesceCap = 4096;

  // Engine-overhead counters for the current run (folded into
  // SimResult::counters; see counters.h).
  std::uint64_t windows_executed_ = 0;
  std::uint64_t pump_passes_ = 0;
  std::uint64_t window_merges_ = 0;
  std::uint64_t inline_strands_run_ = 0;

  /// Strands the pump ran inline this window; their completions are pushed
  /// to the heap at the barrier, exactly when the fiber path would.
  std::vector<VCore*> inline_done_;

  /// Min-heap of (clock, thread id) over idle and pending-finish cores;
  /// busy cores live in shard_busy_ instead.
  std::vector<std::pair<std::uint64_t, int>> heap_;
  std::vector<std::vector<VCore*>> shard_busy_;  ///< per shard, sorted
  std::uint64_t busy_min_ = 0;  ///< min busy-core clock this window

  // Window-phase worker pool (host_threads_ - 1 threads + the pump).
  std::vector<std::thread> pool_;
  std::mutex pool_mu_;
  std::condition_variable pool_go_, pool_done_;
  std::uint64_t pool_gen_ = 0;
  int pool_pending_ = 0;
  bool pool_stop_ = false;

  bool root_completed_ = false;
};

}  // namespace sbs::sim
