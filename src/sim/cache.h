// One set-associative LRU cache instance inside the simulated PMH.
//
// The cache stores line addresses (byte address >> log2(line)). Sets keep
// their ways in LRU order (front = MRU); probes and fills are O(assoc) with
// assoc small (≤ 32 in the presets). assoc == 0 in the machine config means
// fully associative, realized as a single set with size/line ways (only
// sensible for the small test caches).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sbs::sim {

class Cache {
 public:
  Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
        std::uint32_t assoc);

  // Per-way sharing flags (see memory_system.h for the protocol). The flag
  // byte is opaque metadata to the cache: it is stored on fill, reported on
  // probe, and dies with the way.
  static constexpr std::uint8_t kFlagSockShared = 1u << 0;
  static constexpr std::uint8_t kFlagCrossShared = 1u << 1;
  static constexpr std::uint8_t kFlagCrossUnknown = 1u << 2;

  /// Probe for a line; on hit, update LRU and (optionally) the dirty bit,
  /// and report the way's sharing flags / holder mask if requested.
  bool probe_and_touch(std::uint64_t line, bool mark_dirty,
                       std::uint8_t* flags = nullptr,
                       std::uint16_t* holders = nullptr);

  struct Evicted {
    bool valid = false;
    std::uint64_t line = 0;
    bool dirty = false;
    std::uint16_t holders = 0;  ///< the victim way's holder mask
  };
  /// Insert a line at MRU (caller guarantees it is absent). Returns the
  /// evicted victim, if the set was full.
  Evicted fill(std::uint64_t line, bool dirty, std::uint8_t flags = 0);

  /// Combined probe+fill in one set scan: if present, touch LRU/dirty and
  /// return false; otherwise insert and return true (victim in *evicted).
  bool fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                      std::uint8_t flags = 0);

  /// Overwrite a resident line's sharing flags (no LRU touch). Returns
  /// false if the line is absent.
  bool set_flags(std::uint64_t line, std::uint8_t flags);
  /// OR `bits` into a resident line's flags (kFlagCrossShared clears
  /// kFlagCrossUnknown), reporting the flags *before* the merge; no LRU
  /// touch. Returns the way's holder mask, or -1 if the line is absent.
  int mark_shared(std::uint64_t line, std::uint8_t bits,
                  std::uint8_t* old_flags = nullptr);

  /// Remove a line if present; reports whether it was dirty and (optionally)
  /// its holder mask. Returns true when the line was found.
  bool invalidate(std::uint64_t line, bool* was_dirty,
                  std::uint16_t* holders = nullptr);

  // --- in-cache holder directory ---
  // Each way carries a bitmask over the cache's *children* in the simulated
  // hierarchy: bit b set means child b may hold the line (a conservative
  // superset — bits are set on child fills and cleared lazily when a sweep
  // verifies absence, so capacity evictions in a child leave a stale bit
  // behind until the next sweep). Coherence sweeps use it to probe only
  // plausible holders instead of every child. Fits in the Way's padding, so
  // it costs no memory; caches whose children are hardware threads simply
  // never have bits set. Neither call moves the LRU order or bumps the
  // generation — they are directory metadata, not accesses.

  /// Mark child `bit` as holding `line`. The line must be resident (the
  /// hierarchy is inclusive: a child fill implies the parent holds it).
  /// Returns the mask *before* the bit was set, so callers can detect a new
  /// holder joining existing ones (sharing arising).
  std::uint16_t set_holder_bit(std::uint64_t line, std::uint32_t bit);
  /// The holder mask of a resident line, or nullptr if absent. The pointer
  /// stays valid until the next fill/probe/invalidate touching this cache.
  std::uint16_t* holder_mask(std::uint64_t line);

  bool contains(std::uint64_t line) const;

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint64_t num_sets() const { return num_sets_; }
  /// Lines currently resident (for tests / occupancy introspection).
  std::uint64_t resident_lines() const { return resident_; }

  /// Bumped on every fill, invalidation, and clear() — i.e. whenever a
  /// line's residency (not just its LRU position) may have changed. An
  /// unchanged generation proves any previously observed residency still
  /// holds (tests and occupancy probes).
  std::uint64_t generation() const { return generation_; }

  void clear();

 private:
  struct Way {
    std::uint64_t line = 0;
    bool valid = false;
    bool dirty = false;
    std::uint16_t holders = 0;  ///< child holder mask (see above); lives in
                                ///< what would otherwise be padding
    std::uint8_t flags = 0;     ///< sharing flags (kFlag*); also padding
  };

  std::uint64_t set_index(std::uint64_t line) const {
    // Lines are full addresses >> line shift; spread with a multiplicative
    // hash so 2 MB-aligned arrays do not collide pathologically.
    const std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & (num_sets_ - 1);
  }

  Way* set_begin(std::uint64_t set) {
    return ways_.data() + set * assoc_;
  }
  const Way* set_begin(std::uint64_t set) const {
    return ways_.data() + set * assoc_;
  }

  std::uint64_t size_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  std::uint64_t resident_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<Way> ways_;  ///< num_sets_ * assoc_, each set in LRU order
};

}  // namespace sbs::sim
