// One set-associative LRU cache instance inside the simulated PMH.
//
// The cache stores line addresses (byte address >> log2(line)). Sets keep
// their ways in LRU order (front = MRU); probes and fills are O(assoc) with
// assoc small (≤ 32 in the presets). assoc == 0 in the machine config means
// fully associative, realized as a single set with size/line ways (only
// sensible for the small test caches).
//
// Storage is structure-of-arrays: the probe loop scans a packed tag word
// per way — (line << 1) | valid — so a whole set's tags sit in one or two
// host cache lines, and the cold per-way metadata (dirty / sharing flags /
// holder mask) lives in a parallel array touched only on hits and fills.
// An invalid way's tag word is 0, which can never equal a probe key (keys
// always have the valid bit set), so the scan needs no separate valid test.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sbs::sim {

class Cache {
 public:
  Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
        std::uint32_t assoc);

  // Per-way sharing flags (see memory_system.h for the protocol). The flag
  // byte is opaque metadata to the cache: it is stored on fill, reported on
  // probe, and dies with the way.
  static constexpr std::uint8_t kFlagSockShared = 1u << 0;
  static constexpr std::uint8_t kFlagCrossShared = 1u << 1;
  static constexpr std::uint8_t kFlagCrossUnknown = 1u << 2;

  /// Probe for a line; on hit, update LRU and (optionally) the dirty bit,
  /// and report the way's sharing flags / holder mask if requested.
  bool probe_and_touch(std::uint64_t line, bool mark_dirty,
                       std::uint8_t* flags = nullptr,
                       std::uint16_t* holders = nullptr);

  struct Evicted {
    bool valid = false;
    std::uint64_t line = 0;
    bool dirty = false;
    std::uint16_t holders = 0;  ///< the victim way's holder mask
  };
  /// Insert a line at MRU (caller guarantees it is absent). Returns the
  /// evicted victim, if the set was full.
  Evicted fill(std::uint64_t line, bool dirty, std::uint8_t flags = 0);

  /// Combined probe+fill in one set scan: if present, touch LRU/dirty and
  /// return false; otherwise insert and return true (victim in *evicted).
  bool fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                      std::uint8_t flags = 0);

  /// Overwrite a resident line's sharing flags (no LRU touch). Returns
  /// false if the line is absent.
  bool set_flags(std::uint64_t line, std::uint8_t flags);
  /// OR `bits` into a resident line's flags (kFlagCrossShared clears
  /// kFlagCrossUnknown), reporting the flags *before* the merge; no LRU
  /// touch. Returns the way's holder mask, or -1 if the line is absent.
  int mark_shared(std::uint64_t line, std::uint8_t bits,
                  std::uint8_t* old_flags = nullptr);

  /// Remove a line if present; reports whether it was dirty and (optionally)
  /// its holder mask. Returns true when the line was found.
  bool invalidate(std::uint64_t line, bool* was_dirty,
                  std::uint16_t* holders = nullptr);

  // --- in-cache holder directory ---
  // Each way carries a bitmask over the cache's *children* in the simulated
  // hierarchy: bit b set means child b may hold the line (a conservative
  // superset — bits are set on child fills and cleared lazily when a sweep
  // verifies absence, so capacity evictions in a child leave a stale bit
  // behind until the next sweep). Coherence sweeps use it to probe only
  // plausible holders instead of every child. Lives in the cold metadata
  // array; caches whose children are hardware threads simply never have
  // bits set. Neither call moves the LRU order or bumps the generation —
  // they are directory metadata, not accesses.

  /// Mark child `bit` as holding `line`. The line must be resident (the
  /// hierarchy is inclusive: a child fill implies the parent holds it).
  /// Returns the mask *before* the bit was set, so callers can detect a new
  /// holder joining existing ones (sharing arising).
  std::uint16_t set_holder_bit(std::uint64_t line, std::uint32_t bit);
  /// The holder mask of a resident line, or nullptr if absent. The pointer
  /// stays valid until the next fill/probe/invalidate touching this cache.
  std::uint16_t* holder_mask(std::uint64_t line);

  bool contains(std::uint64_t line) const;

  /// Hint the host prefetcher at the set `line` maps to. The big outer
  /// caches' tag arrays dwarf the host cache, so a probe is one guaranteed
  /// host miss; issuing the loads for every level up front lets the
  /// otherwise serial inner-to-outer probe chain overlap them.
  void prefetch(std::uint64_t line) const {
    __builtin_prefetch(tags_at(set_index(line)));
  }

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint64_t num_sets() const { return num_sets_; }
  /// Lines currently resident (for tests / occupancy introspection).
  std::uint64_t resident_lines() const { return resident_; }

  /// Bumped on every fill, invalidation, and clear() — i.e. whenever a
  /// line's residency (not just its LRU position) may have changed. An
  /// unchanged generation proves any previously observed residency still
  /// holds (tests and occupancy probes).
  std::uint64_t generation() const { return generation_; }

  void clear();

 private:
  /// Cold per-way metadata, parallel to tags_ and shifted in lockstep.
  struct Meta {
    std::uint16_t holders = 0;  ///< child holder mask (see above)
    std::uint8_t dirty = 0;
    std::uint8_t flags = 0;  ///< sharing flags (kFlag*)
  };

  static std::uint64_t key_of(std::uint64_t line) { return (line << 1) | 1; }

  std::uint64_t set_index(std::uint64_t line) const {
    // Lines are full addresses >> line shift; spread with a multiplicative
    // hash so 2 MB-aligned arrays do not collide pathologically.
    const std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & (num_sets_ - 1);
  }

  /// Index of `line` within its set, or -1. The hot loop: a straight scan
  /// over packed tag words with early exit (hits cluster near the MRU
  /// front; a branch-free whole-set scan measured slower).
  int find_way(const std::uint64_t* tags, std::uint64_t key) const {
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if (tags[w] == key) return static_cast<int>(w);
    }
    return -1;
  }

  /// Rotate way `w` of a set to MRU (front), shifting [0, w) down by one.
  static void rotate_to_front(std::uint64_t* tags, Meta* meta,
                              std::uint32_t w) {
    const std::uint64_t tag = tags[w];
    const Meta m = meta[w];
    for (std::uint32_t i = w; i > 0; --i) {
      tags[i] = tags[i - 1];
      meta[i] = meta[i - 1];
    }
    tags[0] = tag;
    meta[0] = m;
  }

  std::uint64_t* tags_at(std::uint64_t set) {
    return tags_.data() + set * assoc_;
  }
  const std::uint64_t* tags_at(std::uint64_t set) const {
    return tags_.data() + set * assoc_;
  }
  Meta* meta_at(std::uint64_t set) { return meta_.data() + set * assoc_; }

  std::uint64_t size_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  std::uint64_t resident_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> tags_;  ///< num_sets_*assoc_, (line<<1)|valid
  std::vector<Meta> meta_;           ///< parallel to tags_
};

}  // namespace sbs::sim
