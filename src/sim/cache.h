// One set-associative LRU cache instance inside the simulated PMH.
//
// The cache stores line addresses (byte address >> log2(line)). Sets keep
// their ways in LRU order (front = MRU); probes and fills are O(assoc) with
// assoc small (≤ 32 in the presets). assoc == 0 in the machine config means
// fully associative, realized as a single set with size/line ways (only
// sensible for the small test caches).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sbs::sim {

class Cache {
 public:
  Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
        std::uint32_t assoc);

  /// Probe for a line; on hit, update LRU and (optionally) the dirty bit.
  bool probe_and_touch(std::uint64_t line, bool mark_dirty);

  struct Evicted {
    bool valid = false;
    std::uint64_t line = 0;
    bool dirty = false;
  };
  /// Insert a line at MRU (caller guarantees it is absent). Returns the
  /// evicted victim, if the set was full.
  Evicted fill(std::uint64_t line, bool dirty);

  /// Combined probe+fill in one set scan: if present, touch LRU/dirty and
  /// return false; otherwise insert and return true (victim in *evicted).
  bool fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted);

  /// Remove a line if present; reports whether it was dirty.
  /// Returns true when the line was found.
  bool invalidate(std::uint64_t line, bool* was_dirty);

  bool contains(std::uint64_t line) const;

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint64_t num_sets() const { return num_sets_; }
  /// Lines currently resident (for tests / occupancy introspection).
  std::uint64_t resident_lines() const { return resident_; }

  void clear();

 private:
  struct Way {
    std::uint64_t line = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t set_index(std::uint64_t line) const {
    // Lines are full addresses >> line shift; spread with a multiplicative
    // hash so 2 MB-aligned arrays do not collide pathologically.
    const std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & (num_sets_ - 1);
  }

  Way* set_begin(std::uint64_t set) {
    return ways_.data() + set * assoc_;
  }
  const Way* set_begin(std::uint64_t set) const {
    return ways_.data() + set * assoc_;
  }

  std::uint64_t size_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  std::uint64_t resident_ = 0;
  std::vector<Way> ways_;  ///< num_sets_ * assoc_, each set in LRU order
};

}  // namespace sbs::sim
