// One set-associative LRU cache instance inside the simulated PMH.
//
// The cache stores line addresses (byte address >> log2(line)). assoc == 0
// in the machine config means fully associative, realized as a single set
// with size/line ways (only sensible for the small test caches).
//
// Storage is structure-of-arrays: the probe scans a packed tag word per way
// — (line << 1) | valid — so a whole set's tags sit in one or two host
// cache lines, and the cold per-way metadata (dirty / sharing flags /
// holder mask) lives in a parallel array touched only on hits and fills.
// An invalid way's tag word is 0, which can never equal a probe key (keys
// always have the valid bit set), so the scan needs no separate valid test
// — and the same scan with key 0 finds a free way.
//
// Three independent representation choices, all selected at construction
// via CacheOptions and all bit-identical in observable behavior (hit/miss
// outcomes, eviction victims, counters) — asserted end to end by
// tests/test_sim_probe.cpp:
//
//   - Probe width (simd_probes): the tag scan runs scalar, SSE2 (2 ways
//     per compare), or AVX2 (4 ways) — resolved once per cache from
//     simd::select_probe_impl(). A line appears at most once per set, so
//     block-at-a-time first-match equals the scalar early exit.
//
//   - Recency encoding (packed_lru): classically the ways were kept
//     physically LRU-ordered (front = MRU) and every hit rotated both the
//     tag and metadata arrays — O(assoc) stores per hit. Packed mode keeps
//     slots fixed and tracks recency out of band: for assoc ≤ 8 a per-set
//     u64 ordering word of slot nibbles (position 0 = MRU, position
//     assoc-1 = LRU victim) updated with a couple of shifts/masks; above
//     that, per-way u32 age stamps with a per-set clock, where the fill
//     victim is a free way if one exists, else the minimum stamp. Both
//     provably select the same victim as the rotate representation: the
//     ordering word mirrors the physical order move-for-move, and stamps
//     are unique so min-stamp == least-recently-touched, while free ways
//     (stamp 0) undercut every valid stamp, matching rotate mode's
//     invalid-ways-sink-to-back invariant. Rotate remains the default:
//     its physical recency order doubles as a scan accelerator (hot lines
//     sit where the scan looks first), which measures faster end to end
//     at the preset associativities (docs/PERF.md §7); packed mode is the
//     right trade only for very wide sets.
//
//   - Line-presence filter (presence_filter): big outer-level tag arrays
//     (MBs) miss the host cache by construction, and at those levels the
//     common probe outcome is a guaranteed miss. Caches whose tag array is
//     at least filter_min_tag_bytes keep a per-set 16-bucket counting
//     filter (one u64 per set, 4-bit counters, bucket drawn from hash bits
//     disjoint from the set index) maintained on fill/evict/invalidate. A
//     zero bucket proves the line absent, so the probe skips the cold tag
//     scan entirely — counted in filter_skips(). Counters saturate sticky
//     at 15 (a saturated bucket is never decremented and answers "maybe"
//     forever): soundness is preserved, only filter effectiveness decays,
//     and with ≤ 32 ways spread over 16 buckets saturation is vanishingly
//     rare. The filter changes no observable behavior — it only skips
//     scans that were guaranteed to miss.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/simd.h"
#include "util/assert.h"

namespace sbs::sim {

/// Representation knobs for Cache, resolved once at construction. All four
/// choices are observable-behavior-preserving; see the file comment.
/// Plumbed from SimParams (engine.h) via MemoryParams; SBS_SIM_SCALAR=1 in
/// the environment forces simd_probes off for the whole memory system.
struct CacheOptions {
  bool simd_probes = true;
  bool presence_filter = true;
  /// Off by default: the packed encodings touch in O(1) but lose the
  /// rotate layout's self-organizing scan order, and measure a few percent
  /// slower end to end on the preset machines (docs/PERF.md §7). Kept
  /// fully supported and equivalence-tested for wide-associativity
  /// configurations where the trade flips.
  bool packed_lru = false;
  /// Minimum tag-array footprint (bytes) before a presence filter is worth
  /// its upkeep; the default enables it on the multi-MB outer levels and
  /// leaves the host-cache-resident L1/L2 tag arrays alone. Tests force
  /// filters onto tiny caches by setting 0.
  std::uint64_t filter_min_tag_bytes = 64 * 1024;
};

class Cache {
 public:
  Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
        std::uint32_t assoc, const CacheOptions& options = CacheOptions{});

  // Per-way sharing flags (see memory_system.h for the protocol). The flag
  // byte is opaque metadata to the cache: it is stored on fill, reported on
  // probe, and dies with the way.
  static constexpr std::uint8_t kFlagSockShared = 1u << 0;
  static constexpr std::uint8_t kFlagCrossShared = 1u << 1;
  static constexpr std::uint8_t kFlagCrossUnknown = 1u << 2;

  /// Probe for a line; on hit, update LRU and (optionally) the dirty bit,
  /// and report the way's sharing flags / holder mask if requested.
  bool probe_and_touch(std::uint64_t line, bool mark_dirty,
                       std::uint8_t* flags = nullptr,
                       std::uint16_t* holders = nullptr);

  struct Evicted {
    bool valid = false;
    std::uint64_t line = 0;
    bool dirty = false;
    std::uint16_t holders = 0;  ///< the victim way's holder mask
  };
  /// Insert a line (caller guarantees it is absent). Returns the evicted
  /// victim, if the set was full.
  Evicted fill(std::uint64_t line, bool dirty, std::uint8_t flags = 0);

  /// Combined probe+fill in one set scan: if present, touch LRU/dirty and
  /// return false; otherwise insert and return true (victim in *evicted).
  bool fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                      std::uint8_t flags = 0);

  /// Overwrite a resident line's sharing flags (no LRU touch). Returns
  /// false if the line is absent.
  bool set_flags(std::uint64_t line, std::uint8_t flags);
  /// OR `bits` into a resident line's flags (kFlagCrossShared clears
  /// kFlagCrossUnknown), reporting the flags *before* the merge; no LRU
  /// touch. Returns the way's holder mask, or -1 if the line is absent.
  int mark_shared(std::uint64_t line, std::uint8_t bits,
                  std::uint8_t* old_flags = nullptr);

  /// Remove a line if present; reports whether it was dirty and (optionally)
  /// its holder mask. Returns true when the line was found.
  bool invalidate(std::uint64_t line, bool* was_dirty,
                  std::uint16_t* holders = nullptr);

  // --- in-cache holder directory ---
  // Each way carries a bitmask over the cache's *children* in the simulated
  // hierarchy: bit b set means child b may hold the line (a conservative
  // superset — bits are set on child fills and cleared lazily when a sweep
  // verifies absence, so capacity evictions in a child leave a stale bit
  // behind until the next sweep). Coherence sweeps use it to probe only
  // plausible holders instead of every child. Lives in the cold metadata
  // array; caches whose children are hardware threads simply never have
  // bits set. Neither call moves the LRU order or bumps the generation —
  // they are directory metadata, not accesses.

  /// Mark child `bit` as holding `line`. The line must be resident (the
  /// hierarchy is inclusive: a child fill implies the parent holds it).
  /// Returns the mask *before* the bit was set, so callers can detect a new
  /// holder joining existing ones (sharing arising).
  std::uint16_t set_holder_bit(std::uint64_t line, std::uint32_t bit);
  /// The holder mask of a resident line, or nullptr if absent. The pointer
  /// stays valid until the next fill/probe/invalidate touching this cache.
  std::uint16_t* holder_mask(std::uint64_t line);

  bool contains(std::uint64_t line) const;

  /// Hint the host prefetcher at the state a probe for `line` will touch.
  /// The big outer caches' tag arrays dwarf the host cache, so a probe is
  /// one guaranteed host miss; issuing the loads for every level up front
  /// lets the otherwise serial inner-to-outer probe chain overlap them.
  /// With a presence filter the filter word is what a skipped probe reads,
  /// so it is prefetched too.
  void prefetch(std::uint64_t line) const {
    const std::uint64_t h = hash_of(line);
    const std::uint64_t set = set_of_hash(h);
    if (filter_on_) __builtin_prefetch(filter_.data() + set);
    __builtin_prefetch(tags_at(set));
  }

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint64_t num_sets() const { return num_sets_; }
  /// Lines currently resident (for tests / occupancy introspection).
  std::uint64_t resident_lines() const { return resident_; }

  /// Bumped on every fill, invalidation, and clear() — i.e. whenever a
  /// line's residency (not just its LRU position) may have changed. An
  /// unchanged generation proves any previously observed residency still
  /// holds (tests and occupancy probes).
  std::uint64_t generation() const { return generation_; }

  // --- representation introspection (benches / tests / summaries) ---
  simd::ProbeImpl probe_impl() const { return probe_; }
  bool packed_lru() const { return lru_ != LruMode::kRotate; }
  bool filter_enabled() const { return filter_on_; }
  /// Tag scans skipped because the presence filter proved the line absent
  /// (counted on the probe paths: probe_and_touch / fill_if_absent /
  /// invalidate — not in const contains()). Deterministic: the probe
  /// sequence is identical for every host-thread count and window policy,
  /// so this is as reproducible as the coherence counters.
  std::uint64_t filter_skips() const { return filter_skips_; }

  void clear();

 private:
  /// Cold per-way metadata, parallel to tags_. In rotate mode it shifts in
  /// lockstep with the tags; in packed modes slots are fixed.
  struct Meta {
    std::uint16_t holders = 0;  ///< child holder mask (see above)
    std::uint8_t dirty = 0;
    std::uint8_t flags = 0;  ///< sharing flags (kFlag*)
  };

  /// How recency is represented (file comment). Resolved from
  /// CacheOptions::packed_lru and the associativity at construction.
  enum class LruMode : std::uint8_t { kRotate, kOrderWord, kStamps };

  /// Below this associativity the AVX2 probe's call overhead beats its
  /// width advantage and the constructor demotes it to inline SSE2.
  static constexpr std::uint32_t kAvx2MinAssoc = 64;

  static constexpr std::uint64_t kHashMul = 0x9e3779b97f4a7c15ULL;

  static std::uint64_t key_of(std::uint64_t line) { return (line << 1) | 1; }
  static std::uint64_t hash_of(std::uint64_t line) { return line * kHashMul; }
  std::uint64_t set_of_hash(std::uint64_t h) const {
    return (h >> 32) & (num_sets_ - 1);
  }
  std::uint64_t set_index(std::uint64_t line) const {
    // Lines are full addresses >> line shift; spread with a multiplicative
    // hash so 2 MB-aligned arrays do not collide pathologically.
    return set_of_hash(hash_of(line));
  }
  /// Filter bucket: hash bits 28..31 — disjoint from the set-index bits
  /// (32 and up), so lines colliding into one set still spread over the
  /// set's 16 filter buckets.
  static std::uint32_t bucket_of_hash(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 28) & 0xF;
  }

  /// Index of `line` within its set, or -1 — the hot scan, dispatched on
  /// the probe tier resolved at construction (simd.h). All tiers return
  /// the first match; tags within a set are unique, so they agree.
  /// The AVX2 variant lives behind a real call (its target attribute
  /// blocks inlining here), so the constructor only selects it for wide
  /// sets, where the 4-ways-per-compare scan amortizes the call; narrow
  /// sets use the inline SSE2 path.
  int find_way(const std::uint64_t* tags, std::uint64_t key) const {
    switch (probe_) {
      case simd::ProbeImpl::kAvx2:
        return simd::find_u64_avx2(tags, assoc_, key);
      case simd::ProbeImpl::kSse2:
        return simd::find_u64_sse2(tags, assoc_, key);
      default:
        return simd::find_u64_scalar(tags, assoc_, key);
    }
  }

  /// find_way with the set's MRU way checked first. Probe traffic is
  /// heavily skewed toward the most recently touched line of a set — both
  /// from temporal locality and because the hierarchy walk re-finds the
  /// line it just probed or filled (set_holder_bit after every path fill,
  /// flag updates after a sweep, dirty propagation into a parent). The
  /// rotate representation exploits that by construction: the last-touched
  /// line sits physically in way 0, where the scan looks first. The packed
  /// modes recover the same one-compare fast path explicitly — the
  /// ordering word names the MRU slot in its low nibble, and stamp mode
  /// tracks it in a per-set word — verified by tag compare, so a stale
  /// hint (line evicted or invalidated since) safely falls through to the
  /// full scan. The front check also pays under SIMD probes: an MRU hit
  /// skips the vector setup entirely.
  int find_way_mru(std::uint64_t set, const std::uint64_t* tags,
                   std::uint64_t key) const {
    std::uint32_t m = 0;
    switch (lru_) {
      case LruMode::kOrderWord:
        m = static_cast<std::uint32_t>(order_[set]) & 0xF;
        break;
      case LruMode::kStamps:
        m = mru_[set];
        break;
      default:
        break;  // rotate: MRU is physically way 0
    }
    if (tags[m] == key) return static_cast<int>(m);
    return find_way(tags, key);
  }

  // --- rotate (legacy) representation helpers ---

  /// Rotate way `w` of a set to MRU (front), shifting [0, w) down by one.
  static void rotate_to_front(std::uint64_t* tags, Meta* meta,
                              std::uint32_t w) {
    const std::uint64_t tag = tags[w];
    const Meta m = meta[w];
    for (std::uint32_t i = w; i > 0; --i) {
      tags[i] = tags[i - 1];
      meta[i] = meta[i - 1];
    }
    tags[0] = tag;
    meta[0] = m;
  }

  // --- ordering-word representation helpers (assoc ≤ 8) ---
  // order_[set] is a permutation of the slot indices, one nibble per
  // recency position: nibble 0 (LSB) names the MRU slot, nibble assoc-1
  // the LRU victim. Nibbles at positions ≥ assoc are unused and zero.

  /// Recency position of slot `s` in `word` — SWAR search for the nibble
  /// equal to s. Nibble values are ≤ 7, so the zero-nibble borrow trick
  /// can only false-positive *above* a true match (a borrow starts only at
  /// a genuine zero), and countr_zero picks the lowest flag: the real one.
  /// The permutation contains every slot < assoc, so a match exists; slot
  /// 0 also "matches" the unused zero nibbles, but those sit above its
  /// true position and lose to countr_zero.
  static std::uint32_t order_pos(std::uint64_t word, std::uint32_t s) {
    const std::uint64_t x = word ^ (s * 0x1111111111111111ULL);
    const std::uint64_t z =
        (x - 0x1111111111111111ULL) & ~x & 0x8888888888888888ULL;
    return static_cast<std::uint32_t>(std::countr_zero(z)) >> 2;
  }

  /// Promote the slot at position `p` (value `s`) to MRU: nibbles [0, p)
  /// slide up one position, s lands at position 0. Mirrors
  /// rotate_to_front's index motion exactly, without touching the arrays.
  static std::uint64_t order_touch(std::uint64_t word, std::uint32_t p,
                                   std::uint64_t s) {
    if (p == 0) return word;
    const std::uint64_t below = (1ULL << (4 * p)) - 1;
    const std::uint64_t upto = (1ULL << (4 * (p + 1))) - 1;
    return (word & ~upto) | ((word & below) << 4) | s;
  }

  /// Demote the slot at position `p` (value `s`) to the LRU end: nibbles
  /// (p, assoc-1] slide down one position, s lands at position assoc-1 —
  /// the invalid-ways-sink-to-back motion of the rotate representation's
  /// invalidate().
  std::uint64_t order_to_back(std::uint64_t word, std::uint32_t p,
                              std::uint64_t s) const {
    const std::uint64_t below = (1ULL << (4 * p)) - 1;
    const std::uint64_t valid = (1ULL << (4 * (assoc_ - 1))) - 1;
    return (word & below) | ((word >> 4) & (valid & ~below)) |
           (s << (4 * (assoc_ - 1)));
  }

  // --- age-stamp representation helpers (assoc > 8) ---

  /// Next stamp for a set, rank-compressing the set's stamps in the
  /// (astronomically rare) event the 32-bit clock is about to wrap.
  std::uint32_t next_stamp(std::uint64_t set) {
    std::uint32_t& clk = clock_[set];
    if (clk == ~std::uint32_t{0}) rebase_stamps(set);
    return ++clk;
  }
  void rebase_stamps(std::uint64_t set);

  // --- presence-filter helpers (only called when filter_on_) ---

  bool filter_absent(std::uint64_t set, std::uint32_t bucket) const {
    return ((filter_[set] >> (4 * bucket)) & 0xF) == 0;
  }
  void filter_add(std::uint64_t set, std::uint64_t line) {
    std::uint64_t& f = filter_[set];
    const std::uint32_t sh = 4 * bucket_of_hash(hash_of(line));
    if (((f >> sh) & 0xF) != 0xF) f += 1ULL << sh;  // sticky at saturation
  }
  void filter_sub(std::uint64_t set, std::uint64_t line) {
    std::uint64_t& f = filter_[set];
    const std::uint32_t sh = 4 * bucket_of_hash(hash_of(line));
    const std::uint64_t n = (f >> sh) & 0xF;
    SBS_ASSERT(n != 0);         // every resident line was counted in
    if (n != 0xF) f -= 1ULL << sh;  // sticky at saturation
  }

  /// Make way `w` of `set` MRU under the active recency representation.
  /// Returns the way the line occupies afterwards: w under the packed
  /// modes (slots are fixed), 0 under rotate (the arrays moved).
  std::uint32_t touch_way(std::uint64_t set, std::uint64_t* tags, Meta* meta,
                          std::uint32_t w) {
    switch (lru_) {
      case LruMode::kOrderWord: {
        std::uint64_t& ord = order_[set];
        ord = order_touch(ord, order_pos(ord, w), w);
        return w;
      }
      case LruMode::kStamps:
        stamps_[set * assoc_ + w] = next_stamp(set);
        mru_[set] = w;
        return w;
      default:
        if (w > 0) rotate_to_front(tags, meta, w);
        return 0;
    }
  }

  /// Insert `line` into `set` (absent by contract), evicting the LRU
  /// victim if the set is full (*out). Shared by fill / fill_if_absent;
  /// updates residency, generation, and the presence filter.
  void insert_line(std::uint64_t set, std::uint64_t* tags, Meta* meta,
                   std::uint64_t line, bool dirty, std::uint8_t flags,
                   Evicted* out);

  std::uint64_t* tags_at(std::uint64_t set) {
    return tags_.data() + set * assoc_;
  }
  const std::uint64_t* tags_at(std::uint64_t set) const {
    return tags_.data() + set * assoc_;
  }
  Meta* meta_at(std::uint64_t set) { return meta_.data() + set * assoc_; }

  std::uint64_t size_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  std::uint64_t resident_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t filter_skips_ = 0;
  simd::ProbeImpl probe_ = simd::ProbeImpl::kScalar;
  LruMode lru_ = LruMode::kRotate;
  bool filter_on_ = false;
  std::uint64_t order_init_ = 0;  ///< identity permutation (order-word mode)
  std::vector<std::uint64_t> tags_;  ///< num_sets_*assoc_, (line<<1)|valid
  std::vector<Meta> meta_;           ///< parallel to tags_
  std::vector<std::uint64_t> order_;   ///< per set (order-word mode only)
  std::vector<std::uint32_t> stamps_;  ///< per way (stamp mode only)
  std::vector<std::uint32_t> clock_;   ///< per set (stamp mode only)
  std::vector<std::uint32_t> mru_;     ///< per set (stamp mode only)
  std::vector<std::uint64_t> filter_;  ///< per set (filter_on_ only)
};

}  // namespace sbs::sim
