// A set of socket (shard) indices for the cross-socket sharing directory.
//
// The directory used to pack one bit per socket into a single uint64_t,
// capping the simulator at 64 sockets. SocketSet keeps that representation
// for the common case — sockets 0..63 live in an inline word, so machines
// up to 64 sockets never allocate and the hot mask operations compile to
// the same bit twiddling as before — and spills sockets >= 64 into a small
// heap bitmap sized to the highest socket ever set. The spill is per-entry:
// even on a 256-socket machine, a line shared by sockets {2, 17} stays
// inline.
//
// The type is a value: FlatMap stores it in open-addressed slots and
// copies/moves it on grow and backward-shift deletion, so the full rule of
// five is implemented (copies clone the spill, moves steal it).
#pragma once

#include <bit>
#include <cstdint>
#include <memory>

#include "util/assert.h"

namespace sbs::sim {

class SocketSet {
 public:
  /// Sockets 0..kInline-1 are stored inline; higher indices spill.
  static constexpr int kInline = 64;
  /// Hard ceiling (matches MemorySystem's shard-count check).
  static constexpr int kMaxSockets = 1024;

  SocketSet() = default;
  ~SocketSet() = default;

  SocketSet(const SocketSet& other) : lo_(other.lo_) { clone_ext(other); }
  SocketSet& operator=(const SocketSet& other) {
    if (this != &other) {
      lo_ = other.lo_;
      ext_.reset();
      ext_words_ = 0;
      clone_ext(other);
    }
    return *this;
  }
  SocketSet(SocketSet&& other) noexcept
      : lo_(other.lo_),
        ext_(std::move(other.ext_)),
        ext_words_(other.ext_words_) {
    other.lo_ = 0;
    other.ext_words_ = 0;
  }
  SocketSet& operator=(SocketSet&& other) noexcept {
    if (this != &other) {
      lo_ = other.lo_;
      ext_ = std::move(other.ext_);
      ext_words_ = other.ext_words_;
      other.lo_ = 0;
      other.ext_words_ = 0;
    }
    return *this;
  }

  void set(int socket) {
    SBS_ASSERT(socket >= 0 && socket < kMaxSockets);
    if (socket < kInline) {
      lo_ |= std::uint64_t{1} << socket;
      return;
    }
    const int w = socket / kInline - 1;
    if (w >= ext_words_) grow_ext(w + 1);
    ext_[static_cast<std::size_t>(w)] |=
        std::uint64_t{1} << (socket % kInline);
  }

  void reset(int socket) {
    SBS_ASSERT(socket >= 0 && socket < kMaxSockets);
    if (socket < kInline) {
      lo_ &= ~(std::uint64_t{1} << socket);
      return;
    }
    const int w = socket / kInline - 1;
    if (w < ext_words_)
      ext_[static_cast<std::size_t>(w)] &=
          ~(std::uint64_t{1} << (socket % kInline));
  }

  bool test(int socket) const {
    SBS_ASSERT(socket >= 0 && socket < kMaxSockets);
    if (socket < kInline) return (lo_ >> socket) & 1;
    const int w = socket / kInline - 1;
    if (w >= ext_words_) return false;
    return (ext_[static_cast<std::size_t>(w)] >> (socket % kInline)) & 1;
  }

  /// True if no socket is set (the directory erases such entries).
  bool none() const {
    if (lo_ != 0) return false;
    for (int w = 0; w < ext_words_; ++w) {
      if (ext_[static_cast<std::size_t>(w)] != 0) return false;
    }
    return true;
  }

  bool any() const { return !none(); }

  /// True if any socket other than `socket` is set.
  bool any_other(int socket) const {
    if ((lo_ & ~mask_of(socket, 0)) != 0) return true;
    for (int w = 0; w < ext_words_; ++w) {
      if ((ext_[static_cast<std::size_t>(w)] & ~mask_of(socket, w + 1)) != 0)
        return true;
    }
    return false;
  }

  int count() const {
    int n = std::popcount(lo_);
    for (int w = 0; w < ext_words_; ++w)
      n += std::popcount(ext_[static_cast<std::size_t>(w)]);
    return n;
  }

  /// Visit every set socket except `skip` (pass -1 to visit all), in
  /// ascending socket order — the deterministic order the coherence sweeps
  /// rely on. `fn` is called with the socket index.
  template <class Fn>
  void for_each_other(int skip, Fn&& fn) const {
    for (std::uint64_t m = lo_ & ~mask_of(skip, 0); m != 0; m &= m - 1) {
      fn(std::countr_zero(m));
    }
    for (int w = 0; w < ext_words_; ++w) {
      for (std::uint64_t m =
               ext_[static_cast<std::size_t>(w)] & ~mask_of(skip, w + 1);
           m != 0; m &= m - 1) {
        fn((w + 1) * kInline + std::countr_zero(m));
      }
    }
  }

  /// Clear every socket except `keep` (the post-sweep scrub: all other
  /// holders were just invalidated).
  void clear_others(int keep) {
    lo_ &= mask_of(keep, 0);
    for (int w = 0; w < ext_words_; ++w)
      ext_[static_cast<std::size_t>(w)] &= mask_of(keep, w + 1);
  }

  bool operator==(const SocketSet& other) const {
    if (lo_ != other.lo_) return false;
    const int words = ext_words_ > other.ext_words_ ? ext_words_
                                                    : other.ext_words_;
    for (int w = 0; w < words; ++w) {
      const std::uint64_t a =
          w < ext_words_ ? ext_[static_cast<std::size_t>(w)] : 0;
      const std::uint64_t b = w < other.ext_words_
                                  ? other.ext_[static_cast<std::size_t>(w)]
                                  : 0;
      if (a != b) return false;
    }
    return true;
  }
  bool operator!=(const SocketSet& other) const { return !(*this == other); }

  /// True if the set has spilled to the heap (tests).
  bool spilled() const { return ext_words_ != 0; }

 private:
  /// Bit mask of `socket` within word index `word` (0 = inline word), or 0
  /// if the socket lives in another word (or is -1).
  static std::uint64_t mask_of(int socket, int word) {
    if (socket < 0 || socket / kInline != word) return 0;
    return std::uint64_t{1} << (socket % kInline);
  }

  void clone_ext(const SocketSet& other) {
    if (other.ext_words_ == 0) return;
    ext_ = std::make_unique<std::uint64_t[]>(
        static_cast<std::size_t>(other.ext_words_));
    ext_words_ = other.ext_words_;
    for (int w = 0; w < ext_words_; ++w)
      ext_[static_cast<std::size_t>(w)] =
          other.ext_[static_cast<std::size_t>(w)];
  }

  void grow_ext(int words) {
    auto grown =
        std::make_unique<std::uint64_t[]>(static_cast<std::size_t>(words));
    for (int w = 0; w < words; ++w)
      grown[static_cast<std::size_t>(w)] =
          w < ext_words_ ? ext_[static_cast<std::size_t>(w)] : 0;
    ext_ = std::move(grown);
    ext_words_ = words;
  }

  std::uint64_t lo_ = 0;  ///< sockets 0..63, always inline
  std::unique_ptr<std::uint64_t[]> ext_;  ///< sockets 64.., ext_words_ words
  int ext_words_ = 0;
};

}  // namespace sbs::sim
