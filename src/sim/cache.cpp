#include "sim/cache.h"

#include <algorithm>

namespace sbs::sim {

Cache::Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(assoc) {
  SBS_CHECK(size_bytes_ > 0 && line_bytes_ > 0);
  const std::uint64_t lines = size_bytes_ / line_bytes_;
  if (assoc_ == 0 || assoc_ >= lines) {
    assoc_ = static_cast<std::uint32_t>(lines);  // fully associative
  }
  num_sets_ = lines / assoc_;
  SBS_CHECK_MSG(num_sets_ * assoc_ == lines,
                "cache lines must divide evenly into sets");
  SBS_CHECK_MSG((num_sets_ & (num_sets_ - 1)) == 0,
                "number of cache sets must be a power of two");
  ways_.assign(num_sets_ * assoc_, Way{});
}

bool Cache::probe_and_touch(std::uint64_t line, bool mark_dirty,
                            std::uint8_t* flags, std::uint16_t* holders) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      Way hit = set[w];
      if (mark_dirty) hit.dirty = true;
      if (flags != nullptr) *flags = hit.flags;
      if (holders != nullptr) *holders = hit.holders;
      // Move to MRU (front), shifting the ways in between.
      for (std::uint32_t i = w; i > 0; --i) set[i] = set[i - 1];
      set[0] = hit;
      return true;
    }
  }
  return false;
}

Cache::Evicted Cache::fill(std::uint64_t line, bool dirty,
                           std::uint8_t flags) {
  Way* set = set_begin(set_index(line));
  SBS_ASSERT(!contains(line));
  Evicted out;
  // Victim = LRU way (back). If any way is invalid the set is not full; use
  // the last slot either way since invalid ways sink to the back on
  // invalidate().
  const Way& victim = set[assoc_ - 1];
  if (victim.valid) {
    out.valid = true;
    out.line = victim.line;
    out.dirty = victim.dirty;
    out.holders = victim.holders;
    --resident_;
  }
  for (std::uint32_t i = assoc_ - 1; i > 0; --i) set[i] = set[i - 1];
  set[0] = Way{line, true, dirty, 0, flags};
  ++resident_;
  ++generation_;
  return out;
}

bool Cache::fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                           std::uint8_t flags) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      Way hit = set[w];
      hit.dirty = hit.dirty || dirty;
      for (std::uint32_t i = w; i > 0; --i) set[i] = set[i - 1];
      set[0] = hit;
      *evicted = Evicted{};
      return false;
    }
  }
  const Way& victim = set[assoc_ - 1];
  *evicted = Evicted{};
  if (victim.valid) {
    evicted->valid = true;
    evicted->line = victim.line;
    evicted->dirty = victim.dirty;
    evicted->holders = victim.holders;
    --resident_;
  }
  for (std::uint32_t i = assoc_ - 1; i > 0; --i) set[i] = set[i - 1];
  set[0] = Way{line, true, dirty, 0, flags};
  ++resident_;
  ++generation_;
  return true;
}

bool Cache::set_flags(std::uint64_t line, std::uint8_t flags) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      set[w].flags = flags;
      return true;
    }
  }
  return false;
}

int Cache::mark_shared(std::uint64_t line, std::uint8_t bits,
                       std::uint8_t* old_flags) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      if (old_flags != nullptr) *old_flags = set[w].flags;
      set[w].flags |= bits;
      if (bits & kFlagCrossShared) set[w].flags &= ~kFlagCrossUnknown;
      return set[w].holders;
    }
  }
  return -1;
}

bool Cache::invalidate(std::uint64_t line, bool* was_dirty,
                       std::uint16_t* holders) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      if (was_dirty != nullptr) *was_dirty = set[w].dirty;
      if (holders != nullptr) *holders = set[w].holders;
      // Shift the tail up so invalid ways stay at the back (LRU end).
      for (std::uint32_t i = w; i + 1 < assoc_; ++i) set[i] = set[i + 1];
      set[assoc_ - 1] = Way{};
      --resident_;
      ++generation_;
      return true;
    }
  }
  return false;
}

std::uint16_t Cache::set_holder_bit(std::uint64_t line, std::uint32_t bit) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) {
      const std::uint16_t old = set[w].holders;
      set[w].holders = old | static_cast<std::uint16_t>(1u << bit);
      return old;
    }
  }
  SBS_CHECK_MSG(false, "set_holder_bit on a non-resident line (inclusion)");
  return 0;
}

std::uint16_t* Cache::holder_mask(std::uint64_t line) {
  Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) return &set[w].holders;
  }
  return nullptr;
}

bool Cache::contains(std::uint64_t line) const {
  const Way* set = set_begin(set_index(line));
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].line == line) return true;
  }
  return false;
}

void Cache::clear() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  resident_ = 0;
  ++generation_;
}

}  // namespace sbs::sim
