#include "sim/cache.h"

#include <algorithm>

namespace sbs::sim {

Cache::Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(assoc) {
  SBS_CHECK(size_bytes_ > 0 && line_bytes_ > 0);
  const std::uint64_t lines = size_bytes_ / line_bytes_;
  if (assoc_ == 0 || assoc_ >= lines) {
    assoc_ = static_cast<std::uint32_t>(lines);  // fully associative
  }
  num_sets_ = lines / assoc_;
  SBS_CHECK_MSG(num_sets_ * assoc_ == lines,
                "cache lines must divide evenly into sets");
  SBS_CHECK_MSG((num_sets_ & (num_sets_ - 1)) == 0,
                "number of cache sets must be a power of two");
  tags_.assign(num_sets_ * assoc_, 0);
  meta_.assign(num_sets_ * assoc_, Meta{});
}

bool Cache::probe_and_touch(std::uint64_t line, bool mark_dirty,
                            std::uint8_t* flags, std::uint16_t* holders) {
  const std::uint64_t set = set_index(line);
  std::uint64_t* tags = tags_at(set);
  const int w = find_way(tags, key_of(line));
  if (w < 0) return false;
  Meta* meta = meta_at(set);
  if (mark_dirty) meta[w].dirty = 1;
  if (flags != nullptr) *flags = meta[w].flags;
  if (holders != nullptr) *holders = meta[w].holders;
  if (w > 0) rotate_to_front(tags, meta, static_cast<std::uint32_t>(w));
  return true;
}

Cache::Evicted Cache::fill(std::uint64_t line, bool dirty,
                           std::uint8_t flags) {
  const std::uint64_t set = set_index(line);
  std::uint64_t* tags = tags_at(set);
  Meta* meta = meta_at(set);
  SBS_ASSERT(!contains(line));
  Evicted out;
  // Victim = LRU way (back). If any way is invalid the set is not full; use
  // the last slot either way since invalid ways sink to the back on
  // invalidate().
  const std::uint64_t vt = tags[assoc_ - 1];
  if (vt != 0) {
    out.valid = true;
    out.line = vt >> 1;
    out.dirty = meta[assoc_ - 1].dirty != 0;
    out.holders = meta[assoc_ - 1].holders;
    --resident_;
  }
  for (std::uint32_t i = assoc_ - 1; i > 0; --i) {
    tags[i] = tags[i - 1];
    meta[i] = meta[i - 1];
  }
  tags[0] = key_of(line);
  meta[0] = Meta{0, static_cast<std::uint8_t>(dirty ? 1 : 0), flags};
  ++resident_;
  ++generation_;
  return out;
}

bool Cache::fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                           std::uint8_t flags) {
  const std::uint64_t set = set_index(line);
  std::uint64_t* tags = tags_at(set);
  Meta* meta = meta_at(set);
  const int w = find_way(tags, key_of(line));
  if (w >= 0) {
    if (dirty) meta[w].dirty = 1;
    if (w > 0) rotate_to_front(tags, meta, static_cast<std::uint32_t>(w));
    *evicted = Evicted{};
    return false;
  }
  *evicted = Evicted{};
  const std::uint64_t vt = tags[assoc_ - 1];
  if (vt != 0) {
    evicted->valid = true;
    evicted->line = vt >> 1;
    evicted->dirty = meta[assoc_ - 1].dirty != 0;
    evicted->holders = meta[assoc_ - 1].holders;
    --resident_;
  }
  for (std::uint32_t i = assoc_ - 1; i > 0; --i) {
    tags[i] = tags[i - 1];
    meta[i] = meta[i - 1];
  }
  tags[0] = key_of(line);
  meta[0] = Meta{0, static_cast<std::uint8_t>(dirty ? 1 : 0), flags};
  ++resident_;
  ++generation_;
  return true;
}

bool Cache::set_flags(std::uint64_t line, std::uint8_t flags) {
  const std::uint64_t set = set_index(line);
  const int w = find_way(tags_at(set), key_of(line));
  if (w < 0) return false;
  meta_at(set)[w].flags = flags;
  return true;
}

int Cache::mark_shared(std::uint64_t line, std::uint8_t bits,
                       std::uint8_t* old_flags) {
  const std::uint64_t set = set_index(line);
  const int w = find_way(tags_at(set), key_of(line));
  if (w < 0) return -1;
  Meta& m = meta_at(set)[w];
  if (old_flags != nullptr) *old_flags = m.flags;
  m.flags |= bits;
  if (bits & kFlagCrossShared) m.flags &= ~kFlagCrossUnknown;
  return m.holders;
}

bool Cache::invalidate(std::uint64_t line, bool* was_dirty,
                       std::uint16_t* holders) {
  const std::uint64_t set = set_index(line);
  std::uint64_t* tags = tags_at(set);
  const int w = find_way(tags, key_of(line));
  if (w < 0) return false;
  Meta* meta = meta_at(set);
  if (was_dirty != nullptr) *was_dirty = meta[w].dirty != 0;
  if (holders != nullptr) *holders = meta[w].holders;
  // Shift the tail up so invalid ways stay at the back (LRU end).
  for (std::uint32_t i = static_cast<std::uint32_t>(w); i + 1 < assoc_; ++i) {
    tags[i] = tags[i + 1];
    meta[i] = meta[i + 1];
  }
  tags[assoc_ - 1] = 0;
  meta[assoc_ - 1] = Meta{};
  --resident_;
  ++generation_;
  return true;
}

std::uint16_t Cache::set_holder_bit(std::uint64_t line, std::uint32_t bit) {
  const std::uint64_t set = set_index(line);
  const int w = find_way(tags_at(set), key_of(line));
  SBS_CHECK_MSG(w >= 0, "set_holder_bit on a non-resident line (inclusion)");
  Meta& m = meta_at(set)[w];
  const std::uint16_t old = m.holders;
  m.holders = old | static_cast<std::uint16_t>(1u << bit);
  return old;
}

std::uint16_t* Cache::holder_mask(std::uint64_t line) {
  const std::uint64_t set = set_index(line);
  const int w = find_way(tags_at(set), key_of(line));
  return w < 0 ? nullptr : &meta_at(set)[w].holders;
}

bool Cache::contains(std::uint64_t line) const {
  return find_way(tags_at(set_index(line)), key_of(line)) >= 0;
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(meta_.begin(), meta_.end(), Meta{});
  resident_ = 0;
  ++generation_;
}

}  // namespace sbs::sim
