#include "sim/cache.h"

#include <algorithm>
#include <numeric>

namespace sbs::sim {

Cache::Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc, const CacheOptions& options)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), assoc_(assoc) {
  SBS_CHECK(size_bytes_ > 0 && line_bytes_ > 0);
  const std::uint64_t lines = size_bytes_ / line_bytes_;
  if (assoc_ == 0 || assoc_ >= lines) {
    assoc_ = static_cast<std::uint32_t>(lines);  // fully associative
  }
  num_sets_ = lines / assoc_;
  SBS_CHECK_MSG(num_sets_ * assoc_ == lines,
                "cache lines must divide evenly into sets");
  SBS_CHECK_MSG((num_sets_ & (num_sets_ - 1)) == 0,
                "number of cache sets must be a power of two");
  tags_.assign(num_sets_ * assoc_, 0);
  meta_.assign(num_sets_ * assoc_, Meta{});

  probe_ = simd::select_probe_impl(options.simd_probes);
  if (probe_ == simd::ProbeImpl::kAvx2 && assoc_ <= kAvx2MinAssoc) {
    // The AVX2 scan lives behind a real function call (its target
    // attribute blocks inlining into find_way), and at the preset
    // associativities (8–32) the call overhead measures worse than the
    // inline SSE2 loop it replaces — docs/PERF.md §7. Only very wide sets
    // (fully-associative test caches) amortize the call.
    probe_ = simd::ProbeImpl::kSse2;
  }
  lru_ = !options.packed_lru  ? LruMode::kRotate
         : assoc_ <= 8       ? LruMode::kOrderWord
                             : LruMode::kStamps;
  if (lru_ == LruMode::kOrderWord) {
    for (std::uint32_t p = 0; p < assoc_; ++p) {
      order_init_ |= static_cast<std::uint64_t>(p) << (4 * p);
    }
    order_.assign(num_sets_, order_init_);
  } else if (lru_ == LruMode::kStamps) {
    stamps_.assign(num_sets_ * assoc_, 0);
    clock_.assign(num_sets_, 0);
    mru_.assign(num_sets_, 0);
  }

  const std::uint64_t tag_bytes = num_sets_ * assoc_ * sizeof(std::uint64_t);
  filter_on_ =
      options.presence_filter && tag_bytes >= options.filter_min_tag_bytes;
  if (filter_on_) filter_.assign(num_sets_, 0);
}

bool Cache::probe_and_touch(std::uint64_t line, bool mark_dirty,
                            std::uint8_t* flags, std::uint16_t* holders) {
  const std::uint64_t h = hash_of(line);
  const std::uint64_t set = set_of_hash(h);
  if (filter_on_ && filter_absent(set, bucket_of_hash(h))) {
    ++filter_skips_;
    return false;
  }
  std::uint64_t* tags = tags_at(set);
  const int w = find_way_mru(set, tags, key_of(line));
  if (w < 0) return false;
  Meta* meta = meta_at(set);
  if (mark_dirty) meta[w].dirty = 1;
  if (flags != nullptr) *flags = meta[w].flags;
  if (holders != nullptr) *holders = meta[w].holders;
  touch_way(set, tags, meta, static_cast<std::uint32_t>(w));
  return true;
}

void Cache::insert_line(std::uint64_t set, std::uint64_t* tags, Meta* meta,
                        std::uint64_t line, bool dirty, std::uint8_t flags,
                        Evicted* out) {
  *out = Evicted{};
  const Meta filled{0, static_cast<std::uint8_t>(dirty ? 1 : 0), flags};
  switch (lru_) {
    case LruMode::kOrderWord: {
      // Victim = the slot named by the LRU-end nibble: either the least
      // recently touched valid way, or an invalid way (invalidate() demotes
      // freed slots to the back, so free slots are always consumed first —
      // the same invariant the rotate representation keeps physically).
      std::uint64_t& ord = order_[set];
      const std::uint32_t slot =
          static_cast<std::uint32_t>(ord >> (4 * (assoc_ - 1))) & 0xF;
      const std::uint64_t vt = tags[slot];
      if (vt != 0) {
        out->valid = true;
        out->line = vt >> 1;
        out->dirty = meta[slot].dirty != 0;
        out->holders = meta[slot].holders;
        if (filter_on_) filter_sub(set, out->line);
        --resident_;
      }
      tags[slot] = key_of(line);
      meta[slot] = filled;
      ord = order_touch(ord, assoc_ - 1, slot);
      break;
    }
    case LruMode::kStamps: {
      // Victim = minimum stamp, one scan. Free ways carry stamp 0 (initial
      // state, and invalidate() re-zeroes) while valid stamps are ≥ 1, so
      // the minimum is the lowest-indexed free way when one exists — the
      // way find_way(tags, 0) would pick, matching rotate mode's
      // no-eviction-while-a-way-is-free invariant — and otherwise the
      // unique least recently touched way (valid stamps never tie).
      const std::uint32_t* st = stamps_.data() + set * assoc_;
      std::uint32_t slot = 0;
      for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (st[w] < st[slot]) slot = w;
      }
      const std::uint64_t vt = tags[slot];
      if (vt != 0) {
        out->valid = true;
        out->line = vt >> 1;
        out->dirty = meta[slot].dirty != 0;
        out->holders = meta[slot].holders;
        if (filter_on_) filter_sub(set, out->line);
        --resident_;
      }
      tags[slot] = key_of(line);
      meta[slot] = filled;
      stamps_[set * assoc_ + slot] = next_stamp(set);
      mru_[set] = slot;
      break;
    }
    default: {
      // Rotate: victim = LRU way (back). If any way is invalid the set is
      // not full; use the last slot either way since invalid ways sink to
      // the back on invalidate().
      const std::uint64_t vt = tags[assoc_ - 1];
      if (vt != 0) {
        out->valid = true;
        out->line = vt >> 1;
        out->dirty = meta[assoc_ - 1].dirty != 0;
        out->holders = meta[assoc_ - 1].holders;
        if (filter_on_) filter_sub(set, out->line);
        --resident_;
      }
      for (std::uint32_t i = assoc_ - 1; i > 0; --i) {
        tags[i] = tags[i - 1];
        meta[i] = meta[i - 1];
      }
      tags[0] = key_of(line);
      meta[0] = filled;
      break;
    }
  }
  if (filter_on_) filter_add(set, line);
  ++resident_;
  ++generation_;
}

Cache::Evicted Cache::fill(std::uint64_t line, bool dirty,
                           std::uint8_t flags) {
  const std::uint64_t set = set_index(line);
  SBS_ASSERT(!contains(line));
  Evicted out;
  insert_line(set, tags_at(set), meta_at(set), line, dirty, flags, &out);
  return out;
}

bool Cache::fill_if_absent(std::uint64_t line, bool dirty, Evicted* evicted,
                           std::uint8_t flags) {
  const std::uint64_t h = hash_of(line);
  const std::uint64_t set = set_of_hash(h);
  std::uint64_t* tags = tags_at(set);
  Meta* meta = meta_at(set);
  if (filter_on_ && filter_absent(set, bucket_of_hash(h))) {
    ++filter_skips_;
  } else {
    const int w = find_way_mru(set, tags, key_of(line));
    if (w >= 0) {
      if (dirty) meta[w].dirty = 1;
      touch_way(set, tags, meta, static_cast<std::uint32_t>(w));
      *evicted = Evicted{};
      return false;
    }
  }
  insert_line(set, tags, meta, line, dirty, flags, evicted);
  return true;
}

bool Cache::set_flags(std::uint64_t line, std::uint8_t flags) {
  const std::uint64_t set = set_index(line);
  const int w = find_way_mru(set, tags_at(set), key_of(line));
  if (w < 0) return false;
  meta_at(set)[w].flags = flags;
  return true;
}

int Cache::mark_shared(std::uint64_t line, std::uint8_t bits,
                       std::uint8_t* old_flags) {
  const std::uint64_t set = set_index(line);
  const int w = find_way_mru(set, tags_at(set), key_of(line));
  if (w < 0) return -1;
  Meta& m = meta_at(set)[w];
  if (old_flags != nullptr) *old_flags = m.flags;
  m.flags |= bits;
  if (bits & kFlagCrossShared) m.flags &= ~kFlagCrossUnknown;
  return m.holders;
}

bool Cache::invalidate(std::uint64_t line, bool* was_dirty,
                       std::uint16_t* holders) {
  const std::uint64_t h = hash_of(line);
  const std::uint64_t set = set_of_hash(h);
  if (filter_on_ && filter_absent(set, bucket_of_hash(h))) {
    // Coherence and back-invalidation sweeps descend conservative holder
    // masks, so probing a cache that does not hold the line is routine —
    // the filter answers it without the tag scan.
    ++filter_skips_;
    return false;
  }
  std::uint64_t* tags = tags_at(set);
  const int w = find_way(tags, key_of(line));
  if (w < 0) return false;
  Meta* meta = meta_at(set);
  if (was_dirty != nullptr) *was_dirty = meta[w].dirty != 0;
  if (holders != nullptr) *holders = meta[w].holders;
  switch (lru_) {
    case LruMode::kOrderWord: {
      std::uint64_t& ord = order_[set];
      const std::uint32_t s = static_cast<std::uint32_t>(w);
      tags[w] = 0;
      meta[w] = Meta{};
      ord = order_to_back(ord, order_pos(ord, s), s);
      break;
    }
    case LruMode::kStamps:
      // Zeroing the stamp marks the way free for the fill-victim scan:
      // stamp 0 undercuts every valid stamp (≥ 1), so free ways are
      // consumed before any eviction, lowest index first.
      tags[w] = 0;
      meta[w] = Meta{};
      stamps_[set * assoc_ + static_cast<std::uint32_t>(w)] = 0;
      break;
    default:
      // Shift the tail up so invalid ways stay at the back (LRU end).
      for (std::uint32_t i = static_cast<std::uint32_t>(w); i + 1 < assoc_;
           ++i) {
        tags[i] = tags[i + 1];
        meta[i] = meta[i + 1];
      }
      tags[assoc_ - 1] = 0;
      meta[assoc_ - 1] = Meta{};
      break;
  }
  if (filter_on_) filter_sub(set, line);
  --resident_;
  ++generation_;
  return true;
}

std::uint16_t Cache::set_holder_bit(std::uint64_t line, std::uint32_t bit) {
  const std::uint64_t set = set_index(line);
  const int w = find_way_mru(set, tags_at(set), key_of(line));
  SBS_CHECK_MSG(w >= 0, "set_holder_bit on a non-resident line (inclusion)");
  Meta& m = meta_at(set)[w];
  const std::uint16_t old = m.holders;
  m.holders = old | static_cast<std::uint16_t>(1u << bit);
  return old;
}

std::uint16_t* Cache::holder_mask(std::uint64_t line) {
  const std::uint64_t set = set_index(line);
  const int w = find_way_mru(set, tags_at(set), key_of(line));
  return w < 0 ? nullptr : &meta_at(set)[w].holders;
}

bool Cache::contains(std::uint64_t line) const {
  const std::uint64_t h = hash_of(line);
  const std::uint64_t set = set_of_hash(h);
  if (filter_on_ && filter_absent(set, bucket_of_hash(h))) return false;
  return find_way(tags_at(set), key_of(line)) >= 0;
}

void Cache::rebase_stamps(std::uint64_t set) {
  // Rank-compress the set's stamps, preserving their relative order, and
  // pull the clock back to assoc_. Zero stamps (free ways) must stay zero
  // — stamp 0 is what the fill-victim scan reads as "free".
  std::uint32_t* st = stamps_.data() + set * assoc_;
  std::vector<std::uint32_t> idx(assoc_);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [st](std::uint32_t a, std::uint32_t b) {
    return st[a] < st[b];
  });
  std::uint32_t rank = 0;
  for (std::uint32_t r = 0; r < assoc_; ++r) {
    if (st[idx[r]] != 0) st[idx[r]] = ++rank;
  }
  clock_[set] = assoc_;
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(meta_.begin(), meta_.end(), Meta{});
  std::fill(order_.begin(), order_.end(), order_init_);
  std::fill(stamps_.begin(), stamps_.end(), 0u);
  std::fill(clock_.begin(), clock_.end(), 0u);
  std::fill(mru_.begin(), mru_.end(), 0u);
  std::fill(filter_.begin(), filter_.end(), 0u);
  resident_ = 0;
  filter_skips_ = 0;
  ++generation_;
}

}  // namespace sbs::sim
