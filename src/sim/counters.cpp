#include "sim/counters.h"

#include <sstream>

#include "util/assert.h"

namespace sbs::sim {

std::string Counters::summary() const {
  std::ostringstream out;
  out << "accesses=" << accesses << " writes=" << writes;
  for (std::size_t d = 1; d < level.size(); ++d) {
    out << " L" << (level.size() - d) << "{hits=" << level[d].hits
        << " misses=" << level[d].misses << "}";
  }
  out << " dram_reads=" << dram_reads << " writebacks=" << dram_writebacks
      << " remote=" << remote_dram_accesses
      << " queue_wait=" << queue_wait_cycles;
  if (filter_skips != 0) out << " filter_skips=" << filter_skips;
  if (windows_executed != 0 || fiber_switches != 0) {
    out << " engine{windows=" << windows_executed
        << " merges=" << window_merges << " pump_passes=" << pump_passes
        << " fiber_switches=" << fiber_switches
        << " inline_strands=" << inline_strands << "}";
  }
  return out.str();
}

Counters& Counters::operator+=(const Counters& other) {
  if (level.size() < other.level.size()) level.resize(other.level.size());
  for (std::size_t d = 0; d < other.level.size(); ++d) {
    level[d].hits += other.level[d].hits;
    level[d].misses += other.level[d].misses;
    level[d].evictions += other.level[d].evictions;
    level[d].back_invalidations += other.level[d].back_invalidations;
    level[d].coherence_invalidations += other.level[d].coherence_invalidations;
  }
  dram_reads += other.dram_reads;
  dram_writebacks += other.dram_writebacks;
  remote_dram_accesses += other.remote_dram_accesses;
  queue_wait_cycles += other.queue_wait_cycles;
  accesses += other.accesses;
  writes += other.writes;
  filter_skips += other.filter_skips;
  fiber_switches += other.fiber_switches;
  windows_executed += other.windows_executed;
  window_merges += other.window_merges;
  pump_passes += other.pump_passes;
  inline_strands += other.inline_strands;
  return *this;
}

}  // namespace sbs::sim
