// Hardware-counter abstraction (paper §3.3, Appendix B).
//
// The paper reads core PMU counters through libpfm and uncore C-Box
// counters through Intel PCM. This module provides the same *interface*
// against two backends:
//   - SimCounterSource: exact counts from the PMH simulator (the default
//     measurement vehicle in this reproduction);
//   - PerfEventSource: Linux perf_event_open for native runs on real
//     hardware (cycles, instructions, LLC misses/references). Containers
//     and locked-down kernels often forbid it — availability is reported,
//     and everything degrades gracefully to "unavailable".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sbs::perf {

enum class Event {
  kCycles,
  kInstructions,
  kLlcReferences,
  kLlcMisses,
};

const char* EventName(Event event);

/// A group of hardware counters for the calling thread/process.
class CounterGroup {
 public:
  virtual ~CounterGroup() = default;
  /// Begin counting (resets previous values).
  virtual void start() = 0;
  /// Stop counting and latch values.
  virtual void stop() = 0;
  /// Latched value of an event; 0 if the event was not available.
  virtual std::uint64_t value(Event event) const = 0;
  /// Events actually being counted (subset of the requested ones).
  virtual std::vector<Event> active_events() const = 0;
};

/// Create a perf_event_open-backed group counting `events` on the calling
/// process (all threads). Returns nullptr when perf events are unavailable
/// (no syscall permission, no PMU, ...); the reason is written to `error`
/// if non-null.
std::unique_ptr<CounterGroup> MakePerfEventGroup(
    const std::vector<Event>& events, std::string* error = nullptr);

/// True if perf_event_open works in this environment for at least a
/// software event (used by tests to skip gracefully).
bool PerfEventsAvailable();

}  // namespace sbs::perf
