#include "perf/counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sbs::perf {

const char* EventName(Event event) {
  switch (event) {
    case Event::kCycles: return "cycles";
    case Event::kInstructions: return "instructions";
    case Event::kLlcReferences: return "LLC-references";
    case Event::kLlcMisses: return "LLC-misses";
  }
  return "?";
}

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

bool attr_for(Event event, perf_event_attr* attr) {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  attr->disabled = 1;
  attr->exclude_kernel = 1;
  attr->exclude_hv = 1;
  attr->inherit = 1;  // count all threads of the process
  switch (event) {
    case Event::kCycles:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_CPU_CYCLES;
      return true;
    case Event::kInstructions:
      attr->type = PERF_TYPE_HARDWARE;
      attr->config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case Event::kLlcReferences:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_LL |
                     (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      return true;
    case Event::kLlcMisses:
      attr->type = PERF_TYPE_HW_CACHE;
      attr->config = PERF_COUNT_HW_CACHE_LL |
                     (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                     (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      return true;
  }
  return false;
}

class PerfEventGroup final : public CounterGroup {
 public:
  ~PerfEventGroup() override {
    for (const auto& [event, fd] : fds_) {
      (void)event;
      close(fd);
    }
  }

  bool open(const std::vector<Event>& events, std::string* error) {
    for (Event event : events) {
      perf_event_attr attr;
      if (!attr_for(event, &attr)) continue;
      const long fd = perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/-1, /*flags=*/0);
      if (fd < 0) {
        if (error != nullptr && fds_.empty()) {
          *error = std::string(EventName(event)) + ": " + strerror(errno);
        }
        continue;  // count what we can
      }
      fds_.emplace_back(event, static_cast<int>(fd));
      values_.emplace_back(event, 0);
    }
    return !fds_.empty();
  }

  void start() override {
    for (const auto& [event, fd] : fds_) {
      (void)event;
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  void stop() override {
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      ioctl(fds_[i].second, PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t v = 0;
      if (read(fds_[i].second, &v, sizeof(v)) != sizeof(v)) v = 0;
      values_[i].second = v;
    }
  }

  std::uint64_t value(Event event) const override {
    for (const auto& [e, v] : values_) {
      if (e == event) return v;
    }
    return 0;
  }

  std::vector<Event> active_events() const override {
    std::vector<Event> out;
    out.reserve(fds_.size());
    for (const auto& [e, fd] : fds_) {
      (void)fd;
      out.push_back(e);
    }
    return out;
  }

 private:
  std::vector<std::pair<Event, int>> fds_;
  std::vector<std::pair<Event, std::uint64_t>> values_;
};

}  // namespace

std::unique_ptr<CounterGroup> MakePerfEventGroup(
    const std::vector<Event>& events, std::string* error) {
  auto group = std::make_unique<PerfEventGroup>();
  if (!group->open(events, error)) return nullptr;
  return group;
}

bool PerfEventsAvailable() {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_SOFTWARE;
  attr.config = PERF_COUNT_SW_TASK_CLOCK;
  attr.disabled = 1;
  const long fd = perf_event_open(&attr, 0, -1, -1, 0);
  if (fd < 0) return false;
  close(static_cast<int>(fd));
  return true;
}

}  // namespace sbs::perf
