#include "machine/topology.h"

#include <sstream>

#include "util/assert.h"
#include "util/table.h"

namespace sbs::machine {

Topology::Topology(MachineConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  const int num_levels = static_cast<int>(cfg_.levels.size());
  leaf_depth_ = num_levels;  // leaves sit one below the last cache level
  num_threads_ = cfg_.num_threads();

  // Count nodes per depth: depth 0 has 1 node; depth d+1 has
  // depth-d count * levels[d].fanout; leaves are depth `num_levels`.
  std::vector<int> count(static_cast<std::size_t>(leaf_depth_) + 1, 0);
  count[0] = 1;
  for (int d = 0; d < num_levels; ++d) {
    count[static_cast<std::size_t>(d) + 1] =
        count[static_cast<std::size_t>(d)] *
        static_cast<int>(cfg_.levels[static_cast<std::size_t>(d)].fanout);
  }
  SBS_CHECK(count[static_cast<std::size_t>(leaf_depth_)] == num_threads_);

  int total = 0;
  std::vector<int> depth_start(static_cast<std::size_t>(leaf_depth_) + 2, 0);
  for (int d = 0; d <= leaf_depth_; ++d) {
    depth_start[static_cast<std::size_t>(d)] = total;
    total += count[static_cast<std::size_t>(d)];
  }
  depth_start[static_cast<std::size_t>(leaf_depth_) + 1] = total;
  first_leaf_id_ = depth_start[static_cast<std::size_t>(leaf_depth_)];

  nodes_.resize(static_cast<std::size_t>(total));
  for (int d = 0; d <= leaf_depth_; ++d) {
    const int start = depth_start[static_cast<std::size_t>(d)];
    const int n = count[static_cast<std::size_t>(d)];
    const int fanout =
        d < num_levels
            ? static_cast<int>(cfg_.levels[static_cast<std::size_t>(d)].fanout)
            : 0;
    for (int i = 0; i < n; ++i) {
      Node& node = nodes_[static_cast<std::size_t>(start + i)];
      node.id = start + i;
      node.depth = d;
      node.parent =
          d == 0 ? -1
                 : depth_start[static_cast<std::size_t>(d) - 1] +
                       i / static_cast<int>(
                               cfg_.levels[static_cast<std::size_t>(d) - 1].fanout);
      if (fanout > 0) {
        node.first_child =
            depth_start[static_cast<std::size_t>(d) + 1] + i * fanout;
        node.num_children = fanout;
      }
      // Leaves per subtree at depth d: product of fanouts below d.
      int leaves = 1;
      for (int dd = d; dd < num_levels; ++dd)
        leaves *= static_cast<int>(cfg_.levels[static_cast<std::size_t>(dd)].fanout);
      node.first_leaf = i * leaves;
      node.num_leaves = leaves;
    }
  }

  // Inverse of the core map: position -> logical thread id.
  thread_of_position_.assign(static_cast<std::size_t>(num_threads_), -1);
  for (int t = 0; t < num_threads_; ++t)
    thread_of_position_[static_cast<std::size_t>(cfg_.leaf_position(t))] = t;
}

int Topology::ancestor_at_depth(int node_id, int depth) const {
  SBS_ASSERT(depth >= 0 && depth <= node(node_id).depth);
  int id = node_id;
  while (node(id).depth > depth) id = node(id).parent;
  return id;
}

std::vector<int> Topology::threads_under(int node_id) const {
  const Node& n = node(node_id);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n.num_leaves));
  for (int pos = n.first_leaf; pos < n.first_leaf + n.num_leaves; ++pos)
    out.push_back(thread_of_position_[static_cast<std::size_t>(pos)]);
  return out;
}

bool Topology::thread_in_cluster(int thread_id, int node_id) const {
  const Node& n = node(node_id);
  const int pos = cfg_.leaf_position(thread_id);
  return pos >= n.first_leaf && pos < n.first_leaf + n.num_leaves;
}

std::vector<int> Topology::nodes_at_depth(int depth) const {
  std::vector<int> out;
  for (const Node& n : nodes_)
    if (n.depth == depth) out.push_back(n.id);
  return out;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << "machine '" << cfg_.name << "': " << num_threads_ << " threads, "
      << num_cache_levels() << " cache levels\n";
  for (int d = 0; d < leaf_depth_; ++d) {
    const LevelSpec& lvl = cfg_.levels[static_cast<std::size_t>(d)];
    out << "  depth " << d << " (" << lvl.name << "): "
        << nodes_at_depth(d).size() << " unit(s), size "
        << (lvl.size == 0 ? std::string("inf") : fmt_bytes(lvl.size))
        << ", line " << lvl.line << "B, fanout " << lvl.fanout;
    if (d > 0) out << ", hit " << lvl.hit_cycles << "cy";
    out << "\n";
  }
  out << "  depth " << leaf_depth_ << ": " << num_threads_
      << " hardware thread(s)\n";
  return out.str();
}

}  // namespace sbs::machine
