// Explicit tree-of-caches topology built from a MachineConfig.
//
// Nodes are numbered breadth-first from the root (node 0 = main memory).
// Depth d nodes are instances of config.levels[d]; below the last cache
// level sit the leaves, one per hardware thread. The scheduler and the
// simulator both navigate the machine exclusively through this class, so
// "cluster" queries (the set of threads under a cache, paper §4.1) live here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/config.h"

namespace sbs::machine {

struct Node {
  int id = -1;
  int depth = -1;        ///< 0 = memory; depth D = leaf (hardware thread).
  int parent = -1;       ///< -1 for the root.
  int first_child = -1;  ///< children are contiguous: [first_child, +count).
  int num_children = 0;
  int first_leaf = 0;    ///< leaf positions covered by this subtree
  int num_leaves = 0;    ///< (the node's "cluster", paper §4.1).
};

class Topology {
 public:
  explicit Topology(MachineConfig cfg);

  const MachineConfig& config() const { return cfg_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_threads() const { return num_threads_; }
  /// Tree depth of leaf nodes (= number of levels including memory).
  int leaf_depth() const { return leaf_depth_; }
  /// Number of cache levels (excluding memory): leaf_depth() - 1.
  int num_cache_levels() const { return leaf_depth_ - 1; }

  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const LevelSpec& level_of(int node_id) const {
    return cfg_.levels[static_cast<std::size_t>(node(node_id).depth)];
  }

  /// Root node id (main memory).
  int root() const { return 0; }

  /// Leaf node id for a left-to-right leaf position.
  int leaf_at_position(int position) const {
    return first_leaf_id_ + position;
  }
  /// Leaf node id for a logical thread id (applies the config's core map).
  int leaf_of_thread(int thread_id) const {
    return leaf_at_position(cfg_.leaf_position(thread_id));
  }
  /// Logical thread id of a leaf node.
  int thread_of_leaf(int leaf_id) const {
    return thread_of_position_[static_cast<std::size_t>(leaf_id - first_leaf_id_)];
  }

  /// The ancestor of `node_id` at tree depth `depth` (<= node's own depth).
  int ancestor_at_depth(int node_id, int depth) const;

  /// The ancestor cache of a logical thread at tree depth `depth`.
  int cache_of_thread(int thread_id, int depth) const {
    return ancestor_at_depth(leaf_of_thread(thread_id), depth);
  }

  /// The depth-1 ancestor, i.e. the socket-level cache (L3 on the Xeon).
  int socket_of_thread(int thread_id) const {
    return cache_of_thread(thread_id, std::min(1, leaf_depth()));
  }

  /// All logical thread ids in `node_id`'s cluster (P(X_i) in the paper).
  std::vector<int> threads_under(int node_id) const;

  /// True if `node_id` is on the root-to-leaf path of `thread_id`.
  bool thread_in_cluster(int thread_id, int node_id) const;

  /// Nodes at a given tree depth, in left-to-right order.
  std::vector<int> nodes_at_depth(int depth) const;

  /// Human-readable dump (one line per level) for examples and --verbose.
  std::string describe() const;

 private:
  MachineConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<int> thread_of_position_;  ///< inverse of core_map
  int num_threads_ = 0;
  int leaf_depth_ = 0;
  int first_leaf_id_ = 0;
};

}  // namespace sbs::machine
