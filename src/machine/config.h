// Machine description: a symmetric parallel memory hierarchy (PMH).
//
// Following the paper (§2, Fig. 1(b), Fig. 4), a machine is a height-h tree
// of caches. We store levels top-down: levels[0] is main memory (size 0 =
// "infinitely large"), deeper entries are successively smaller caches, and
// the leaves below the last cache level are the hardware threads ("cores" in
// the paper's terminology). Each level carries the four PMH parameters
// (M_i, B_i, C_i, f_i) plus an associativity used by the simulator.
//
// Configs come from named presets (xeon7560, xeon7560_ht, mini, ...) or from
// a config file in the paper's Fig. 4 C-like syntax (see ParseConfig).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbs::machine {

struct LevelSpec {
  std::string name;       ///< "mem", "L3", "L2", "L1" — for reporting.
  std::uint64_t size;     ///< capacity in bytes; 0 means infinite (memory).
  std::uint32_t line;     ///< block size B_i in bytes.
  std::uint32_t fanout;   ///< number of children (caches, or threads for the
                          ///< last cache level).
  std::uint32_t assoc;    ///< associativity; 0 means fully associative.
  std::uint32_t hit_cycles;  ///< access cost when the line hits this level.
};

struct MachineConfig {
  std::string name = "unnamed";
  double ghz = 2.27;  ///< core clock, used to convert cycles to seconds.

  /// Top-down: levels[0] is memory. Product of all fanouts = thread count.
  std::vector<LevelSpec> levels;

  // --- Memory-system timing (simulator cost model) ---
  std::uint32_t dram_latency_cycles = 190;
  /// Peak bandwidth of one socket's memory link, in bytes per core-cycle.
  double socket_bytes_per_cycle = 11.0;
  /// Page size for the page→socket home mapping (the paper pre-allocates
  /// 2 MB hugepages and places them with numactl).
  std::uint64_t page_bytes = 2ull << 20;

  // --- Scheduler-overhead timing (simulator cost model) ---
  /// Virtual cycles charged per instrumented scheduler operation
  /// (lock acquisition / queue op / tree-level visit) and per fork/join.
  std::uint32_t sched_op_cycles = 60;
  std::uint32_t fork_join_cycles = 120;
  /// How long an idle core waits before re-polling get() when the scheduler
  /// has no work for it (paper: "empty queue" overhead accumulates).
  std::uint32_t idle_poll_cycles = 400;

  /// map[logical thread id] = leaf position (left-to-right in the tree).
  /// Empty means identity.
  std::vector<int> core_map;

  // Derived helpers.
  int num_threads() const;
  int num_cache_levels() const;  ///< levels below memory.
  std::uint64_t level_size(int depth) const { return levels[depth].size; }
  /// Leaf position of a logical thread id (applies core_map).
  int leaf_position(int thread_id) const;
  /// Validate invariants (sizes decrease going down, fanouts nonzero, ...).
  void validate() const;
};

/// Named presets. Throws via SBS_CHECK on unknown names.
/// - "xeon7560":     4 sockets × 8 cores, 24 MB L3 / 256 KB L2 / 32 KB L1.
/// - "xeon7560_ht":  same with 2 hardware threads per core (64 threads).
/// - "xeon7560_fig4":the literal Fig. 4 sizes (12 MB L3 as printed).
/// - "mini":         2 sockets × 2 cores with tiny caches, for tests.
/// - "mini_deep":    4-cache-level toy hierarchy, for tests.
MachineConfig Preset(const std::string& name);
std::vector<std::string> PresetNames();

/// Parse the paper's Fig. 4 C-like config syntax:
///   int num_procs=32;
///   int num_levels = 4;
///   int fan_outs[4] = {4,8,1,1};
///   long long int sizes[4] = {0, 3*(1<<22), 1<<18, 1<<15};
///   int block_sizes[4] = {64,64,64,64};
///   int map[32] = {0,4,...};
/// plus optional extended keys (double ghz, int assoc[...], int hit_cycles[...],
/// int dram_latency, double socket_bytes_per_cycle). Arithmetic with +, *,
/// <<, and parentheses is supported in values.
MachineConfig ParseConfig(const std::string& text);

/// Load and parse a config file.
MachineConfig LoadConfigFile(const std::string& path);

/// Render a config in the Fig. 4 syntax (round-trips through ParseConfig).
std::string ToConfigText(const MachineConfig& cfg);

}  // namespace sbs::machine
