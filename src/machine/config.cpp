#include "machine/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/assert.h"

namespace sbs::machine {

int MachineConfig::num_threads() const {
  int p = 1;
  for (const auto& lvl : levels) p *= static_cast<int>(lvl.fanout);
  return p;
}

int MachineConfig::num_cache_levels() const {
  return static_cast<int>(levels.size()) - 1;
}

int MachineConfig::leaf_position(int thread_id) const {
  SBS_ASSERT(thread_id >= 0 && thread_id < num_threads());
  if (core_map.empty()) return thread_id;
  return core_map[static_cast<std::size_t>(thread_id)];
}

void MachineConfig::validate() const {
  SBS_CHECK_MSG(levels.size() >= 2, "need memory plus at least one cache");
  SBS_CHECK_MSG(levels[0].size == 0, "levels[0] is memory and must have size 0");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelSpec& lvl = levels[i];
    SBS_CHECK_MSG(lvl.fanout >= 1, "every level needs fanout >= 1");
    SBS_CHECK_MSG(lvl.line > 0 && (lvl.line & (lvl.line - 1)) == 0,
                  "line size must be a power of two");
    if (i >= 1) {
      SBS_CHECK_MSG(lvl.size > 0, "cache sizes must be positive");
      if (i >= 2) {
        SBS_CHECK_MSG(lvl.size < levels[i - 1].size,
                      "cache sizes must strictly decrease going down");
      }
      SBS_CHECK_MSG(levels[i - 1].line % lvl.line == 0,
                    "parent line size must be a multiple of child line size");
      if (lvl.assoc > 0) {
        SBS_CHECK_MSG(lvl.size % (static_cast<std::uint64_t>(lvl.line) *
                                  lvl.assoc) == 0,
                      "cache size must be divisible by line*assoc");
      } else {
        SBS_CHECK_MSG(lvl.size % lvl.line == 0,
                      "cache size must be divisible by line size");
      }
    }
  }
  const int p = num_threads();
  if (!core_map.empty()) {
    SBS_CHECK_MSG(static_cast<int>(core_map.size()) == p,
                  "core_map must have one entry per thread");
    std::vector<int> sorted = core_map;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < p; ++i)
      SBS_CHECK_MSG(sorted[static_cast<std::size_t>(i)] == i,
                    "core_map must be a permutation of 0..P-1");
  }
  SBS_CHECK(ghz > 0);
  SBS_CHECK(socket_bytes_per_cycle > 0);
  SBS_CHECK(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0);
}

namespace {

std::vector<int> Fig4CoreMap() {
  return {0, 4, 8,  12, 16, 20, 24, 28, 2, 6, 10, 14, 18, 22, 26, 30,
          1, 5, 9,  13, 17, 21, 25, 29, 3, 7, 11, 15, 19, 23, 27, 31};
}

void NameLevels(MachineConfig& cfg) {
  const int ncaches = cfg.num_cache_levels();
  cfg.levels[0].name = "mem";
  for (int i = 1; i <= ncaches; ++i) {
    cfg.levels[static_cast<std::size_t>(i)].name =
        "L" + std::to_string(ncaches - i + 1);
  }
}

/// Default per-level hit costs when a config does not specify them: 2 cycles
/// at the innermost cache, roughly quadrupling per level going out.
void DefaultHitCycles(MachineConfig& cfg) {
  std::uint32_t c = 2;
  for (std::size_t i = cfg.levels.size(); i-- > 1;) {
    if (cfg.levels[i].hit_cycles == 0) cfg.levels[i].hit_cycles = c;
    c = std::min<std::uint32_t>(c * 4, 80);
  }
}

/// The paper's machine, with options:
///  - scale: divide every cache size by this power of two. The "_s8" scaled
///    preset (÷8: 3 MB L3 / 32 KB L2 / 4 KB L1) keeps all the experiment's
///    dimensionless ratios (8 cores per L3, ~7× data-to-L3 at the default
///    problem sizes, σ, µ) while letting default bench runs finish in
///    seconds; --full uses scale 1 with the paper's problem sizes.
///  - hyperthreaded: two hardware threads per core (64 total).
///  - cores_per_socket: Fig. 7's partial-socket machines (4×1 ... 4×8).
///  - fig4_sizes: the literal 12 MB L3 printed in the paper's Fig. 4.
MachineConfig Xeon7560(std::string name, int scale, bool hyperthreaded,
                       int cores_per_socket, bool fig4_sizes) {
  MachineConfig cfg;
  cfg.name = std::move(name);
  cfg.ghz = 2.27;
  const std::uint64_t l3_full = fig4_sizes ? 3ull * (1ull << 22)  // Fig. 4
                                           : 24ull << 20;  // 24 MB per §5.2
  const std::uint64_t scale_u = static_cast<std::uint64_t>(scale);
  cfg.levels = {
      {"mem", 0, 64, 4, 0, 0},
      {"L3", l3_full / scale_u, 64, static_cast<std::uint32_t>(cores_per_socket),
       24, 45},
      {"L2", (1ull << 18) / scale_u, 64, 1, 8, 10},
      {"L1", (1ull << 15) / scale_u, 64, hyperthreaded ? 2u : 1u, 8, 2},
  };
  // Keep the page→socket interleave granularity proportional to the data
  // sizes the scaled machine is meant for.
  if (scale > 1) cfg.page_bytes = (2ull << 20) / scale_u;
  if (cores_per_socket == 8 && !hyperthreaded) {
    cfg.core_map = Fig4CoreMap();
  } else if (cores_per_socket == 8 && hyperthreaded) {
    // Linux numbers hyperthread siblings as cpu and cpu+32; in the tree the
    // two threads of a core are adjacent leaves.
    const std::vector<int> fig4 = Fig4CoreMap();
    cfg.core_map.resize(64);
    for (int i = 0; i < 32; ++i) {
      cfg.core_map[static_cast<std::size_t>(i)] =
          fig4[static_cast<std::size_t>(i)] * 2;
      cfg.core_map[static_cast<std::size_t>(i + 32)] =
          fig4[static_cast<std::size_t>(i)] * 2 + 1;
    }
  }
  return cfg;
}

MachineConfig Mini() {
  MachineConfig cfg;
  cfg.name = "mini";
  cfg.ghz = 1.0;
  cfg.levels = {
      {"mem", 0, 64, 2, 0, 0},
      {"L2", 1ull << 16, 64, 2, 4, 10},
      {"L1", 1ull << 12, 64, 1, 4, 2},
  };
  cfg.dram_latency_cycles = 100;
  cfg.socket_bytes_per_cycle = 8.0;
  cfg.page_bytes = 1ull << 12;
  return cfg;
}

MachineConfig MiniDeep() {
  MachineConfig cfg;
  cfg.name = "mini_deep";
  cfg.ghz = 1.0;
  cfg.levels = {
      {"mem", 0, 64, 2, 0, 0},
      {"L3", 1ull << 18, 64, 2, 8, 40},
      {"L2", 1ull << 15, 64, 1, 4, 10},
      {"L1", 1ull << 12, 64, 2, 4, 2},
  };
  cfg.dram_latency_cycles = 100;
  cfg.socket_bytes_per_cycle = 8.0;
  cfg.page_bytes = 1ull << 12;
  return cfg;
}

}  // namespace

MachineConfig Preset(const std::string& name) {
  MachineConfig cfg;
  if (name == "mini") {
    cfg = Mini();
  } else if (name == "mini_deep") {
    cfg = MiniDeep();
  } else if (name.rfind("xeon7560", 0) == 0) {
    // Suffix grammar: xeon7560[_fig4][_s<scale>][_4x<cores>][_ht]
    std::string rest = name.substr(std::string("xeon7560").size());
    int scale = 1, cores = 8;
    bool ht = false, fig4 = false;
    while (!rest.empty()) {
      SBS_CHECK_MSG(rest[0] == '_',
                    ("unknown machine preset: " + name).c_str());
      rest = rest.substr(1);
      if (rest.rfind("fig4", 0) == 0) {
        fig4 = true;
        rest = rest.substr(4);
      } else if (rest.rfind("ht", 0) == 0) {
        ht = true;
        rest = rest.substr(2);
      } else if (rest.rfind("s", 0) == 0) {
        std::size_t used = 0;
        scale = std::stoi(rest.substr(1), &used);
        SBS_CHECK_MSG(scale >= 1 && (scale & (scale - 1)) == 0,
                      "machine scale must be a power of two");
        rest = rest.substr(1 + used);
      } else if (rest.rfind("4x", 0) == 0) {
        std::size_t used = 0;
        cores = std::stoi(rest.substr(2), &used);
        SBS_CHECK_MSG(cores >= 1 && cores <= 8,
                      "cores per socket must be in 1..8");
        rest = rest.substr(2 + used);
      } else {
        SBS_CHECK_MSG(false, ("unknown machine preset: " + name).c_str());
      }
    }
    cfg = Xeon7560(name, scale, ht, cores, fig4);
  } else {
    SBS_CHECK_MSG(false, ("unknown machine preset: " + name).c_str());
  }
  DefaultHitCycles(cfg);
  cfg.validate();
  return cfg;
}

std::vector<std::string> PresetNames() {
  return {"xeon7560",        "xeon7560_ht",    "xeon7560_fig4",
          "xeon7560_4x1",    "xeon7560_4x2",   "xeon7560_4x4",
          "xeon7560_s8",     "xeon7560_s8_ht", "xeon7560_s8_4x2",
          "mini",            "mini_deep"};
}

// ---------------------------------------------------------------------------
// Fig. 4 syntax parser
// ---------------------------------------------------------------------------
namespace {

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text.compare(pos, 2, "//") == 0) {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (text.compare(pos, 2, "/*") == 0) {
        pos += 2;
        while (pos + 1 < text.size() && text.compare(pos, 2, "*/") != 0) ++pos;
        pos = std::min(pos + 2, text.size());
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_str(const char* s) {
    skip_ws();
    const std::size_t n = std::string(s).size();
    if (text.compare(pos, n, s) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    return text.substr(start, pos - start);
  }
};

// Integer/real expression grammar: shift > additive > multiplicative > unary.
double ParseExpr(Lexer& lx);

double ParsePrimary(Lexer& lx) {
  if (lx.consume('(')) {
    double v = ParseExpr(lx);
    SBS_CHECK_MSG(lx.consume(')'), "config: expected ')'");
    return v;
  }
  if (lx.consume('-')) return -ParsePrimary(lx);
  lx.skip_ws();
  std::size_t start = lx.pos;
  while (lx.pos < lx.text.size() &&
         (std::isdigit(static_cast<unsigned char>(lx.text[lx.pos])) ||
          lx.text[lx.pos] == '.' || lx.text[lx.pos] == 'x' ||
          lx.text[lx.pos] == 'X' ||
          std::isxdigit(static_cast<unsigned char>(lx.text[lx.pos])))) {
    ++lx.pos;
  }
  SBS_CHECK_MSG(lx.pos > start, "config: expected a number");
  const std::string tok = lx.text.substr(start, lx.pos - start);
  return std::stod(tok.find('.') != std::string::npos
                       ? tok
                       : std::to_string(static_cast<double>(
                             std::stoll(tok, nullptr, 0))));
}

double ParseMul(Lexer& lx) {
  double v = ParsePrimary(lx);
  while (true) {
    if (lx.consume('*')) {
      v *= ParsePrimary(lx);
    } else if (lx.peek() == '/' && lx.text.compare(lx.pos, 2, "//") != 0) {
      lx.consume('/');
      v /= ParsePrimary(lx);
    } else {
      break;
    }
  }
  return v;
}

double ParseAdd(Lexer& lx) {
  double v = ParseMul(lx);
  while (true) {
    if (lx.consume('+')) {
      v += ParseMul(lx);
    } else if (lx.peek() == '-') {
      lx.consume('-');
      v -= ParseMul(lx);
    } else {
      break;
    }
  }
  return v;
}

double ParseExpr(Lexer& lx) {
  double v = ParseAdd(lx);
  while (lx.consume_str("<<")) {
    const double shift = ParseAdd(lx);
    v = static_cast<double>(static_cast<long long>(v)
                            << static_cast<long long>(shift));
  }
  return v;
}

std::vector<double> ParseValueOrList(Lexer& lx) {
  std::vector<double> vals;
  if (lx.consume('{')) {
    if (!lx.consume('}')) {
      do {
        vals.push_back(ParseExpr(lx));
      } while (lx.consume(','));
      SBS_CHECK_MSG(lx.consume('}'), "config: expected '}'");
    }
  } else {
    vals.push_back(ParseExpr(lx));
  }
  return vals;
}

bool IsTypeWord(const std::string& w) {
  return w == "int" || w == "long" || w == "unsigned" || w == "double" ||
         w == "float" || w == "uint64_t" || w == "size_t";
}

}  // namespace

MachineConfig ParseConfig(const std::string& text) {
  Lexer lx{text};
  std::int64_t num_procs = -1;
  std::int64_t num_levels = -1;
  std::vector<double> fan_outs, sizes, block_sizes, assoc, hit_cycles, map;
  MachineConfig cfg;
  cfg.name = "custom";

  while (!lx.eof()) {
    // [type words] name [ '[' ... ']' ] '=' value-or-list ';'
    std::string word = lx.ident();
    SBS_CHECK_MSG(!word.empty(), "config: expected identifier");
    while (IsTypeWord(word)) {
      word = lx.ident();
      SBS_CHECK_MSG(!word.empty(), "config: expected identifier after type");
    }
    if (lx.consume('[')) {  // skip declared extent, we size from the list
      while (lx.peek() != ']' && !lx.eof()) lx.pos++;
      SBS_CHECK_MSG(lx.consume(']'), "config: expected ']'");
    }
    SBS_CHECK_MSG(lx.consume('='), "config: expected '='");
    std::vector<double> vals = ParseValueOrList(lx);
    SBS_CHECK_MSG(lx.consume(';'), "config: expected ';'");

    auto scalar = [&]() -> double {
      SBS_CHECK_MSG(vals.size() == 1, "config: expected a scalar value");
      return vals[0];
    };
    if (word == "num_procs") {
      num_procs = static_cast<std::int64_t>(scalar());
    } else if (word == "num_levels") {
      num_levels = static_cast<std::int64_t>(scalar());
    } else if (word == "fan_outs") {
      fan_outs = vals;
    } else if (word == "sizes") {
      sizes = vals;
    } else if (word == "block_sizes") {
      block_sizes = vals;
    } else if (word == "assoc") {
      assoc = vals;
    } else if (word == "hit_cycles") {
      hit_cycles = vals;
    } else if (word == "map") {
      map = vals;
    } else if (word == "ghz") {
      cfg.ghz = scalar();
    } else if (word == "dram_latency") {
      cfg.dram_latency_cycles = static_cast<std::uint32_t>(scalar());
    } else if (word == "socket_bytes_per_cycle") {
      cfg.socket_bytes_per_cycle = scalar();
    } else if (word == "page_bytes") {
      cfg.page_bytes = static_cast<std::uint64_t>(scalar());
    } else if (word == "sched_op_cycles") {
      cfg.sched_op_cycles = static_cast<std::uint32_t>(scalar());
    } else if (word == "fork_join_cycles") {
      cfg.fork_join_cycles = static_cast<std::uint32_t>(scalar());
    } else if (word == "idle_poll_cycles") {
      cfg.idle_poll_cycles = static_cast<std::uint32_t>(scalar());
    } else {
      SBS_CHECK_MSG(false, ("config: unknown key '" + word + "'").c_str());
    }
  }

  SBS_CHECK_MSG(num_levels >= 2, "config: num_levels must be >= 2");
  SBS_CHECK_MSG(static_cast<std::int64_t>(fan_outs.size()) == num_levels,
                "config: fan_outs must have num_levels entries");
  SBS_CHECK_MSG(static_cast<std::int64_t>(sizes.size()) == num_levels,
                "config: sizes must have num_levels entries");
  SBS_CHECK_MSG(static_cast<std::int64_t>(block_sizes.size()) == num_levels,
                "config: block_sizes must have num_levels entries");

  cfg.levels.resize(static_cast<std::size_t>(num_levels));
  for (std::size_t i = 0; i < cfg.levels.size(); ++i) {
    LevelSpec& lvl = cfg.levels[i];
    lvl.size = static_cast<std::uint64_t>(sizes[i]);
    lvl.line = static_cast<std::uint32_t>(block_sizes[i]);
    lvl.fanout = static_cast<std::uint32_t>(fan_outs[i]);
    lvl.assoc = i < assoc.size() ? static_cast<std::uint32_t>(assoc[i]) : 8;
    lvl.hit_cycles =
        i < hit_cycles.size() ? static_cast<std::uint32_t>(hit_cycles[i]) : 0;
  }
  cfg.levels[0].assoc = 0;
  cfg.levels[0].hit_cycles = 0;
  NameLevels(cfg);
  DefaultHitCycles(cfg);

  for (double m : map) cfg.core_map.push_back(static_cast<int>(m));
  if (num_procs >= 0) {
    SBS_CHECK_MSG(num_procs == cfg.num_threads(),
                  "config: num_procs does not match product of fan_outs");
  }
  cfg.validate();
  return cfg;
}

MachineConfig LoadConfigFile(const std::string& path) {
  std::ifstream f(path);
  SBS_CHECK_MSG(f.good(), ("cannot open machine config: " + path).c_str());
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseConfig(ss.str());
}

std::string ToConfigText(const MachineConfig& cfg) {
  std::ostringstream out;
  const std::size_t n = cfg.levels.size();
  out << "int num_procs=" << cfg.num_threads() << ";\n";
  out << "int num_levels = " << n << ";\n";
  auto emit_array = [&](const char* type, const char* name, auto getter) {
    out << type << " " << name << "[" << n << "] = {";
    for (std::size_t i = 0; i < n; ++i)
      out << (i ? "," : "") << getter(cfg.levels[i]);
    out << "};\n";
  };
  emit_array("int", "fan_outs", [](const LevelSpec& l) { return l.fanout; });
  emit_array("long long int", "sizes",
             [](const LevelSpec& l) { return l.size; });
  emit_array("int", "block_sizes", [](const LevelSpec& l) { return l.line; });
  emit_array("int", "assoc", [](const LevelSpec& l) { return l.assoc; });
  emit_array("int", "hit_cycles",
             [](const LevelSpec& l) { return l.hit_cycles; });
  if (!cfg.core_map.empty()) {
    out << "int map[" << cfg.core_map.size() << "] = {";
    for (std::size_t i = 0; i < cfg.core_map.size(); ++i)
      out << (i ? "," : "") << cfg.core_map[i];
    out << "};\n";
  }
  out << "double ghz = " << cfg.ghz << ";\n";
  out << "int dram_latency = " << cfg.dram_latency_cycles << ";\n";
  out << "double socket_bytes_per_cycle = " << cfg.socket_bytes_per_cycle
      << ";\n";
  out << "long long int page_bytes = " << cfg.page_bytes << ";\n";
  return out.str();
}

}  // namespace sbs::machine
