// Shared command line for the figure-reproduction bench binaries.
//
// Defaults are sized so the whole bench suite regenerates every figure in
// minutes on a laptop-class host; --full switches to the paper's problem
// sizes (10M-element synthetics, 100M-element kernels, 5.12K² matmul) and
// 10 repetitions, which takes correspondingly longer.
#pragma once

#include <cstdint>
#include <string>

#include "util/cli.h"

namespace sbs::harness {

struct BenchOptions {
  bool full = false;
  std::int64_t n = 0;      ///< 0 = per-bench default
  std::int64_t reps = 0;   ///< 0 = per-bench default (3; 10 with --full)
  std::string machine;     ///< empty = per-bench default
  std::string csv;         ///< write the table as CSV here too
  std::int64_t seed = 12345;
  double sigma = 0.5;
  double mu = 0.2;
  std::int64_t threads = -1;
  bool no_verify = false;
  /// --verify: wrap every scheduler in the verify:: invariant checker
  /// (correctness run; callbacks are serialized, timings meaningless).
  bool verify = false;
  std::string trace;         ///< Chrome trace of each cell's first repetition
  std::string metrics_json;  ///< JSONL metrics summary, one line per cell

  int repetitions() const {
    if (reps > 0) return static_cast<int>(reps);
    return full ? 10 : 2;
  }
  std::size_t problem_n(std::size_t dflt, std::size_t full_n) const {
    if (n > 0) return static_cast<std::size_t>(n);
    return full ? full_n : dflt;
  }
  /// Machine for this run: --machine wins; otherwise the paper's machine
  /// with --full and the ÷8-scaled twin (identical ratios) by default.
  std::string machine_for(const std::string& suffix = "") const {
    if (!machine.empty()) return machine;
    return (full ? "xeon7560" : "xeon7560_s8") + suffix;
  }
  /// The cache-size scale factor of a preset name ("..._s8..." → 8).
  static int ScaleOfPreset(const std::string& preset);
};

/// Registers the standard flags on `cli` and parses. Returns false on
/// --help (caller should exit 0).
bool ParseBenchOptions(int argc, char** argv, Cli& cli, BenchOptions* opts);

}  // namespace sbs::harness
