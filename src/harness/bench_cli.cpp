#include "harness/bench_cli.h"

namespace sbs::harness {

int BenchOptions::ScaleOfPreset(const std::string& preset) {
  const auto pos = preset.find("_s");
  if (pos == std::string::npos) return 1;
  const char* digits = preset.c_str() + pos + 2;
  if (*digits < '0' || *digits > '9') return 1;
  return std::atoi(digits);
}

bool ParseBenchOptions(int argc, char** argv, Cli& cli, BenchOptions* opts) {
  cli.add_flag("full", &opts->full,
               "paper-scale problem sizes and 10 repetitions");
  cli.add_int("n", &opts->n, "problem size override (elements / matrix order)");
  cli.add_int("reps", &opts->reps, "repetitions per cell (default 2; 10 with --full)");
  cli.add_string("machine", &opts->machine,
                 "machine preset (default per bench, usually xeon7560)");
  cli.add_string("csv", &opts->csv, "also write results as CSV to this path");
  cli.add_int("seed", &opts->seed, "input-generation seed");
  cli.add_double("sigma", &opts->sigma,
                 "space-bounded dilation parameter (default 0.5)");
  cli.add_double("mu", &opts->mu,
                 "space-bounded strand occupancy cap (default 0.2)");
  cli.add_int("threads", &opts->threads,
              "worker threads (-1 = all hardware threads)");
  cli.add_flag("no-verify", &opts->no_verify,
               "skip output verification after the first repetition");
  cli.add_flag("verify", &opts->verify,
               "check scheduler invariants on every run (serializes "
               "callbacks; use for correctness, not timing)");
  cli.add_string("trace", &opts->trace,
                 "write a Chrome trace of each cell's first repetition here");
  cli.add_string("metrics-json", &opts->metrics_json,
                 "append a JSONL metrics summary line per cell to this path");
  return cli.parse(argc, argv);
}

}  // namespace sbs::harness
