// BenchReport: machine-readable results file for the bench binaries.
//
// Each figure binary accumulates every RunExperiment call it makes into one
// report and writes it as BENCH_<name>.json next to the human-readable
// table. Multi-spec benches (fig7's machine sweep, fig10's σ sweep) add one
// group per RunExperiment call, tagged with a free-form label.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace sbs::harness {

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Record one RunExperiment call's spec + results. `group` distinguishes
  /// sweep points in multi-spec benches ("" is fine for single-spec ones).
  void add(const ExperimentSpec& spec, const std::vector<CellResult>& results,
           const std::string& group = "");

  /// Write the report as JSON. Empty path means "BENCH_<name>.json" in the
  /// current directory. Returns false if the file could not be written.
  bool write(const std::string& path = "") const;

  /// The default output path for this bench.
  std::string default_path() const { return "BENCH_" + bench_name_ + ".json"; }

 private:
  struct Group {
    std::string label;
    std::string kernel;
    std::string machine;
    std::uint64_t n = 0;
    int repetitions = 0;
    double sigma = 0;
    double mu = 0;
    std::vector<CellResult> cells;
  };

  std::string bench_name_;
  std::vector<Group> groups_;
};

}  // namespace sbs::harness
