#include "harness/bench_json.h"

#include <cstdio>

#include "util/json.h"

namespace sbs::harness {

void BenchReport::add(const ExperimentSpec& spec,
                      const std::vector<CellResult>& results,
                      const std::string& group) {
  Group g;
  g.label = group;
  g.kernel = spec.kernel;
  g.machine = spec.machine;
  g.n = static_cast<std::uint64_t>(spec.params.n);
  g.repetitions = spec.repetitions;
  g.sigma = spec.sb.sigma;
  g.mu = spec.sb.mu;
  g.cells = results;
  groups_.push_back(std::move(g));
}

bool BenchReport::write(const std::string& path) const {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", bench_name_);
  w.kv("schema_version", 1);
  w.key("groups").begin_array();
  for (const auto& g : groups_) {
    w.begin_object();
    if (!g.label.empty()) w.kv("label", g.label);
    w.kv("kernel", g.kernel);
    w.kv("machine", g.machine);
    w.kv("n", g.n);
    w.kv("repetitions", g.repetitions);
    w.kv("sigma", g.sigma);
    w.kv("mu", g.mu);
    w.key("cells").begin_array();
    for (const auto& c : g.cells) {
      w.begin_object();
      w.kv("scheduler", c.scheduler);
      w.kv("bw_sockets", c.bw_sockets);
      w.kv("total_sockets", c.total_sockets);
      w.kv("active_s", c.active_s);
      w.kv("overhead_s", c.overhead_s);
      w.kv("empty_s", c.empty_s);
      w.kv("wall_s", c.wall_s);
      w.kv("llc_misses", c.llc_misses);
      w.kv("llc_hits", c.llc_hits);
      w.kv("dram_reads", c.dram_reads);
      w.kv("queue_wait_cycles", c.queue_wait_cycles);
      w.kv("strands", c.strands);
      w.kv("empty_wakeups", c.empty_wakeups);
      w.kv("verified", c.verified);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string out = path.empty() ? default_path() : path;
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) return false;
  const std::string& text = w.str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace sbs::harness
