#include "harness/experiment.h"

#include <cstdio>

#include "trace/analysis.h"
#include "trace/chrome_trace.h"
#include "util/assert.h"
#include "util/stats.h"
#include "verify/invariants.h"

namespace sbs::harness {

std::string WithPathSuffix(const std::string& path,
                           const std::string& suffix) {
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + "." + suffix;
  return path.substr(0, dot) + "." + suffix + path.substr(dot);
}

std::vector<CellResult> RunExperiment(const ExperimentSpec& spec,
                                      bool progress) {
  const machine::Topology topo(machine::Preset(spec.machine));
  const int total_sockets =
      static_cast<int>(topo.nodes_at_depth(1).size());

  std::vector<int> sweep = spec.bandwidth_sockets;
  if (sweep.empty()) sweep.push_back(total_sockets);

  auto kernel = kernels::MakeKernel(spec.kernel, spec.params);
  kernel->prepare(spec.seed);

  const std::size_t total_cells = sweep.size() * spec.schedulers.size();
  bool first_metrics_line = spec.metrics_truncate;

  std::vector<CellResult> results;
  for (int sockets : sweep) {
    SBS_CHECK(sockets >= 1 && sockets <= total_sockets);
    for (const auto& sched_name : spec.schedulers) {
      sim::SimParams sim_params;
      sim_params.num_threads = spec.num_threads;
      for (int s = 0; s < sockets; ++s)
        sim_params.memory.allowed_sockets.push_back(s);
      sim::SimEngine engine(topo, sim_params);

      const bool tracing =
          !spec.trace_path.empty() || !spec.metrics_path.empty();
      if (tracing) engine.enable_tracing();
      const std::string cell_label =
          (spec.label_prefix.empty() ? "" : spec.label_prefix + "/") +
          spec.kernel + "@" + spec.machine + "/" + sched_name + "/" +
          std::to_string(sockets) + "bw";

      CellResult cell;
      cell.scheduler = sched_name;
      cell.bw_sockets = sockets;
      cell.total_sockets = total_sockets;

      std::vector<double> active, overhead, empty, wall, misses, hits, reads,
          queue;
      for (int rep = 0; rep < spec.repetitions; ++rep) {
        sched::SchedulerSpec ss;
        ss.name = sched_name;
        ss.seed = spec.seed + static_cast<std::uint64_t>(rep);
        ss.sb = spec.sb;
        std::unique_ptr<runtime::Scheduler> sched = sched::MakeScheduler(ss);
        verify::VerifyingScheduler* checker = nullptr;
        if (spec.verify_invariants) {
          auto wrapped = verify::Wrap(std::move(sched));
          checker = wrapped.get();
          sched = std::move(wrapped);
        }

        const sim::SimResult r = engine.run(*sched, kernel->make_root());
        if (checker != nullptr && !checker->ok()) {
          SBS_CHECK_MSG(false, checker->report().c_str());
        }
        if (tracing && rep == 0) {
          // Only the first repetition is exported: each run resets the rings.
          if (!spec.trace_path.empty()) {
            trace::TraceInfo info;
            info.engine = "sim";
            info.scheduler = sched_name;
            info.machine = spec.machine;
            info.label = cell_label;
            const std::string path =
                total_cells == 1
                    ? spec.trace_path
                    : WithPathSuffix(spec.trace_path,
                                     sched_name + "_" +
                                         std::to_string(sockets) + "bw");
            SBS_CHECK_MSG(
                trace::WriteChromeTrace(*engine.recorder(), path, info),
                "failed to write --trace output");
          }
          if (!spec.metrics_path.empty()) {
            trace::EngineOverheads ov;
            ov.windows_executed = r.counters.windows_executed;
            ov.window_merges = r.counters.window_merges;
            ov.pump_passes = r.counters.pump_passes;
            ov.fiber_switches = r.counters.fiber_switches;
            ov.inline_strands = r.counters.inline_strands;
            SBS_CHECK_MSG(
                trace::WriteMetricsJsonl(trace::Analyze(*engine.recorder()),
                                         spec.metrics_path, cell_label,
                                         /*truncate=*/first_metrics_line, &ov),
                "failed to write --metrics-json output");
            first_metrics_line = false;
          }
        }
        active.push_back(r.stats.avg_active_s());
        overhead.push_back(r.stats.avg_overhead_s());
        empty.push_back(r.stats.avg_empty_s());
        wall.push_back(r.stats.wall_s);
        misses.push_back(static_cast<double>(r.counters.llc_misses()));
        hits.push_back(static_cast<double>(r.counters.llc_hits()));
        reads.push_back(static_cast<double>(r.counters.dram_reads));
        queue.push_back(static_cast<double>(r.counters.queue_wait_cycles));
        cell.strands = r.stats.total_strands();
        cell.empty_wakeups = r.stats.total_empty_wakeups();
        cell.sched_stats = r.sched_stats;
        if (spec.verify && rep == 0) {
          cell.verified = kernel->verify();
          SBS_CHECK_MSG(cell.verified, "kernel verification failed");
        }
      }
      cell.active_s = trimmed_mean(active);
      cell.overhead_s = trimmed_mean(overhead);
      cell.empty_s = trimmed_mean(empty);
      cell.wall_s = trimmed_mean(wall);
      cell.llc_misses = trimmed_mean(misses);
      cell.llc_hits = trimmed_mean(hits);
      cell.dram_reads = trimmed_mean(reads);
      cell.queue_wait_cycles = trimmed_mean(queue);

      if (progress) {
        std::fprintf(stderr,
                     "  [%s] %d/%d sockets, %-6s: active %.4fs overhead "
                     "%.4fs L3-miss %.2fM%s\n",
                     spec.kernel.c_str(), sockets, total_sockets,
                     sched_name.c_str(), cell.active_s, cell.overhead_s,
                     cell.llc_misses / 1e6, cell.verified ? "" : "  UNVERIFIED");
      }
      results.push_back(std::move(cell));
    }
  }
  return results;
}

Table MakeFigureTable(const std::string& title,
                      const std::vector<CellResult>& results) {
  Table table(title);
  table.set_header({"bandwidth", "scheduler", "active(s)", "overhead(s)",
                    "empty(s)", "total(s)", "L3 misses"});
  for (const auto& cell : results) {
    table.add_row({fmt_percent(cell.bw_fraction(), 0) + " b/w",
                   cell.scheduler, fmt_double(cell.active_s, 4),
                   fmt_double(cell.overhead_s, 4),
                   fmt_double(cell.empty_s, 4),
                   fmt_double(cell.active_s + cell.overhead_s, 4),
                   fmt_millions(cell.llc_misses, 2)});
  }
  return table;
}

}  // namespace sbs::harness
