// Experiment harness: runs a (kernel × scheduler × bandwidth × machine)
// matrix on the PMH simulator, with the paper's measurement conventions —
// ≥N repetitions per cell, smallest and largest reading dropped (§5.3),
// active time and overhead reported separately (§3.3), plus exact simulated
// L3 miss counts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "util/table.h"

namespace sbs::harness {

struct ExperimentSpec {
  std::string kernel;
  kernels::KernelParams params;
  std::vector<std::string> schedulers = {"WS", "PWS", "SB", "SB-D"};
  std::string machine = "xeon7560";
  /// Memory sockets in use per sweep point (paper: 4→100%, 3→75%, 2→50%,
  /// 1→25% bandwidth). Empty = one point with all sockets.
  std::vector<int> bandwidth_sockets;
  int repetitions = 3;
  std::uint64_t seed = 12345;
  /// Space-bounded scheduler knobs.
  sched::SpaceBounded::Options sb;
  int num_threads = -1;  ///< -1: all hardware threads of the machine
  bool verify = true;
  /// Wrap every scheduler in verify::VerifyingScheduler and abort (with the
  /// checker's report) on any invariant violation. Serializes the scheduler
  /// callbacks — a correctness mode, not a timing mode.
  bool verify_invariants = false;

  /// Chrome Trace Event output: the first repetition of each cell is traced
  /// and written to this path, with "<scheduler>_<sockets>bw" inserted
  /// before the extension when the matrix has more than one cell.
  std::string trace_path;
  /// JSONL metrics output: one line per cell, appended in cell order (the
  /// file is truncated at the start of the experiment when
  /// `metrics_truncate` is set — multi-spec benches clear it after their
  /// first RunExperiment call so every sweep point lands in one file).
  std::string metrics_path;
  bool metrics_truncate = true;
  /// Prefix for the per-cell labels in the metrics JSONL — multi-spec
  /// benches set it to the sweep-point name (e.g. "sigma0.9") so lines from
  /// different RunExperiment calls stay distinguishable.
  std::string label_prefix;
};

/// Aggregated measurements of one (scheduler, bandwidth) cell.
struct CellResult {
  std::string scheduler;
  int bw_sockets = 0;
  int total_sockets = 0;

  // Trimmed means over repetitions, in seconds / counts.
  double active_s = 0;
  double overhead_s = 0;  ///< add + done + get + empty
  double empty_s = 0;
  double wall_s = 0;
  double llc_misses = 0;
  double llc_hits = 0;
  double dram_reads = 0;
  double queue_wait_cycles = 0;
  std::uint64_t strands = 0;
  /// Scheduler polls that returned no job (last repetition's total across
  /// workers) — the pressure on the engines' idle-backoff path.
  std::uint64_t empty_wakeups = 0;

  bool verified = true;
  std::string sched_stats;

  double bw_fraction() const {
    return total_sockets == 0
               ? 1.0
               : static_cast<double>(bw_sockets) /
                     static_cast<double>(total_sockets);
  }
};

/// Run the full matrix. Progress lines (one per cell) go to stderr when
/// `progress` is true. Cells are ordered bandwidth-major, scheduler-minor
/// (matching the paper's figure layout).
std::vector<CellResult> RunExperiment(const ExperimentSpec& spec,
                                      bool progress = true);

/// Render results in the paper's figure layout: one row per
/// (bandwidth, scheduler) with active time, overhead, and L3 misses.
Table MakeFigureTable(const std::string& title,
                      const std::vector<CellResult>& results);

/// "out.json" + "SB_4bw" -> "out.SB_4bw.json" — insert a suffix before the
/// extension. Multi-spec benches use it to keep sweep points from
/// overwriting each other's trace files.
std::string WithPathSuffix(const std::string& path, const std::string& suffix);

}  // namespace sbs::harness
