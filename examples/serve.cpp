// Quick-start for the scheduler-as-a-service mode (docs/SERVICE.md).
//
// Builds a resident service Runtime over the SB scheduler on the "mini"
// test machine, submits a small multi-tenant burst of sort jobs against
// the σM admission budget, waits for each, and prints the outcome and the
// latency summary. Compare policies:
//
//   ./serve                    # reject over-budget submissions
//   ./serve --policy=queue     # park them until budget frees (or deadline)
//   ./serve --policy=degrade   # run them best-effort under work stealing
//   ./serve --sched=WS         # same stream on plain work stealing
#include <cstdio>

#include "machine/topology.h"
#include "service/runtime.h"
#include "service/workload.h"
#include "util/cli.h"

using namespace sbs;

int main(int argc, char** argv) {
  std::string sched_name = "SB";
  std::string policy_name = "reject";
  std::int64_t jobs = 48;
  std::int64_t seed = 1;
  Cli cli("serve", "minimal scheduler-as-a-service example");
  cli.add_string("sched", &sched_name, "WS|PWS|SB|SB-D");
  cli.add_string("policy", &policy_name, "reject|queue|degrade");
  cli.add_int("jobs", &jobs, "number of submissions");
  cli.add_int("seed", &seed, "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const machine::Topology topo(machine::Preset("mini"));

  service::RuntimeOptions options;
  options.scheduler.name = sched_name;
  options.admission.policy = service::ParsePolicy(policy_name);
  options.admission.queue_timeout_s = 2.0;
  options.num_tenants = 4;

  // The mini machine's largest budget is σ·64KB = 32KB per L2, so keep the
  // sort jobs at 256–2048 elements (4–32KB declared footprint).
  service::WorkloadOptions mix;
  mix.tenants = 4;
  mix.kernels = {"quicksort", "samplesort"};
  mix.min_n = 256;
  mix.max_n = 2048;

  service::Runtime runtime(topo, options);
  service::Workload workload(mix, static_cast<std::uint64_t>(seed));
  std::printf("serving %lld jobs on %s (policy=%s)\n",
              static_cast<long long>(jobs),
              runtime.scheduler().name().c_str(), policy_name.c_str());

  int output_failures = 0;
  for (std::int64_t i = 0; i < jobs; ++i) {
    service::Request req = workload.next();
    if (req.dropped) continue;
    service::JobHandle handle =
        runtime.submit(req.root, req.declared_bytes, req.tenant);
    const service::JobState state = runtime.wait(handle);
    const bool sorted =
        state == service::JobState::kDone && req.instance->verify();
    if (state == service::JobState::kDone && !sorted) ++output_failures;
    std::printf("  job %2lld  tenant %d  %-10s n=%-5zu -> %-9s"
                "  sojourn %.3f ms\n",
                static_cast<long long>(i), req.tenant, req.kernel.c_str(),
                req.n, service::JobStateName(state),
                handle.sojourn_s() * 1e3);
    workload.release(req.instance);
  }

  const double span = runtime.uptime_s();
  std::printf("summary: %s\n", runtime.metrics().summary(span).c_str());
  std::printf("admission: %s\n", runtime.admission().stats_string().c_str());
  runtime.shutdown();
  return output_failures == 0 ? 0 : 1;
}
