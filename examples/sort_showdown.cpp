// Sort showdown: run the paper's quicksort on the simulated 4-socket Xeon
// under every scheduler, and watch the space-bounded schedulers trade a
// little scheduling overhead for a lot of L3 locality.
//
//   ./sort_showdown [n] [machine]    (default 1M doubles on xeon7560_s8)
#include <cstdio>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "util/table.h"

using namespace sbs;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 1'000'000;
  const std::string machine_name = argc > 2 ? argv[2] : "xeon7560_s8";

  const machine::Topology topo(machine::Preset(machine_name));
  std::printf("%s\n", topo.describe().c_str());

  kernels::KernelParams params;
  params.n = n;
  params.machine_scale =
      machine_name.find("_s8") != std::string::npos ? 8 : 1;
  auto kernel = kernels::MakeKernel("quicksort", params);
  kernel->prepare(/*seed=*/2026);

  Table table("Quicksort, " + std::to_string(n) + " doubles on " +
              machine_name);
  table.set_header({"scheduler", "sim time", "active", "overhead",
                    "L3 misses", "verified"});

  sim::SimEngine engine(topo);
  for (const auto& name : sched::SchedulerNames()) {
    auto sched = sched::MakeScheduler(name);
    const sim::SimResult r = engine.run(*sched, kernel->make_root());
    const bool ok = kernel->verify();
    table.add_row({name, fmt_seconds(r.stats.wall_s),
                   fmt_seconds(r.stats.avg_active_s()),
                   fmt_seconds(r.stats.avg_overhead_s()),
                   fmt_millions(static_cast<double>(r.counters.llc_misses()), 2),
                   ok ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
