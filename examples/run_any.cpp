// General-purpose experiment driver: any kernel × any scheduler × any
// machine × either engine, from the command line. The "main" of the
// framework a downstream user would reach for first.
//
//   ./run_any --kernel=quicksort --sched=SB --machine=xeon7560_s8 --n=1000000
//   ./run_any --kernel=rrm --sched=WS --engine=threads --threads=4
//   ./run_any --kernel=matmul --n=512 --sched=SB-D --sigma=0.7 --sockets=1
//   ./run_any --kernel=quicksort --sched=SB --trace=out.json
//             --metrics-json=metrics.jsonl   # Perfetto trace + summary line
//   ./run_any --kernel=quicksort --sched=SB --verify
//             --trace-jsonl=run.jsonl        # invariant checking + replay file
#include <cstdio>
#include <memory>
#include <utility>

#include "kernels/kernel.h"
#include "machine/topology.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"
#include "sim/engine.h"
#include "trace/analysis.h"
#include "trace/chrome_trace.h"
#include "trace/jsonl_trace.h"
#include "util/cli.h"
#include "verify/invariants.h"

using namespace sbs;

int main(int argc, char** argv) {
  std::string kernel_name = "rrm";
  std::string sched_name = "WS";
  std::string machine_name = "xeon7560_s8";
  std::string machine_file;
  std::string engine_name = "sim";
  std::int64_t n = 0;
  std::int64_t threads = -1;
  std::int64_t sockets = 0;  // memory sockets (bandwidth); 0 = all
  std::int64_t host_threads = 1;
  std::int64_t quantum = 0;  // 0 = SimParams default
  std::int64_t seed = 12345;
  double sigma = 0.5, mu = 0.2;
  bool verify_invariants = false;
  std::string trace_path;
  std::string jsonl_trace_path;
  std::string metrics_path;

  Cli cli("run_any", "run any kernel under any scheduler on any machine");
  cli.add_string("kernel", &kernel_name,
                 "rrm|rrg|quicksort|samplesort|aware-samplesort|quadtree|matmul");
  cli.add_string("sched", &sched_name, "WS|PWS|CilkWS|SB|SB-D");
  cli.add_string("machine", &machine_name, "machine preset name");
  cli.add_string("machine-file", &machine_file,
                 "Fig.4-syntax config file (overrides --machine)");
  cli.add_string("engine", &engine_name,
                 "sim (PMH simulator) or threads (real thread pool)");
  cli.add_int("n", &n, "problem size (elements; matrix order for matmul)");
  cli.add_int("threads", &threads, "worker count (-1 = all)");
  cli.add_int("sockets", &sockets,
              "memory sockets in use (simulator bandwidth throttle)");
  cli.add_int("host-threads", &host_threads,
              "host threads executing simulator window phases (results are "
              "identical for every value)");
  cli.add_int("quantum", &quantum,
              "simulator skew quantum in cycles (0 = default)");
  cli.add_int("seed", &seed, "input seed");
  cli.add_double("sigma", &sigma, "space-bounded dilation");
  cli.add_double("mu", &mu, "space-bounded strand cap");
  cli.add_flag("verify", &verify_invariants,
               "wrap the scheduler in the online invariant checker "
               "(src/verify); exit nonzero on any violation");
  cli.add_string("trace", &trace_path,
                 "write a Chrome trace (Perfetto-loadable) of the run here");
  cli.add_string("trace-jsonl", &jsonl_trace_path,
                 "write a JSONL trace (tools/trace_check input) here");
  cli.add_string("metrics-json", &metrics_path,
                 "write a one-line JSONL metrics summary of the run here");
  if (!cli.parse(argc, argv)) return 0;

  const machine::MachineConfig cfg =
      machine_file.empty() ? machine::Preset(machine_name)
                           : machine::LoadConfigFile(machine_file);
  const machine::Topology topo(cfg);
  std::printf("%s\n", topo.describe().c_str());

  kernels::KernelParams params;
  params.machine_scale = [&] {
    const auto pos = cfg.name.find("_s");
    return pos != std::string::npos && isdigit(cfg.name[pos + 2])
               ? std::atoi(cfg.name.c_str() + pos + 2)
               : 1;
  }();
  params.n = n > 0 ? static_cast<std::size_t>(n)
                   : (kernel_name == "matmul" ? 512 : 1'000'000);
  params.base = params.scaled(2048);
  auto kernel = kernels::MakeKernel(kernel_name, params);
  kernel->prepare(static_cast<std::uint64_t>(seed));
  std::printf("kernel %s, n=%zu (%.1f MB footprint)\n",
              kernel->name().c_str(), params.n,
              static_cast<double>(kernel->problem_bytes()) / (1 << 20));

  sched::SchedulerSpec spec;
  spec.name = sched_name;
  spec.sb.sigma = sigma;
  spec.sb.mu = mu;
  std::unique_ptr<runtime::Scheduler> sched = sched::MakeScheduler(spec);
  verify::VerifyingScheduler* checker = nullptr;
  if (verify_invariants) {
    auto wrapped = verify::Wrap(std::move(sched));
    checker = wrapped.get();
    sched = std::move(wrapped);
  }

  const bool tracing = !trace_path.empty() || !jsonl_trace_path.empty() ||
                       !metrics_path.empty();
  const auto export_trace = [&](const trace::Recorder& rec,
                                const trace::EngineOverheads* engine_ov) {
    if (!trace_path.empty()) {
      trace::TraceInfo info;
      info.engine = engine_name;
      info.scheduler = sched_name;
      info.machine = cfg.name;
      info.label = kernel_name;
      if (trace::WriteChromeTrace(rec, trace_path, info)) {
        std::printf("trace: %s (%llu events, %llu dropped)\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(rec.total_recorded()),
                    static_cast<unsigned long long>(rec.total_dropped()));
      } else {
        std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      }
    }
    if (!jsonl_trace_path.empty()) {
      trace::TraceInfo info;
      info.engine = engine_name;
      info.scheduler = sched_name;
      info.machine = cfg.name;
      info.label = kernel_name;
      trace::JsonlTraceParams params;
      params.config_text = machine::ToConfigText(cfg);
      if (sched_name == "SB" || sched_name == "SB-D") {
        params.sigma = sigma;
        params.mu = mu;
      }
      if (trace::WriteJsonlTrace(rec, jsonl_trace_path, info, params)) {
        std::printf("trace-jsonl: %s (%llu events, %llu dropped)\n",
                    jsonl_trace_path.c_str(),
                    static_cast<unsigned long long>(rec.total_recorded()),
                    static_cast<unsigned long long>(rec.total_dropped()));
      } else {
        std::fprintf(stderr, "failed to write %s\n",
                     jsonl_trace_path.c_str());
      }
    }
    if (!metrics_path.empty()) {
      const std::string label = kernel_name + "/" + sched_name;
      if (trace::WriteMetricsJsonl(trace::Analyze(rec), metrics_path, label,
                                   /*truncate=*/true, engine_ov)) {
        std::printf("metrics: %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
      }
    }
  };

  if (engine_name == "threads") {
    runtime::ThreadPool pool(topo, static_cast<int>(threads));
    if (tracing) pool.enable_tracing();
    const runtime::RunStats stats = pool.run(*sched, kernel->make_root());
    std::printf("[threads] %s\n", stats.summary().c_str());
    if (tracing) export_trace(*pool.recorder(), nullptr);
  } else {
    sim::SimParams sp;
    sp.num_threads = static_cast<int>(threads);
    sp.host_threads = static_cast<int>(host_threads);
    if (quantum > 0) sp.skew_quantum = static_cast<std::uint64_t>(quantum);
    for (int s = 0; s < sockets; ++s) sp.memory.allowed_sockets.push_back(s);
    sim::SimEngine engine(topo, sp);
    if (tracing) engine.enable_tracing();
    const sim::SimResult r = engine.run(*sched, kernel->make_root());
    std::printf("[sim] %s\n", r.stats.summary().c_str());
    std::printf("[sim] %s\n", r.counters.summary().c_str());
    if (tracing) {
      trace::EngineOverheads ov;
      ov.windows_executed = r.counters.windows_executed;
      ov.window_merges = r.counters.window_merges;
      ov.pump_passes = r.counters.pump_passes;
      ov.fiber_switches = r.counters.fiber_switches;
      ov.inline_strands = r.counters.inline_strands;
      export_trace(*engine.recorder(), &ov);
    }
  }
  std::printf("scheduler stats: %s\n", sched->stats_string().c_str());
  if (checker != nullptr) {
    std::printf("%s\n", checker->report().c_str());
  }
  std::printf("verify: %s\n", kernel->verify() ? "OK" : "FAILED");
  const bool ok = kernel->verify() && (checker == nullptr || checker->ok());
  return ok ? 0 : 1;
}
