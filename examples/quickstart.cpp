// Quickstart: write a nested-parallel program against the framework's
// fork/join API, run it on real threads under a scheduler of your choice,
// and read the per-thread time breakdown.
//
//   ./quickstart [scheduler]        (default WS; try SB, SB-D, PWS, CilkWS)
#include <cstdio>
#include <numeric>
#include <vector>

#include "machine/topology.h"
#include "runtime/jobs.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sched/registry.h"

using namespace sbs;
using runtime::Job;
using runtime::Strand;
using runtime::make_job;
using runtime::make_nop;

/// Recursive parallel sum of [lo,hi): the canonical fork-join example.
/// Every task carries a footprint annotation so space-bounded schedulers
/// can anchor it to a befitting cache.
static Job* sum_task(const std::vector<double>& data, std::size_t lo,
                     std::size_t hi, double* out) {
  const std::uint64_t bytes = (hi - lo) * sizeof(double);
  if (hi - lo <= 4096) {
    return make_job(
        [&data, lo, hi, out](Strand&) {
          *out = std::accumulate(data.begin() + static_cast<long>(lo),
                                 data.begin() + static_cast<long>(hi), 0.0);
        },
        bytes);
  }
  return make_job(
      [&data, lo, hi, out](Strand& strand) {
        const std::size_t mid = lo + (hi - lo) / 2;
        auto* partial = new double[2]();
        // fork: two child tasks + a continuation strand that runs after
        // both complete (the join).
        strand.fork2(sum_task(data, lo, mid, &partial[0]),
                     sum_task(data, mid, hi, &partial[1]),
                     make_job(
                         [partial, out](Strand&) {
                           *out = partial[0] + partial[1];
                           delete[] partial;
                         },
                         runtime::kNoSize, 64));
      },
      bytes, 64);
}

int main(int argc, char** argv) {
  const std::string sched_name = argc > 1 ? argv[1] : "WS";

  // The machine: the paper's 4-socket Xeon 7560 (tree of caches).
  const machine::Topology topo(machine::Preset("xeon7560"));
  std::printf("%s\n", topo.describe().c_str());

  std::vector<double> data(1 << 22);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i % 7);

  auto sched = sched::MakeScheduler(sched_name);
  runtime::ThreadPool pool(topo);  // one worker per hardware thread

  // 1) Recursive fork/join.
  double sum = 0;
  runtime::RunStats stats = pool.run(*sched, sum_task(data, 0, data.size(), &sum));
  std::printf("parallel sum  = %.0f (%s)\n", sum, stats.summary().c_str());

  // 2) parallel_for, built on fork/join with recursive grouping.
  std::vector<double> squares(data.size());
  Job* root = make_job(
      [&](Strand& strand) {
        strand.fork({runtime::ParallelFor::make_flat(
                        0, data.size(), 4096, sizeof(double),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            squares[i] = data[i] * data[i];
                        })},
                    make_nop());
      },
      2 * data.size() * sizeof(double), 64);
  stats = pool.run(*sched, root);
  std::printf("parallel_for  : %s\n", stats.summary().c_str());
  std::printf("scheduler     : %s (%s)\n", sched->name().c_str(),
              sched->stats_string().c_str());
  return 0;
}
