// The bandwidth cliff: how running time degrades as the memory system
// shrinks from 4 sockets' worth of bandwidth to 1 (the paper's §5
// "bandwidth gap" experiment), and how much of the cliff a space-bounded
// scheduler avoids by missing less.
//
//   ./bandwidth_cliff [n]            (default 1.25M doubles, RRM)
#include <cstdio>

#include "harness/experiment.h"
#include "util/table.h"

using namespace sbs;

int main(int argc, char** argv) {
  harness::ExperimentSpec spec;
  spec.kernel = "rrm";
  spec.machine = "xeon7560_s8";
  spec.params.machine_scale = 8;
  spec.params.n = argc > 1 ? std::stoull(argv[1]) : 1'250'000;
  spec.params.base = 256;
  spec.schedulers = {"WS", "SB"};
  spec.bandwidth_sockets = {4, 3, 2, 1};
  spec.repetitions = 1;

  const auto results = harness::RunExperiment(spec);

  Table table("RRM running time vs memory bandwidth (xeon7560_s8)");
  table.set_header({"bandwidth", "WS total(s)", "SB total(s)", "SB speedup"});
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const auto& ws = results[i];
    const auto& sb = results[i + 1];
    const double ws_t = ws.active_s + ws.overhead_s;
    const double sb_t = sb.active_s + sb.overhead_s;
    table.add_row({fmt_percent(ws.bw_fraction(), 0), fmt_double(ws_t, 4),
                   fmt_double(sb_t, 4),
                   fmt_double(ws_t / sb_t, 2) + "x"});
  }
  table.print();
  std::printf("Paper: SB's advantage grows as the bandwidth gap widens — up "
              "to ~50%% faster at 4x less bandwidth per core.\n");
  return 0;
}
