// Describe your own machine in the paper's Fig. 4 config syntax and run a
// benchmark on its simulation.
//
//   ./custom_machine [config-file]
//
// Without an argument, uses the built-in example below — a 2-socket,
// 6-cores-per-socket machine with 8 MB L3s.
#include <cstdio>

#include "kernels/kernel.h"
#include "machine/config.h"
#include "machine/topology.h"
#include "sched/registry.h"
#include "sim/engine.h"

using namespace sbs;

static const char* kExampleConfig = R"(
  // A hypothetical 2-socket, 6-core-per-socket part.
  int num_procs = 12;
  int num_levels = 4;
  int fan_outs[4]    = {2, 6, 1, 1};
  long long int sizes[4] = {0, 8*(1<<20), 1<<18, 1<<15};
  int block_sizes[4] = {64, 64, 64, 64};
  int assoc[4]       = {0, 16, 8, 8};
  double ghz = 2.6;
  int dram_latency = 170;
  double socket_bytes_per_cycle = 12.0;
)";

int main(int argc, char** argv) {
  machine::MachineConfig cfg =
      argc > 1 ? machine::LoadConfigFile(argv[1])
               : machine::ParseConfig(kExampleConfig);
  const machine::Topology topo(cfg);
  std::printf("%s\n", topo.describe().c_str());
  std::printf("config round-trip:\n%s\n",
              machine::ToConfigText(cfg).c_str());

  kernels::KernelParams params;
  params.n = 2'000'000;
  params.base = 1024;
  auto kernel = kernels::MakeKernel("rrm", params);
  kernel->prepare(7);

  sim::SimEngine engine(topo);
  for (const char* name : {"WS", "SB"}) {
    auto sched = sched::MakeScheduler(name);
    const sim::SimResult r = engine.run(*sched, kernel->make_root());
    std::printf("%-4s: %s\n      %s\n", name, r.stats.summary().c_str(),
                r.counters.summary().c_str());
    SBS_CHECK(kernel->verify());
  }
  return 0;
}
