file(REMOVE_RECURSE
  "CMakeFiles/fig7_cores.dir/fig7_cores.cpp.o"
  "CMakeFiles/fig7_cores.dir/fig7_cores.cpp.o.d"
  "fig7_cores"
  "fig7_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
