# Empty dependencies file for fig8_kernels.
# This may be replaced when dependencies are built.
