file(REMOVE_RECURSE
  "CMakeFiles/fig8_kernels.dir/fig8_kernels.cpp.o"
  "CMakeFiles/fig8_kernels.dir/fig8_kernels.cpp.o.d"
  "fig8_kernels"
  "fig8_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
