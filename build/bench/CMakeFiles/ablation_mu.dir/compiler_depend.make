# Empty compiler generated dependencies file for ablation_mu.
# This may be replaced when dependencies are built.
