file(REMOVE_RECURSE
  "CMakeFiles/ablation_mu.dir/ablation_mu.cpp.o"
  "CMakeFiles/ablation_mu.dir/ablation_mu.cpp.o.d"
  "ablation_mu"
  "ablation_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
