# Empty dependencies file for ablation_strand_size.
# This may be replaced when dependencies are built.
