file(REMOVE_RECURSE
  "CMakeFiles/ablation_strand_size.dir/ablation_strand_size.cpp.o"
  "CMakeFiles/ablation_strand_size.dir/ablation_strand_size.cpp.o.d"
  "ablation_strand_size"
  "ablation_strand_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strand_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
