# Empty dependencies file for fig9_kernels_lowbw.
# This may be replaced when dependencies are built.
