file(REMOVE_RECURSE
  "CMakeFiles/fig9_kernels_lowbw.dir/fig9_kernels_lowbw.cpp.o"
  "CMakeFiles/fig9_kernels_lowbw.dir/fig9_kernels_lowbw.cpp.o.d"
  "fig9_kernels_lowbw"
  "fig9_kernels_lowbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_kernels_lowbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
