file(REMOVE_RECURSE
  "CMakeFiles/fig10_sigma.dir/fig10_sigma.cpp.o"
  "CMakeFiles/fig10_sigma.dir/fig10_sigma.cpp.o.d"
  "fig10_sigma"
  "fig10_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
