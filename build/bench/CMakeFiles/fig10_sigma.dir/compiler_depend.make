# Empty compiler generated dependencies file for fig10_sigma.
# This may be replaced when dependencies are built.
