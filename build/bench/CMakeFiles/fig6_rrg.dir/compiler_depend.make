# Empty compiler generated dependencies file for fig6_rrg.
# This may be replaced when dependencies are built.
