file(REMOVE_RECURSE
  "CMakeFiles/fig6_rrg.dir/fig6_rrg.cpp.o"
  "CMakeFiles/fig6_rrg.dir/fig6_rrg.cpp.o.d"
  "fig6_rrg"
  "fig6_rrg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rrg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
