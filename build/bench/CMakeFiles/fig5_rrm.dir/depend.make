# Empty dependencies file for fig5_rrm.
# This may be replaced when dependencies are built.
