file(REMOVE_RECURSE
  "CMakeFiles/fig5_rrm.dir/fig5_rrm.cpp.o"
  "CMakeFiles/fig5_rrm.dir/fig5_rrm.cpp.o.d"
  "fig5_rrm"
  "fig5_rrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
