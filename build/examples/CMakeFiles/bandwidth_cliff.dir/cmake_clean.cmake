file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_cliff.dir/bandwidth_cliff.cpp.o"
  "CMakeFiles/bandwidth_cliff.dir/bandwidth_cliff.cpp.o.d"
  "bandwidth_cliff"
  "bandwidth_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
