# Empty compiler generated dependencies file for bandwidth_cliff.
# This may be replaced when dependencies are built.
