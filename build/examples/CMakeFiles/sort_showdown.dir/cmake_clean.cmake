file(REMOVE_RECURSE
  "CMakeFiles/sort_showdown.dir/sort_showdown.cpp.o"
  "CMakeFiles/sort_showdown.dir/sort_showdown.cpp.o.d"
  "sort_showdown"
  "sort_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
