# Empty dependencies file for sort_showdown.
# This may be replaced when dependencies are built.
