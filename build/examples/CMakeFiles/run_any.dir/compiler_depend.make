# Empty compiler generated dependencies file for run_any.
# This may be replaced when dependencies are built.
