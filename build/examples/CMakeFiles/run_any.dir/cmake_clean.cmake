file(REMOVE_RECURSE
  "CMakeFiles/run_any.dir/run_any.cpp.o"
  "CMakeFiles/run_any.dir/run_any.cpp.o.d"
  "run_any"
  "run_any.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_any.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
