file(REMOVE_RECURSE
  "libsbs.a"
)
